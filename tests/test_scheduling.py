"""Tests for stabilizer measurement schedules and edge colouring."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import (
    bivariate_bicycle_code,
    interleaved_schedule,
    parallelism_bound,
    schedule_for,
    serial_schedule,
    surface_code,
    x_then_z_schedule,
)
from repro.codes.scheduling import bipartite_edge_coloring


class TestBipartiteEdgeColoring:
    def test_empty_graph(self):
        assert bipartite_edge_coloring([]) == []

    def test_single_edge(self):
        assert bipartite_edge_coloring([(0, 0)]) == [0]

    def test_star_uses_degree_colours(self):
        edges = [(0, r) for r in range(5)]
        colours = bipartite_edge_coloring(edges)
        assert sorted(colours) == list(range(5))

    def test_complete_bipartite_k33(self):
        edges = [(left, right) for left in range(3) for right in range(3)]
        colours = bipartite_edge_coloring(edges)
        assert max(colours) + 1 == 3
        self._assert_proper(edges, colours)

    @staticmethod
    def _assert_proper(edges, colours):
        seen = set()
        for (left, right), colour in zip(edges, colours):
            assert ("L", left, colour) not in seen
            assert ("R", right, colour) not in seen
            seen.add(("L", left, colour))
            seen.add(("R", right, colour))

    @given(st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)),
                    min_size=1, max_size=40, unique=True))
    @settings(max_examples=80, deadline=None)
    def test_colouring_is_proper_and_uses_delta_colours(self, edges):
        colours = bipartite_edge_coloring(edges)
        self._assert_proper(edges, colours)
        degree: dict = {}
        for left, right in edges:
            degree[("L", left)] = degree.get(("L", left), 0) + 1
            degree[("R", right)] = degree.get(("R", right), 0) + 1
        assert max(colours) + 1 == max(degree.values())


class TestSchedules:
    def test_serial_schedule_depth_equals_total_gates(self, surface_code_d3):
        schedule = serial_schedule(surface_code_d3)
        assert schedule.depth == surface_code_d3.total_cnot_count
        assert schedule.validate()

    def test_x_then_z_schedule_valid(self, surface_code_d3):
        schedule = x_then_z_schedule(surface_code_d3)
        assert schedule.validate()
        assert schedule.total_gates == surface_code_d3.total_cnot_count

    def test_x_then_z_depth_bound(self, bb_72):
        schedule = x_then_z_schedule(bb_72)
        # Non-edge-colorable bound: w_max(X) + w_max(Z) when qubit degrees
        # per basis do not exceed the stabilizer weights (true for BB codes).
        assert schedule.depth == bb_72.max_x_weight + bb_72.max_z_weight
        assert schedule.validate()

    def test_interleaved_requires_edge_colorable(self, bb_72):
        with pytest.raises(ValueError):
            interleaved_schedule(bb_72)

    def test_interleaved_schedule_shorter_than_x_then_z(self, hgp_225):
        interleaved = interleaved_schedule(hgp_225)
        split = x_then_z_schedule(hgp_225)
        assert interleaved.validate()
        assert interleaved.depth <= split.depth

    def test_schedule_for_policies(self, surface_code_d3):
        assert schedule_for(surface_code_d3, "serial").policy == "serial"
        assert schedule_for(surface_code_d3, "auto").policy == "x_then_z"
        assert schedule_for(surface_code_d3, "interleaved").policy == \
            "interleaved"
        with pytest.raises(ValueError):
            schedule_for(surface_code_d3, "bogus")

    def test_metadata_records_per_basis_depths(self, surface_code_d3):
        schedule = x_then_z_schedule(surface_code_d3)
        assert schedule.metadata["x_depth"] == 4
        assert schedule.metadata["z_depth"] == 4

    def test_max_parallelism_counts_largest_slice(self, surface_code_d3):
        schedule = x_then_z_schedule(surface_code_d3)
        assert schedule.max_parallelism >= 2

    def test_gates_for_stabilizer(self, surface_code_d3):
        schedule = x_then_z_schedule(surface_code_d3)
        gates = schedule.gates_for_stabilizer(0)
        assert len(gates) == len(surface_code_d3.x_stabilizer_support(0))
        timeslices = [t for t, _ in gates]
        assert len(set(timeslices)) == len(timeslices)


class TestParallelismBound:
    def test_speedup_greater_than_one(self, bb_72):
        bound = parallelism_bound(bb_72)
        assert bound["speedup"] > 10

    def test_speedup_grows_with_code_size(self):
        small = parallelism_bound(bivariate_bicycle_code("[[72,12,6]]"))
        large = parallelism_bound(bivariate_bicycle_code("[[144,12,12]]"))
        assert large["speedup"] > small["speedup"]

    def test_edge_colorable_codes_report_interleaved_numbers(self, hgp_225):
        bound = parallelism_bound(hgp_225)
        assert "interleaved_speedup" in bound
        assert bound["interleaved_speedup"] >= bound["speedup"]

    def test_surface_code_speedup_matches_counts(self):
        code = surface_code(5)
        bound = parallelism_bound(code)
        assert bound["serial_depth"] == code.total_cnot_count
        assert bound["parallel_depth"] == 8
