"""Tests for the vectorized Pauli-frame simulator."""

from __future__ import annotations

import numpy as np

from repro.circuits import Circuit
from repro.sim import FrameSimulator
from repro.sim.frame import FaultInjection


def _simple_parity_circuit(measure_flip: float = 0.0) -> Circuit:
    """Two data qubits checked by one ancilla (repetition-code style)."""
    circuit = Circuit()
    circuit.append("R", [0, 1, 2])
    circuit.append("CX", [0, 2, 1, 2][0:2])
    circuit.append("CX", [1, 2])
    circuit.measure(2, flip_probability=measure_flip)
    circuit.detector([0])
    return circuit


class TestDeterministicPropagation:
    def test_clean_circuit_triggers_nothing(self):
        result = FrameSimulator(_simple_parity_circuit(), seed=0).sample(100)
        assert not result.detectors.any()

    def test_x_error_on_data_flips_parity_check(self):
        circuit = Circuit()
        circuit.append("R", [0, 1, 2])
        circuit.append("X_ERROR", [0], 1.0)
        circuit.append("CX", [0, 2])
        circuit.append("CX", [1, 2])
        circuit.measure(2)
        circuit.detector([0])
        result = FrameSimulator(circuit, seed=0).sample(50)
        assert result.detectors.all()

    def test_z_error_invisible_to_z_measurement(self):
        circuit = Circuit()
        circuit.append("R", [0])
        circuit.append("Z_ERROR", [0], 1.0)
        circuit.measure(0)
        circuit.detector([0])
        result = FrameSimulator(circuit, seed=0).sample(20)
        assert not result.detectors.any()

    def test_z_error_flips_x_measurement(self):
        circuit = Circuit()
        circuit.append("RX", [0])
        circuit.append("Z_ERROR", [0], 1.0)
        circuit.measure(0, basis="X")
        circuit.detector([0])
        result = FrameSimulator(circuit, seed=0).sample(20)
        assert result.detectors.all()

    def test_hadamard_exchanges_x_and_z(self):
        circuit = Circuit()
        circuit.append("R", [0])
        circuit.append("Z_ERROR", [0], 1.0)
        circuit.append("H", [0])
        circuit.measure(0)
        circuit.detector([0])
        result = FrameSimulator(circuit, seed=0).sample(10)
        assert result.detectors.all()

    def test_reset_clears_errors(self):
        circuit = Circuit()
        circuit.append("R", [0])
        circuit.append("X_ERROR", [0], 1.0)
        circuit.append("R", [0])
        circuit.measure(0)
        circuit.detector([0])
        result = FrameSimulator(circuit, seed=0).sample(10)
        assert not result.detectors.any()

    def test_cx_propagates_x_from_control_to_target(self):
        circuit = Circuit()
        circuit.append("R", [0, 1])
        circuit.append("X_ERROR", [0], 1.0)
        circuit.append("CX", [0, 1])
        circuit.measure([0, 1])
        circuit.detector([0])
        circuit.detector([1])
        result = FrameSimulator(circuit, seed=0).sample(10)
        assert result.detectors.all()

    def test_cx_propagates_z_from_target_to_control(self):
        circuit = Circuit()
        circuit.append("RX", [0, 1])
        circuit.append("Z_ERROR", [1], 1.0)
        circuit.append("CX", [0, 1])
        circuit.measure([0, 1], basis="X")
        circuit.detector([0])
        circuit.detector([1])
        result = FrameSimulator(circuit, seed=0).sample(10)
        assert result.detectors.all()

    def test_observable_accumulates_parity(self):
        circuit = Circuit()
        circuit.append("R", [0, 1])
        circuit.append("X_ERROR", [0], 1.0)
        circuit.append("X_ERROR", [1], 1.0)
        circuit.measure([0, 1])
        circuit.observable_include([0, 1], observable=0)
        result = FrameSimulator(circuit, seed=0).sample(10)
        # Two flips cancel in the parity.
        assert not result.observables.any()


class TestStochasticChannels:
    def test_x_error_rate_statistics(self):
        circuit = Circuit()
        circuit.append("R", [0])
        circuit.append("X_ERROR", [0], 0.3)
        circuit.measure(0)
        circuit.detector([0])
        result = FrameSimulator(circuit, seed=42).sample(20_000)
        rate = result.detectors.mean()
        assert 0.27 < rate < 0.33

    def test_measurement_flip_statistics(self):
        circuit = _simple_parity_circuit(measure_flip=0.2)
        result = FrameSimulator(circuit, seed=7).sample(20_000)
        rate = result.detectors.mean()
        assert 0.17 < rate < 0.23

    def test_depolarize1_rate_split(self):
        circuit = Circuit()
        circuit.append("R", [0])
        circuit.append("DEPOLARIZE1", [0], 0.3)
        circuit.measure(0)
        circuit.detector([0])
        result = FrameSimulator(circuit, seed=11).sample(30_000)
        # Only X and Y components (2/3 of events) flip a Z measurement.
        rate = result.detectors.mean()
        assert 0.17 < rate < 0.23

    def test_depolarize2_marginal_rate(self):
        circuit = Circuit()
        circuit.append("R", [0, 1])
        circuit.append("DEPOLARIZE2", [0, 1], 0.15)
        circuit.measure([0, 1])
        circuit.detector([0])
        result = FrameSimulator(circuit, seed=13).sample(30_000)
        # 8 of 15 two-qubit Paulis put X or Y on the first qubit.
        expected = 0.15 * 8 / 15
        rate = result.detectors.mean()
        assert abs(rate - expected) < 0.015

    def test_pauli_channel_1_z_only(self):
        circuit = Circuit()
        circuit.append("RX", [0])
        circuit.append("PAULI_CHANNEL_1", [0], arguments=(0.0, 0.0, 0.25))
        circuit.measure(0, basis="X")
        circuit.detector([0])
        result = FrameSimulator(circuit, seed=17).sample(20_000)
        assert 0.22 < result.detectors.mean() < 0.28

    def test_seed_reproducibility(self):
        circuit = _simple_parity_circuit(measure_flip=0.1)
        a = FrameSimulator(circuit, seed=5).sample(500)
        b = FrameSimulator(circuit, seed=5).sample(500)
        assert np.array_equal(a.detectors, b.detectors)


class TestFaultInjection:
    def test_injected_fault_hits_only_its_shot(self):
        circuit = _simple_parity_circuit()
        faults = [
            FaultInjection(instruction_index=1, shot=1, x_flips=(0,)),
        ]
        result = FrameSimulator(circuit).propagate_faults(faults, shots=3)
        assert not result.detectors[0].any()
        assert result.detectors[1].any()
        assert not result.detectors[2].any()

    def test_measurement_flip_injection(self):
        circuit = _simple_parity_circuit()
        measure_index = next(
            i for i, ins in enumerate(circuit.instructions) if ins.name == "M"
        )
        faults = [FaultInjection(instruction_index=measure_index, shot=0,
                                 measurement_flip=2)]
        result = FrameSimulator(circuit).propagate_faults(faults, shots=1)
        assert result.detectors[0, 0]

    def test_sample_result_counts(self):
        circuit = _simple_parity_circuit(measure_flip=0.5)
        result = FrameSimulator(circuit, seed=3).sample(64)
        assert result.shots == 64
        assert 0 <= result.logical_error_count() <= 64
