"""Tests for the CSSCode representation (parameters, logicals, syndromes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codes import CSSCode, repetition_quantum_code, surface_code


def steane_code() -> CSSCode:
    """The [[7,1,3]] Steane code (Hamming checks in both bases)."""
    hamming = np.array([
        [1, 0, 1, 0, 1, 0, 1],
        [0, 1, 1, 0, 0, 1, 1],
        [0, 0, 0, 1, 1, 1, 1],
    ], dtype=np.uint8)
    return CSSCode(hx=hamming, hz=hamming, name="steane", distance=3)


class TestConstruction:
    def test_rejects_non_commuting_checks(self):
        hx = [[1, 1, 0]]
        hz = [[1, 0, 0]]
        with pytest.raises(ValueError):
            CSSCode(hx=hx, hz=hz)

    def test_rejects_mismatched_columns(self):
        with pytest.raises(ValueError):
            CSSCode(hx=[[1, 1]], hz=[[1, 1, 0]])

    def test_accepts_empty_x_sector(self, repetition_code_d3):
        assert repetition_code_d3.num_x_stabilizers == 0
        assert repetition_code_d3.num_z_stabilizers == 2


class TestParameters:
    def test_steane_parameters(self):
        code = steane_code()
        assert code.parameters == (7, 1, 3)
        assert code.num_stabilizers == 6

    def test_surface_code_parameters(self, surface_code_d3):
        assert surface_code_d3.parameters == (9, 1, 3)
        assert surface_code_d3.num_x_stabilizers == 4
        assert surface_code_d3.num_z_stabilizers == 4

    def test_repetition_parameters(self, repetition_code_d3):
        assert repetition_code_d3.parameters == (3, 1, 3)

    def test_weight_statistics(self, surface_code_d3):
        assert surface_code_d3.max_x_weight == 4
        assert surface_code_d3.max_z_weight == 4
        assert surface_code_d3.total_cnot_count == 24

    def test_max_qubit_degree(self, surface_code_d3):
        assert 2 <= surface_code_d3.max_qubit_degree <= 4


class TestStabilizerSupports:
    def test_supports_match_parity_check(self):
        code = steane_code()
        for i in range(code.num_x_stabilizers):
            support = code.x_stabilizer_support(i)
            assert all(code.hx[i, q] == 1 for q in support)
            assert len(support) == code.hx[i].sum()

    def test_supports_list_orders_x_first(self, surface_code_d3):
        supports = surface_code_d3.stabilizer_supports()
        assert len(supports) == 8
        assert all(basis == "X" for basis, _ in supports[:4])
        assert all(basis == "Z" for basis, _ in supports[4:])


class TestLogicalOperators:
    @pytest.mark.parametrize("factory", [
        steane_code,
        lambda: surface_code(3),
        lambda: repetition_quantum_code(5),
    ])
    def test_logicals_verify(self, factory):
        assert factory().verify_logical_operators()

    def test_logical_count_matches_k(self, bb_72):
        assert bb_72.logical_x.shape[0] == 12
        assert bb_72.logical_z.shape[0] == 12

    def test_logical_anticommutation_structure(self):
        code = steane_code()
        pairing = (code.logical_x @ code.logical_z.T) % 2
        # For k=1 there is a single pair and it must anticommute.
        assert pairing.shape == (1, 1)
        assert pairing[0, 0] == 1


class TestSyndromesAndLogicalErrors:
    def test_single_qubit_error_syndrome(self, surface_code_d3):
        error = np.zeros(9, dtype=np.uint8)
        error[4] = 1  # central qubit
        syndrome = surface_code_d3.z_syndrome(error)
        assert syndrome.sum() >= 1

    def test_stabilizer_is_not_logical_error(self, surface_code_d3):
        stabilizer = surface_code_d3.hz[0]
        assert not surface_code_d3.is_z_logical_error(stabilizer)
        stabilizer_x = surface_code_d3.hx[0]
        assert not surface_code_d3.is_x_logical_error(stabilizer_x)

    def test_logical_operator_is_logical_error(self, surface_code_d3):
        logical_z = surface_code_d3.logical_z[0]
        assert surface_code_d3.is_x_logical_error(
            surface_code_d3.logical_x[0]
        ) or surface_code_d3.is_z_logical_error(logical_z)

    def test_distance_estimate_at_most_weight_of_logical(self, surface_code_d3):
        assert surface_code_d3.estimate_distance(trials=200) <= \
            surface_code_d3.logical_z.sum(axis=1).max()
        assert surface_code_d3.estimate_distance(trials=200) >= 1


class TestMisc:
    def test_with_name(self, surface_code_d3):
        renamed = surface_code_d3.with_name("my-surface")
        assert renamed.name == "my-surface"
        assert renamed.parameters == surface_code_d3.parameters

    def test_repr_contains_parameters(self, surface_code_d3):
        assert "[[9,1,3]]" in repr(surface_code_d3)
