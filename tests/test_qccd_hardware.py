"""Tests for the QCCD timing model, device graph and topology builders."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import code_by_name, surface_code
from repro.qccd import (
    OperationTimes,
    SwapKind,
    baseline_grid_device,
    alternate_grid_device,
    mesh_junction_device,
    opt_device,
    pseudo_opt_device,
    ring_device,
)


class TestOperationTimes:
    def test_paper_defaults(self, default_times):
        assert default_times.split == 80.0
        assert default_times.merge == 80.0
        assert default_times.move == 10.0
        assert default_times.junction_crossing(2) == 10.0
        assert default_times.junction_crossing(3) == 100.0
        assert default_times.junction_crossing(4) == 120.0

    def test_gate_time_constant_up_to_threshold(self, default_times):
        assert default_times.two_qubit_gate(2) == \
            default_times.two_qubit_gate(12)

    def test_gate_time_grows_quadratically_beyond_threshold(self, default_times):
        base = default_times.two_qubit_gate(12)
        assert default_times.two_qubit_gate(24) == pytest.approx(base * 4)

    def test_gate_swap_is_three_cx(self, default_times):
        assert default_times.gate_swap(4) == \
            pytest.approx(3 * default_times.two_qubit_gate(4))

    def test_ion_swap_formula(self, default_times):
        distance = 3
        expected = 80.0 * distance + 80.0 * (distance - 1) + 42.0
        assert default_times.ion_swap(distance) == pytest.approx(expected)

    def test_swap_dispatch_by_kind(self):
        gate = OperationTimes(swap_kind=SwapKind.GATE_SWAP)
        ion = OperationTimes(swap_kind=SwapKind.ION_SWAP)
        assert gate.swap(chain_length=4) == gate.gate_swap(4)
        assert ion.swap(interaction_distance=2) == ion.ion_swap(2)

    def test_uniform_improvement_scales_everything(self):
        faster = OperationTimes(improvement_factor=0.5)
        assert faster.split == 40.0
        assert faster.two_qubit_gate(2) == 50.0
        assert faster.junction_crossing(4) == 60.0

    def test_junction_improvement_only_touches_junctions(self):
        faster = OperationTimes(junction_improvement_factor=0.7)
        assert faster.junction_crossing(4) == pytest.approx(36.0)
        assert faster.split == 80.0

    def test_combined_shuttle(self, default_times):
        assert default_times.combined_shuttle == pytest.approx(80 + 10 + 10 + 80)

    def test_invalid_improvement_rejected(self):
        with pytest.raises(ValueError):
            OperationTimes(improvement_factor=1.0)
        with pytest.raises(ValueError):
            OperationTimes(junction_improvement_factor=-0.1)

    @given(st.floats(0.0, 0.95), st.integers(2, 40))
    @settings(max_examples=50, deadline=None)
    def test_improvement_never_increases_times(self, factor, chain):
        slow = OperationTimes()
        fast = OperationTimes(improvement_factor=factor)
        assert fast.two_qubit_gate(chain) <= slow.two_qubit_gate(chain)
        assert fast.combined_shuttle <= slow.combined_shuttle


class TestDeviceModel:
    def test_baseline_grid_counts(self):
        device = baseline_grid_device(num_data_qubits=9, trap_capacity=3)
        assert device.num_traps == 9
        assert device.num_junctions == 3 * 4
        assert device.validate_degrees()
        assert device.dac_count == 9

    def test_alternate_grid_l_shaped_crossings(self):
        device = alternate_grid_device(num_data_qubits=9, trap_capacity=3)
        for junction in device.junction_ids():
            assert device.junction_crossing_degree(junction) == 2

    def test_ring_device_structure(self):
        device = ring_device(num_traps=8, trap_capacity=4)
        assert device.num_traps == 8
        assert device.num_junctions == 4
        assert device.validate_degrees()
        assert device.dac_count == 1

    def test_ring_single_trap(self):
        device = ring_device(num_traps=1, trap_capacity=10)
        assert device.num_traps == 1
        assert device.num_segments == 0

    def test_mesh_junction_quadratic_junction_count(self):
        device = mesh_junction_device(num_data_qubits=16, trap_capacity=2)
        side = device.metadata["mesh_side"]
        assert device.num_junctions == side * side
        assert device.num_traps == 16

    def test_opt_device_is_fully_connected(self):
        code = surface_code(3)
        device = opt_device(code)
        assert device.num_traps == 9
        assert device.num_segments == 9 * 8 // 2
        assert not device.validate_degrees()  # intentionally unrealizable

    def test_pseudo_opt_prunes_unused_edges(self):
        code = surface_code(3)
        full = opt_device(code)
        pruned = pseudo_opt_device(code)
        assert pruned.num_segments < full.num_segments

    def test_ion_placement_and_capacity(self):
        device = ring_device(num_traps=3, trap_capacity=2)
        traps = device.trap_ids()
        device.place_ion(0, traps[0])
        device.place_ion(1, traps[0])
        with pytest.raises(ValueError):
            device.place_ion(2, traps[0])
        device.place_ion(2, traps[1])
        assert device.occupancy(traps[0]) == 2
        assert device.free_space(traps[1]) == 1
        assert device.ion_location(2) == traps[1]

    def test_moving_an_ion_updates_occupancy(self):
        device = ring_device(num_traps=2, trap_capacity=3)
        first, second = device.trap_ids()
        device.place_ion(7, first)
        device.place_ion(7, second)
        assert device.occupancy(first) == 0
        assert device.occupancy(second) == 1

    def test_shortest_path_goes_through_junctions(self):
        device = baseline_grid_device(num_data_qubits=9, trap_capacity=3)
        path = device.shortest_path("T0,0", "T2,2")
        assert path[0] == "T0,0"
        assert path[-1] == "T2,2"
        assert any(device.is_junction(node) for node in path[1:-1])

    def test_path_helpers(self):
        device = baseline_grid_device(num_data_qubits=9, trap_capacity=3)
        path = device.shortest_path("T0,0", "T0,2")
        degrees = device.path_junction_degrees(path)
        assert all(2 <= d <= 4 for d in degrees)
        intermediate = device.path_intermediate_traps(path)
        assert "T0,0" not in intermediate and "T0,2" not in intermediate

    def test_chain_length_minimum_two(self):
        device = ring_device(num_traps=2, trap_capacity=5)
        trap = device.trap_ids()[0]
        assert device.chain_length(trap) == 2
        device.place_ion(0, trap)
        device.place_ion(1, trap)
        device.place_ion(2, trap)
        assert device.chain_length(trap) == 3

    def test_clear_ions(self):
        device = ring_device(num_traps=2, trap_capacity=5)
        trap = device.trap_ids()[0]
        device.place_ion(0, trap)
        device.clear_ions()
        assert device.occupancy(trap) == 0

    def test_invalid_trap_queries_raise(self):
        device = baseline_grid_device(num_data_qubits=4, trap_capacity=2)
        junction = device.junction_ids()[0]
        with pytest.raises(ValueError):
            device.trap_capacity(junction)
        trap = device.trap_ids()[0]
        with pytest.raises(ValueError):
            device.junction_degree(trap)

    def test_total_capacity_scales_with_device(self):
        small = baseline_grid_device(num_data_qubits=4, trap_capacity=2)
        large = baseline_grid_device(num_data_qubits=16, trap_capacity=2)
        assert large.total_capacity() > small.total_capacity()


class TestTopologySizing:
    def test_grid_side_length_follows_sqrt_n(self, hgp_225):
        device = baseline_grid_device(hgp_225.num_qubits, trap_capacity=5)
        assert device.metadata["side_length"] == 15
        assert device.num_traps == 225

    def test_grid_capacity_fits_code(self, hgp_225):
        device = baseline_grid_device(hgp_225.num_qubits, trap_capacity=5)
        assert device.total_capacity() >= \
            hgp_225.num_qubits + hgp_225.num_stabilizers

    def test_forced_side_length(self):
        device = baseline_grid_device(9, trap_capacity=3, side_length=5)
        assert device.num_traps == 25

    def test_mesh_traps_attach_to_perimeter(self):
        code = code_by_name("surface-d3")
        device = mesh_junction_device(code.num_qubits)
        for trap in device.trap_ids():
            neighbors = list(device.graph.neighbors(trap))
            assert len(neighbors) == 1
            assert device.is_junction(neighbors[0])
