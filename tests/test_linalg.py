"""Unit and property-based tests for the GF(2) linear algebra kernel."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg import (
    gf2_matrix,
    inverse,
    is_in_row_space,
    kernel_intersection_complement,
    nullspace,
    rank,
    row_echelon,
    row_reduce_mod2,
    row_space,
    solve,
)

binary_matrices = arrays(
    np.uint8,
    st.tuples(st.integers(1, 8), st.integers(1, 8)),
    elements=st.integers(0, 1),
)


class TestGF2Matrix:
    def test_coerces_values_mod2(self):
        mat = gf2_matrix([[2, 3], [4, 5]])
        assert mat.tolist() == [[0, 1], [0, 1]]

    def test_promotes_vector_to_row(self):
        assert gf2_matrix([1, 0, 1]).shape == (1, 3)

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError):
            gf2_matrix(np.zeros((2, 2, 2)))

    def test_dtype_is_uint8(self):
        assert gf2_matrix([[1, 0]]).dtype == np.uint8


class TestRowEchelon:
    def test_identity_is_already_reduced(self):
        identity = np.identity(4, dtype=np.uint8)
        echelon, rnk, transform, pivots = row_echelon(identity)
        assert rnk == 4
        assert pivots == [0, 1, 2, 3]
        assert np.array_equal(echelon, identity)
        assert np.array_equal(transform, identity)

    def test_rank_of_dependent_rows(self):
        mat = [[1, 1, 0], [0, 1, 1], [1, 0, 1]]  # row3 = row1 + row2
        assert rank(mat) == 2

    def test_transform_reproduces_echelon(self):
        mat = gf2_matrix([[1, 1, 0, 1], [0, 1, 1, 0], [1, 0, 1, 1]])
        echelon, _, transform, _ = row_echelon(mat, full=True)
        assert np.array_equal((transform @ mat) % 2, echelon)

    def test_zero_matrix(self):
        assert rank(np.zeros((3, 5), dtype=np.uint8)) == 0

    def test_full_reduction_clears_above_pivots(self):
        mat = [[1, 1], [0, 1]]
        reduced = row_reduce_mod2(mat)
        assert reduced.tolist() == [[1, 0], [0, 1]]


class TestNullspace:
    def test_nullspace_dimension(self):
        mat = gf2_matrix([[1, 1, 0], [0, 1, 1]])
        basis = nullspace(mat)
        assert basis.shape == (1, 3)
        assert np.array_equal((mat @ basis.T) % 2, np.zeros((2, 1)))

    def test_full_rank_square_has_trivial_nullspace(self):
        assert nullspace(np.identity(3, dtype=np.uint8)).shape[0] == 0

    def test_zero_matrix_nullspace_is_everything(self):
        basis = nullspace(np.zeros((2, 4), dtype=np.uint8))
        assert basis.shape == (4, 4)
        assert rank(basis) == 4

    @given(binary_matrices)
    @settings(max_examples=60, deadline=None)
    def test_nullspace_vectors_are_in_kernel(self, matrix):
        basis = nullspace(matrix)
        if basis.shape[0]:
            product = (gf2_matrix(matrix) @ basis.T) % 2
            assert not product.any()

    @given(binary_matrices)
    @settings(max_examples=60, deadline=None)
    def test_rank_nullity_theorem(self, matrix):
        matrix = gf2_matrix(matrix)
        assert rank(matrix) + nullspace(matrix).shape[0] == matrix.shape[1]


class TestSolve:
    def test_solves_consistent_system(self):
        mat = gf2_matrix([[1, 1, 0], [0, 1, 1]])
        rhs = np.array([1, 1], dtype=np.uint8)
        solution = solve(mat, rhs)
        assert solution is not None
        assert np.array_equal((mat @ solution) % 2, rhs)

    def test_detects_inconsistent_system(self):
        mat = gf2_matrix([[1, 0], [1, 0]])
        assert solve(mat, [1, 0]) is None

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            solve(gf2_matrix([[1, 0]]), [1, 0])

    @given(binary_matrices, st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_solution_of_reachable_rhs(self, matrix, seed):
        matrix = gf2_matrix(matrix)
        rng = np.random.default_rng(seed)
        x = rng.integers(0, 2, matrix.shape[1], dtype=np.uint8)
        rhs = (matrix @ x) % 2
        solution = solve(matrix, rhs)
        assert solution is not None
        assert np.array_equal((matrix @ solution) % 2, rhs)


class TestInverse:
    def test_inverse_of_identity(self):
        identity = np.identity(3, dtype=np.uint8)
        assert np.array_equal(inverse(identity), identity)

    def test_inverse_roundtrip(self):
        mat = gf2_matrix([[1, 1, 0], [0, 1, 0], [1, 0, 1]])
        inv = inverse(mat)
        assert np.array_equal((inv @ mat) % 2, np.identity(3, dtype=np.uint8))

    def test_singular_raises(self):
        with pytest.raises(ValueError):
            inverse([[1, 1], [1, 1]])

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            inverse([[1, 0, 1]])


class TestRowSpaceMembership:
    def test_row_is_member(self):
        mat = [[1, 0, 1], [0, 1, 1]]
        assert is_in_row_space([1, 1, 0], mat)

    def test_non_member(self):
        mat = [[1, 0, 1], [0, 1, 1]]
        assert not is_in_row_space([1, 0, 0], mat)

    def test_row_space_basis_has_rank_rows(self):
        mat = [[1, 1, 0], [1, 1, 0], [0, 0, 1]]
        assert row_space(mat).shape[0] == 2


class TestKernelComplement:
    def test_repetition_code_logicals(self):
        # Z checks of the 3-qubit repetition code; X stabilizer group empty.
        hz = [[1, 1, 0], [0, 1, 1]]
        hx = np.zeros((0, 3), dtype=np.uint8)
        logicals = kernel_intersection_complement(hx, hz)
        assert logicals.shape == (1, 3)
        assert not ((gf2_matrix(hz) @ logicals.T) % 2).any()

    def test_complement_is_independent_of_stabilizers(self):
        hx = [[1, 1, 1, 1, 0, 0], [0, 0, 1, 1, 1, 1]]
        hz = [[1, 1, 0, 0, 1, 1]]
        logicals = kernel_intersection_complement(hx, hz)
        for row in logicals:
            assert not is_in_row_space(row, hx)
