"""Smoke tests for the example scripts.

The examples double as documentation; these tests keep them importable
and run the cheapest one end to end so API drift is caught by CI.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load_module(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_has_at_least_three_scripts():
    assert len(EXAMPLE_FILES) >= 3


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_defines_main(path):
    module = _load_module(path)
    assert callable(getattr(module, "main", None))
    assert module.__doc__


def test_custom_code_example_runs(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["custom_code_and_hardware.py"])
    module = _load_module(EXAMPLES_DIR / "custom_code_and_hardware.py")
    module.main()
    output = capsys.readouterr().out
    assert "Custom code" in output
    assert "LER" in output
