"""Multi-host coordination suite: leases, liveness, merge, joined runs.

The claims under test, layer by layer:

* the store's lease fold — claim/renew/release/abandon resolve in file
  order with monotonic epochs, so every reader agrees who owns what;
* incremental :meth:`ResultStore.refresh` — a long-lived store instance
  sees other processes' appends without re-reading the file, and
  multi-writer torn tails stay isolated;
* concurrent appends — records under ``PIPE_BUF`` written through
  ``O_APPEND`` handles never interleave bytes (exercised with real
  processes *and* a hypothesis schedule over in-process ``O_APPEND``
  file descriptors), and :func:`merge_stores` is permutation-invariant;
* :class:`JoinedCampaign` — N step-driven workers partition one budget,
  conserve sampled+replayed+reused shots globally, survive mid-lease
  death / suppressed heartbeats / duplicate-claim races, and always
  render tables byte-identical to a single joined worker.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import (
    CampaignSpec,
    JoinedCampaign,
    LeaseLost,
    LeaseManager,
    ResultStore,
    WorkerIdentity,
    merge_stores,
    repair_store,
    run_campaign,
    verify_store,
)
from repro.parallel.faults import FaultPlan, InjectedFault, activate


def tiny_spec(budget: int = 400, seed: int = 3) -> CampaignSpec:
    return CampaignSpec.from_dict({
        "name": "tiny_join",
        "budget": budget,
        "seed": seed,
        "sweeps": [{
            "name": "tiny_repetition",
            "code": "repetition-d3",
            "kind": "physical_error",
            "codesign": "cyclone",
            "physical_error_rates": [5e-3, 2e-2],
            "target": {"half_width": 0.03},
            "rounds": 2,
            "pilot_shots": 32,
            "shard_shots": 64,
        }],
    })


def render(result) -> str:
    return ("\n\n".join(table.to_text() for table in result.tables)
            + "\n" + result.summary_table().to_text())


def identity(label: str) -> WorkerIdentity:
    return WorkerIdentity(host=label, pid=1, token="feed" + label[-4:])


class Clock:
    """An injectable, manually advanced clock for expiry tests."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
class TestWorkerIdentity:
    def test_generate_and_str(self):
        worker = WorkerIdentity.generate()
        assert worker.pid == os.getpid()
        host, pid, token = str(worker).split(":")
        assert host and token
        assert int(pid) == worker.pid

    def test_generate_label_overrides_host(self):
        assert WorkerIdentity.generate(label="blue").host == "blue"

    def test_parse_full_triple_round_trips(self):
        worker = WorkerIdentity(host="h", pid=42, token="abcd1234")
        assert WorkerIdentity.parse(str(worker)) == worker

    def test_parse_label_generates_fresh_identity(self):
        worker = WorkerIdentity.parse("ci-worker-1")
        assert worker.host == "ci-worker-1"
        assert worker.pid == os.getpid()

    def test_tokens_disambiguate_pid_reuse(self):
        assert WorkerIdentity.generate() != WorkerIdentity.generate()


# ----------------------------------------------------------------------
class TestLeaseFold:
    """The store's file-order lease fold, driven record by record."""

    def _claim(self, store, key, worker, epoch, ttl=10.0, ts=0.0):
        store.append_lease({"type": "claim", "key": key, "worker": worker,
                            "epoch": epoch, "ttl": ttl, "ts": ts})

    def test_claim_then_release(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        self._claim(store, "k", "a:1:x", 0, ts=5.0)
        store.refresh()
        lease = store.lease_for("k")
        assert lease.worker == "a:1:x" and lease.epoch == 0
        assert lease.live(14.9) and not lease.live(15.0)
        store.append_lease({"type": "release", "key": "k",
                            "worker": "a:1:x", "epoch": 0, "ts": 6.0})
        store.refresh()
        assert store.lease_for("k").released

    def test_first_claim_in_file_order_wins(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        self._claim(store, "k", "a:1:x", 0)
        self._claim(store, "k", "b:2:y", 0)
        store.refresh()
        assert store.lease_for("k").worker == "a:1:x"

    def test_higher_epoch_supersedes(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        self._claim(store, "k", "a:1:x", 0)
        self._claim(store, "k", "b:2:y", 1)
        store.refresh()
        lease = store.lease_for("k")
        assert lease.worker == "b:2:y" and lease.epoch == 1

    def test_renew_extends_only_for_owner_at_epoch(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        self._claim(store, "k", "a:1:x", 0, ttl=10.0, ts=0.0)
        store.append_lease({"type": "renew", "key": "k", "worker": "a:1:x",
                            "epoch": 0, "ts": 8.0})
        # A stale heartbeat from the wrong epoch/worker is inert.
        store.append_lease({"type": "renew", "key": "k", "worker": "b:2:y",
                            "epoch": 0, "ts": 50.0})
        store.append_lease({"type": "renew", "key": "k", "worker": "a:1:x",
                            "epoch": 7, "ts": 50.0})
        store.refresh()
        assert store.lease_for("k").renewed_at == 8.0

    def test_usurped_owners_stale_renew_is_inert(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        self._claim(store, "k", "a:1:x", 0, ts=0.0)
        self._claim(store, "k", "b:2:y", 1, ts=20.0)
        store.append_lease({"type": "renew", "key": "k", "worker": "a:1:x",
                            "epoch": 0, "ts": 21.0})
        store.refresh()
        lease = store.lease_for("k")
        assert lease.worker == "b:2:y"
        assert lease.renewed_at == 20.0

    def test_abandon_marks_released_and_abandoned(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        self._claim(store, "k", "a:1:x", 0)
        store.append_lease({"type": "abandon", "key": "k",
                            "worker": "a:1:x", "epoch": 0, "ts": 1.0})
        store.refresh()
        lease = store.lease_for("k")
        assert lease.released and lease.abandoned

    def test_lease_events_never_shadow_result_records(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append({"key": "k", "failures": 1, "shots": 10})
        self._claim(store, "k", "a:1:x", 0)
        store.refresh()
        assert store.get("k")["shots"] == 10
        assert store.lease_for("k") is not None

    def test_epoch_aware_result_last_wins(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append({"key": "k", "failures": 1, "shots": 10, "epoch": 2})
        store.append({"key": "k", "failures": 9, "shots": 90, "epoch": 1})
        assert store.get("k")["shots"] == 10  # stale epoch never wins
        store.append({"key": "k", "failures": 2, "shots": 20, "epoch": 2})
        assert store.get("k")["shots"] == 20  # equal epoch: last wins
        reloaded = ResultStore(store.path)
        assert reloaded.get("k")["shots"] == 20

    def test_torn_lease_record_is_skipped(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        self._claim(store, "k", "a:1:x", 0)
        with store.path.open("a") as handle:
            handle.write('{"type": "claim", "key": "k", "wor')
        reloaded = ResultStore(store.path)
        assert reloaded.skipped_lines == 1
        assert reloaded.lease_for("k").worker == "a:1:x"

    def test_malformed_lease_record_counted_skipped(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        path = store.path
        path.write_text(json.dumps({"type": "claim", "key": "k",
                                    "worker": "a", "epoch": "NaN?",
                                    "ts": "x", "version": 1}) + "\n")
        reloaded = ResultStore(path)
        assert reloaded.skipped_lines == 1
        assert reloaded.lease_for("k") is None

    def test_append_lease_validates(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        with pytest.raises(ValueError, match="worker"):
            store.append_lease({"type": "claim", "key": "k", "epoch": 0,
                                "ts": 0.0})
        with pytest.raises(ValueError, match="lease type"):
            store.append_lease({"type": "grab", "key": "k", "worker": "a",
                                "epoch": 0, "ts": 0.0})


# ----------------------------------------------------------------------
class TestStoreRefresh:
    def test_refresh_sees_other_instances_appends(self, tmp_path):
        path = tmp_path / "s.jsonl"
        mine = ResultStore(path)
        other = ResultStore(path)
        other.append({"key": "a", "failures": 1, "shots": 10})
        assert "a" not in mine
        assert mine.refresh() == 1
        assert mine.get("a")["shots"] == 10

    def test_refresh_is_noop_when_unchanged(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append({"key": "a", "failures": 1, "shots": 10})
        other = ResultStore(store.path)
        assert other.refresh() == 0
        assert other.refresh() == 0

    def test_refresh_after_external_torn_tail(self, tmp_path):
        path = tmp_path / "s.jsonl"
        mine = ResultStore(path)
        with path.open("a") as handle:
            handle.write('{"key": "torn", "fail')
        mine.refresh()
        assert mine.skipped_lines == 1
        # A third writer repairs the tail with a leading newline; the
        # fragment becomes one complete corrupt line — still counted
        # exactly once.
        other = ResultStore(path)
        other.append({"key": "b", "failures": 0, "shots": 5})
        assert mine.refresh() == 1
        assert mine.skipped_lines == 1
        assert mine.get("b")["shots"] == 5

    def test_own_append_probes_tail_not_cached_state(self, tmp_path):
        """A rival's torn tail appearing *after* our load must not make
        our next append concatenate onto it."""
        path = tmp_path / "s.jsonl"
        mine = ResultStore(path)
        mine.append({"key": "a", "failures": 1, "shots": 10})
        with path.open("a") as handle:
            handle.write('{"key": "torn", "fail')
        mine.append({"key": "b", "failures": 0, "shots": 5})
        final = ResultStore(path)
        assert final.skipped_lines == 1
        assert "a" in final and "b" in final and "torn" not in final

    def test_shrunk_file_triggers_full_reload(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.append({"key": "a", "failures": 1, "shots": 10})
        store.append({"key": "b", "failures": 2, "shots": 20})
        store.refresh()  # advance the read cursor past our own appends
        path.write_text("")  # truncated underneath us
        store.refresh()
        assert len(store) == 0 and store.lease_for("a") is None

    def test_refresh_missing_file(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        assert store.refresh() == 0

    def test_lease_appends_not_applied_locally(self, tmp_path):
        """Race correctness hinges on folding lease events in *file*
        order — a worker must never trust its own append before
        refreshing."""
        store = ResultStore(tmp_path / "s.jsonl")
        store.append_lease({"type": "claim", "key": "k", "worker": "me",
                            "epoch": 0, "ttl": 5.0, "ts": 0.0})
        assert store.lease_for("k") is None
        store.refresh()
        assert store.lease_for("k").worker == "me"


# ----------------------------------------------------------------------
def _writer_process(path: str, worker: int, count: int) -> None:
    store = ResultStore(path)
    for index in range(count):
        store.append({"key": f"w{worker}-r{index}", "failures": worker,
                      "shots": index, "writer": worker})


class TestConcurrentAppends:
    def test_three_processes_never_interleave(self, tmp_path):
        """Real concurrent appenders: every record lands whole."""
        path = tmp_path / "shared.jsonl"
        count = 40
        processes = [
            multiprocessing.Process(target=_writer_process,
                                    args=(str(path), worker, count))
            for worker in range(3)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0
        store = ResultStore(path)
        assert store.skipped_lines == 0
        assert len(store) == 3 * count
        for worker in range(3):
            for index in range(count):
                assert store.get(f"w{worker}-r{index}")["shots"] == index

    @given(schedule=st.lists(st.integers(min_value=0, max_value=2),
                             min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_o_append_schedule_never_tears(self, tmp_path_factory, schedule):
        """Any interleaving of single-write appends through separate
        ``O_APPEND`` descriptors (the kernel semantics the store relies
        on; each record far under ``PIPE_BUF``) yields a store with
        every record intact.  In-process so hypothesis can drive the
        schedule; the real-process version is the test above."""
        path = tmp_path_factory.mktemp("oappend") / "s.jsonl"
        fds = [os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
               for _ in range(3)]
        try:
            counters = [0, 0, 0]
            for writer in schedule:
                record = {"key": f"w{writer}-r{counters[writer]}",
                          "failures": 0, "shots": counters[writer],
                          "version": 1}
                line = (json.dumps(record, sort_keys=True) + "\n").encode()
                assert len(line) < 512  # PIPE_BUF is at least 512
                assert os.write(fds[writer], line) == len(line)
                counters[writer] += 1
        finally:
            for fd in fds:
                os.close(fd)
        store = ResultStore(path)
        assert store.skipped_lines == 0
        assert len(store) == len(set(
            f"w{writer}-r{index}" for writer in range(3)
            for index in range(counters[writer])))

    @given(permutation=st.permutations(list(range(4))))
    @settings(max_examples=24, deadline=None)
    def test_merge_is_permutation_invariant(self, tmp_path_factory,
                                            permutation):
        """Folding the same per-host stores in any order produces a
        byte-identical merged file (last-wins resolution is a function
        of record *content*, never of input order)."""
        base = tmp_path_factory.mktemp("merge")
        stores = []
        for host in range(4):
            store = ResultStore(base / f"host{host}.jsonl")
            store.append({"key": f"only-{host}", "failures": host,
                          "shots": 10 + host,
                          "params": {"sweep_index": 0,
                                     "point_index": host}})
            # Shared key: host 3's higher epoch must win everywhere.
            store.append({"key": "shared", "failures": host,
                          "shots": 100 + host, "epoch": host,
                          "params": {"sweep_index": 0, "point_index": 9}})
            store.append_lease({"type": "claim", "key": "shared",
                                "worker": f"h{host}:1:x", "epoch": host,
                                "ttl": 5.0, "ts": 0.0})
            stores.append(store.path)
        reference = base / "reference.jsonl"
        merge_stores(stores, reference)
        permuted = base / "permuted.jsonl"
        report = merge_stores([stores[index] for index in permutation],
                              permuted)
        assert permuted.read_bytes() == reference.read_bytes()
        assert report["conflicts"] == []
        merged = ResultStore(permuted)
        assert merged.get("shared")["epoch"] == 3
        assert len(merged.leases()) == 0


# ----------------------------------------------------------------------
class TestLeaseManager:
    def _pair(self, tmp_path, ttl=10.0):
        clock = Clock()
        path = tmp_path / "s.jsonl"
        a = LeaseManager(ResultStore(path), identity("aaaa"), ttl,
                         clock=clock)
        b = LeaseManager(ResultStore(path), identity("bbbb"), ttl,
                         clock=clock)
        return a, b, clock

    def test_claim_conflict_resolved_by_file_order(self, tmp_path):
        a, b, _ = self._pair(tmp_path)
        assert a.claim(["k"]) == ["k"]
        b.store.refresh()
        assert b.claim(["k"]) == []
        assert "k" in a.held and "k" not in b.held

    def test_expired_lease_reclaimed_at_higher_epoch(self, tmp_path):
        a, b, clock = self._pair(tmp_path, ttl=10.0)
        assert a.claim(["k"]) == ["k"]
        clock.advance(11.0)
        b.store.refresh()
        assert b.claim(["k"]) == ["k"]
        assert b.held["k"] == 1
        assert b.reclaims == 1

    def test_renew_keeps_lease_alive(self, tmp_path):
        a, b, clock = self._pair(tmp_path, ttl=10.0)
        a.claim(["k"])
        clock.advance(8.0)
        assert a.renew() == []
        clock.advance(8.0)  # 16s total, but renewed at 8s -> live to 18s
        b.store.refresh()
        assert b.claim(["k"]) == []

    def test_usurped_worker_detects_loss_via_heartbeat(self, tmp_path):
        a, b, clock = self._pair(tmp_path, ttl=10.0)
        a.claim(["k"])
        clock.advance(11.0)
        b.store.refresh()
        assert b.claim(["k"]) == ["k"]
        with pytest.raises(LeaseLost):
            a.heartbeat("k")
        assert "k" not in a.held

    def test_release_makes_key_claimable_immediately(self, tmp_path):
        a, b, _ = self._pair(tmp_path)
        a.claim(["k"])
        a.release("k")
        b.store.refresh()
        assert b.claim(["k"]) == ["k"]
        assert b.held["k"] == 1

    def test_abandon_all(self, tmp_path):
        a, b, _ = self._pair(tmp_path)
        a.claim(["k1", "k2"])
        a.abandon_all()
        assert a.held == {}
        b.store.refresh()
        assert sorted(b.claim(["k1", "k2"])) == ["k1", "k2"]

    def test_suppressed_heartbeats_skip_renewal_but_detect_loss(
            self, tmp_path):
        a, b, clock = self._pair(tmp_path, ttl=10.0)
        a.claim(["k"])
        with activate(FaultPlan(suppress_heartbeats=True)):
            clock.advance(8.0)
            assert a.renew() == []  # nothing appended, still owner
            clock.advance(3.0)  # expired: never actually renewed
            b.store.refresh()
            assert b.claim(["k"]) == ["k"]
            assert a.renew() == ["k"]  # the silenced owner finds out

    def test_duplicate_claim_fault_loses_race_then_expires(self, tmp_path):
        a, b, clock = self._pair(tmp_path, ttl=10.0)
        with activate(FaultPlan(duplicate_claim=0)):
            assert a.claim(["k"]) == []  # phantom rival won by file order
        lease = a.store.lease_for("k")
        assert lease.worker == "phantom:0:deadbeef"
        clock.advance(11.0)  # the phantom never renews
        b.store.refresh()
        assert b.claim(["k"]) == ["k"]
        assert b.held["k"] == 1

    def test_kill_after_claims_fires_with_leases_live(self, tmp_path):
        a, b, clock = self._pair(tmp_path, ttl=10.0)
        with activate(FaultPlan(kill_after_claims=1)):
            with pytest.raises(InjectedFault, match="killed after 1"):
                a.claim(["k1", "k2"])
        assert a.held == {}  # died before learning it won
        b.store.refresh()
        assert b.claim(["k1"]) == []  # orphaned lease still live
        clock.advance(11.0)
        assert b.claim(["k1"]) == ["k1"]

    def test_ttl_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="ttl"):
            LeaseManager(ResultStore(tmp_path / "s.jsonl"),
                         identity("aaaa"), 0.0)


# ----------------------------------------------------------------------
class TestJoinedCampaign:
    def _reference(self, tmp_path, spec=None):
        spec = spec or tiny_spec()
        return run_campaign(spec, store=str(tmp_path / "ref.jsonl"),
                            join=True, worker_id="ref")

    def test_single_worker_cold_then_resume(self, tmp_path):
        spec = tiny_spec()
        store = tmp_path / "s.jsonl"
        cold = run_campaign(spec, store=str(store), join=True,
                            worker_id="one")
        resumed = run_campaign(spec, store=str(store), join=True,
                               worker_id="two")
        assert cold.shots_sampled > 0
        assert resumed.shots_sampled == 0
        assert resumed.shots_reused == cold.shots_sampled
        assert resumed.spent == cold.spent
        assert render(cold) == render(resumed)

    def test_two_step_workers_partition_and_conserve(self, tmp_path):
        spec = tiny_spec()
        reference = self._reference(tmp_path, spec)
        store = tmp_path / "s.jsonl"
        a = JoinedCampaign(spec, str(store), worker=identity("aaaa"),
                           claim_batch=1)
        b = JoinedCampaign(spec, str(store), worker=identity("bbbb"),
                           claim_batch=1)
        with a, b:
            done = [False, False]
            for _ in range(32):
                if not done[0]:
                    done[0] = a.step() == "complete"
                if not done[1]:
                    done[1] = b.step() == "complete"
                if all(done):
                    break
            assert all(done)
            result_a, result_b = a.result(), b.result()
        # Disjoint partition, global conservation, identical tables.
        assert result_a.shots_sampled > 0 and result_b.shots_sampled > 0
        assert (result_a.shots_sampled + result_b.shots_sampled
                == reference.shots_sampled)
        assert result_a.spent == result_b.spent == reference.spent
        assert render(result_a) == render(result_b) == render(reference)

    def test_joined_keys_disjoint_from_plain_campaign(self, tmp_path):
        """A joined store must never satisfy a plain run (different
        allocation policy ⇒ different tallies ⇒ different keys)."""
        spec = tiny_spec()
        store = tmp_path / "s.jsonl"
        joined = run_campaign(spec, store=str(store), join=True,
                              worker_id="one")
        plain = run_campaign(spec, store=str(store))
        assert joined.shots_sampled > 0
        assert plain.shots_sampled > 0  # nothing cross-matched
        assert plain.shots_reused == 0

    def test_reclaim_after_worker_death_resumes_from_checkpoints(
            self, tmp_path):
        spec = tiny_spec()
        reference = self._reference(tmp_path, spec)
        store = tmp_path / "s.jsonl"
        clock = Clock()
        victim = JoinedCampaign(spec, str(store), worker=identity("dead"),
                                lease_ttl=10.0, claim_batch=2, clock=clock)
        with activate(FaultPlan(kill_after_claims=2)):
            with victim:
                with pytest.raises(InjectedFault):
                    victim.run()
        # Orphaned leases: a rescuer sees them live until the TTL runs
        # out, then reclaims and finishes everything.
        rescuer = JoinedCampaign(spec, str(store), worker=identity("resq"),
                                 lease_ttl=10.0, clock=clock,
                                 sleep=lambda seconds: clock.advance(11.0))
        with rescuer:
            result = rescuer.run()
        assert render(result) == render(reference)
        assert result.shots_sampled == reference.shots_sampled
        report = verify_store(store)
        assert report["ok"], report["problems"]

    def test_usurpation_forfeits_and_conserves(self, tmp_path):
        """A slow worker loses its lease mid-point; the work it did is
        forfeited (not double-counted) and the reclaim replays the
        checkpointed stages, conserving shots globally."""
        spec = tiny_spec()
        reference = self._reference(tmp_path, spec)
        store = tmp_path / "s.jsonl"
        clock = Clock()
        state = {"usurped": False}

        class SlowWorker(JoinedCampaign):
            def _sample(self, point, allocation, prior, stage):
                if stage == 1 and not state["usurped"]:
                    state["usurped"] = True
                    # The worker stalls past its TTL; a rival claims the
                    # point (epoch + 1) ... and then dies too, so this
                    # worker can eventually reclaim at epoch + 2.
                    clock.advance(11.0)
                    rival = LeaseManager(ResultStore(self.store.path),
                                         identity("riva"), 10.0,
                                         clock=clock)
                    assert rival.claim([point.key]) == [point.key]
                    clock.advance(11.0)
                return super()._sample(point, allocation, prior, stage)

        worker = SlowWorker(spec, str(store), worker=identity("slow"),
                            lease_ttl=10.0, claim_batch=1, clock=clock,
                            sleep=lambda seconds: clock.advance(11.0))
        with worker:
            result = worker.run()
        assert result.shots_forfeited > 0
        assert result.shots_replayed > 0  # stage 0 came from checkpoints
        # Conservation: forfeited work is excluded, replayed + sampled
        # add up to exactly the fault-free total.
        assert (result.shots_sampled + result.shots_replayed
                == reference.shots_sampled)
        assert render(result) == render(reference)

    def test_graceful_stop_abandons_leases(self, tmp_path):
        from repro.campaign import CampaignInterrupted
        spec = tiny_spec()
        store = tmp_path / "s.jsonl"
        calls = {"count": 0}

        def stop():
            calls["count"] += 1
            return calls["count"] > 2

        worker = JoinedCampaign(spec, str(store), worker=identity("stop"),
                                stop=stop)
        with worker:
            with pytest.raises(CampaignInterrupted):
                worker.run()
        refreshed = ResultStore(store)
        for lease in refreshed.leases().values():
            assert lease.released
        # And the campaign completes cleanly afterwards.
        reference = self._reference(tmp_path, spec)
        final = run_campaign(spec, store=str(store), join=True,
                             worker_id="fin")
        assert render(final) == render(reference)

    def test_join_requires_store(self):
        with pytest.raises(ValueError, match="store"):
            run_campaign(tiny_spec(), join=True)

    def test_lease_knobs_excluded_from_fingerprint(self):
        spec = tiny_spec()
        tweaked = CampaignSpec.from_dict(
            dict(spec.to_dict(), lease_ttl=5.0, claim_batch=7))
        assert tweaked.fingerprint() == spec.fingerprint()
        assert tweaked.lease_ttl == 5.0 and tweaked.claim_batch == 7
        round_tripped = CampaignSpec.from_json(tweaked.to_json())
        assert round_tripped == tweaked


# ----------------------------------------------------------------------
class TestMergeVerifyRepair:
    def test_merge_prefers_final_over_partial(self, tmp_path):
        a = ResultStore(tmp_path / "a.jsonl")
        a.append({"key": "k", "partial": True, "failures": 1, "shots": 10,
                  "stages": [{"stage": 0}]})
        b = ResultStore(tmp_path / "b.jsonl")
        b.append({"key": "k", "failures": 3, "shots": 30})
        out = tmp_path / "m.jsonl"
        merge_stores([a.path, b.path], out)
        merged = ResultStore(out)
        assert merged.get("k")["shots"] == 30
        assert not merged.get("k").get("partial")

    def test_merge_reports_conflicting_finals(self, tmp_path):
        a = ResultStore(tmp_path / "a.jsonl")
        a.append({"key": "k", "failures": 1, "shots": 10})
        b = ResultStore(tmp_path / "b.jsonl")
        b.append({"key": "k", "failures": 2, "shots": 10})
        report = merge_stores([a.path, b.path], tmp_path / "m.jsonl")
        assert report["conflicts"] == ["k"]

    def test_merge_provenance_only_difference_is_no_conflict(self,
                                                             tmp_path):
        """Two hosts that each ran the whole campaign independently
        produce finals differing only in worker/epoch — deterministic
        sampling made the tallies identical, so that's not a conflict."""
        a = ResultStore(tmp_path / "a.jsonl")
        a.append({"key": "k", "failures": 1, "shots": 10,
                  "worker": "a:1:x", "epoch": 0})
        b = ResultStore(tmp_path / "b.jsonl")
        b.append({"key": "k", "failures": 1, "shots": 10,
                  "worker": "b:2:y", "epoch": 1})
        report = merge_stores([a.path, b.path], tmp_path / "m.jsonl")
        assert report["conflicts"] == []
        assert report["records_written"] == 1

    def test_merge_identical_finals_is_no_conflict(self, tmp_path):
        a = ResultStore(tmp_path / "a.jsonl")
        a.append({"key": "k", "failures": 1, "shots": 10})
        b = ResultStore(tmp_path / "b.jsonl")
        b.append({"key": "k", "failures": 1, "shots": 10})
        report = merge_stores([a.path, b.path], tmp_path / "m.jsonl")
        assert report["conflicts"] == []
        assert report["records_written"] == 1

    def test_verify_clean_store(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append({"key": "k", "failures": 1, "shots": 10})
        report = verify_store(store.path)
        assert report["ok"] and report["records"] == 1

    def test_verify_flags_torn_tail_as_info(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append({"key": "k", "failures": 1, "shots": 10})
        with store.path.open("a") as handle:
            handle.write('{"key": "t", "fail')
        report = verify_store(store.path)
        assert report["ok"]  # a torn tail is expected crash residue
        assert any("torn tail" in note for note in report["info"])

    def test_verify_flags_interior_corruption(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"key": "a", "version": 1}\n'
                        'not json at all\n'
                        '{"key": "b", "version": 1}\n')
        report = verify_store(path)
        assert not report["ok"]
        assert any("unparseable" in problem
                   for problem in report["problems"])

    def test_verify_flags_release_without_claim(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append_lease({"type": "release", "key": "k", "worker": "a",
                            "epoch": 0, "ts": 1.0})
        report = verify_store(store.path)
        assert not report["ok"]
        assert any("without a matching claim" in problem
                   for problem in report["problems"])

    def test_verify_flags_overlapping_live_leases(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append_lease({"type": "claim", "key": "k", "worker": "a",
                            "epoch": 0, "ttl": 100.0, "ts": 0.0})
        # Epoch bump while the previous lease is neither released nor
        # expired by its own timestamps: a broken reclaim.
        store.append_lease({"type": "claim", "key": "k", "worker": "b",
                            "epoch": 1, "ttl": 100.0, "ts": 1.0})
        report = verify_store(store.path)
        assert not report["ok"]
        assert any("overlapping live leases" in problem
                   for problem in report["problems"])

    def test_verify_accepts_legitimate_expiry_reclaim(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append_lease({"type": "claim", "key": "k", "worker": "a",
                            "epoch": 0, "ttl": 10.0, "ts": 0.0})
        store.append_lease({"type": "claim", "key": "k", "worker": "b",
                            "epoch": 1, "ttl": 10.0, "ts": 20.0})
        report = verify_store(store.path)
        assert report["ok"], report["problems"]

    def test_verify_missing_file(self, tmp_path):
        report = verify_store(tmp_path / "nope.jsonl")
        assert not report["ok"]

    def test_repair_drops_corruption_keeps_health(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.append({"key": "a", "failures": 1, "shots": 10})
        store.append_lease({"type": "claim", "key": "a", "worker": "w",
                            "epoch": 0, "ttl": 5.0, "ts": 0.0})
        with path.open("a") as handle:
            handle.write("garbage line\n")
            handle.write('{"key": "torn", "fail')
        report = repair_store(path)
        assert report["kept"] == 2 and report["dropped"] == 2
        assert verify_store(path)["ok"]
        reloaded = ResultStore(path)
        assert reloaded.skipped_lines == 0
        assert "a" in reloaded and reloaded.lease_for("a") is not None


# ----------------------------------------------------------------------
class TestJoinedCLI:
    """Two real concurrent ``--join`` processes through the CLI."""

    def _run(self, args, cwd, env_extra=None):
        env = dict(os.environ,
                   PYTHONPATH=str(Path(__file__).resolve().parent.parent
                                  / "src"))
        env.update(env_extra or {})
        return subprocess.Popen(
            [sys.executable, "-m", "repro", *args],
            cwd=cwd, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)

    def test_concurrent_join_conserves_and_matches(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(tiny_spec().to_json())
        reference = self._run(
            ["campaign", str(spec_path), "--join", "--store", "ref.jsonl",
             "--worker-id", "ref", "--output", "ref-tables",
             "--summary", "ref-summary.json"], tmp_path)
        assert reference.wait(timeout=300) == 0, reference.stdout.read()
        workers = [
            self._run(
                ["campaign", str(spec_path), "--join", "--store",
                 "shared.jsonl", "--worker-id", name, "--output",
                 f"tables-{name}", "--summary", f"summary-{name}.json"],
                tmp_path)
            for name in ("blue", "green")
        ]
        for process in workers:
            assert process.wait(timeout=300) == 0, process.stdout.read()
        ledgers = [json.loads((tmp_path / f"summary-{name}.json")
                              .read_text())
                   for name in ("blue", "green")]
        reference_ledger = json.loads(
            (tmp_path / "ref-summary.json").read_text())
        total = sum(ledger["shots_sampled"] + ledger["shots_replayed"]
                    for ledger in ledgers)
        assert total == reference_ledger["shots_sampled"]
        for ledger in ledgers:
            assert ledger["spent"] == reference_ledger["spent"]
        for name in ("blue", "green"):
            for table in (tmp_path / "ref-tables").iterdir():
                mine = tmp_path / f"tables-{name}" / table.name
                assert mine.read_bytes() == table.read_bytes()
