"""The sweep-kind registry and bit-identity of the migrated figures.

Every bespoke figure function that moved onto the kind registry is
parity-tested here against a frozen replica of its legacy
implementation: same code, same seed, same shot budget — the rendered
tables must match byte for byte (``to_json``).  The replicas are
deliberate copies of the pre-migration code paths (one
:class:`MemoryExperiment` per sweep, sequentially spawned per-run
seeds, one ``run`` per table row in order); if a kind's expansion ever
reorders points or re-seeds differently, these tests catch it.

The campaign-level tests exercise multi-kind specs: a mini campaign
mixing sampled, analytic and migrated kinds resumes from its store
with zero re-sampling and byte-identical tables, including after a
simulated mid-campaign interruption.
"""

from __future__ import annotations

import pytest

import repro.campaign.kinds as kinds_module
from repro.campaign import (
    CampaignSpec,
    ResultStore,
    SweepSpec,
    run_campaign,
    run_sweep_kind,
)
from repro.campaign.kinds import (
    KindParam,
    SweepKind,
    available_kinds,
    kind_by_name,
    kind_params,
    register_kind,
)
from repro.codes import code_by_name
from repro.core.codesign import codesign_by_name
from repro.core.memory import MemoryExperiment
from repro.core.results import ResultTable
from repro.qccd.compilers import CycloneCompiler, EJFGridCompiler
from repro.qccd.timing import OperationTimes, SwapKind

CODE = "surface-d3"
P = 5e-3  # high enough that tiny shot counts see real failures
SHOTS = 24
ROUNDS = 2
SEED = 3


# ----------------------------------------------------------------------
# Frozen legacy replicas (pre-registry implementations, verbatim).

def _legacy_ler(experiment, p, latency, shots):
    return experiment.run(p, latency, shots=shots).logical_error_rate


def _legacy_depth_speedup(code, p, speedups, shots, rounds, seed):
    baseline = codesign_by_name("baseline").compile(code)
    latency = baseline.execution_time_us
    table = ResultTable(
        title=f"Fig. 5 — LER vs baseline depth speedup ({code.name}, "
              f"p={p:g})",
        columns=["speedup", "round_latency_us", "logical_error_rate"],
    )
    with MemoryExperiment(code=code, rounds=rounds, seed=seed) as experiment:
        for speedup in speedups:
            scaled = latency / speedup
            table.add_row(
                speedup=speedup, round_latency_us=scaled,
                logical_error_rate=_legacy_ler(experiment, p, scaled, shots),
            )
    return table


def _legacy_junction(code, p, reductions, shots, rounds, seed):
    table = ResultTable(
        title=f"Fig. 9 — junction crossing sensitivity ({code.name}, "
              f"p={p:g})",
        columns=["design", "junction_reduction", "execution_time_us",
                 "logical_error_rate"],
    )
    with MemoryExperiment(code=code, rounds=rounds, seed=seed) as experiment:
        baseline = codesign_by_name("baseline").compile(code)
        table.add_row(
            design="baseline_grid", junction_reduction=0.0,
            execution_time_us=baseline.execution_time_us,
            logical_error_rate=_legacy_ler(
                experiment, p, baseline.execution_time_us, shots),
        )
        for reduction in reductions:
            times = OperationTimes(junction_improvement_factor=reduction)
            mesh = codesign_by_name("mesh_junction",
                                    times=times).compile(code)
            table.add_row(
                design="mesh_junction", junction_reduction=reduction,
                execution_time_us=mesh.execution_time_us,
                logical_error_rate=_legacy_ler(
                    experiment, p, mesh.execution_time_us, shots),
            )
    return table


def _legacy_trap_arrangement(code, p, trap_counts, shots, rounds, seed,
                             include_ler=True):
    m_basis = max(code.num_x_stabilizers, code.num_z_stabilizers)
    if trap_counts is None:
        trap_counts = sorted({1, 9, 25, 64, m_basis // 2, m_basis})
    table = ResultTable(
        title=f"Fig. 13 — Cyclone trap/ion arrangement sensitivity "
              f"({code.name}, p={p:g})",
        columns=["num_traps", "trap_capacity", "chain_length",
                 "execution_time_us", "logical_error_rate"],
    )
    with MemoryExperiment(code=code, rounds=rounds, seed=seed) as experiment:
        for x in trap_counts:
            x = max(1, min(int(x), m_basis)) if m_basis else 1
            compiled = CycloneCompiler(num_traps=x).compile(code)
            row = {
                "num_traps": x,
                "trap_capacity": compiled.metadata["trap_capacity"],
                "chain_length": compiled.metadata["chain_length"],
                "execution_time_us": compiled.execution_time_us,
                "logical_error_rate": float("nan"),
            }
            if include_ler:
                row["logical_error_rate"] = _legacy_ler(
                    experiment, p, compiled.execution_time_us, shots)
            table.add_row(**row)
    return table


def _legacy_loose_capacity(code, p, capacities, shots, rounds, seed):
    table = ResultTable(
        title=f"Fig. 17 — baseline sensitivity to loose trap capacity "
              f"({code.name}, p={p:g})",
        columns=["trap_capacity", "execution_time_us", "logical_error_rate"],
    )
    with MemoryExperiment(code=code, rounds=rounds, seed=seed) as experiment:
        for capacity in capacities:
            compiled = EJFGridCompiler(trap_capacity=capacity).compile(code)
            table.add_row(
                trap_capacity=capacity,
                execution_time_us=compiled.execution_time_us,
                logical_error_rate=_legacy_ler(
                    experiment, p, compiled.execution_time_us, shots),
            )
    return table


def _legacy_operation_time(code, p, reductions, shots, rounds, seed):
    table = ResultTable(
        title=f"Fig. 18 — gate/shuttle time reduction sensitivity "
              f"({code.name}, p={p:g})",
        columns=["reduction", "design", "execution_time_us",
                 "logical_error_rate"],
    )
    with MemoryExperiment(code=code, rounds=rounds, seed=seed) as experiment:
        for reduction in reductions:
            times = OperationTimes(improvement_factor=reduction)
            for design in ("baseline", "cyclone"):
                compiled = codesign_by_name(design, times=times).compile(code)
                table.add_row(
                    reduction=reduction, design=design,
                    execution_time_us=compiled.execution_time_us,
                    logical_error_rate=_legacy_ler(
                        experiment, p, compiled.execution_time_us, shots),
                )
    return table


def _legacy_compiler_comparison(code, compilers):
    table = ResultTable(
        title=f"Fig. 20 — compiler sensitivity ({code.name})",
        columns=["compiler", "execution_time_us", "unrolled_total_us",
                 "unrolled_gate_us", "unrolled_shuttle_us",
                 "unrolled_measurement_us", "parallelization_fraction"],
    )
    for name in compilers:
        compiled = codesign_by_name(name).compile(code)
        breakdown = compiled.component_breakdown()
        shuttle = sum(
            breakdown.get(key, 0.0)
            for key in ("split", "move", "junction_cross", "merge",
                        "rebalance", "swap")
        )
        table.add_row(
            compiler=name,
            execution_time_us=compiled.execution_time_us,
            unrolled_total_us=compiled.serialized_time_us,
            unrolled_gate_us=breakdown.get("gate", 0.0),
            unrolled_shuttle_us=shuttle,
            unrolled_measurement_us=breakdown.get("measurement", 0.0),
            parallelization_fraction=compiled.parallelization_fraction,
        )
    return table


def _legacy_swap_kind(code):
    table = ResultTable(
        title=f"Fig. 21 — IonSWAP vs GateSWAP sensitivity ({code.name})",
        columns=["design", "swap_kind", "execution_time_us"],
    )
    for swap_kind in (SwapKind.GATE_SWAP, SwapKind.ION_SWAP):
        times = OperationTimes(swap_kind=swap_kind)
        for design in ("baseline", "cyclone"):
            compiled = codesign_by_name(design, times=times).compile(code)
            table.add_row(
                design=design, swap_kind=swap_kind.value,
                execution_time_us=compiled.execution_time_us,
            )
    return table


# ----------------------------------------------------------------------
# Registry semantics.

class TestRegistry:
    def test_all_builtin_kinds_registered(self):
        assert set(available_kinds()) >= {
            "physical_error", "architectures", "depth_speedup",
            "junction_crossing", "trap_arrangement", "loose_capacity",
            "operation_time", "compiler_comparison", "swap_kind",
            "scenario_sweep",
        }

    def test_unknown_kind_error_names_registered_kinds(self):
        with pytest.raises(ValueError, match="unknown sweep kind 'bogus'"):
            kind_by_name("bogus")
        with pytest.raises(ValueError, match="registered kinds"):
            kind_by_name("bogus")

    def test_duplicate_registration_rejected(self):
        existing = kind_by_name("physical_error")
        with pytest.raises(ValueError, match="already registered"):
            register_kind(existing)

    def test_custom_kind_registers_and_runs(self):
        custom = SweepKind(
            name="test_only_latency",
            description="compiled latency per codesign (test-only)",
            params=(KindParam("designs", "list[str]",
                              ["baseline", "cyclone"], "codesigns"),),
            expand=lambda sweep, code: [
                kinds_module.ExpandedPoint(
                    row={"design": name,
                         "execution_time_us": codesign_by_name(name)
                         .compile(code).execution_time_us},
                    sampled=False)
                for name in kind_params(sweep)["designs"]
            ],
            static_columns=lambda sweep: ["design", "execution_time_us"],
            title=lambda sweep: f"latency ({sweep.code})",
            count=lambda sweep: 0,
            sampled=False,
        )
        register_kind(custom)
        try:
            sweep = SweepSpec(name="s", code=CODE, kind="test_only_latency")
            table = run_sweep_kind(sweep)
            assert [row["design"] for row in table.rows] == \
                ["baseline", "cyclone"]
            assert all(row["execution_time_us"] > 0 for row in table.rows)
        finally:
            del kinds_module._KINDS["test_only_latency"]

    def test_kind_params_merges_schema_defaults(self):
        sweep = SweepSpec(name="s", code=CODE, kind="depth_speedup",
                          params={"speedups": [2.0]})
        assert kind_params(sweep) == {"speedups": [2.0]}
        sweep = SweepSpec(name="s", code=CODE, kind="depth_speedup")
        assert kind_params(sweep) == {"speedups": [1.0, 2.0, 4.0]}

    def test_unknown_param_key_rejected(self):
        with pytest.raises(ValueError,
                           match=r"unknown depth_speedup params"):
            SweepSpec(name="s", code=CODE, kind="depth_speedup",
                      params={"bogus": 1})

    def test_params_survive_spec_round_trip(self):
        sweep = SweepSpec(name="s", code=CODE, kind="loose_capacity",
                          params={"capacities": [5, 9]})
        assert SweepSpec.from_dict(sweep.to_dict()) == sweep


# ----------------------------------------------------------------------
# Bit-identity parity: registered kind vs frozen legacy replica.

def _kind_table(kind, params, **sweep_fields):
    sweep = SweepSpec(name="parity", code=CODE, kind=kind, params=params,
                      rounds=ROUNDS, **sweep_fields)
    return run_sweep_kind(sweep, shots=SHOTS, seed=SEED)


class TestKindParity:
    def test_fig05_depth_speedup(self):
        code = code_by_name(CODE)
        legacy = _legacy_depth_speedup(code, P, (1.0, 2.0, 4.0),
                                       SHOTS, ROUNDS, SEED)
        table = _kind_table("depth_speedup", {"speedups": [1.0, 2.0, 4.0]},
                            physical_error_rate=P)
        assert table.to_json() == legacy.to_json()

    def test_fig09_junction_crossing(self):
        code = code_by_name(CODE)
        legacy = _legacy_junction(code, P, (0.0, 0.7), SHOTS, ROUNDS, SEED)
        table = _kind_table("junction_crossing", {"reductions": [0.0, 0.7]},
                            physical_error_rate=P)
        assert table.to_json() == legacy.to_json()

    def test_fig13_trap_arrangement(self):
        code = code_by_name(CODE)
        legacy = _legacy_trap_arrangement(code, P, (1, 4), SHOTS, ROUNDS,
                                          SEED)
        table = _kind_table("trap_arrangement", {"trap_counts": [1, 4]},
                            physical_error_rate=P)
        assert table.to_json() == legacy.to_json()

    def test_fig13_compiled_only(self):
        code = code_by_name(CODE)
        legacy = _legacy_trap_arrangement(code, P, (1, 4), SHOTS, ROUNDS,
                                          SEED, include_ler=False)
        table = _kind_table("trap_arrangement",
                            {"trap_counts": [1, 4], "include_ler": False},
                            physical_error_rate=P)
        assert table.to_json() == legacy.to_json()

    def test_fig17_loose_capacity(self):
        code = code_by_name(CODE)
        legacy = _legacy_loose_capacity(code, P, (5, 8), SHOTS, ROUNDS, SEED)
        table = _kind_table("loose_capacity", {"capacities": [5, 8]},
                            physical_error_rate=P)
        assert table.to_json() == legacy.to_json()

    def test_fig18_operation_time(self):
        code = code_by_name(CODE)
        legacy = _legacy_operation_time(code, P, (0.0, 0.5), SHOTS, ROUNDS,
                                        SEED)
        table = _kind_table("operation_time", {"reductions": [0.0, 0.5]},
                            physical_error_rate=P)
        assert table.to_json() == legacy.to_json()

    def test_fig20_compiler_comparison(self):
        code = code_by_name(CODE)
        legacy = _legacy_compiler_comparison(
            code, ("baseline", "baseline2", "baseline3", "cyclone"))
        table = _kind_table("compiler_comparison", {})
        assert table.to_json() == legacy.to_json()

    def test_fig21_swap_kind(self):
        code = code_by_name(CODE)
        legacy = _legacy_swap_kind(code)
        table = _kind_table("swap_kind", {})
        assert table.to_json() == legacy.to_json()

    def test_wrappers_delegate_to_kinds(self):
        # The public analysis API is a thin shell over the same kinds.
        from repro.analysis import depth_speedup_ler, swap_kind_sensitivity
        code = code_by_name(CODE)
        wrapped = depth_speedup_ler(code, physical_error_rate=P,
                                    speedups=(1.0, 2.0, 4.0), shots=SHOTS,
                                    rounds=ROUNDS, seed=SEED)
        table = _kind_table("depth_speedup", {"speedups": [1.0, 2.0, 4.0]},
                            physical_error_rate=P)
        assert wrapped.to_json() == table.to_json()
        assert swap_kind_sensitivity(code).to_json() == \
            _legacy_swap_kind(code).to_json()


# ----------------------------------------------------------------------
# Multi-kind campaigns: resume across every kind.

def _multi_kind_spec(budget: int = 700) -> CampaignSpec:
    return CampaignSpec.from_dict({
        "name": "multi_kind",
        "budget": budget,
        "seed": 5,
        "sweeps": [
            {"name": "ler", "code": "repetition-d3",
             "kind": "physical_error", "codesign": "cyclone",
             "physical_error_rates": [5e-3, 2e-2],
             "target": {"half_width": 0.04}, "rounds": 2,
             "pilot_shots": 32, "shard_shots": 64},
            {"name": "speedup", "code": CODE, "kind": "depth_speedup",
             "physical_error_rate": P, "params": {"speedups": [1.0, 2.0]},
             "target": {"half_width": 0.05}, "rounds": 2,
             "pilot_shots": 32, "shard_shots": 64},
            {"name": "traps", "code": CODE, "kind": "trap_arrangement",
             "physical_error_rate": P,
             "params": {"trap_counts": [1, 4], "include_ler": False}},
            {"name": "swaps", "code": CODE, "kind": "swap_kind"},
            {"name": "fuzz", "kind": "scenario_sweep",
             "params": {"num_scenarios": 2, "shots": 48,
                        "scenario_seed": 11}},
        ],
    })


class TestMultiKindCampaign:
    def test_resume_reuses_every_kind(self, tmp_path):
        spec = _multi_kind_spec()
        store = tmp_path / "store.jsonl"
        cold = run_campaign(spec, store=store)
        assert cold.shots_sampled > 0
        warm = run_campaign(spec, store=store)
        assert warm.shots_sampled == 0
        assert warm.points_reused == warm.points_total == cold.points_total
        assert len(warm.tables) == len(cold.tables)
        for one, two in zip(cold.tables, warm.tables):
            assert one.to_json() == two.to_json()
        # Analytic kinds render rows without costing budget.
        by_title = {table.title: table for table in warm.tables}
        swap_table = next(t for t in warm.tables if "Fig. 21" in t.title)
        assert len(swap_table.rows) == 4
        assert by_title  # every sweep produced a table

    def test_interrupted_multi_kind_campaign_resumes(self, tmp_path,
                                                     monkeypatch):
        spec = _multi_kind_spec()
        store = tmp_path / "store.jsonl"
        appended = {"n": 0}
        original_run = MemoryExperiment.run
        original_append = ResultStore.append

        def counting_append(self, record):
            # Mid-point checkpoints append partial records too; the
            # interrupt should trigger after two *finalised* points.
            if not record.get("partial"):
                appended["n"] += 1
            return original_append(self, record)

        def dying_run(self, *args, **kwargs):
            if appended["n"] >= 2:
                raise KeyboardInterrupt("simulated ^C mid-campaign")
            return original_run(self, *args, **kwargs)

        monkeypatch.setattr(ResultStore, "append", counting_append)
        monkeypatch.setattr(MemoryExperiment, "run", dying_run)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(spec, store=store)
        monkeypatch.setattr(MemoryExperiment, "run", original_run)
        assert len(ResultStore(store)) >= 2

        resumed = run_campaign(spec, store=store)
        assert resumed.points_reused >= 2
        assert resumed.points_reused <= resumed.points_total
        # A third run replays every kind from the store: nothing sampled.
        final = run_campaign(spec, store=store)
        assert final.shots_sampled == 0
        assert final.points_reused == final.points_total
        for one, two in zip(resumed.tables, final.tables):
            assert one.to_json() == two.to_json()
