"""Tests for the campaign service behind ``repro serve``.

Covers the protocol layer (pure unit tests), the in-process job
lifecycle through :class:`~repro.service.ServiceThread` +
:class:`~repro.service.ServiceClient` (real sockets, real HTTP), and a
subprocess SIGTERM drain of the CLI entry point.  The anchor
assertions mirror the CI smoke job: resubmitting a finished spec
samples zero shots and returns byte-identical tables, concurrent
duplicate submissions coalesce onto one job, and cancellation at any
moment leaves the store resumable.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.campaign import ResultStore, available_specs
from repro.campaign.kinds import available_kinds
from repro.service import (
    JOB_STATES,
    MAX_BODY_BYTES,
    ProtocolError,
    ServiceClient,
    ServiceError,
    ServiceThread,
    encode_json,
    parse_submission,
    specs_payload,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def quick_doc(name: str = "svc_quick", budget: int = 600,
              seed: int = 9) -> dict:
    """A campaign document that finishes in well under a second."""
    return {
        "name": name,
        "description": "service test: fast, reachable target",
        "budget": budget,
        "seed": seed,
        "sweeps": [{
            "name": "quick_repetition",
            "code": "repetition-d3",
            "kind": "physical_error",
            "codesign": "cyclone",
            "physical_error_rates": [5e-3, 2e-2],
            "target": {"half_width": 0.03},
            "rounds": 2,
            "pilot_shots": 32,
            "shard_shots": 64,
        }],
    }


def slow_doc(name: str = "svc_slow", budget: int = 160_000,
             max_shots: int = 40_000) -> dict:
    """A campaign document that runs for a couple of seconds.

    The CI half-width target is unreachable, so every point runs to its
    ``max_shots`` cap — calibrated at roughly 60k shots/s on one core,
    the defaults give a ~2.5 s job with a point finalising every ~0.7 s:
    long enough to cancel mid-run, short enough for CI.
    """
    return {
        "name": name,
        "description": "service test: slow, unreachable target",
        "budget": budget,
        "seed": 11,
        "sweeps": [{
            "name": "slow_repetition",
            "code": "repetition-d3",
            "kind": "physical_error",
            "codesign": "cyclone",
            "physical_error_rates": [4e-3, 8e-3, 1.2e-2, 1.6e-2],
            "target": {"half_width": 1e-5},
            "rounds": 2,
            "pilot_shots": 64,
            "shard_shots": 256,
            "max_shots": max_shots,
        }],
    }


def wait_for(predicate, timeout: float = 30.0, poll: float = 0.01,
             message: str = "condition"):
    """Poll ``predicate`` until it returns a truthy value."""
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise TimeoutError(f"timed out waiting for {message}")
        time.sleep(poll)


def store_records(path: Path) -> list[dict]:
    """Read the store the way another process would (fresh instance)."""
    return ResultStore(path).records()


class TestProtocol:
    """Pure unit tests for parsing and encoding — no sockets."""

    def test_inline_document_round_trip(self):
        doc = quick_doc()
        spec, budget = parse_submission(json.dumps(doc).encode())
        assert spec.name == doc["name"]
        assert budget is None
        assert spec.budget == doc["budget"]

    def test_envelope_with_builtin_name_and_budget(self):
        body = json.dumps({"spec": "ci_smoke", "budget": 450}).encode()
        spec, budget = parse_submission(body)
        assert spec.name == "ci_smoke"
        assert budget == 450

    def test_envelope_with_inline_spec(self):
        body = json.dumps({"spec": quick_doc()}).encode()
        spec, budget = parse_submission(body)
        assert spec.name == "svc_quick"
        assert budget is None

    @pytest.mark.parametrize("body, fragment", [
        (b"", "not JSON"),
        (b"not json {", "not JSON"),
        (b"[1, 2]", "JSON object"),
        (b'{"spec": "no_such_spec"}', "no_such_spec"),
        (b'{"spec": "ci_smoke", "bogus": 1}', "bogus"),
        (b'{"spec": "ci_smoke", "budget": 0}', "budget"),
        (b'{"budget": 5}', "spec"),
    ])
    def test_bad_submissions_are_400(self, body, fragment):
        with pytest.raises(ProtocolError) as excinfo:
            parse_submission(body)
        assert excinfo.value.status == 400
        assert fragment in excinfo.value.message

    def test_invalid_sweep_keys_are_400_with_the_validation_error(self):
        doc = quick_doc()
        doc["sweeps"][0]["bogus_knob"] = 3
        with pytest.raises(ProtocolError) as excinfo:
            parse_submission(json.dumps(doc).encode())
        assert excinfo.value.status == 400
        assert "invalid campaign spec" in excinfo.value.message
        assert "bogus_knob" in excinfo.value.message

    def test_encode_json_is_canonical(self):
        assert encode_json({"b": 1, "a": [1, 2]}) == b'{"a":[1,2],"b":1}'

    def test_specs_payload_mirrors_the_registries(self):
        payload = specs_payload()
        assert [s["name"] for s in payload["specs"]] == list(
            available_specs())
        assert [k["name"] for k in payload["kinds"]] == list(
            available_kinds())
        for entry in payload["kinds"]:
            assert all({"name", "type", "default", "doc"} <= set(p)
                       for p in entry["params"])


class TestServiceLifecycle:
    """End-to-end over real sockets via ServiceThread + ServiceClient."""

    def test_healthz_and_specs(self, tmp_path):
        with ServiceThread(tmp_path / "store.jsonl") as service:
            client = ServiceClient(service.url)
            health = client.healthz()
            assert health["status"] == "serving"
            assert set(health["jobs"]) == set(JOB_STATES)
            assert health["store"]["records"] == 0
            assert client.specs() == json.loads(
                encode_json(specs_payload()))

    def test_job_lifecycle_to_done(self, tmp_path):
        with ServiceThread(tmp_path / "store.jsonl") as service:
            client = ServiceClient(service.url)
            view = client.submit(quick_doc())
            assert view["deduplicated"] is False
            assert view["state"] in ("queued", "running")
            job_id = view["job"]
            final = client.wait(job_id)
            assert final["state"] == "done"
            assert final["stats"]["shots_sampled"] > 0
            assert final["stats"]["shots_reused"] == 0
            assert final["progress"]["phase"] == "final"
            assert final["progress"]["points_final"] == \
                final["progress"]["points_total"]
            sweeps = final["progress"]["sweeps"]
            assert [s["sweep"] for s in sweeps] == ["quick_repetition"]
            tables = client.tables(job_id)
            assert tables and all("rows" in t for t in tables)
            assert [j["job"] for j in client.jobs()] == [job_id]

    def test_resubmission_samples_zero_and_is_byte_identical(self, tmp_path):
        with ServiceThread(tmp_path / "store.jsonl") as service:
            client = ServiceClient(service.url)
            first = client.submit(quick_doc())["job"]
            cold = client.wait(first)
            cold_bytes = client.tables_bytes(first)
            second = client.submit(quick_doc())
            assert second["deduplicated"] is False  # finished fp: new job
            assert second["job"] != first
            warm = client.wait(second["job"])
            assert warm["state"] == "done"
            assert warm["stats"]["shots_sampled"] == 0
            assert warm["stats"]["shots_reused"] == \
                cold["stats"]["shots_sampled"]
            assert client.tables_bytes(second["job"]) == cold_bytes

    def test_budget_override_is_a_distinct_fingerprint(self, tmp_path):
        with ServiceThread(tmp_path / "store.jsonl") as service:
            client = ServiceClient(service.url)
            a = client.submit(quick_doc(), budget=600)
            b = client.submit(quick_doc(), budget=500)
            assert a["fingerprint"] != b["fingerprint"]
            for view in (a, b):
                assert client.wait(view["job"])["state"] == "done"

    def test_concurrent_duplicate_coalesces_and_cancel_leaves_store_resumable(
            self, tmp_path):
        store_path = tmp_path / "store.jsonl"
        with ServiceThread(store_path) as service:
            client = ServiceClient(service.url)
            view = client.submit(slow_doc())
            job_id = view["job"]
            assert view["deduplicated"] is False
            # A second submission of the identical spec+budget while the
            # first is active coalesces onto the same job: together the
            # two submissions pay for (at most) one cold run.
            duplicate = client.submit(slow_doc())
            assert duplicate["job"] == job_id
            assert duplicate["deduplicated"] is True
            assert duplicate["dedup_hits"] == 1
            # Let the campaign make real progress (first per-stage
            # checkpoint hits the store within the first pilot), then
            # cancel mid-run.
            wait_for(lambda: store_records(store_path),
                     message="first checkpoint record")
            assert client.cancel(job_id)["state"] in (
                "cancelling", "cancelled")
            final = client.wait(job_id)
            assert final["state"] == "cancelled"
            assert "interrupted" in final["error"]
            with pytest.raises(ServiceError) as excinfo:
                client.tables(job_id)
            assert excinfo.value.status == 409
            # The store is resumable: a fresh submission of the same
            # spec replays/reuses the interrupted run's records instead
            # of starting from zero.
            resumed = client.submit(slow_doc())
            assert resumed["deduplicated"] is False
            assert resumed["job"] != job_id
            stats = client.wait(resumed["job"], timeout=60)["stats"]
            assert stats["shots_reused"] + stats["shots_replayed"] > 0
            assert stats["shots_sampled"] < slow_doc()["budget"]
            assert stats["spent"] == slow_doc()["budget"]

    def test_cancel_queued_job_is_immediate(self, tmp_path):
        with ServiceThread(tmp_path / "store.jsonl") as service:
            client = ServiceClient(service.url)
            running = client.submit(slow_doc())["job"]
            queued = client.submit(quick_doc())["job"]
            assert client.cancel(queued) == {
                "job": queued, "state": "cancelled"}
            assert client.job(queued)["error"] == "cancelled while queued"
            # Cancelling a terminal job is a conflict.
            status, payload = client.request("DELETE", f"/jobs/{queued}")
            assert status == 409
            client.cancel(running)
            assert client.wait(running)["state"] == "cancelled"

    def test_http_error_paths(self, tmp_path):
        with ServiceThread(tmp_path / "store.jsonl") as service:
            client = ServiceClient(service.url)
            cases = [
                ("POST", "/jobs", b"not json {", 400, "not JSON"),
                ("POST", "/jobs", json.dumps(
                    {"spec": "no_such_spec"}).encode(), 400, "no_such_spec"),
                ("GET", "/jobs/job-999999", None, 404, "no such job"),
                ("DELETE", "/jobs/job-999999", None, 404, "no such job"),
                ("GET", "/jobs/job-999999/tables", None, 404, "no such job"),
                ("PUT", "/jobs", None, 405, "not allowed"),
                ("PATCH", "/jobs/job-000001", None, 405, "not allowed"),
                ("GET", "/nope", None, 404, "no route"),
                ("POST", "/specs", None, 404, "no route"),
            ]
            for method, path, body, status, fragment in cases:
                payload = json.loads(body) if body and body[:1] in (
                    b"{", b"[") else None
                if body is not None and payload is None:
                    # Raw non-JSON body: go through the transport
                    # directly so nothing re-encodes it.
                    request = urllib.request.Request(
                        service.url + path, data=body,
                        headers={"Content-Type": "application/json"},
                        method=method)
                    try:
                        with urllib.request.urlopen(request, timeout=10):
                            got_status, got_body = 200, b""
                    except urllib.error.HTTPError as exc:
                        got_status, got_body = exc.code, exc.read()
                else:
                    got_status, got_body = client.request(
                        method, path, payload)
                assert got_status == status, (method, path)
                assert fragment in json.loads(got_body)["error"], (
                    method, path)

    def test_oversized_body_is_413(self, tmp_path):
        with ServiceThread(tmp_path / "store.jsonl") as service:
            client = ServiceClient(service.url)
            padding = {"spec": "ci_smoke",
                       "pad": "x" * (MAX_BODY_BYTES + 1)}
            status, body = client.request("POST", "/jobs", padding)
            assert status == 413
            assert "too large" in json.loads(body)["error"]


class TestServeCLISubprocess:
    """The real ``repro serve`` process: startup, SIGTERM drain."""

    def _spawn(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        port_file = tmp_path / "port"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--store", str(tmp_path / "store.jsonl"),
             "--port", "0", "--port-file", str(port_file)],
            env=env, cwd=str(tmp_path),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        try:
            wait_for(port_file.exists, timeout=30,
                     message="serve port file")
        except TimeoutError:
            process.kill()
            raise RuntimeError(process.communicate()[0])
        port = int(port_file.read_text().strip())
        return process, ServiceClient(f"http://127.0.0.1:{port}")

    def test_sigterm_drains_gracefully_and_flushes_finalised_points(
            self, tmp_path):
        store_path = tmp_path / "store.jsonl"
        process, client = self._spawn(tmp_path)
        try:
            doc = slow_doc()
            cap = doc["sweeps"][0]["max_shots"]
            job_id = client.submit(doc)["job"]
            # Wait until at least one point has exhausted its cap (its
            # checkpoint shows cap shots) so the drain has something to
            # finalise, then deliver SIGTERM mid-run.
            wait_for(lambda: any(r["shots"] >= cap
                                 for r in store_records(store_path)),
                     message="a cap-exhausted checkpoint")
            process.send_signal(signal.SIGTERM)
            output = process.communicate(timeout=60)[0]
            assert process.returncode == 0, output
            assert "drain requested" in output
            assert "repro serve: drained" in output
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        # The interrupted job's exhausted points were flushed as final
        # records, and the store replays cleanly in a fresh process.
        store = ResultStore(store_path)
        assert store.skipped_lines == 0
        finals = [r for r in store.records() if not r.get("partial")]
        assert finals and all(r["shots"] >= cap for r in finals)
        assert job_id  # the submission itself succeeded

    def test_port_conflict_exits_1(self, tmp_path):
        process, client = self._spawn(tmp_path)
        try:
            port = int(client.base_url.rsplit(":", 1)[1])
            env = dict(os.environ)
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            second = subprocess.run(
                [sys.executable, "-m", "repro", "serve",
                 "--store", str(tmp_path / "other.jsonl"),
                 "--port", str(port)],
                env=env, cwd=str(tmp_path), capture_output=True,
                text=True, timeout=60)
            assert second.returncode == 1
            assert "cannot serve" in second.stderr
        finally:
            process.send_signal(signal.SIGTERM)
            process.communicate(timeout=60)
