"""Shared fixtures for the test suite.

Fixtures favour the smallest codes that still exercise real behaviour
(repetition, distance-3 surface, the [[72,12,6]] BB code) so the whole
suite stays fast; the session-scoped HGP fixture is reused by the tests
that genuinely need a larger non-topological code.
"""

from __future__ import annotations

import pytest

from repro.codes import (
    bivariate_bicycle_code,
    code_by_name,
    repetition_quantum_code,
    surface_code,
)
from repro.noise import BaseNoiseModel, HardwareNoiseModel
from repro.qccd.timing import OperationTimes


@pytest.fixture(scope="session")
def repetition_code_d3():
    return repetition_quantum_code(3)


@pytest.fixture(scope="session")
def surface_code_d3():
    return surface_code(3)


@pytest.fixture(scope="session")
def surface_code_d5():
    return surface_code(5)


@pytest.fixture(scope="session")
def bb_72():
    return bivariate_bicycle_code("[[72,12,6]]")


@pytest.fixture(scope="session")
def hgp_225():
    return code_by_name("HGP [[225,9,6]]")


@pytest.fixture(scope="session")
def default_times():
    return OperationTimes()


@pytest.fixture
def base_noise():
    return BaseNoiseModel(physical_error_rate=1e-3)


@pytest.fixture
def hardware_noise():
    return HardwareNoiseModel.from_physical_error_rate(
        1e-3, round_latency_us=1000.0
    )
