"""Tests for the analysis helpers behind the paper's figures."""

from __future__ import annotations

import pytest

from repro.analysis import (
    compiler_comparison,
    confusion_matrix,
    depth_speedup_ler,
    junction_crossing_sensitivity,
    loose_capacity_sensitivity,
    operation_time_sensitivity,
    parallel_vs_serial_speedup,
    speedup_table,
    swap_kind_sensitivity,
    trap_arrangement_sensitivity,
)
from repro.codes import code_by_name, surface_code


@pytest.fixture(scope="module")
def bb72():
    return code_by_name("BB [[72,12,6]]")


class TestParallelismAnalysis:
    def test_single_code_speedup(self, bb72):
        data = parallel_vs_serial_speedup(bb72)
        assert data["speedup"] == pytest.approx(
            data["serial_depth"] / data["parallel_depth"]
        )
        assert data["speedup"] > 10

    def test_speedup_table_custom_codes(self):
        table = speedup_table(["BB [[72,12,6]]", "BB [[144,12,12]]"])
        assert len(table) == 2
        speedups = table.column("speedup")
        assert speedups[1] > speedups[0]


class TestConfusionMatrix:
    def test_four_cells_and_cyclone_wins(self, bb72):
        table = confusion_matrix(bb72)
        assert len(table) == 4
        rows = {
            (row["software"], row["hardware"]): row["execution_time_us"]
            for row in table.rows
        }
        assert set(rows) == {("static", "grid"), ("dynamic", "grid"),
                             ("static", "circle"), ("dynamic", "circle")}
        # The coordinated codesign (dynamic + circle = Cyclone) is fastest,
        # and the mismatched static + circle cell is the slowest.
        assert rows[("dynamic", "circle")] == min(rows.values())
        assert rows[("static", "circle")] == max(rows.values())


class TestSensitivityAnalyses:
    def test_depth_speedup_improves_ler(self, bb72):
        table = depth_speedup_ler(bb72, physical_error_rate=5e-4,
                                  speedups=(1.0, 4.0), shots=120, rounds=3)
        lers = table.column("logical_error_rate")
        assert lers[1] <= lers[0] + 0.05

    def test_junction_sensitivity_monotone_latency(self, bb72):
        table = junction_crossing_sensitivity(
            bb72, reductions=(0.0, 0.7), shots=30, rounds=2,
        )
        mesh_rows = [row for row in table.rows
                     if row["design"] == "mesh_junction"]
        assert mesh_rows[0]["execution_time_us"] > \
            mesh_rows[1]["execution_time_us"]

    def test_trap_arrangement_rows(self, bb72):
        table = trap_arrangement_sensitivity(
            bb72, trap_counts=(1, 9, 36), include_ler=False,
        )
        assert len(table) == 3
        single_trap = table.rows[0]
        assert single_trap["num_traps"] == 1
        assert single_trap["chain_length"] >= bb72.num_qubits

    def test_loose_capacity_changes_little(self, bb72):
        table = loose_capacity_sensitivity(bb72, capacities=(5, 10), shots=30,
                                           rounds=2)
        times = table.column("execution_time_us")
        assert len(times) == 2
        assert all(t > 0 for t in times)

    def test_operation_time_reduction_closes_gap(self, bb72):
        table = operation_time_sensitivity(bb72, reductions=(0.0, 0.75),
                                           shots=30, rounds=2)
        assert len(table) == 4
        baseline_rows = [r for r in table.rows if r["design"] == "baseline"]
        assert baseline_rows[1]["execution_time_us"] < \
            baseline_rows[0]["execution_time_us"]

    def test_swap_kind_sensitivity(self, bb72):
        table = swap_kind_sensitivity(bb72)
        assert len(table) == 4
        cyclone_rows = {row["swap_kind"]: row["execution_time_us"]
                        for row in table.rows if row["design"] == "cyclone"}
        baseline_rows = {row["swap_kind"]: row["execution_time_us"]
                         for row in table.rows if row["design"] == "baseline"}
        # Cyclone keeps its advantage under either swap implementation.
        for kind in cyclone_rows:
            assert cyclone_rows[kind] < baseline_rows[kind]


class TestCompilerComparison:
    def test_rows_and_parallelization(self):
        code = surface_code(5)
        table = compiler_comparison(code)
        assert len(table) == 4
        assert set(table.column("compiler")) == {
            "baseline", "baseline2", "baseline3", "cyclone"
        }
        for row in table.rows:
            assert row["unrolled_total_us"] >= row["execution_time_us"]
            assert 0.0 <= row["parallelization_fraction"] <= 1.0

    def test_cyclone_has_highest_parallelization(self, bb72):
        table = compiler_comparison(bb72)
        by_name = {row["compiler"]: row["parallelization_fraction"]
                   for row in table.rows}
        assert by_name["cyclone"] == max(by_name.values())
