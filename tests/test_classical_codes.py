"""Tests for classical LDPC/repetition/Hamming constructions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.classical import (
    ClassicalCode,
    distance_targeted_regular_ldpc,
    full_rank_regular_ldpc,
    hamming_code,
    regular_ldpc_code,
    repetition_code,
)


class TestRepetitionCode:
    @pytest.mark.parametrize("length", [2, 3, 5, 9])
    def test_parameters(self, length):
        code = repetition_code(length)
        assert code.num_bits == length
        assert code.dimension == 1
        assert code.minimum_distance() == length

    def test_codeword_is_all_ones(self):
        code = repetition_code(4)
        basis = code.codewords_basis
        assert basis.shape == (1, 4)
        assert basis.sum() == 4

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            repetition_code(1)


class TestHammingCode:
    def test_hamming_7_4_3(self):
        code = hamming_code(3)
        assert code.num_bits == 7
        assert code.dimension == 4
        assert code.minimum_distance() == 3

    def test_hamming_15_11_3(self):
        code = hamming_code(4)
        assert (code.num_bits, code.dimension) == (15, 11)

    def test_small_r_raises(self):
        with pytest.raises(ValueError):
            hamming_code(1)


class TestRegularLDPC:
    def test_shape_and_no_isolated_nodes(self):
        code = regular_ldpc_code(9, 12, row_weight=4, seed=0)
        assert code.parity_check.shape == (9, 12)
        assert code.parity_check.sum(axis=1).min() >= 1
        assert code.parity_check.sum(axis=0).min() >= 1

    def test_deterministic_for_fixed_seed(self):
        a = regular_ldpc_code(9, 12, seed=3)
        b = regular_ldpc_code(9, 12, seed=3)
        assert np.array_equal(a.parity_check, b.parity_check)

    def test_different_seeds_differ(self):
        a = regular_ldpc_code(9, 12, seed=1)
        b = regular_ldpc_code(9, 12, seed=2)
        assert not np.array_equal(a.parity_check, b.parity_check)

    def test_indivisible_edge_count_raises(self):
        with pytest.raises(ValueError):
            regular_ldpc_code(5, 12, row_weight=5)

    def test_full_rank_variant_has_full_rank(self):
        code = full_rank_regular_ldpc(9, 12, seed=0)
        assert code.rank == 9
        assert code.dimension == 3
        assert code.transpose_dimension == 0

    def test_distance_targeted_variant_meets_target(self):
        code = distance_targeted_regular_ldpc(9, 12, target_distance=6)
        assert code.rank == 9
        assert code.minimum_distance() >= code.metadata["distance"] >= 5
        assert code.metadata["target_distance"] == 6

    @given(st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_dimension_formula(self, seed):
        code = regular_ldpc_code(6, 8, row_weight=4, seed=seed)
        assert code.dimension == code.num_bits - code.rank
        assert 0 <= code.dimension <= code.num_bits


class TestClassicalCodeDistance:
    def test_exhaustive_distance_matches_known_code(self):
        # [4, 1, 4] repetition code via its 3x4 chain parity check.
        assert repetition_code(4).minimum_distance() == 4

    def test_sampled_distance_upper_bounds_true_distance(self):
        code = hamming_code(3)
        sampled = code.minimum_distance(max_exhaustive_dimension=0, trials=300)
        assert sampled >= 3

    def test_repr_mentions_parameters(self):
        assert "[7,4]" in repr(hamming_code(3))

    def test_codewords_satisfy_checks(self):
        code = ClassicalCode([[1, 1, 0, 0], [0, 0, 1, 1]])
        basis = code.codewords_basis
        assert not ((code.parity_check @ basis.T) % 2).any()
