"""Tests for the phenomenological model and the memory-experiment runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import memory_experiment_circuit
from repro.codes import code_by_name, surface_code
from repro.core.memory import MemoryExperiment, MemoryResult, logical_error_rate
from repro.core.phenomenological import (
    build_phenomenological_model,
    effective_error_rates,
)
from repro.noise import HardwareNoiseModel
from repro.sim.dem import DemStructureCache, detector_error_model


@pytest.fixture(scope="module")
def bb72():
    return code_by_name("BB [[72,12,6]]")


class TestEffectiveRates:
    def test_rates_positive_and_bounded(self, bb72):
        noise = HardwareNoiseModel.from_physical_error_rate(
            1e-3, round_latency_us=10_000.0
        )
        data, meas = effective_error_rates(bb72, noise)
        assert 0 < data <= 0.5
        assert 0 < meas <= 0.5

    def test_latency_increases_data_rate(self, bb72):
        base = HardwareNoiseModel.from_physical_error_rate(1e-3)
        slow = base.with_round_latency(200_000.0)
        fast = base.with_round_latency(10_000.0)
        assert effective_error_rates(bb72, slow)[0] > \
            effective_error_rates(bb72, fast)[0]

    def test_invalid_basis(self, bb72):
        noise = HardwareNoiseModel.from_physical_error_rate(1e-3)
        with pytest.raises(ValueError):
            effective_error_rates(bb72, noise, basis="Y")

    def test_x_basis_uses_dual_structure(self, bb72):
        noise = HardwareNoiseModel.from_physical_error_rate(1e-3)
        z_rates = effective_error_rates(bb72, noise, basis="Z")
        x_rates = effective_error_rates(bb72, noise, basis="X")
        # BB codes are symmetric between the bases, so the rates agree.
        assert z_rates == pytest.approx(x_rates)


class TestPhenomenologicalModel:
    def test_matrix_shapes(self, bb72):
        noise = HardwareNoiseModel.from_physical_error_rate(1e-3)
        rounds = 3
        model = build_phenomenological_model(bb72, noise, rounds=rounds)
        num_checks = bb72.num_z_stabilizers
        assert model.check_matrix.shape == (
            (rounds + 1) * num_checks,
            rounds * bb72.num_qubits + rounds * num_checks,
        )
        assert model.observable_matrix.shape[0] == 12
        assert model.priors.shape[0] == model.check_matrix.shape[1]

    def test_measurement_columns_have_weight_two(self, bb72):
        noise = HardwareNoiseModel.from_physical_error_rate(1e-3)
        model = build_phenomenological_model(bb72, noise, rounds=2)
        measurement_columns = model.check_matrix[:, 2 * bb72.num_qubits:]
        assert set(measurement_columns.sum(axis=0)) == {2}

    def test_data_columns_match_check_weights(self, bb72):
        noise = HardwareNoiseModel.from_physical_error_rate(1e-3)
        model = build_phenomenological_model(bb72, noise, rounds=1)
        data_columns = model.check_matrix[:, :bb72.num_qubits]
        assert np.array_equal(
            data_columns[:bb72.num_z_stabilizers], bb72.hz
        )

    def test_sampler_reproducible(self, bb72):
        noise = HardwareNoiseModel.from_physical_error_rate(1e-3)
        model = build_phenomenological_model(bb72, noise, rounds=2)
        a = model.sample(20, seed=5)
        b = model.sample(20, seed=5)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_zero_rounds_rejected(self, bb72):
        noise = HardwareNoiseModel.from_physical_error_rate(1e-3)
        with pytest.raises(ValueError):
            build_phenomenological_model(bb72, noise, rounds=0)


class TestMemoryExperiment:
    def test_result_bookkeeping(self, bb72):
        result = logical_error_rate(bb72, physical_error_rate=1e-3,
                                    round_latency_us=10_000.0, shots=50,
                                    rounds=2, seed=1)
        assert isinstance(result, MemoryResult)
        assert result.shots == 50
        assert 0 <= result.failures <= 50
        assert 0.0 <= result.logical_error_rate <= 1.0
        assert 0.0 <= result.logical_error_rate_per_round <= \
            result.logical_error_rate + 1e-12
        assert result.standard_error >= 0

    def test_ler_increases_with_latency(self, bb72):
        experiment = MemoryExperiment(code=bb72, rounds=3, seed=7)
        fast = experiment.run(1e-3, 10_000.0, shots=150)
        slow = experiment.run(1e-3, 400_000.0, shots=150)
        assert slow.logical_error_rate >= fast.logical_error_rate

    def test_ler_increases_with_physical_error(self, bb72):
        experiment = MemoryExperiment(code=bb72, rounds=3, seed=8)
        low = experiment.run(1e-4, 50_000.0, shots=150)
        high = experiment.run(2e-3, 50_000.0, shots=150)
        assert high.logical_error_rate >= low.logical_error_rate

    def test_invalid_method_rejected(self, bb72):
        with pytest.raises(ValueError):
            MemoryExperiment(code=bb72, method="analytic")

    def test_rounds_default_capped(self):
        code = code_by_name("BB [[144,12,12]]")
        experiment = MemoryExperiment(code=code)
        assert experiment.rounds == 8

    def test_circuit_method_on_small_code(self):
        code = surface_code(3)
        experiment = MemoryExperiment(code=code, rounds=2, method="circuit",
                                      seed=3)
        result = experiment.run(2e-3, 0.0, shots=100)
        assert result.method == "circuit"
        assert result.logical_error_rate < 0.2
        assert "num_detectors" in result.metadata

    def test_phenomenological_metadata(self, bb72):
        experiment = MemoryExperiment(code=bb72, rounds=2, seed=4)
        result = experiment.run(1e-3, 50_000.0, shots=30)
        assert "data_error_rate" in result.metadata
        assert "bp_converged_fraction" in result.metadata
        assert result.metadata["idle_error"] > 0

    def test_repetition_code_corrects_bit_flips(self, repetition_code_d3):
        experiment = MemoryExperiment(code=repetition_code_d3, rounds=3,
                                      seed=5)
        protected = experiment.run(5e-3, 0.0, shots=300)
        assert protected.logical_error_rate < 0.05

    def test_per_round_rate_definition(self):
        result = MemoryResult(code_name="c", physical_error_rate=1e-3,
                              round_latency_us=0.0, rounds=4, shots=100,
                              failures=40, method="phenomenological",
                              basis="Z")
        per_shot = 0.4
        expected = 1 - (1 - per_shot) ** 0.25
        assert result.logical_error_rate_per_round == pytest.approx(expected)

    def test_zero_shot_edge_case(self):
        result = MemoryResult(code_name="c", physical_error_rate=1e-3,
                              round_latency_us=0.0, rounds=4, shots=0,
                              failures=0, method="phenomenological", basis="Z")
        assert result.logical_error_rate == 0.0
        assert result.standard_error == 0.0


class TestCircuitSweepCache:
    """Circuit-level sweeps must reuse the cached DEM fault signatures
    across operating points and still produce cold-build priors."""

    def _circuit(self, code, p):
        noise = HardwareNoiseModel.from_physical_error_rate(
            p, round_latency_us=100.0
        )
        return memory_experiment_circuit(code, noise, rounds=2)

    def test_structure_built_once_across_error_rates(self, surface_code_d3):
        cache = DemStructureCache()
        models = [cache.model_for(self._circuit(surface_code_d3, p))
                  for p in (1e-3, 2e-3, 5e-4)]
        assert cache.builds == 1
        # All points share the *same* signature matrices (identity, so
        # downstream decoder caches key on them), but the priors differ.
        assert models[1].check_matrix is models[0].check_matrix
        assert not np.array_equal(models[0].priors, models[1].priors)

    def test_cached_priors_match_cold_build(self, surface_code_d3):
        cache = DemStructureCache()
        cache.model_for(self._circuit(surface_code_d3, 1e-3))  # warm
        circuit = self._circuit(surface_code_d3, 3e-3)
        cached = cache.model_for(circuit)
        cold = detector_error_model(circuit)
        assert cache.builds == 1
        assert np.array_equal(cached.check_matrix, cold.check_matrix)
        assert np.array_equal(cached.observable_matrix,
                              cold.observable_matrix)
        assert np.array_equal(cached.priors, cold.priors)

    def test_skeleton_change_invalidates(self, surface_code_d3):
        cache = DemStructureCache()
        cache.model_for(self._circuit(surface_code_d3, 1e-3))
        # A structurally different circuit (extra round -> more faults
        # at new locations) must trigger a fresh build, not a stale hit.
        noise = HardwareNoiseModel.from_physical_error_rate(
            1e-3, round_latency_us=100.0
        )
        other = memory_experiment_circuit(surface_code_d3, noise, rounds=3)
        model = cache.model_for(other)
        assert cache.builds == 2
        cold = detector_error_model(other)
        assert np.array_equal(model.check_matrix, cold.check_matrix)

    def test_memory_experiment_reuses_structure_and_decoder(
            self, surface_code_d3):
        experiment = MemoryExperiment(code=surface_code_d3, rounds=2,
                                      method="circuit", seed=3)
        experiment.run(1e-3, 0.0, shots=40)
        pipeline = experiment._pipeline
        decoder = pipeline.local_state.decoder
        experiment.run(2e-3, 0.0, shots=40)
        assert experiment._dem_cache.builds == 1
        assert experiment._pipeline is pipeline
        # Re-priored, not rebuilt.
        assert experiment._pipeline.local_state.decoder is decoder
