"""End-to-end integration tests reproducing the paper's qualitative claims.

These are the "does the whole pipeline tell the paper's story" checks:
Cyclone is faster, smaller and yields a better logical error rate than
the grid baseline, the worst-case runtime bound holds, and the
circuit-level and phenomenological simulation paths agree on small
codes.
"""

from __future__ import annotations

import pytest

from repro import (
    MemoryExperiment,
    code_by_name,
    codesign_by_name,
    logical_error_rate,
    spacetime_comparison,
)
from repro.codes import surface_code


@pytest.fixture(scope="module")
def bb72():
    return code_by_name("BB [[72,12,6]]")


@pytest.fixture(scope="module")
def compiled_pair(bb72):
    baseline = codesign_by_name("baseline").compile(bb72)
    cyclone = codesign_by_name("cyclone").compile(bb72)
    return baseline, cyclone


class TestHeadlineClaims:
    def test_cyclone_speedup_between_2x_and_6x(self, compiled_pair):
        baseline, cyclone = compiled_pair
        speedup = baseline.execution_time_us / cyclone.execution_time_us
        assert 2.0 <= speedup <= 8.0

    def test_cyclone_halves_traps_and_ancillas(self, bb72, compiled_pair):
        baseline, cyclone = compiled_pair
        assert cyclone.metadata["num_traps"] <= \
            baseline.metadata["num_traps"] / 2
        assert cyclone.metadata["num_ancilla"] * 2 == \
            baseline.metadata["num_ancilla"]

    def test_cyclone_constant_dacs_vs_linear(self, compiled_pair):
        baseline, cyclone = compiled_pair
        assert cyclone.metadata["dac_count"] == 1
        assert baseline.metadata["dac_count"] == \
            baseline.metadata["num_traps"]

    def test_spacetime_improvement_order_10x(self, compiled_pair):
        baseline, cyclone = compiled_pair
        comparison = spacetime_comparison(baseline, cyclone)
        assert comparison["improvement_factor"] > 8

    def test_cyclone_ler_not_worse_than_baseline(self, bb72, compiled_pair):
        baseline, cyclone = compiled_pair
        p = 7e-4
        base_result = logical_error_rate(
            bb72, p, baseline.execution_time_us, shots=200, rounds=3, seed=21
        )
        cyc_result = logical_error_rate(
            bb72, p, cyclone.execution_time_us, shots=200, rounds=3, seed=21
        )
        assert cyc_result.logical_error_rate <= \
            base_result.logical_error_rate

    def test_roadblock_free_claim(self, compiled_pair):
        baseline, cyclone = compiled_pair
        assert cyclone.metadata["roadblock_events"] == 0
        assert baseline.metadata["roadblock_events"] > 0


class TestCrossValidation:
    def test_methods_agree_on_surface_code(self):
        code = surface_code(3)
        p = 3e-3
        phenom = MemoryExperiment(code=code, rounds=3,
                                  method="phenomenological", seed=2)
        circuit = MemoryExperiment(code=code, rounds=3, method="circuit",
                                   seed=2)
        ler_phenom = phenom.run(p, 0.0, shots=400).logical_error_rate
        ler_circuit = circuit.run(p, 0.0, shots=400).logical_error_rate
        # Both are small and within a factor-of-a-few of each other.
        assert ler_phenom < 0.2
        assert ler_circuit < 0.2
        if ler_circuit > 0 and ler_phenom > 0:
            ratio = ler_phenom / ler_circuit
            assert 0.05 < ratio < 20

    def test_all_codesigns_compile_every_paper_bb_code(self):
        for code_name in ("BB [[72,12,6]]", "BB [[90,8,10]]"):
            code = code_by_name(code_name)
            for design in ("baseline", "cyclone", "alternate_grid"):
                compiled = codesign_by_name(design).compile(code)
                assert compiled.execution_time_us > 0
                assert compiled.gate_count() == code.total_cnot_count

    def test_full_pipeline_on_hgp_code(self, hgp_225):
        cyclone = codesign_by_name("cyclone").compile(hgp_225)
        result = logical_error_rate(hgp_225, 3e-4,
                                    cyclone.execution_time_us, shots=60,
                                    rounds=3, seed=9)
        assert result.logical_error_rate <= 0.2
