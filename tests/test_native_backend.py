"""Native C kernel tier vs the packed numpy kernels: bit-identity.

The native tier (:mod:`repro.linalg.native`) re-implements the packed
GF(2) hot kernels in C, compiled on first use with the host toolchain.
Its whole contract is *bit-identity* with ``backend="packed"`` — GF(2)
arithmetic is exact and the fused min-sum performs the identical IEEE
operations in the identical order — so this suite cross-checks every
kernel pair over hypothesis-random shapes (including empty and
non-multiple-of-64 sizes), exactly as ``"packed"`` is cross-checked
against ``"bool"`` in ``test_backend_equivalence.py``.

Identity tests skip (never fail) on hosts without a C toolchain; the
fallback tests at the bottom run everywhere and prove that a broken
toolchain silently degrades ``backend="native"`` to the packed kernels
with identical results.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.decoders.bp import BeliefPropagationDecoder
from repro.decoders.bposd import BPOSDDecoder
from repro.decoders.gf2dense import PackedGF2Matrix, _gauss_jordan
from repro.linalg import bitops
from repro.linalg import native
from repro.linalg.native import (
    get_kernels,
    native_available,
    native_unavailable_reason,
    reset_native_state,
)

# Sizes that straddle the word (64) and byte (8) boundaries of the two
# packing layouts, plus arbitrary in-between values.
_edge_dims = st.one_of(
    st.sampled_from([1, 7, 8, 9, 63, 64, 65, 127, 128, 129]),
    st.integers(1, 150),
)
_maybe_empty_dims = st.one_of(st.just(0), _edge_dims)

needs_native = pytest.mark.skipif(
    not native_available(),
    reason="no C toolchain on this host; native tier falls back to packed",
)


def _random_bits(rng: np.random.Generator, shape: tuple[int, ...],
                 density: float = 0.4) -> np.ndarray:
    return (rng.random(shape) < density).astype(np.uint8)


def _random_check_matrix(rng: np.random.Generator, checks: int,
                         variables: int, density: float = 0.4) -> np.ndarray:
    """A random check matrix with no empty rows.

    BP's reduceat segmentation (both tiers) is defined for check
    matrices whose every row has at least one edge — the shape every
    detector error model produces — so the identity tests stay inside
    that contract.
    """
    matrix = _random_bits(rng, (checks, variables), density)
    matrix[np.arange(checks), rng.integers(0, variables, checks)] = 1
    return matrix


# ----------------------------------------------------------------------
@needs_native
class TestPopcountIdentity:
    @given(seed=st.integers(0, 2**31), n=_maybe_empty_dims)
    @settings(max_examples=40, deadline=None)
    def test_popcount_words_matches_numpy(self, seed, n):
        rng = np.random.default_rng(seed)
        words = rng.integers(0, 2**64, size=n, dtype=np.uint64)
        kernels = get_kernels()
        expected = bitops.popcount(words)
        result = kernels.popcount_words(words)
        assert result.dtype == np.uint8
        assert np.array_equal(result, expected)

    @given(seed=st.integers(0, 2**31), rows=_edge_dims, cols=_edge_dims)
    @settings(max_examples=25, deadline=None)
    def test_dispatch_2d(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        words = rng.integers(0, 2**64, size=(rows, cols), dtype=np.uint64)
        packed = bitops.popcount_words(words, backend="packed")
        routed = bitops.popcount_words(words, backend="native")
        assert np.array_equal(packed, routed)


@needs_native
class TestPackedMatmulIdentity:
    @given(seed=st.integers(0, 2**31), m=_maybe_empty_dims,
           n=_maybe_empty_dims, k=_maybe_empty_dims)
    @settings(max_examples=40, deadline=None)
    def test_matmul_matches_numpy(self, seed, m, n, k):
        rng = np.random.default_rng(seed)
        a = bitops.pack_bits(_random_bits(rng, (m, k)), axis=1)
        b = bitops.pack_bits(_random_bits(rng, (n, k)), axis=1)
        kernels = get_kernels()
        expected = bitops.packed_matmul(a, b)
        result = kernels.packed_matmul(a, b)
        assert result.dtype == np.uint8
        assert np.array_equal(result, expected)

    @given(seed=st.integers(0, 2**31), m=_maybe_empty_dims,
           n=_maybe_empty_dims, k=_maybe_empty_dims)
    @settings(max_examples=40, deadline=None)
    def test_matmul_words_matches_numpy(self, seed, m, n, k):
        rng = np.random.default_rng(seed)
        a = bitops.pack_bits(_random_bits(rng, (m, k)), axis=1)
        b = bitops.pack_bits(_random_bits(rng, (n, k)), axis=1)
        expected = bitops.packed_matmul_words(a, b, backend="packed")
        result = bitops.packed_matmul_words(a, b, backend="native")
        assert result.dtype == bitops.WORD_DTYPE
        assert expected.shape == result.shape
        assert np.array_equal(result, expected)


# ----------------------------------------------------------------------
@needs_native
class TestGaussJordanIdentity:
    @given(seed=st.integers(0, 2**31), rows=_maybe_empty_dims,
           cols=_edge_dims)
    @settings(max_examples=40, deadline=None)
    def test_elimination_with_syndrome_carry(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        matrix = _random_bits(rng, (rows, cols))
        order = rng.permutation(cols).astype(np.int64)
        syndrome = _random_bits(rng, (rows,))

        packed_np = np.packbits(matrix, axis=1)
        carry_np = syndrome.copy()
        rank_np, pivots_np = _gauss_jordan(packed_np, carry_np, order)

        packed_c = np.packbits(matrix, axis=1)
        carry_c = syndrome.copy()
        kernels = get_kernels()
        rank_c, pivots_c = kernels.gauss_jordan(packed_c, carry_c, order)

        assert rank_c == rank_np
        assert pivots_c == pivots_np
        assert np.array_equal(packed_c, packed_np)
        assert np.array_equal(carry_c, carry_np)

    @given(seed=st.integers(0, 2**31), rows=_edge_dims, cols=_edge_dims)
    @settings(max_examples=25, deadline=None)
    def test_elimination_with_transform_carry(self, seed, rows, cols):
        # 2-D carry: the packed row transform a factorization accumulates.
        rng = np.random.default_rng(seed)
        matrix = _random_bits(rng, (rows, cols))
        order = rng.permutation(cols).astype(np.int64)
        transform = np.packbits(np.identity(rows, dtype=np.uint8), axis=1)

        packed_np = np.packbits(matrix, axis=1)
        carry_np = transform.copy()
        rank_np, pivots_np = _gauss_jordan(packed_np, carry_np, order)

        packed_c = np.packbits(matrix, axis=1)
        carry_c = transform.copy()
        rank_c, pivots_c = get_kernels().gauss_jordan(packed_c, carry_c,
                                                      order)

        assert (rank_c, pivots_c) == (rank_np, pivots_np)
        assert np.array_equal(packed_c, packed_np)
        assert np.array_equal(carry_c, carry_np)

    @given(seed=st.integers(0, 2**31), rows=_maybe_empty_dims,
           cols=_edge_dims)
    @settings(max_examples=30, deadline=None)
    def test_solve_and_factorize_identity(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        matrix = _random_bits(rng, (rows, cols))
        order = rng.permutation(cols)
        # A consistent right-hand side: the syndrome of a random error.
        error = _random_bits(rng, (cols,))
        syndrome = (matrix @ error) % 2

        packed = PackedGF2Matrix(matrix, native=False)
        native_m = PackedGF2Matrix(matrix, native=True)
        assert native_m._kernels is not None

        expected = packed.gauss_jordan_solve(order, syndrome)
        assert np.array_equal(native_m.gauss_jordan_solve(order, syndrome),
                              expected)
        assert np.array_equal(native_m.solve_ordered(order, syndrome),
                              expected)
        if rows:
            factor_np = packed.factorize(order, cache=False)
            factor_c = native_m.factorize(order, cache=False)
            assert factor_c.rank == factor_np.rank
            assert np.array_equal(factor_c.pivot_cols, factor_np.pivot_cols)
            assert np.array_equal(factor_c.solve(syndrome), expected)

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_inconsistent_system_raises_in_both(self, seed):
        rng = np.random.default_rng(seed)
        # A rank-deficient matrix (duplicated rows) with a syndrome that
        # disagrees on the duplicates is unsolvable.
        row = _random_bits(rng, (1, 24))
        assume(row.any())
        matrix = np.vstack([row, row])
        syndrome = np.array([0, 1], dtype=np.uint8)
        order = np.arange(24)
        for is_native in (False, True):
            with pytest.raises(ValueError):
                PackedGF2Matrix(matrix, native=is_native).gauss_jordan_solve(
                    order, syndrome)


# ----------------------------------------------------------------------
def _decoder_pair(matrix, priors, **kwargs):
    packed = BeliefPropagationDecoder(matrix, priors, **kwargs)
    native_d = BeliefPropagationDecoder(matrix, priors, native=True,
                                        **kwargs)
    assert native_d._native_kernels is not None
    return packed, native_d


@needs_native
class TestMinSumIdentity:
    @given(seed=st.integers(0, 2**31), checks=_edge_dims,
           variables=_edge_dims, shots=st.integers(1, 12))
    @settings(max_examples=30, deadline=None)
    def test_check_update_bit_identical(self, seed, checks, variables,
                                        shots):
        rng = np.random.default_rng(seed)
        matrix = _random_check_matrix(rng, checks, variables)
        priors = rng.uniform(0.01, 0.3, variables)
        packed, native_d = _decoder_pair(matrix, priors)

        var_to_check = rng.normal(0.0, 8.0, (shots, packed._num_edges))
        # Exact ties exercise the first-minimum position rule.
        if packed._num_edges >= 2:
            var_to_check[:, 1] = var_to_check[:, 0]
        syndrome_signs = np.where(rng.random((shots, checks)) < 0.5,
                                  -1.0, 1.0)

        expected = packed._check_update(
            var_to_check, syndrome_signs, packed._edge_check,
            packed._check_starts, shots)
        result = native_d._check_update(
            var_to_check, syndrome_signs, native_d._edge_check,
            native_d._check_starts, shots)
        # Bit-for-bit float equality, not allclose: the C kernel performs
        # the identical IEEE-754 operations in the identical order.
        assert np.array_equal(result, expected)

    @given(seed=st.integers(0, 2**31), checks=st.integers(2, 24),
           variables=st.integers(2, 40), shots=st.integers(0, 16))
    @settings(max_examples=20, deadline=None)
    def test_bp_decode_batch_identical(self, seed, checks, variables,
                                       shots):
        rng = np.random.default_rng(seed)
        matrix = _random_check_matrix(rng, checks, variables, density=0.3)
        priors = rng.uniform(0.005, 0.2, variables)
        packed, native_d = _decoder_pair(matrix, priors, max_iterations=15)
        syndromes = _random_bits(rng, (shots, checks), density=0.3)

        a = packed.decode_batch(syndromes)
        b = native_d.decode_batch(syndromes)
        assert np.array_equal(a.errors, b.errors)
        assert np.array_equal(a.converged, b.converged)
        assert np.array_equal(a.posterior_llrs, b.posterior_llrs)


@needs_native
class TestBPOSDBackendIdentity:
    @given(seed=st.integers(0, 2**31), checks=st.integers(2, 20),
           variables=st.integers(4, 36), shots=st.integers(1, 24),
           osd_order=st.sampled_from([0, 2]))
    @settings(max_examples=15, deadline=None)
    def test_decode_batch_identical(self, seed, checks, variables, shots,
                                    osd_order):
        rng = np.random.default_rng(seed)
        matrix = _random_check_matrix(rng, checks, variables, density=0.3)
        priors = rng.uniform(0.005, 0.15, variables)
        kwargs = dict(max_iterations=8, osd_order=osd_order)
        packed = BPOSDDecoder(matrix, priors, backend="packed", **kwargs)
        native_d = BPOSDDecoder(matrix, priors, backend="native", **kwargs)
        assert native_d.native_active

        errors = _random_bits(rng, (shots, variables), density=0.2)
        syndromes = (errors @ matrix.T) % 2
        a = packed.decode_batch(syndromes)
        b = native_d.decode_batch(syndromes)
        assert np.array_equal(a.errors, b.errors)
        assert np.array_equal(a.bp_converged, b.bp_converged)


# ----------------------------------------------------------------------
@pytest.fixture
def fresh_probe(monkeypatch, tmp_path):
    """A clean probe under a scratch cache; restores the real one after."""
    reset_native_state()
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "cache"))
    yield monkeypatch
    reset_native_state()


class TestFallback:
    """Toolchain-less hosts degrade silently; these run everywhere."""

    def test_compile_failure_falls_back_to_packed(self, fresh_probe):
        # /bin/false "compiles" by exiting non-zero: the forced compile
        # failure.  The decoder must still build — on the packed kernels
        # — and decode bit-identically to backend="packed".
        fresh_probe.setenv("CC", "/bin/false")
        fresh_probe.delenv("REPRO_NATIVE", raising=False)
        assert not native_available()
        reason = native_unavailable_reason()
        assert reason is not None and "compile failed" in reason

        rng = np.random.default_rng(5)
        matrix = (rng.random((10, 24)) < 0.3).astype(np.uint8)
        matrix[0, 0] = 1
        priors = rng.uniform(0.01, 0.1, 24)
        syndromes = (rng.random((8, 10)) < 0.3).astype(np.uint8)
        packed = BPOSDDecoder(matrix, priors, backend="packed")
        fallback = BPOSDDecoder(matrix, priors, backend="native")
        assert not fallback.native_active
        a = packed.decode_batch(syndromes)
        b = fallback.decode_batch(syndromes)
        assert np.array_equal(a.errors, b.errors)
        assert np.array_equal(a.bp_converged, b.bp_converged)

    def test_missing_compiler_falls_back(self, fresh_probe):
        fresh_probe.setenv("CC", str("/nonexistent/bin/cc"))
        fresh_probe.delenv("REPRO_NATIVE", raising=False)
        assert not native_available()
        assert "no C compiler" in native_unavailable_reason()
        # bitops dispatch degrades to the numpy kernels, same results.
        words = np.arange(5, dtype=np.uint64)
        assert np.array_equal(
            bitops.popcount_words(words, backend="native"),
            bitops.popcount_words(words, backend="packed"),
        )

    def test_probe_failure_logs_one_note(self, fresh_probe, caplog):
        fresh_probe.setenv("CC", "/nonexistent/bin/cc")
        fresh_probe.delenv("REPRO_NATIVE", raising=False)
        with caplog.at_level("INFO", logger="repro.linalg.native"):
            assert get_kernels() is None
            assert get_kernels() is None  # memoised: no second note
        notes = [r for r in caplog.records
                 if "native kernel tier unavailable" in r.getMessage()]
        assert len(notes) == 1

    def test_repro_native_zero_disables(self, fresh_probe):
        fresh_probe.setenv("REPRO_NATIVE", "0")
        assert get_kernels() is None
        assert not native_available()
        assert "REPRO_NATIVE=0" in native_unavailable_reason()

    def test_repro_native_one_requires(self, fresh_probe):
        fresh_probe.setenv("CC", "/nonexistent/bin/cc")
        fresh_probe.setenv("REPRO_NATIVE", "1")
        with pytest.raises(RuntimeError, match="REPRO_NATIVE=1"):
            get_kernels()
        # native_available() stays a clean boolean even in required mode.
        assert not native_available()
        # ... but building a native decoder surfaces the failure loudly.
        with pytest.raises(RuntimeError, match="REPRO_NATIVE=1"):
            BPOSDDecoder(np.eye(3, dtype=np.uint8), np.full(3, 0.05),
                         backend="native")


# ----------------------------------------------------------------------
@needs_native
class TestBuildArtifacts:
    def test_fingerprint_written_next_to_library(self):
        kernels = get_kernels()
        assert kernels.path.exists()
        fingerprint_path = kernels.path.parent / "fingerprint.json"
        assert fingerprint_path.exists()
        assert kernels.fingerprint["abi_version"] == native.ABI_VERSION
        assert kernels.fingerprint["cflags"] == list(native.CFLAGS)

    def test_simulation_backend_mapping(self):
        assert native.simulation_backend("native") == "packed"
        assert native.simulation_backend("packed") == "packed"
        assert native.simulation_backend("bool") == "bool"
