"""Cross-module property-based tests (hypothesis).

These check structural invariants that must hold for *any* valid input,
not just the library's named instances: CSS commutation and parameter
formulas for arbitrary hypergraph products, schedule validity, linearity
of fault propagation, and decoder consistency.
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.circuits import memory_experiment_circuit
from repro.codes import hypergraph_product, x_then_z_schedule
from repro.codes.classical import ClassicalCode
from repro.codes.scheduling import serial_schedule
from repro.decoders import BPOSDDecoder
from repro.linalg import rank
from repro.noise import HardwareNoiseModel
from repro.sim import FrameSimulator, detector_error_model


@st.composite
def classical_codes(draw):
    """Small random classical codes with no empty rows/columns."""
    num_checks = draw(st.integers(2, 5))
    num_bits = draw(st.integers(num_checks, 7))
    matrix = draw(
        st.lists(
            st.lists(st.integers(0, 1), min_size=num_bits, max_size=num_bits),
            min_size=num_checks, max_size=num_checks,
        )
    )
    parity = np.array(matrix, dtype=np.uint8)
    assume(parity.sum(axis=1).min() > 0)
    assume(parity.sum(axis=0).min() > 0)
    return ClassicalCode(parity, name="random")


class TestHypergraphProductProperties:
    @given(classical_codes())
    @settings(max_examples=40, deadline=None)
    def test_css_commutation_always_holds(self, factor):
        code = hypergraph_product(factor)
        assert not ((code.hx @ code.hz.T) % 2).any()

    @given(classical_codes())
    @settings(max_examples=40, deadline=None)
    def test_parameter_formula(self, factor):
        code = hypergraph_product(factor)
        m, n = factor.parity_check.shape
        k_code = factor.dimension
        k_transpose = factor.transpose_dimension
        assert code.num_qubits == n * n + m * m
        assert code.num_logical_qubits == k_code ** 2 + k_transpose ** 2

    @given(classical_codes())
    @settings(max_examples=25, deadline=None)
    def test_logical_operator_counts(self, factor):
        code = hypergraph_product(factor)
        assert code.logical_x.shape[0] == code.num_logical_qubits
        assert code.logical_z.shape[0] == code.num_logical_qubits
        if code.num_logical_qubits:
            assert rank(code.logical_x) == code.num_logical_qubits


class TestScheduleProperties:
    @given(classical_codes())
    @settings(max_examples=30, deadline=None)
    def test_x_then_z_schedule_always_valid(self, factor):
        code = hypergraph_product(factor)
        schedule = x_then_z_schedule(code)
        assert schedule.validate()
        assert schedule.total_gates == code.total_cnot_count

    @given(classical_codes())
    @settings(max_examples=30, deadline=None)
    def test_parallel_schedule_never_deeper_than_serial(self, factor):
        code = hypergraph_product(factor)
        assert x_then_z_schedule(code).depth <= serial_schedule(code).depth


class TestFaultPropagationLinearity:
    @given(st.integers(0, 2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_two_faults_xor_to_combined_signature(self, seed):
        """Propagating faults A and B together equals XOR of A and B alone."""
        from repro.codes import surface_code
        from repro.sim.frame import FaultInjection

        code = surface_code(3)
        noise = HardwareNoiseModel.from_physical_error_rate(1e-3)
        circuit = memory_experiment_circuit(code, noise, rounds=2)
        rng = np.random.default_rng(seed)
        noisy_positions = [
            index for index, ins in enumerate(circuit.instructions)
            if ins.name == "DEPOLARIZE2"
        ]
        position_a, position_b = rng.choice(noisy_positions, 2, replace=False)
        qubit_a = int(rng.choice(circuit.instructions[position_a].targets))
        qubit_b = int(rng.choice(circuit.instructions[position_b].targets))

        simulator = FrameSimulator(circuit)
        separate = simulator.propagate_faults([
            FaultInjection(position_a, shot=0, x_flips=(qubit_a,)),
            FaultInjection(position_b, shot=1, x_flips=(qubit_b,)),
        ], shots=2)
        combined = simulator.propagate_faults([
            FaultInjection(position_a, shot=0, x_flips=(qubit_a,)),
            FaultInjection(position_b, shot=0, x_flips=(qubit_b,)),
        ], shots=1)
        assert np.array_equal(
            combined.detectors[0],
            separate.detectors[0] ^ separate.detectors[1],
        )
        assert np.array_equal(
            combined.observables[0],
            separate.observables[0] ^ separate.observables[1],
        )


class TestDecoderProperties:
    @given(st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_bposd_output_always_matches_syndrome(self, seed):
        from repro.codes import surface_code

        code = surface_code(3)
        rng = np.random.default_rng(seed)
        priors = np.full(code.num_qubits, 0.05)
        decoder = BPOSDDecoder(code.hz, priors, max_iterations=10)
        error = (rng.random(code.num_qubits) < 0.15).astype(np.uint8)
        syndrome = (code.hz @ error) % 2
        decoded = decoder.decode(syndrome)
        assert np.array_equal((code.hz @ decoded) % 2, syndrome)

    @given(st.integers(0, 5000))
    @settings(max_examples=15, deadline=None)
    def test_dem_decoding_consistency_on_surface_code(self, seed):
        from repro.codes import surface_code

        code = surface_code(3)
        noise = HardwareNoiseModel.from_physical_error_rate(2e-3)
        circuit = memory_experiment_circuit(code, noise, rounds=2)
        dem = detector_error_model(circuit)
        decoder = BPOSDDecoder(dem.check_matrix, dem.priors, max_iterations=15)
        sample = FrameSimulator(circuit, seed=seed).sample(16)
        result = decoder.decode_batch(sample.detectors)
        reproduced = (result.errors @ dem.check_matrix.T) % 2
        assert np.array_equal(reproduced.astype(bool), sample.detectors)
