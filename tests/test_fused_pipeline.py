"""Determinism suite for the fused sample→decode pipeline.

The contract under test (see ``repro.parallel.pipeline``): every shard
samples its own shots from a shard-indexed ``SeedSequence.spawn`` tree
and decodes them locally, so for a fixed ``(seed, shard_shots)`` the
results — failure counts, corrections, convergence flags — are
**bit-identical for any worker count** and equal to a shard-seeded
in-process run; and with ``workers > 1`` the parent process performs no
sampling at all.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.parallel.pipeline as pipeline_module
import repro.sim.frame as frame_module
from repro.circuits import memory_experiment_circuit
from repro.codes import code_by_name, surface_code
from repro.core.memory import MemoryExperiment
from repro.core.phenomenological import (
    build_phenomenological_model,
    sample_phenomenological_shard,
)
from repro.noise import HardwareNoiseModel
from repro.parallel import (
    DecoderHandle,
    ExperimentHandle,
    SharedPool,
    ShardedExperiment,
    shard_layout,
    shard_seed_tree,
)


@pytest.fixture(scope="module")
def bb72():
    return code_by_name("BB [[72,12,6]]")


@pytest.fixture(scope="module")
def phen_model(bb72):
    """A phenomenological model hot enough for a non-trivial OSD share."""
    noise = HardwareNoiseModel.from_physical_error_rate(
        3e-3, round_latency_us=100_000.0
    )
    return build_phenomenological_model(bb72, noise, rounds=2)


def _phen_handle(model, **decoder_kwargs) -> ExperimentHandle:
    return ExperimentHandle(
        decoder=DecoderHandle(model.check_matrix, model.priors,
                              max_iterations=12, **decoder_kwargs),
        observable_matrix=model.observable_matrix,
        method="phenomenological",
    )


class TestShardLayout:
    def test_even_split(self):
        assert shard_layout(256, 64) == [64, 64, 64, 64]

    def test_ragged_tail(self):
        assert shard_layout(150, 64) == [64, 64, 22]

    def test_zero_shots(self):
        assert shard_layout(0, 64) == []

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            shard_layout(-1, 64)
        with pytest.raises(ValueError):
            shard_layout(10, 0)


class TestShardSeedTree:
    @given(st.integers(0, 2 ** 31), st.integers(0, 8))
    @settings(max_examples=40, deadline=None)
    def test_tree_is_reproducible_and_children_independent(self, seed, n):
        a = shard_seed_tree(seed, n)
        b = shard_seed_tree(seed, n)
        assert len(a) == len(b) == n
        states = set()
        for child_a, child_b in zip(a, b):
            state = tuple(child_a.generate_state(4))
            assert state == tuple(child_b.generate_state(4))
            states.add(state)
        assert len(states) == n  # pairwise distinct streams

    @given(st.integers(0, 2 ** 31), st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_stream_depends_only_on_shard_index(self, seed, n_small, extra):
        """Child ``i`` is the same whatever the total shard count — the
        stream is keyed on the shard index, never on the shot budget's
        tail or on how many shards (workers) run beside it."""
        small = shard_seed_tree(seed, n_small)
        large = shard_seed_tree(seed, n_small + extra)
        for child_small, child_large in zip(small, large):
            assert np.array_equal(child_small.generate_state(4),
                                  child_large.generate_state(4))

    @given(st.integers(0, 2 ** 31))
    @settings(max_examples=25, deadline=None)
    def test_tree_ignores_caller_spawn_history(self, seed):
        """The tree rebuilds from the root's value, so a ``SeedSequence``
        that has already spawned elsewhere yields the same children."""
        fresh = np.random.SeedSequence(seed)
        used = np.random.SeedSequence(seed)
        used.spawn(3)  # unrelated spawning must not shift the tree
        a = shard_seed_tree(fresh, 4)
        b = shard_seed_tree(used, 4)
        for child_a, child_b in zip(a, b):
            assert np.array_equal(child_a.generate_state(4),
                                  child_b.generate_state(4))

    def test_sampled_stream_matches_model_sample(self, phen_model):
        """Shard ``i``'s phenomenological sample is exactly
        ``model.sample`` seeded with the tree's child ``i``."""
        sizes = shard_layout(150, 64)
        seeds = shard_seed_tree(123, len(sizes))
        for size, seed in zip(sizes, seeds):
            reference = phen_model.sample(size, seed=np.random.SeedSequence(
                entropy=seed.entropy, spawn_key=seed.spawn_key))
            shard = sample_phenomenological_shard(
                phen_model.check_matrix, phen_model.observable_matrix,
                phen_model.priors, size, seed,
            )
            assert np.array_equal(reference[0], shard[0])
            assert np.array_equal(reference[1], shard[1])


class TestFusedDeterminism:
    def _run(self, handle, workers, shots=220, shard_shots=48, seed=7,
             **run_kwargs):
        with ShardedExperiment(handle, workers=workers,
                               shard_shots=shard_shots) as sharded:
            return sharded.run(shots, seed, collect_errors=True,
                               **run_kwargs)

    def test_bit_identical_across_worker_counts(self, phen_model):
        handle = _phen_handle(phen_model)
        results = {w: self._run(handle, w) for w in (1, 2, 4)}
        baseline = results[1]
        assert baseline.failures > 0  # non-trivial operating point
        for workers, result in results.items():
            assert result.failures == baseline.failures, workers
            assert np.array_equal(result.bp_converged,
                                  baseline.bp_converged), workers
            assert np.array_equal(result.errors, baseline.errors), workers

    def test_equals_shard_seeded_in_process_run(self, phen_model):
        """The pipeline result is exactly what sampling each shard with
        its tree child and decoding in-process produces."""
        handle = _phen_handle(phen_model)
        shots, shard_shots, seed = 220, 48, 7
        sizes = shard_layout(shots, shard_shots)
        seeds = shard_seed_tree(seed, len(sizes))
        decoder = handle.decoder.build()
        failures = 0
        errors_parts = []
        for size, shard_seed in zip(sizes, seeds):
            syndromes, observables = phen_model.sample(size, seed=shard_seed)
            decoded = decoder.decode_batch(syndromes)
            predicted = (decoded.errors
                         @ phen_model.observable_matrix.T) % 2
            failures += int(np.any(
                predicted.astype(bool) != observables.astype(bool), axis=1
            ).sum())
            errors_parts.append(decoded.errors)
        result = self._run(handle, workers=2, shots=shots,
                           shard_shots=shard_shots, seed=seed)
        assert result.failures == failures
        assert np.array_equal(result.errors, np.concatenate(errors_parts))

    def test_circuit_method_bit_identical_across_workers(self):
        code = surface_code(3)
        noise = HardwareNoiseModel.from_physical_error_rate(
            2e-3, round_latency_us=0.0
        )
        circuit = memory_experiment_circuit(code, noise, rounds=2)
        from repro.sim import detector_error_model
        dem = detector_error_model(circuit)
        handle = ExperimentHandle(
            decoder=DecoderHandle(dem.check_matrix, dem.priors,
                                  max_iterations=12),
            observable_matrix=dem.observable_matrix,
            method="circuit",
        )
        results = {
            w: self._run(handle, w, shots=130, shard_shots=32, seed=5,
                         circuit=circuit)
            for w in (1, 2, 4)
        }
        baseline = results[1]
        for workers, result in results.items():
            assert result.failures == baseline.failures, workers
            assert np.array_equal(result.errors, baseline.errors), workers

    def test_priors_update_reaches_workers(self, phen_model):
        """A sweep's re-prior must take effect inside a warm pool."""
        handle = _phen_handle(phen_model)
        hot_priors = np.clip(phen_model.priors * 2.0, 0.0, 0.4)
        hot_handle = ExperimentHandle(
            decoder=handle.decoder.with_priors(hot_priors),
            observable_matrix=handle.observable_matrix,
            method="phenomenological",
        )
        fresh = self._run(hot_handle, workers=2)
        with ShardedExperiment(handle, workers=2,
                               shard_shots=48) as sharded:
            sharded.run(220, 7)  # warm the pool at the original priors
            repriored = sharded.run(220, 7, priors=hot_priors,
                                    collect_errors=True)
        assert repriored.failures == fresh.failures
        assert np.array_equal(repriored.errors, fresh.errors)

    def test_shots_zero(self, phen_model):
        handle = _phen_handle(phen_model)
        result = self._run(handle, workers=2, shots=0)
        assert result.failures == 0
        assert result.num_shards == 0
        assert result.bp_converged.shape == (0,)
        assert result.errors.shape[0] == 0
        assert result.logical_error_rate == 0.0
        assert result.bp_converged_fraction == 1.0

    def test_invalid_method_rejected(self, phen_model):
        with pytest.raises(ValueError):
            ExperimentHandle(
                decoder=DecoderHandle(phen_model.check_matrix,
                                      phen_model.priors),
                observable_matrix=phen_model.observable_matrix,
                method="analytic",
            )

    def test_circuit_method_requires_circuit(self, phen_model):
        handle = ExperimentHandle(
            decoder=DecoderHandle(phen_model.check_matrix,
                                  phen_model.priors),
            observable_matrix=phen_model.observable_matrix,
            method="circuit",
        )
        with ShardedExperiment(handle, workers=1) as sharded:
            with pytest.raises(ValueError, match="circuit"):
                sharded.run(10, 0)


class TestParentDoesNotSample:
    """With ``workers > 1`` sampling must run in the workers.

    The instrumentation wraps the samplers with recorders that delegate
    to the real implementation.  Worker processes inherit the wrapper on
    fork, but their recorded calls live in *their* address space — the
    parent-side lists below only see parent-side sampling.
    """

    def _recorder(self, monkeypatch, module, name):
        calls = []
        real = getattr(module, name)

        def recording(*args, **kwargs):
            calls.append(name)
            return real(*args, **kwargs)

        monkeypatch.setattr(module, name, recording)
        return calls

    def test_phenomenological_sampling_runs_in_workers(self, phen_model,
                                                       monkeypatch):
        calls = self._recorder(monkeypatch, pipeline_module,
                               "sample_phenomenological_shard")
        handle = _phen_handle(phen_model)
        with ShardedExperiment(handle, workers=2, shard_shots=48) as sharded:
            result = sharded.run(220, 7)
        assert result.shots == 220
        assert calls == []  # the parent sampled nothing
        # Instrumentation sanity: the in-process reference does sample.
        with ShardedExperiment(handle, workers=1, shard_shots=48) as local:
            local.run(96, 7)
        assert len(calls) == 2

    def test_circuit_sampling_runs_in_workers(self, monkeypatch):
        """Instrumented ``FrameSimulator``: the parent never simulates."""
        calls = self._recorder(monkeypatch, frame_module.FrameSimulator,
                               "sample")
        code = surface_code(3)
        with MemoryExperiment(code=code, rounds=2, method="circuit",
                              seed=3, shard_shots=32) as experiment:
            result = experiment.run(2e-3, 0.0, shots=130, workers=2)
        assert result.shots == 130
        assert calls == []
        with MemoryExperiment(code=code, rounds=2, method="circuit",
                              seed=3, shard_shots=32) as experiment:
            experiment.run(2e-3, 0.0, shots=130, workers=1)
        assert len(calls) > 0


class TestMemoryExperimentFusedPipeline:
    def test_phenomenological_memory_results_identical(self, bb72):
        results = {}
        for workers in (1, 2, 4):
            with MemoryExperiment(code=bb72, rounds=2, seed=11,
                                  shard_shots=64) as experiment:
                results[workers] = experiment.run(3e-3, 100_000.0,
                                                  shots=240,
                                                  workers=workers)
        baseline = results[1]
        assert baseline.failures > 0
        for workers, result in results.items():
            assert result.failures == baseline.failures, workers
            assert result.metadata == baseline.metadata, workers

    def test_num_shards_reported_and_worker_independent(self, bb72):
        with MemoryExperiment(code=bb72, rounds=2, seed=11,
                              shard_shots=64) as experiment:
            result = experiment.run(3e-3, 100_000.0, shots=240, workers=2)
        assert result.metadata["num_shards"] == 4

    def test_shard_shots_is_part_of_the_determinism_key(self, bb72):
        """Different shard sizes re-key the seed tree — document that
        comparisons require a fixed ``shard_shots``."""
        def run(shard_shots):
            with MemoryExperiment(code=bb72, rounds=2, seed=11,
                                  shard_shots=shard_shots) as experiment:
                return experiment.run(3e-3, 100_000.0, shots=240)
        a, b = run(64), run(32)
        # Both are valid Monte-Carlo estimates of the same point...
        assert a.shots == b.shots
        # ...but the realisations differ (with overwhelming probability).
        assert a.metadata["num_shards"] != b.metadata["num_shards"]


class TestSharedPoolLifecycle:
    """Close/``__del__`` idempotency and survival of worker exceptions
    when one pool is shared across sweeps."""

    def test_close_is_idempotent(self):
        pool = SharedPool(2)
        assert pool.workers == 2
        pool.close()
        pool.close()  # second close must be a no-op
        with pytest.raises(RuntimeError):
            _ = pool.executor

    def test_del_after_close_is_silent(self):
        pool = SharedPool(2)
        pool.close()
        pool.__del__()  # GC backstop after an explicit close

    def test_context_manager_closes(self):
        with SharedPool(2) as pool:
            assert pool.executor is not None
        with pytest.raises(RuntimeError):
            _ = pool.executor

    def test_pool_survives_worker_exception_across_sweeps(self, phen_model):
        """A worker exception (bad priors shape) must propagate to the
        caller without poisoning the shared pool: the next sweep on the
        same pool runs and stays bit-identical to a fresh-pool run."""
        handle = _phen_handle(phen_model)
        reference = None
        with ShardedExperiment(handle, workers=2,
                               shard_shots=48) as fresh:
            reference = fresh.run(220, 7, collect_errors=True)
        with SharedPool(2) as pool:
            first = ShardedExperiment(handle, pool=pool, shard_shots=48)
            with pytest.raises(Exception):
                first.run(220, 7, priors=np.ones(3) * 0.1)  # wrong shape
            second = ShardedExperiment(handle, pool=pool, shard_shots=48)
            result = second.run(220, 7, collect_errors=True)
            assert not pool.failed
        assert result.failures == reference.failures
        assert np.array_equal(result.errors, reference.errors)
