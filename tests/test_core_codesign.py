"""Tests for codesigns, spacetime cost, result tables and sweeps."""

from __future__ import annotations

import pytest

from repro.codes import code_by_name, surface_code
from repro.core import (
    Codesign,
    available_codesigns,
    codesign_by_name,
    spacetime_comparison,
    spacetime_cost,
    sweep_architectures,
    sweep_physical_error,
)
from repro.core.results import ResultTable
from repro.qccd import OperationTimes
from repro.qccd.compilers import CycloneCompiler


@pytest.fixture(scope="module")
def bb72():
    return code_by_name("BB [[72,12,6]]")


class TestCodesignRegistry:
    def test_registry_contains_paper_designs(self):
        names = available_codesigns()
        for expected in ("baseline", "cyclone", "alternate_grid",
                         "mesh_junction", "ejf_ring", "baseline2", "baseline3",
                         "baseline_grid_dynamic"):
            assert expected in names

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            codesign_by_name("warp_drive")

    def test_compiler_overrides_forwarded(self):
        codesign = codesign_by_name("cyclone", num_traps=16)
        assert codesign.compiler.num_traps == 16

    def test_with_times_propagates_to_compiler(self, bb72):
        slow = codesign_by_name("cyclone")
        fast = slow.with_times(OperationTimes(improvement_factor=0.5))
        assert fast.compile(bb72).execution_time_us < \
            slow.compile(bb72).execution_time_us

    def test_codesign_compile_and_spatial_summary(self, bb72):
        codesign = codesign_by_name("cyclone")
        compiled = codesign.compile(bb72)
        summary = codesign.spatial_summary(compiled)
        assert summary["num_traps"] == 36
        assert summary["dac_count"] == 1

    def test_custom_codesign_wrapping(self, bb72):
        custom = Codesign(name="custom", compiler=CycloneCompiler(num_traps=9))
        compiled = custom.compile(bb72)
        assert compiled.metadata["num_traps"] == 9


class TestSpacetime:
    def test_cost_product(self, bb72):
        compiled = codesign_by_name("cyclone").compile(bb72)
        cost = spacetime_cost(compiled)
        assert cost.cost == pytest.approx(
            cost.num_traps * cost.num_ancilla * cost.execution_time_us
        )

    def test_cyclone_beats_baseline_spacetime(self, bb72):
        baseline = codesign_by_name("baseline").compile(bb72)
        cyclone = codesign_by_name("cyclone").compile(bb72)
        comparison = spacetime_comparison(baseline, cyclone)
        assert comparison["improvement_factor"] > 5
        assert comparison["trap_ratio"] >= 2
        assert comparison["ancilla_ratio"] == pytest.approx(2.0)

    def test_relative_to_self_is_one(self, bb72):
        compiled = codesign_by_name("cyclone").compile(bb72)
        cost = spacetime_cost(compiled)
        assert cost.relative_to(cost) == pytest.approx(1.0)


class TestResultTable:
    def test_add_and_render(self):
        table = ResultTable(title="demo", columns=["a", "b"])
        table.add_row(a=1, b=2.5)
        table.add_row(a="x", b=1e-6)
        text = table.to_text()
        assert "demo" in text
        assert "1e-06" in text or "1.000e-06" in text
        assert len(table) == 2

    def test_unknown_column_rejected(self):
        table = ResultTable(title="demo", columns=["a"])
        with pytest.raises(KeyError):
            table.add_row(b=1)

    def test_column_access(self):
        table = ResultTable(title="demo", columns=["a"])
        table.add_row(a=1)
        table.add_row(a=2)
        assert table.column("a") == [1, 2]
        with pytest.raises(KeyError):
            table.column("missing")

    def test_empty_table_renders_header(self):
        table = ResultTable(title="empty", columns=["col"])
        assert "col" in table.to_text()


class TestSweeps:
    def test_physical_error_sweep_rows(self):
        code = surface_code(3)
        table = sweep_physical_error(code, round_latency_us=1000.0,
                                     physical_error_rates=[1e-3, 5e-3],
                                     shots=50, rounds=2)
        assert len(table) == 2
        lers = table.column("logical_error_rate")
        assert all(0.0 <= value <= 1.0 for value in lers)

    def test_ler_increases_with_p(self):
        code = surface_code(3)
        table = sweep_physical_error(code, round_latency_us=50_000.0,
                                     physical_error_rates=[1e-4, 2e-2],
                                     shots=150, rounds=2, seed=11)
        low, high = table.column("logical_error_rate")
        assert high >= low

    def test_architecture_sweep_without_ler(self, bb72):
        designs = [codesign_by_name("baseline"), codesign_by_name("cyclone")]
        table = sweep_architectures(bb72, designs)
        assert len(table) == 2
        assert "logical_error_rate" not in table.columns
        exec_times = dict(zip(table.column("codesign"),
                              table.column("execution_time_us")))
        assert exec_times["cyclone"] < exec_times["baseline"]

    def test_architecture_sweep_with_ler(self):
        code = surface_code(3)
        designs = [codesign_by_name("cyclone")]
        table = sweep_architectures(code, designs, physical_error_rate=1e-3,
                                    shots=40, rounds=2)
        assert "logical_error_rate" in table.columns
        assert len(table) == 1
