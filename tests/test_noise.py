"""Tests for the base, twirling and hardware-aware noise models."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noise import (
    BaseNoiseModel,
    HardwareNoiseModel,
    coherence_time_from_physical_error,
    decoherence_channel,
    pauli_twirl_probabilities,
)


class TestBaseNoiseModel:
    def test_defaults_derive_from_p(self):
        model = BaseNoiseModel(physical_error_rate=1e-3)
        assert model.p2 == 1e-3
        assert model.p_meas == 1e-3
        assert model.p_prep == 1e-3
        assert model.p1 == pytest.approx(1e-4)

    def test_overrides(self):
        model = BaseNoiseModel(physical_error_rate=1e-3,
                               measurement_error=5e-3)
        assert model.p_meas == 5e-3
        assert model.p2 == 1e-3

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            BaseNoiseModel(physical_error_rate=1.5)
        with pytest.raises(ValueError):
            BaseNoiseModel(physical_error_rate=0.1, two_qubit_error=-0.1)

    def test_with_physical_error_rate_preserves_overrides(self):
        model = BaseNoiseModel(physical_error_rate=1e-3,
                               measurement_error=5e-3)
        scaled = model.with_physical_error_rate(1e-4)
        assert scaled.p_meas == 5e-3
        assert scaled.p2 == 1e-4


class TestCoherenceFit:
    def test_anchor_points(self):
        assert coherence_time_from_physical_error(1e-4) == pytest.approx(100.0)
        assert coherence_time_from_physical_error(1e-3) == pytest.approx(10.0)

    def test_clamped_to_hardware_range(self):
        assert coherence_time_from_physical_error(1e-6, clamp=True) == 100.0
        assert coherence_time_from_physical_error(1e-2, clamp=True) == 10.0

    def test_rejects_non_positive_p(self):
        with pytest.raises(ValueError):
            coherence_time_from_physical_error(0.0)


class TestPauliTwirl:
    def test_zero_time_has_no_error(self):
        assert pauli_twirl_probabilities(0.0, 10.0, 10.0) == (0.0, 0.0, 0.0)

    def test_symmetric_t1_t2(self):
        px, py, pz = pauli_twirl_probabilities(1.0, 100.0, 100.0)
        assert px == pytest.approx(py)
        assert px > 0
        assert pz >= 0

    def test_pure_dephasing_dominates_when_t2_short(self):
        px, py, pz = pauli_twirl_probabilities(1.0, 100.0, 10.0)
        assert pz > px

    def test_unphysical_t2_rejected(self):
        with pytest.raises(ValueError):
            pauli_twirl_probabilities(1.0, 1.0, 3.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            pauli_twirl_probabilities(-1.0, 10.0, 10.0)

    def test_known_value(self):
        px, py, pz = pauli_twirl_probabilities(1.0, 1.0, 1.0)
        relax = 1 - math.exp(-1.0)
        assert px == pytest.approx(relax / 4)
        assert pz == pytest.approx(relax / 2 - relax / 4)

    @given(st.floats(1e-6, 10.0), st.floats(0.1, 100.0))
    @settings(max_examples=80, deadline=None)
    def test_probabilities_form_valid_channel(self, idle, t1):
        px, py, pz = pauli_twirl_probabilities(idle, t1, t1)
        assert 0 <= px <= 0.25 + 1e-9
        assert 0 <= pz <= 0.5
        assert px + py + pz <= 0.75 + 1e-9

    @given(st.floats(1e-6, 1.0), st.floats(1e-4, 1e-2))
    @settings(max_examples=60, deadline=None)
    def test_error_monotone_in_idle_time(self, idle, p):
        shorter = sum(decoherence_channel(idle, p))
        longer = sum(decoherence_channel(idle * 2, p))
        assert longer >= shorter - 1e-12


class TestHardwareNoiseModel:
    def test_idle_channel_zero_without_latency(self):
        model = HardwareNoiseModel.from_physical_error_rate(1e-3)
        assert model.idle_channel == (0.0, 0.0, 0.0)

    def test_idle_error_grows_with_latency(self):
        slow = HardwareNoiseModel.from_physical_error_rate(
            1e-3, round_latency_us=100_000.0
        )
        fast = HardwareNoiseModel.from_physical_error_rate(
            1e-3, round_latency_us=10_000.0
        )
        assert slow.total_idle_error > fast.total_idle_error > 0

    def test_idle_error_grows_with_physical_error_rate(self):
        low = HardwareNoiseModel.from_physical_error_rate(
            1e-4, round_latency_us=50_000.0
        )
        high = HardwareNoiseModel.from_physical_error_rate(
            1e-3, round_latency_us=50_000.0
        )
        assert high.total_idle_error > low.total_idle_error

    def test_explicit_coherence_times_used(self):
        model = HardwareNoiseModel.from_physical_error_rate(
            1e-3, round_latency_us=1000.0
        )
        explicit = HardwareNoiseModel(base=model.base,
                                      round_latency_us=1000.0,
                                      t1_s=1.0, t2_s=1.0)
        assert explicit.coherence_time_s == (1.0, 1.0)
        assert explicit.total_idle_error > model.total_idle_error

    def test_with_round_latency(self):
        model = HardwareNoiseModel.from_physical_error_rate(1e-3)
        updated = model.with_round_latency(2000.0)
        assert updated.round_latency_us == 2000.0
        assert model.round_latency_us == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            HardwareNoiseModel.from_physical_error_rate(
                1e-3, round_latency_us=-1.0
            )

    def test_paper_operating_point_magnitude(self):
        # p = 1e-4 and a ~100 ms round should give a per-round idle error
        # around 1e-3 (T1 = T2 = 100 s).
        model = HardwareNoiseModel.from_physical_error_rate(
            1e-4, round_latency_us=100_000.0
        )
        assert 1e-4 < model.total_idle_error < 1e-2
