"""Tests for the circuit intermediate representation."""

from __future__ import annotations

import pytest

from repro.circuits import Circuit, Instruction


class TestInstruction:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            Instruction(name="BOGUS", targets=(0,))

    def test_cx_requires_pairs(self):
        with pytest.raises(ValueError):
            Instruction(name="CX", targets=(0, 1, 2))

    def test_pauli_channel_requires_three_arguments(self):
        with pytest.raises(ValueError):
            Instruction(name="PAULI_CHANNEL_1", targets=(0,), arguments=(0.1,))

    def test_noise_flag(self):
        assert Instruction(name="X_ERROR", targets=(0,), argument=0.1).is_noise
        assert not Instruction(name="H", targets=(0,)).is_noise

    def test_measurement_flag(self):
        assert Instruction(name="M", targets=(0,)).is_measurement
        assert not Instruction(name="R", targets=(0,)).is_measurement


class TestCircuitBookkeeping:
    def test_qubit_count_tracks_max_target(self):
        circuit = Circuit()
        circuit.append("H", [0, 5])
        assert circuit.num_qubits == 6

    def test_measurement_indices_are_sequential(self):
        circuit = Circuit()
        first = circuit.measure([0, 1])
        second = circuit.measure(2)
        assert first == [0, 1]
        assert second == [2]
        assert circuit.num_measurements == 3

    def test_detector_and_observable_counts(self):
        circuit = Circuit()
        circuit.measure([0, 1])
        circuit.detector([0])
        circuit.detector([0, 1])
        circuit.observable_include([1], observable=0)
        assert circuit.num_detectors == 2
        assert circuit.num_observables == 1

    def test_gate_count_counts_pairs_for_cx(self):
        circuit = Circuit()
        circuit.append("CX", [0, 1, 2, 3])
        circuit.append("CX", [4, 5])
        assert circuit.gate_count("CX") == 3

    def test_count_by_name(self):
        circuit = Circuit()
        circuit.tick()
        circuit.tick()
        circuit.append("H", [0])
        assert circuit.count("TICK") == 2
        assert circuit.num_ticks == 2

    def test_measure_in_x_basis_uses_mx(self):
        circuit = Circuit()
        circuit.measure([0], basis="X")
        assert circuit.instructions[-1].name == "MX"

    def test_noise_instructions_include_noisy_measurements(self):
        circuit = Circuit()
        circuit.append("DEPOLARIZE1", [0], 0.01)
        circuit.measure([0], flip_probability=0.02)
        circuit.measure([1])
        noisy = circuit.noise_instructions()
        assert len(noisy) == 2

    def test_without_noise_strips_channels_and_flips(self):
        circuit = Circuit()
        circuit.append("R", [0])
        circuit.append("X_ERROR", [0], 0.1)
        circuit.measure([0], flip_probability=0.2)
        circuit.detector([0])
        clean = circuit.without_noise()
        assert clean.count("X_ERROR") == 0
        assert clean.num_detectors == 1
        measurement = [ins for ins in clean if ins.name == "M"][0]
        assert measurement.argument == 0.0

    def test_to_text_round_trips_names(self):
        circuit = Circuit()
        circuit.append("R", [0, 1])
        circuit.append("CX", [0, 1])
        circuit.append("DEPOLARIZE2", [0, 1], 0.001)
        text = circuit.to_text()
        assert "CX 0 1" in text
        assert "DEPOLARIZE2(0.001) 0 1" in text

    def test_len_and_iter(self):
        circuit = Circuit()
        circuit.append("H", [0])
        circuit.tick()
        assert len(circuit) == 2
        assert [ins.name for ins in circuit] == ["H", "TICK"]
