"""Tests for the command-line interface and result-table export."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.core.results import ResultTable


class TestResultTableExport:
    def test_to_csv_round_trip(self):
        table = ResultTable(title="t", columns=["a", "b"])
        table.add_row(a=1, b="x")
        table.add_row(a=2, b="y")
        lines = table.to_csv().strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"
        assert len(lines) == 3

    def test_to_json_structure(self):
        table = ResultTable(title="t", columns=["a"])
        table.add_row(a=1.5)
        payload = json.loads(table.to_json())
        assert payload["title"] == "t"
        assert payload["rows"] == [{"a": 1.5}]

    def test_save_by_suffix(self, tmp_path):
        table = ResultTable(title="t", columns=["a"])
        table.add_row(a=1)
        csv_path = table.save(tmp_path / "out.csv")
        json_path = table.save(tmp_path / "out.json")
        txt_path = table.save(tmp_path / "out.txt")
        assert csv_path.read_text().startswith("a")
        assert json.loads(json_path.read_text())["columns"] == ["a"]
        assert "t" in txt_path.read_text()


class TestParser:
    def test_requires_subcommand(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_compile_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["compile", "BB [[72,12,6]]"])
        assert args.codesigns == ["baseline", "cyclone"]

    def test_memory_arguments(self):
        parser = build_parser()
        args = parser.parse_args([
            "memory", "surface-d3", "--shots", "10",
            "--physical-error-rates", "1e-3", "2e-3",
        ])
        assert args.shots == 10
        assert args.physical_error_rates == [1e-3, 2e-3]
        assert args.workers == 1  # in-process by default

    def test_memory_workers_flag(self):
        parser = build_parser()
        args = parser.parse_args(["memory", "surface-d3", "--workers", "4"])
        assert args.workers == 4


class TestCommands:
    def test_codes_command(self, capsys):
        assert main(["codes"]) == 0
        output = capsys.readouterr().out
        assert "BB [[144,12,12]]" in output
        assert "surface-d3" in output

    def test_compile_command_with_output(self, capsys, tmp_path):
        out_file = tmp_path / "compile.csv"
        exit_code = main([
            "compile", "surface-d3", "--codesigns", "cyclone",
            "--output", str(out_file),
        ])
        assert exit_code == 0
        assert out_file.exists()
        assert "cyclone" in capsys.readouterr().out

    def test_compile_command_unknown_codesign(self, capsys):
        assert main(["compile", "surface-d3", "--codesigns", "bogus"]) == 2
        assert "unknown codesigns" in capsys.readouterr().err

    def test_memory_command(self, capsys, tmp_path):
        out_file = tmp_path / "ler.json"
        exit_code = main([
            "memory", "surface-d3", "--codesign", "cyclone",
            "--physical-error-rates", "2e-3", "--shots", "30",
            "--rounds", "2", "--output", str(out_file),
        ])
        assert exit_code == 0
        payload = json.loads(out_file.read_text())
        assert len(payload["rows"]) == 1
        assert 0.0 <= payload["rows"][0]["logical_error_rate"] <= 1.0

    def test_memory_command_with_workers(self, capsys, tmp_path):
        """--workers must not change the sweep's numbers, only its wall
        clock; compare a genuinely sharded 2-worker run (--shard-shots
        48 splits the 130-shot batch into three shards, so the process
        pool really runs) against the in-process result."""
        outputs = {}
        for workers in (1, 2):
            out_file = tmp_path / f"ler-{workers}.json"
            exit_code = main([
                "memory", "surface-d3", "--codesign", "cyclone",
                "--physical-error-rates", "3e-3", "--shots", "130",
                "--rounds", "2", "--workers", str(workers),
                "--shard-shots", "48", "--output", str(out_file),
            ])
            assert exit_code == 0
            capsys.readouterr()
            outputs[workers] = json.loads(out_file.read_text())["rows"]
        assert outputs[1] == outputs[2]

    def test_memory_command_with_target_precision(self, capsys, tmp_path):
        """--target-precision runs the adaptive scheduler: rows report
        shots_used / Wilson bounds, and the noisy point gets the
        budget."""
        out_file = tmp_path / "ler.json"
        exit_code = main([
            "memory", "surface-d3", "--codesign", "cyclone",
            "--physical-error-rates", "3e-3", "2e-2", "--shots", "400",
            "--rounds", "2", "--target-precision", "0.02",
            "--pilot-shots", "64", "--output", str(out_file),
        ])
        assert exit_code == 0
        capsys.readouterr()
        rows = json.loads(out_file.read_text())["rows"]
        assert len(rows) == 2
        quiet, noisy = rows
        assert quiet["shots_used"] < noisy["shots_used"]
        assert quiet["stopped_early"]
        for row in rows:
            assert 0.0 <= row["ci_low"] <= row["ci_high"] <= 1.0

    def test_relative_precision_requires_target(self, capsys):
        exit_code = main([
            "memory", "surface-d3", "--relative-precision",
            "--physical-error-rates", "3e-3", "--shots", "10",
        ])
        assert exit_code == 2
        assert "--target-precision" in capsys.readouterr().err

    def test_speedup_command(self, capsys):
        exit_code = main(["speedup", "--codes", "BB [[72,12,6]]"])
        assert exit_code == 0
        assert "speedup" in capsys.readouterr().out


class TestCampaignListSpecs:
    def test_list_specs_format_is_pinned(self, capsys):
        """The --list-specs layout is part of the CLI contract: specs
        first, then every registered kind with its parameter schema."""
        from repro.campaign import available_kinds, available_specs

        assert main(["campaign", "--list-specs"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("builtin specs:\n")
        for name in available_specs():
            assert f"\n  {name} (" in "\n" + out
        assert "\nsweep kinds:\n" in out
        for name in available_kinds():
            assert f"\n  {name}: " in out
        # One "- param (type, default=...)" schema line per kind param.
        assert ("    - speedups (list[float], default=[1.0, 2.0, 4.0]): "
                "divisors applied to the compiled baseline latency") in out
        assert "    - check_backend (str, default='bool')" in out
        assert "    - num_scenarios (int, default=8)" in out

    def test_full_spec_lists_every_figure_sweep(self, capsys):
        from repro.campaign import builtin_spec

        spec = builtin_spec("paper_figures_full")
        names = {sweep.name for sweep in spec.sweeps}
        assert {"fig14_bb72_baseline", "fig14_bb144_cyclone",
                "fig15_hgp225_baseline", "fig15_hgp400_cyclone",
                "fig05_depth_speedup", "fig09_junction",
                "fig13_trap_arrangement", "fig17_loose_capacity",
                "fig18_operation_time", "fig20_compilers",
                "fig21_swap"} <= names


class TestCampaignScenarioMismatch:
    def test_oracle_mismatch_exits_4_with_replay_path(self, capsys,
                                                      monkeypatch, tmp_path):
        import repro.cli as cli_module
        from repro.campaign import ScenarioMismatch
        from repro.campaign.scenarios import (generate_scenario,
                                              write_failure_scenario)

        scenario = generate_scenario(3, 0, shots=16)
        path = write_failure_scenario(scenario, tmp_path, reason="injected")

        def failing_campaign(spec, **kwargs):
            raise ScenarioMismatch("injected oracle mismatch", scenario,
                                   path)

        monkeypatch.setattr(cli_module, "run_campaign", failing_campaign)
        assert main(["campaign", "scenario_fuzz"]) == 4
        err = capsys.readouterr().err
        assert "injected oracle mismatch" in err
        assert f"minimized failure scenario: {path}" in err


class TestCampaignFaultExitCodes:
    """The campaign exit-code table (0/1/2/3/4/5) is a CLI contract."""

    def test_bad_fault_plan_exits_2(self, capsys):
        assert main(["campaign", "ci_smoke",
                     "--fault-plan", '{"bogus": 1}']) == 2
        assert "bad --fault-plan" in capsys.readouterr().err

    def test_injected_crash_exits_1(self, capsys, tmp_path):
        store = tmp_path / "store.jsonl"
        code = main(["campaign", "ci_smoke", "--store", str(store),
                     "--fault-plan", '{"tear_after_records": 0}'])
        assert code == 1
        assert "injected fault" in capsys.readouterr().err
        # The torn tail is exactly that: a file not ending in a newline.
        assert store.exists()
        assert not store.read_text().endswith("\n")

    def test_injected_interrupt_exits_5_and_resume_completes(
            self, capsys, tmp_path):
        store = tmp_path / "store.jsonl"
        code = main(["campaign", "ci_smoke", "--store", str(store),
                     "--fault-plan", '{"sigterm_after_points": 1}'])
        err = capsys.readouterr().err
        assert code == 5
        assert "interrupted" in err
        assert "rerun with the same spec and store to resume" in err
        # The interrupted run flushed its finalised points; a clean
        # rerun resumes them and finishes with exit 0.
        assert main(["campaign", "ci_smoke", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "reused from the store" in out

    def test_sigterm_mid_run_sets_stop_flag(self, monkeypatch, capsys):
        """The handlers wire the OS signal to the orchestrator's stop
        callback: deliver a real SIGTERM while run_campaign is 'running'
        and observe stop() flipping, then exit 5."""
        import signal as signal_module

        import repro.cli as cli_module
        from repro.campaign import CampaignInterrupted

        observed = {}

        def fake_campaign(spec, stop=None, **kwargs):
            assert stop is not None and not stop()
            signal_module.raise_signal(signal_module.SIGTERM)
            observed["stopped"] = stop()
            raise CampaignInterrupted("stopped by test")

        monkeypatch.setattr(cli_module, "run_campaign", fake_campaign)
        assert main(["campaign", "ci_smoke"]) == 5
        assert observed["stopped"] is True
        assert "stopped by test" in capsys.readouterr().err

    def test_signal_handlers_restored_after_run(self, monkeypatch):
        import signal as signal_module

        import repro.cli as cli_module

        def fake_campaign(spec, **kwargs):
            raise ValueError("boom")

        monkeypatch.setattr(cli_module, "run_campaign", fake_campaign)
        before = {s: signal_module.getsignal(s)
                  for s in (signal_module.SIGINT, signal_module.SIGTERM)}
        assert main(["campaign", "ci_smoke"]) == 2
        after = {s: signal_module.getsignal(s)
                 for s in (signal_module.SIGINT, signal_module.SIGTERM)}
        assert before == after

    def test_fault_knobs_reach_run_campaign(self, monkeypatch, capsys,
                                            tmp_path):
        import repro.cli as cli_module
        from repro.campaign import run_campaign as real_campaign

        seen = {}

        def spying_campaign(spec, **kwargs):
            seen.update(kwargs)
            return real_campaign(spec, **kwargs)

        monkeypatch.setattr(cli_module, "run_campaign", spying_campaign)
        assert main(["campaign", "ci_smoke", "--shard-timeout", "30",
                     "--max-shard-retries", "5"]) == 0
        capsys.readouterr()
        assert seen["shard_timeout"] == 30.0
        assert seen["max_shard_retries"] == 5


class TestJoinFlags:
    def test_join_without_store_exits_2(self, capsys):
        assert main(["campaign", "ci_smoke", "--join"]) == 2
        assert "--join requires --store" in capsys.readouterr().err

    def test_join_knobs_reach_run_campaign(self, monkeypatch, capsys,
                                           tmp_path):
        import repro.cli as cli_module
        from repro.campaign import run_campaign as real_campaign

        seen = {}

        def spying_campaign(spec, **kwargs):
            seen.update(kwargs)
            return real_campaign(spec, **kwargs)

        monkeypatch.setattr(cli_module, "run_campaign", spying_campaign)
        store = tmp_path / "store.jsonl"
        assert main(["campaign", "ci_smoke", "--join", "--store",
                     str(store), "--worker-id", "blue", "--lease-ttl",
                     "30", "--claim-batch", "3"]) == 0
        capsys.readouterr()
        assert seen["join"] is True
        assert seen["worker_id"] == "blue"
        assert seen["lease_ttl"] == 30.0
        assert seen["claim_batch"] == 3

    def test_joined_resume_asserts_no_sampling(self, capsys, tmp_path):
        store = tmp_path / "store.jsonl"
        assert main(["campaign", "ci_smoke", "--join", "--store",
                     str(store), "--worker-id", "one"]) == 0
        capsys.readouterr()
        assert main(["campaign", "ci_smoke", "--join", "--store",
                     str(store), "--worker-id", "two",
                     "--assert-no-sampling"]) == 0


class TestStoreCommand:
    """`repro store merge/verify/repair` exit codes and output."""

    def _store(self, path, records):
        from repro.campaign import ResultStore
        store = ResultStore(path)
        for record in records:
            store.append(record)
        return path

    def test_merge_exits_0_and_writes_output(self, capsys, tmp_path):
        a = self._store(tmp_path / "a.jsonl",
                        [{"key": "x", "failures": 1, "shots": 10}])
        b = self._store(tmp_path / "b.jsonl",
                        [{"key": "y", "failures": 2, "shots": 20}])
        out = tmp_path / "merged.jsonl"
        assert main(["store", "merge", str(out), str(a), str(b)]) == 0
        assert "2 records" in capsys.readouterr().out
        assert out.exists()

    def test_merge_conflicts_exit_1(self, capsys, tmp_path):
        a = self._store(tmp_path / "a.jsonl",
                        [{"key": "x", "failures": 1, "shots": 10}])
        b = self._store(tmp_path / "b.jsonl",
                        [{"key": "x", "failures": 9, "shots": 10}])
        assert main(["store", "merge", str(tmp_path / "m.jsonl"),
                     str(a), str(b)]) == 1
        assert "CONFLICTS on 1 key(s)" in capsys.readouterr().err

    def test_merge_missing_input_exits_2(self, capsys, tmp_path):
        assert main(["store", "merge", str(tmp_path / "m.jsonl"),
                     str(tmp_path / "nope.jsonl")]) == 2
        assert "no such store" in capsys.readouterr().err

    def test_verify_clean_exits_0(self, capsys, tmp_path):
        path = self._store(tmp_path / "s.jsonl",
                           [{"key": "x", "failures": 1, "shots": 10}])
        assert main(["store", "verify", str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_verify_problems_exit_1_with_repair_hint(self, capsys,
                                                     tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"key": "a", "version": 1}\n'
                        'interior garbage\n'
                        '{"key": "b", "version": 1}\n')
        assert main(["store", "verify", str(path)]) == 1
        err = capsys.readouterr().err
        assert "PROBLEM" in err
        assert "repro store repair" in err

    def test_repair_then_verify_round_trip(self, capsys, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"key": "a", "version": 1}\n'
                        'interior garbage\n')
        assert main(["store", "repair", str(path)]) == 0
        out = capsys.readouterr().out
        assert "kept 1" in out and "dropped 1" in out
        assert main(["store", "verify", str(path)]) == 0

    def test_repair_missing_exits_2(self, capsys, tmp_path):
        assert main(["store", "repair",
                     str(tmp_path / "nope.jsonl")]) == 2


class TestServeCommand:
    """`repro serve` argument handling and exit codes (0 = graceful
    drain, 1 = crash such as a taken port, 2 = usage); the serving
    behaviour itself lives in tests/test_service.py."""

    def test_store_flag_is_required(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve"])
        assert excinfo.value.code == 2
        assert "--store" in capsys.readouterr().err

    def test_out_of_range_port_exits_2(self, capsys, tmp_path):
        assert main(["serve", "--store", str(tmp_path / "s.jsonl"),
                     "--port", "70000"]) == 2
        assert "port" in capsys.readouterr().err

    def test_negative_workers_exits_2(self, capsys, tmp_path):
        assert main(["serve", "--store", str(tmp_path / "s.jsonl"),
                     "--workers", "-2"]) == 2
        assert "workers" in capsys.readouterr().err

    def test_taken_port_exits_1(self, capsys, tmp_path):
        import socket

        with socket.socket() as blocker:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            assert main(["serve", "--store", str(tmp_path / "s.jsonl"),
                         "--port", str(port)]) == 1
        assert "cannot serve" in capsys.readouterr().err

    def test_parser_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--store", "s.jsonl"])
        assert args.host == "127.0.0.1"
        assert args.port == 8731
        assert args.workers == 1
        assert args.port_file is None
