"""Tests for BP, BP+OSD, lookup decoders and the packed GF(2) solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import code_by_name, surface_code
from repro.decoders import (
    BeliefPropagationDecoder,
    BPOSDDecoder,
    LookupDecoder,
)
from repro.decoders.gf2dense import PackedGF2Matrix
from repro.linalg import gf2_matrix


REPETITION_H = np.array([[1, 1, 0, 0, 0],
                         [0, 1, 1, 0, 0],
                         [0, 0, 1, 1, 0],
                         [0, 0, 0, 1, 1]], dtype=np.uint8)


class TestPackedGF2Matrix:
    def test_solves_identity_system(self):
        matrix = np.identity(5, dtype=np.uint8)
        packed = PackedGF2Matrix(matrix)
        syndrome = np.array([1, 0, 1, 1, 0], dtype=np.uint8)
        solution = packed.gauss_jordan_solve(np.arange(5), syndrome)
        assert np.array_equal(solution, syndrome)

    def test_solution_satisfies_system(self):
        rng = np.random.default_rng(0)
        matrix = rng.integers(0, 2, (6, 10), dtype=np.uint8)
        x = rng.integers(0, 2, 10, dtype=np.uint8)
        syndrome = (matrix @ x) % 2
        packed = PackedGF2Matrix(matrix)
        solution = packed.gauss_jordan_solve(np.arange(10), syndrome)
        assert np.array_equal((matrix @ solution) % 2, syndrome)

    def test_column_order_prefers_early_columns(self):
        matrix = np.array([[1, 1]], dtype=np.uint8)
        packed = PackedGF2Matrix(matrix)
        prefer_second = packed.gauss_jordan_solve(np.array([1, 0]),
                                                  np.array([1], dtype=np.uint8))
        assert prefer_second.tolist() == [0, 1]

    def test_inconsistent_system_raises(self):
        matrix = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        packed = PackedGF2Matrix(matrix)
        with pytest.raises(ValueError):
            packed.gauss_jordan_solve(np.arange(2),
                                      np.array([1, 0], dtype=np.uint8))

    def test_column_bit_extraction(self):
        matrix = np.zeros((2, 12), dtype=np.uint8)
        matrix[1, 9] = 1
        packed = PackedGF2Matrix(matrix)
        bits = packed.column_bit(np.array([0, 1]), 9)
        assert bits.tolist() == [0, 1]

    @given(st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_random_consistent_systems(self, seed):
        rng = np.random.default_rng(seed)
        rows, cols = rng.integers(1, 12, 2)
        matrix = rng.integers(0, 2, (rows, cols), dtype=np.uint8)
        x = rng.integers(0, 2, cols, dtype=np.uint8)
        syndrome = (matrix @ x) % 2
        order = rng.permutation(cols)
        solution = PackedGF2Matrix(matrix).gauss_jordan_solve(order, syndrome)
        assert np.array_equal((matrix @ solution) % 2, syndrome)


class TestFactorizationCache:
    """The keyed factorization cache must change work, never results."""

    def _system(self, seed=3, rows=8, cols=14):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 2, (rows, cols), dtype=np.uint8)
        x = rng.integers(0, 2, cols, dtype=np.uint8)
        return matrix, ((matrix @ x) % 2).astype(np.uint8)

    def test_factorize_returns_cached_object_on_repeat(self):
        matrix, _ = self._system()
        packed = PackedGF2Matrix(matrix)
        order = np.arange(matrix.shape[1])
        first = packed.factorize(order)
        second = packed.factorize(order)
        assert second is first
        assert packed.factor_cache_hits == 1
        assert packed.factor_cache_builds == 1

    def test_cache_disabled_builds_fresh(self):
        matrix, _ = self._system()
        packed = PackedGF2Matrix(matrix, factor_cache_size=0)
        order = np.arange(matrix.shape[1])
        assert packed.factorize(order) is not packed.factorize(order)
        assert packed.factor_cache_hits == 0

    @given(st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_solve_ordered_matches_gauss_jordan(self, seed):
        rng = np.random.default_rng(seed)
        rows, cols = rng.integers(1, 12, 2)
        matrix = rng.integers(0, 2, (rows, cols), dtype=np.uint8)
        order = rng.permutation(cols)
        cached = PackedGF2Matrix(matrix)
        reference = PackedGF2Matrix(matrix, factor_cache_size=0)
        for _ in range(4):  # cover miss, second-sighting, and hit paths
            x = rng.integers(0, 2, cols, dtype=np.uint8)
            syndrome = ((matrix @ x) % 2).astype(np.uint8)
            assert np.array_equal(
                cached.solve_ordered(order, syndrome),
                reference.gauss_jordan_solve(order, syndrome),
            )

    def test_solve_ordered_factorizes_on_second_sighting(self):
        matrix, syndrome = self._system()
        packed = PackedGF2Matrix(matrix)
        order = np.arange(matrix.shape[1])
        packed.solve_ordered(order, syndrome)  # first: direct solve
        assert packed.factor_cache_builds == 0
        packed.solve_ordered(order, syndrome)  # second: factorize
        assert packed.factor_cache_builds == 1
        packed.solve_ordered(order, syndrome)  # third: replay
        assert packed.factor_cache_hits == 1

    def test_solve_ordered_inconsistent_raises_on_every_path(self):
        matrix = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        packed = PackedGF2Matrix(matrix)
        order = np.arange(2)
        bad = np.array([1, 0], dtype=np.uint8)
        for _ in range(3):  # direct, factorizing and cached-replay paths
            with pytest.raises(ValueError):
                packed.solve_ordered(order, bad)

    def test_cache_is_lru_bounded(self):
        matrix, _ = self._system()
        packed = PackedGF2Matrix(matrix, factor_cache_size=4)
        rng = np.random.default_rng(0)
        for _ in range(10):
            packed.factorize(rng.permutation(matrix.shape[1]))
        assert len(packed._factor_cache) == 4

    def test_osd_corrections_identical_with_and_without_cache(self):
        """BP+OSD corrections must not depend on cache state — decode
        the same batch twice (cold cache vs warm cache) and against a
        cache-disabled decoder."""
        code = surface_code(5)
        matrix = code.hz
        rng = np.random.default_rng(17)
        priors = np.full(matrix.shape[1], 0.05)
        errors = rng.random((120, matrix.shape[1])) < 0.06
        syndromes = ((errors @ matrix.T) % 2).astype(np.uint8)
        for osd_order in (0, 2):
            decoder = BPOSDDecoder(matrix, priors, max_iterations=15,
                                   osd_order=osd_order, backend="packed")
            cold = decoder.decode_batch(syndromes)
            warm = decoder.decode_batch(syndromes)
            uncached = BPOSDDecoder(matrix, priors, max_iterations=15,
                                    osd_order=osd_order, backend="packed")
            uncached._packed = PackedGF2Matrix(matrix, factor_cache_size=0)
            reference = uncached.decode_batch(syndromes)
            assert np.array_equal(cold.errors, warm.errors)
            assert np.array_equal(cold.errors, reference.errors)

    def test_cache_hits_on_low_error_rate_workload(self):
        """At low error rates BP posteriors tie on the prior ordering,
        so unconverged shots repeat the same column order — the whole
        point of sharing factorizations across shots."""
        code = surface_code(5)
        matrix = code.hz
        rng = np.random.default_rng(23)
        priors = np.full(matrix.shape[1], 0.05)
        errors = rng.random((300, matrix.shape[1])) < 0.04
        syndromes = ((errors @ matrix.T) % 2).astype(np.uint8)
        decoder = BPOSDDecoder(matrix, priors, max_iterations=15,
                               osd_order=0, backend="packed")
        decoder.decode_batch(syndromes)
        assert decoder._packed.factor_cache_hits > 0


class TestBeliefPropagation:
    def test_zero_syndrome_decodes_to_no_error(self):
        decoder = BeliefPropagationDecoder(REPETITION_H, np.full(5, 0.05))
        result = decoder.decode_batch(np.zeros((3, 4), dtype=np.uint8))
        assert result.converged.all()
        assert not result.errors.any()

    def test_single_error_recovered(self):
        decoder = BeliefPropagationDecoder(REPETITION_H, np.full(5, 0.05))
        error = np.array([0, 0, 1, 0, 0], dtype=np.uint8)
        syndrome = (REPETITION_H @ error) % 2
        result = decoder.decode_batch(syndrome[np.newaxis, :])
        assert result.converged[0]
        assert np.array_equal(result.errors[0], error)

    def test_batch_decoding_matches_individual(self):
        decoder = BeliefPropagationDecoder(REPETITION_H, np.full(5, 0.05))
        errors = np.array([[1, 0, 0, 0, 0],
                           [0, 0, 0, 0, 1],
                           [0, 1, 0, 0, 0]], dtype=np.uint8)
        syndromes = (errors @ REPETITION_H.T) % 2
        batch = decoder.decode_batch(syndromes)
        for i in range(3):
            single = decoder.decode_batch(syndromes[i:i + 1])
            assert np.array_equal(batch.errors[i], single.errors[0])

    def test_priors_break_ties(self):
        # Degenerate single check: the column with the larger prior should
        # be blamed for the syndrome.
        check = np.array([[1, 1]], dtype=np.uint8)
        decoder = BeliefPropagationDecoder(check, np.array([0.01, 0.2]))
        result = decoder.decode_batch(np.array([[1]], dtype=np.uint8))
        assert result.errors[0].tolist() == [0, 1]

    def test_syndrome_length_validation(self):
        decoder = BeliefPropagationDecoder(REPETITION_H, np.full(5, 0.05))
        with pytest.raises(ValueError):
            decoder.decode_batch(np.zeros((1, 3), dtype=np.uint8))

    def test_prior_length_validation(self):
        with pytest.raises(ValueError):
            BeliefPropagationDecoder(REPETITION_H, np.full(4, 0.05))

    def test_posterior_llrs_shape(self):
        decoder = BeliefPropagationDecoder(REPETITION_H, np.full(5, 0.05))
        result = decoder.decode_batch(np.zeros((2, 4), dtype=np.uint8))
        assert result.posterior_llrs.shape == (2, 5)
        assert (result.posterior_llrs > 0).all()


class TestPackedSyndromeVerification:
    """The word-packed verification path must match the sparse reference
    bit-for-bit: same convergence flags, same errors, same posteriors."""

    @pytest.mark.parametrize("active_set", [False, True])
    def test_bit_identical_to_sparse_verification(self, active_set):
        code = surface_code(3)
        rng = np.random.default_rng(17)
        check = code.hz
        priors = np.full(check.shape[1], 0.04)
        errors = (rng.random((64, check.shape[1])) < 0.08).astype(np.uint8)
        syndromes = (errors @ check.T) % 2
        results = {}
        for packed in (False, True):
            decoder = BeliefPropagationDecoder(
                check, priors, max_iterations=25, active_set=active_set,
                packed_verification=packed,
            )
            results[packed] = decoder.decode_batch(syndromes)
        assert np.array_equal(results[True].converged,
                              results[False].converged)
        assert np.array_equal(results[True].errors, results[False].errors)
        assert np.array_equal(results[True].posterior_llrs,
                              results[False].posterior_llrs)
        assert results[True].iterations == results[False].iterations

    def test_default_follows_active_set(self):
        priors = np.full(5, 0.05)
        assert BeliefPropagationDecoder(
            REPETITION_H, priors, active_set=True).packed_verification
        assert not BeliefPropagationDecoder(
            REPETITION_H, priors, active_set=False).packed_verification

    def test_non_multiple_of_64_checks_and_mechanisms(self):
        # 4 checks / 5 mechanisms: everything lives in padding-heavy
        # words, where stray padding bits would break the comparison.
        priors = np.full(5, 0.05)
        errors = np.array([[1, 0, 0, 0, 0], [0, 0, 1, 0, 0]], dtype=np.uint8)
        syndromes = (errors @ REPETITION_H.T) % 2
        packed = BeliefPropagationDecoder(REPETITION_H, priors,
                                          packed_verification=True)
        reference = BeliefPropagationDecoder(REPETITION_H, priors,
                                             packed_verification=False)
        a = packed.decode_batch(syndromes)
        b = reference.decode_batch(syndromes)
        assert np.array_equal(a.converged, b.converged)
        assert np.array_equal(a.errors, b.errors)


class TestBPOSD:
    def test_matches_lookup_decoder_on_small_code(self):
        priors = np.full(5, 0.08)
        bposd = BPOSDDecoder(REPETITION_H, priors, max_iterations=30)
        lookup = LookupDecoder(REPETITION_H, priors)
        rng = np.random.default_rng(1)
        errors = (rng.random((50, 5)) < 0.1).astype(np.uint8)
        syndromes = (errors @ REPETITION_H.T) % 2
        decoded = bposd.decode_batch(syndromes)
        for i in range(50):
            expected = lookup.decode(syndromes[i])
            achieved = (REPETITION_H @ decoded.errors[i]) % 2
            assert np.array_equal(achieved, syndromes[i])
            assert decoded.errors[i].sum() <= expected.sum() + 1

    def test_osd_resolves_bp_failures_on_surface_code(self):
        code = surface_code(3)
        priors = np.full(code.num_qubits, 0.05)
        decoder = BPOSDDecoder(code.hz, priors, max_iterations=20)
        rng = np.random.default_rng(2)
        errors = (rng.random((200, code.num_qubits)) < 0.05).astype(np.uint8)
        syndromes = (errors @ code.hz.T) % 2
        result = decoder.decode_batch(syndromes)
        achieved = (result.errors @ code.hz.T) % 2
        assert np.array_equal(achieved, syndromes)

    def test_logical_error_rate_below_physical(self):
        code = code_by_name("BB [[72,12,6]]")
        q = 0.01
        decoder = BPOSDDecoder(code.hz, np.full(code.num_qubits, q),
                               max_iterations=40)
        rng = np.random.default_rng(3)
        shots = 300
        errors = (rng.random((shots, code.num_qubits)) < q).astype(np.uint8)
        syndromes = (errors @ code.hz.T) % 2
        result = decoder.decode_batch(syndromes)
        residual = result.errors ^ errors
        logical = np.any((residual @ code.logical_z.T) % 2, axis=1)
        assert logical.mean() < q

    def test_single_shot_decode_interface(self):
        decoder = BPOSDDecoder(REPETITION_H, np.full(5, 0.05))
        error = np.array([1, 0, 0, 0, 0], dtype=np.uint8)
        syndrome = (REPETITION_H @ error) % 2
        assert np.array_equal(decoder.decode(syndrome), error)

    def test_osd_exhaustive_not_worse_than_osd0(self):
        code = surface_code(3)
        q = 0.08
        rng = np.random.default_rng(4)
        errors = (rng.random((100, code.num_qubits)) < q).astype(np.uint8)
        syndromes = (errors @ code.hz.T) % 2

        def failures(decoder):
            result = decoder.decode_batch(syndromes)
            residual = result.errors ^ errors
            return int(np.any((residual @ code.logical_z.T) % 2, axis=1).sum())

        osd0 = failures(BPOSDDecoder(code.hz, np.full(code.num_qubits, q),
                                     osd_order=0, max_iterations=15))
        osde = failures(BPOSDDecoder(code.hz, np.full(code.num_qubits, q),
                                     osd_order=4, max_iterations=15))
        assert osde <= osd0 + 2


class TestLookupDecoder:
    def test_rejects_large_models(self):
        with pytest.raises(ValueError):
            LookupDecoder(np.zeros((3, 30), dtype=np.uint8), np.full(30, 0.1))

    def test_exact_mld_on_two_mechanisms(self):
        check = gf2_matrix([[1, 1]])
        decoder = LookupDecoder(check, np.array([0.3, 0.01]))
        assert decoder.decode(np.array([1], dtype=np.uint8)).tolist() == [1, 0]

    def test_unknown_syndrome_returns_zero(self):
        check = gf2_matrix([[1, 0], [0, 0]])
        decoder = LookupDecoder(check, np.array([0.1, 0.1]), max_weight=1)
        unknown = np.array([0, 1], dtype=np.uint8)
        assert decoder.decode(unknown).sum() == 0

    def test_batch_interface(self):
        check = gf2_matrix([[1, 1, 0], [0, 1, 1]])
        decoder = LookupDecoder(check, np.full(3, 0.1))
        syndromes = np.array([[0, 0], [1, 0], [1, 1]], dtype=np.uint8)
        decoded = decoder.decode_batch(syndromes)
        assert decoded.shape == (3, 3)
        for syndrome, error in zip(syndromes, decoded):
            assert np.array_equal((check @ error) % 2, syndrome)
