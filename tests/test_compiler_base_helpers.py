"""Tests for the shared compiler infrastructure (resources, routing, rebalance)."""

from __future__ import annotations

import pytest

from repro.codes import surface_code
from repro.qccd import OpKind, OperationTimes, ring_device
from repro.qccd.compilers import EJFGridCompiler, ResourceTracker
from repro.qccd.compilers.ejf import build_device_for
from repro.qccd.mapping import QubitPlacement, greedy_cluster_mapping
from repro.qccd.schedule import CompiledSchedule


class TestResourceTracker:
    def test_initially_available_at_zero(self):
        tracker = ResourceTracker()
        assert tracker.available("T0") == 0.0
        assert tracker.earliest_start(["T0", "T1"], not_before=5.0) == 5.0

    def test_reservation_blocks_future_requests(self):
        tracker = ResourceTracker()
        tracker.reserve(["T0"], start=0.0, duration=100.0)
        assert tracker.earliest_start(["T0"]) == 100.0
        assert tracker.earliest_start(["T1"]) == 0.0

    def test_wait_accounting(self):
        tracker = ResourceTracker()
        tracker.reserve(["T0"], start=0.0, duration=100.0)
        start = tracker.earliest_start(["T0"], not_before=10.0)
        tracker.reserve(["T0"], start=start, duration=10.0, requested_at=10.0)
        assert tracker.total_wait_us == pytest.approx(90.0)
        assert tracker.wait_events == 1

    def test_no_wait_recorded_when_resource_free(self):
        tracker = ResourceTracker()
        tracker.reserve(["T0"], start=5.0, duration=10.0, requested_at=5.0)
        assert tracker.total_wait_us == 0.0
        assert tracker.wait_events == 0


class TestShuttleIon:
    def _setup(self):
        code = surface_code(3)
        compiler = EJFGridCompiler()
        device = build_device_for(code, "baseline_grid", trap_capacity=4)
        placement = greedy_cluster_mapping(code, device)
        placement.apply_to_device(device)
        compiled = CompiledSchedule(architecture="test", code_name=code.name)
        tracker = ResourceTracker()
        return compiler, device, placement, compiled, tracker

    def test_shuttle_emits_split_moves_merge(self):
        compiler, device, placement, compiled, tracker = self._setup()
        ion = 0
        source = placement.trap_of(ion)
        target = next(t for t in device.trap_ids()
                      if t != source and device.free_space(t) > 0)
        finish = compiler.shuttle_ion(compiled, device, tracker, ion, source,
                                      target, 0.0, placement)
        kinds = [op.kind for op in compiled.operations]
        assert OpKind.SWAP in kinds
        assert OpKind.SPLIT in kinds
        assert OpKind.MERGE in kinds
        assert finish >= compiler.times.split + compiler.times.merge
        assert placement.trap_of(ion) == target
        assert device.ion_location(ion) == target

    def test_shuttle_into_full_trap_triggers_rebalance(self):
        compiler, device, placement, compiled, tracker = self._setup()
        ion = 0
        source = placement.trap_of(ion)
        target = next(t for t in device.trap_ids()
                      if t != source and device.free_space(t) == 0)
        compiler.shuttle_ion(compiled, device, tracker, ion, source, target,
                             0.0, placement)
        assert compiled.count(OpKind.REBALANCE) >= 1

    def test_gate_on_trap_reserves_the_trap(self):
        compiler, device, placement, compiled, tracker = self._setup()
        trap = placement.trap_of(0)
        end_first = compiler.gate_on_trap(compiled, device, tracker, trap,
                                          (0, 1), 0.0)
        end_second = compiler.gate_on_trap(compiled, device, tracker, trap,
                                           (2, 3), 0.0)
        assert end_second >= end_first  # serialized on the same trap
        assert compiled.gate_count() == 2

    def test_measure_ancillas_parallel_across_traps(self):
        compiler, device, placement, compiled, tracker = self._setup()
        code = surface_code(3)
        ancillas = [code.num_qubits + s for s in range(code.num_stabilizers)]
        finish = compiler.measure_ancillas(compiled, device, tracker, ancillas,
                                           placement, 0.0)
        assert compiled.count(OpKind.MEASUREMENT) == code.num_stabilizers
        # Parallel across traps: total time is far below the serial sum.
        assert finish < code.num_stabilizers * compiler.times.measurement()


class TestRingRouting:
    def test_ring_shuttle_passes_through_traps(self):
        code = surface_code(3)
        compiler = EJFGridCompiler(topology="ring", label="ejf_ring")
        device = build_device_for(code, "ring", trap_capacity=4)
        placement = greedy_cluster_mapping(code, device)
        placement.apply_to_device(device)
        compiled = CompiledSchedule(architecture="test", code_name=code.name)
        tracker = ResourceTracker()
        traps = device.trap_ids()
        source, target = traps[0], traps[len(traps) // 2]
        ion = placement.qubits_in(source)[0]
        compiler.shuttle_ion(compiled, device, tracker, ion, source, target,
                             0.0, placement)
        transit_notes = [op.note for op in compiled.operations
                         if op.kind is OpKind.MOVE]
        assert any("transit" in note for note in transit_notes)

    def test_occupied_transit_costs_more_than_empty(self):
        times = OperationTimes()
        device = ring_device(num_traps=6, trap_capacity=3)
        compiler = EJFGridCompiler(topology="ring")
        placement = QubitPlacement({0: "T0", 1: "T2"})
        placement.apply_to_device(device)
        compiled = CompiledSchedule(architecture="test", code_name="x")
        tracker = ResourceTracker()
        # Path T0 -> T2 passes through T1 (empty): cheap transit.
        finish_empty = compiler.shuttle_ion(compiled, device, tracker, 0,
                                            "T0", "T2", 0.0, placement)
        # Now place a blocker in T3 and go T2 -> T4 through it.
        device.place_ion(5, "T3")
        placement.qubit_to_trap[5] = "T3"
        start = finish_empty
        finish_blocked = compiler.shuttle_ion(compiled, device, tracker, 0,
                                              "T2", "T4", start, placement)
        assert (finish_blocked - start) > (finish_empty - 0.0)
        del times
