"""Property suite for the randomized scenario_sweep machinery.

The contracts pinned here are what makes the fuzz kind trustworthy:

* scenario generation is a pure function of ``(entropy, index)``;
* scenarios are JSON-native and round-trip losslessly, both through
  ``to_dict``/``from_dict`` and through failure-artifact files;
* a stored scenario replays **bit-identically** — same code, same
  compiled latency, same noise realisation, same tally — because the
  sampling seed lives inside the scenario;
* fast backends agree with the ``bool``/serial reference oracle on
  generated scenarios (the differential property the fuzz kind
  enforces in-run);
* the minimizer shrinks failing scenarios while preserving failure.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.campaign.scenarios as scenarios_module
from repro.campaign.scenarios import (
    SCENARIO_VERSION,
    Scenario,
    ScenarioMismatch,
    generate_scenario,
    load_scenario,
    minimize_scenario,
    report_scenario_mismatch,
    run_scenario,
    scenario_differs,
    write_failure_scenario,
)

entropies = st.integers(min_value=0, max_value=2**32 - 1)
indices = st.integers(min_value=0, max_value=31)


class TestGeneration:
    @given(entropy=entropies, index=indices)
    @settings(max_examples=25, deadline=None)
    def test_generation_is_deterministic(self, entropy, index):
        first = generate_scenario(entropy, index, shots=32)
        second = generate_scenario(entropy, index, shots=32)
        assert first == second

    @given(entropy=entropies, index=indices)
    @settings(max_examples=25, deadline=None)
    def test_generated_fields_are_sane(self, entropy, index):
        scenario = generate_scenario(entropy, index, shots=48)
        assert scenario.shots == 48
        assert scenario.rounds >= 1
        assert 0 < scenario.physical_error_rate < 0.1
        assert scenario.name == f"scenario-{entropy}-{index:03d}"

    def test_distinct_indices_vary_the_stream(self):
        scenarios = [generate_scenario(0, index) for index in range(16)]
        assert len({s.code_family for s in scenarios}) > 1
        assert len({s.codesign for s in scenarios}) > 1


class TestRoundTrip:
    @given(entropy=entropies, index=indices)
    @settings(max_examples=25, deadline=None)
    def test_json_round_trip(self, entropy, index):
        scenario = generate_scenario(entropy, index)
        payload = json.loads(json.dumps(scenario.to_dict()))
        assert Scenario.from_dict(payload) == scenario

    def test_failure_artifact_round_trip(self, tmp_path):
        scenario = generate_scenario(5, 2)
        path = write_failure_scenario(scenario, tmp_path, reason="test")
        assert path.name == f"{scenario.name}.json"
        assert load_scenario(path) == scenario
        payload = json.loads(path.read_text())
        assert payload["version"] == SCENARIO_VERSION
        assert payload["reason"] == "test"

    def test_version_gate(self, tmp_path):
        scenario = generate_scenario(5, 2)
        path = write_failure_scenario(scenario, tmp_path, reason="test")
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            load_scenario(path)

    def test_unknown_keys_rejected(self):
        payload = generate_scenario(5, 2).to_dict()
        payload["bogus"] = 1
        with pytest.raises(ValueError, match="unknown scenario keys"):
            Scenario.from_dict(payload)


class TestReplay:
    @given(entropy=entropies, index=st.integers(min_value=0, max_value=7))
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_replay_is_bit_identical(self, entropy, index):
        scenario = generate_scenario(entropy, index, shots=32)
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert (first.failures, first.shots) == \
            (second.failures, second.shots)

    def test_replay_from_stored_file(self, tmp_path):
        scenario = generate_scenario(11, 3, shots=48)
        reference = run_scenario(scenario)
        path = write_failure_scenario(scenario, tmp_path, reason="test")
        replayed = run_scenario(load_scenario(path))
        assert (replayed.failures, replayed.shots) == \
            (reference.failures, reference.shots)


class TestDifferential:
    @given(entropy=entropies, index=st.integers(min_value=0, max_value=7))
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_packed_agrees_with_bool_oracle(self, entropy, index):
        scenario = generate_scenario(entropy, index, shots=32)
        assert not scenario_differs(scenario, backend="packed",
                                    reference="bool")


class TestMinimizer:
    def test_minimizer_shrinks_while_failing(self):
        scenario = generate_scenario(7, 1, shots=256)

        def differs(candidate: Scenario) -> bool:
            return candidate.shots >= 16

        minimized = minimize_scenario(scenario, differs, max_attempts=40)
        assert minimized.shots == 16
        assert differs(minimized)

    def test_minimizer_keeps_original_when_nothing_shrinks(self):
        scenario = generate_scenario(7, 1, shots=8)
        minimized = minimize_scenario(scenario, lambda s: s.shots >= 4,
                                      max_attempts=8)
        # No candidate both shrinks and still fails beyond what the
        # shots floor allows; every kept reduction preserved failure.
        assert minimized.shots >= 4

    def test_report_writes_artifact_and_raises(self, tmp_path, monkeypatch):
        scenario = generate_scenario(7, 1, shots=64)
        # The mismatch is injected: the pair of real backend runs is
        # replaced so the reporting path can be tested in isolation.
        monkeypatch.setattr(scenarios_module, "scenario_differs",
                            lambda candidate, backend, reference: False)
        with pytest.raises(ScenarioMismatch) as excinfo:
            report_scenario_mismatch(scenario, "packed", "bool",
                                     tmp_path / "failures",
                                     detail="unit test")
        err = excinfo.value
        assert err.scenario == scenario
        assert err.path is not None and err.path.exists()
        assert load_scenario(err.path) == scenario
        payload = json.loads(err.path.read_text())
        assert payload["detail"] == "unit test"
        assert payload["fast_backend"] == "packed"
