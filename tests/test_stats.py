"""Interval math behind the streaming early-stop rule.

The contract the pipeline relies on: intervals always cover sane ranges
(within [0, 1], containing the point estimate), shrink with more shots,
and :meth:`PrecisionTarget.met` is a monotone, pure function of the
``(failures, shots)`` tally — never of how the tally was produced.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import (
    PrecisionTarget,
    agresti_coull_interval,
    as_precision_target,
    binomial_interval,
    wilson_interval,
    z_score,
)

TALLIES = st.integers(0, 10_000).flatmap(
    lambda shots: st.tuples(st.integers(0, shots), st.just(shots))
)


class TestZScore:
    def test_standard_values(self):
        assert z_score(0.95) == pytest.approx(1.959964, abs=1e-5)
        assert z_score(0.99) == pytest.approx(2.575829, abs=1e-5)

    def test_rejects_degenerate_levels(self):
        for confidence in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                z_score(confidence)


class TestIntervals:
    @given(TALLIES)
    @settings(max_examples=200, deadline=None)
    def test_intervals_cover_the_point_estimate(self, tally):
        failures, shots = tally
        for interval in (wilson_interval, agresti_coull_interval,
                         binomial_interval):
            low, high = interval(failures, shots)
            assert 0.0 <= low <= high <= 1.0
            assert math.isfinite(low) and math.isfinite(high)
            if shots:
                p_hat = failures / shots
                # Wilson/AC shrink towards 1/2, but always cover p_hat
                # at the default confidence.
                assert low <= p_hat + 1e-12
                assert high >= p_hat - 1e-12

    def test_zero_shots_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)
        assert agresti_coull_interval(0, 0) == (0.0, 1.0)

    def test_zero_failures_has_nonzero_width(self):
        low, high = binomial_interval(0, 1000)
        assert low == pytest.approx(0.0, abs=1e-12)
        assert 0.0 < high < 0.01

    @given(st.integers(1, 500), st.integers(1, 10))
    @settings(max_examples=100, deadline=None)
    def test_width_shrinks_with_shots(self, shots, factor):
        p = 0.1
        small = binomial_interval(int(p * shots), shots)
        large = binomial_interval(int(p * shots * factor), shots * factor)
        width = lambda iv: iv[1] - iv[0]  # noqa: E731
        assert width(large) <= width(small) + 1e-12

    def test_higher_confidence_is_wider(self):
        narrow = binomial_interval(5, 200, confidence=0.90)
        wide = binomial_interval(5, 200, confidence=0.99)
        assert wide[1] - wide[0] > narrow[1] - narrow[0]

    def test_invalid_tallies_rejected(self):
        with pytest.raises(ValueError):
            wilson_interval(-1, 10)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            wilson_interval(0, -1)

    def test_matches_textbook_wilson_value(self):
        # 10/100 at 95%: canonical Wilson bounds.
        low, high = wilson_interval(10, 100)
        assert low == pytest.approx(0.0552, abs=2e-4)
        assert high == pytest.approx(0.1744, abs=2e-4)


class TestPrecisionTarget:
    def test_absolute_target_met_once_tight(self):
        target = PrecisionTarget(half_width=0.02)
        assert not target.met(5, 50)
        assert target.met(50, 5000)

    def test_never_met_at_zero_shots(self):
        assert not PrecisionTarget(half_width=0.5).met(0, 0)

    def test_min_shots_floor(self):
        target = PrecisionTarget(half_width=0.5, min_shots=100)
        assert not target.met(0, 99)
        assert target.met(0, 100)

    def test_relative_target_requires_failures(self):
        target = PrecisionTarget(half_width=0.5, relative=True)
        assert not target.met(0, 10_000_000)
        assert target.met(2500, 10_000)

    @given(TALLIES, st.floats(1e-4, 0.5), st.booleans())
    @settings(max_examples=150, deadline=None)
    def test_met_is_monotone_in_shots_at_fixed_rate(self, tally, half_width,
                                                    relative):
        """Scaling the same observed rate to 4x the shots never un-meets
        an absolute or relative target (intervals only tighten)."""
        failures, shots = tally
        target = PrecisionTarget(half_width=half_width, relative=relative)
        if target.met(failures, shots):
            assert target.met(failures * 4, shots * 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            PrecisionTarget(half_width=0.0)
        with pytest.raises(ValueError):
            PrecisionTarget(half_width=0.1, confidence=1.0)
        with pytest.raises(ValueError):
            PrecisionTarget(half_width=0.1, min_shots=-1)


class TestCoercion:
    def test_none_passes_through(self):
        assert as_precision_target(None) is None

    def test_float_becomes_absolute_target(self):
        target = as_precision_target(0.01, confidence=0.9)
        assert target == PrecisionTarget(half_width=0.01, confidence=0.9)

    def test_target_instance_unchanged(self):
        target = PrecisionTarget(half_width=0.3, relative=True)
        assert as_precision_target(target) is target
