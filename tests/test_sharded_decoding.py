"""Tests for multi-process sharded decoding (``repro.parallel``).

The contract under test: sharding the decode of a syndrome batch across
worker processes is *bit-identical* to decoding in-process, for any
worker count and shard size, because shots are independent; and worker
failures must propagate to the caller instead of being swallowed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.codes import code_by_name
from repro.core.memory import MemoryExperiment
from repro.core.phenomenological import build_phenomenological_model
from repro.decoders.bposd import BPOSDDecoder
from repro.noise import HardwareNoiseModel
from repro.parallel import DecoderHandle, ShardedDecoder, resolve_workers


@pytest.fixture(scope="module")
def bb72():
    return code_by_name("BB [[72,12,6]]")


@pytest.fixture(scope="module")
def decode_problem(bb72):
    """A phenomenological decode problem with a non-trivial OSD fraction."""
    noise = HardwareNoiseModel.from_physical_error_rate(
        3e-3, round_latency_us=100_000.0
    )
    model = build_phenomenological_model(bb72, noise, rounds=2)
    syndromes, _ = model.sample(150, seed=42)
    return model, syndromes


class TestResolveWorkers:
    def test_none_means_in_process(self):
        assert resolve_workers(None) == 1

    def test_zero_means_cpu_count(self):
        assert resolve_workers(0) >= 1

    def test_positive_passthrough(self):
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestShardedDecoder:
    def test_one_worker_equals_in_process(self, decode_problem):
        model, syndromes = decode_problem
        handle = DecoderHandle(model.check_matrix, model.priors,
                               max_iterations=12)
        reference = handle.build().decode_batch(syndromes)
        with ShardedDecoder(handle, workers=1) as sharded:
            result = sharded.decode_batch(syndromes)
        assert np.array_equal(result.errors, reference.errors)
        assert np.array_equal(result.bp_converged, reference.bp_converged)

    def test_multi_worker_bit_identical_and_order_independent(
            self, decode_problem):
        model, syndromes = decode_problem
        handle = DecoderHandle(model.check_matrix, model.priors,
                               max_iterations=12)
        reference = handle.build().decode_batch(syndromes)
        # A shard size that neither divides the shot count nor aligns
        # with the 64-bit word size, so the merge has to stitch ragged
        # shards back together in exactly the submission order.
        with ShardedDecoder(handle, workers=2, shard_shots=37) as sharded:
            result = sharded.decode_batch(syndromes)
            again = sharded.decode_batch(syndromes)
        assert np.array_equal(result.errors, reference.errors)
        assert np.array_equal(result.bp_converged, reference.bp_converged)
        assert np.array_equal(again.errors, reference.errors)

    def test_priors_update_reaches_workers(self, decode_problem):
        model, syndromes = decode_problem
        handle = DecoderHandle(model.check_matrix, model.priors,
                               max_iterations=12)
        new_priors = np.clip(model.priors * 2.5, 0.0, 0.4)
        reference = handle.with_priors(new_priors).build() \
            .decode_batch(syndromes)
        with ShardedDecoder(handle, workers=2, shard_shots=37) as sharded:
            sharded.decode_batch(syndromes)  # warm the worker decoders
            sharded.update_priors(new_priors)
            result = sharded.decode_batch(syndromes)
        assert np.array_equal(result.errors, reference.errors)
        assert np.array_equal(result.bp_converged, reference.bp_converged)

    def test_single_shard_batches_stay_in_process(self, decode_problem):
        model, syndromes = decode_problem
        handle = DecoderHandle(model.check_matrix, model.priors,
                               max_iterations=12)
        with ShardedDecoder(handle, workers=4) as sharded:
            # Batch fits in one shard (shard_shots defaults to 2048):
            # no pool should ever be spawned.
            result = sharded.decode_batch(syndromes)
            assert sharded._executor is None
        assert result.shots == syndromes.shape[0]

    def test_worker_failure_propagates(self, decode_problem):
        model, syndromes = decode_problem
        handle = _ExplodingHandle(model.check_matrix, model.priors,
                                  max_iterations=12)
        with ShardedDecoder(handle, workers=2, shard_shots=37) as sharded:
            with pytest.raises(RuntimeError, match="injected worker failure"):
                sharded.decode_batch(syndromes)

    def test_decode_single_syndrome(self, decode_problem):
        model, syndromes = decode_problem
        handle = DecoderHandle(model.check_matrix, model.priors,
                               max_iterations=12)
        reference = handle.build().decode(syndromes[0])
        with ShardedDecoder(handle, workers=2) as sharded:
            assert np.array_equal(sharded.decode(syndromes[0]), reference)

    def test_empty_batch(self, decode_problem):
        model, _ = decode_problem
        handle = DecoderHandle(model.check_matrix, model.priors)
        with ShardedDecoder(handle, workers=2) as sharded:
            result = sharded.decode_batch(
                np.zeros((0, model.num_detectors), dtype=np.uint8)
            )
        assert result.shots == 0


@dataclass(frozen=True)
class _ExplodingHandle(DecoderHandle):
    """Handle whose decoder construction fails inside the worker."""

    def build(self) -> BPOSDDecoder:
        raise RuntimeError("injected worker failure")


class TestMemoryExperimentWorkers:
    #: Operating point hot enough that failures and the BP-unconverged
    #: fraction are non-trivial — a sharding bug that reordered or
    #: dropped shots would show up in either number.
    P, LATENCY, SHOTS = 3e-3, 100_000.0, 240

    def _run(self, bb72, workers):
        with MemoryExperiment(code=bb72, rounds=2, seed=11,
                              shard_shots=64) as experiment:
            return experiment.run(self.P, self.LATENCY, shots=self.SHOTS,
                                  workers=workers)

    def test_identical_memory_result_for_any_worker_count(self, bb72):
        results = {w: self._run(bb72, w) for w in (1, 2, 4)}
        baseline = results[1]
        assert baseline.failures > 0  # non-trivial operating point
        for workers, result in results.items():
            assert result.failures == baseline.failures, workers
            assert result.shots == baseline.shots
            assert result.metadata == baseline.metadata

    def test_workers_zero_uses_cpu_count(self, bb72):
        result = self._run(bb72, 0)
        assert result.failures == self._run(bb72, 1).failures

    def test_sweep_reuses_pool_across_points(self, bb72):
        with MemoryExperiment(code=bb72, rounds=2, seed=5, workers=2,
                              shard_shots=64) as experiment:
            first = experiment.run(self.P, self.LATENCY, shots=self.SHOTS)
            pipeline = experiment._pipeline
            assert pipeline is not None
            second = experiment.run(1e-3, 50_000.0, shots=self.SHOTS)
            # Same pipeline (and worker pool), re-priored per point.
            assert experiment._pipeline is pipeline
        assert first.failures >= second.failures

    def test_circuit_method_workers_match_in_process(self):
        from repro.codes import surface_code
        code = surface_code(3)
        results = []
        for workers in (1, 2):
            with MemoryExperiment(code=code, rounds=2, method="circuit",
                                  seed=3, shard_shots=32) as experiment:
                results.append(
                    experiment.run(2e-3, 0.0, shots=100, workers=workers)
                )
        assert results[0].failures == results[1].failures
        assert results[0].metadata == results[1].metadata
