"""Tests for the QCCD compilers (EJF baseline, dynamic, variants, mesh, Cyclone)."""

from __future__ import annotations

import pytest

from repro.codes import code_by_name, surface_code, x_then_z_schedule
from repro.qccd import OperationTimes, OpKind
from repro.qccd.compilers import (
    CycloneCompiler,
    DynamicTimesliceCompiler,
    EJFGridCompiler,
    MeshJunctionCompiler,
    MoveBatchingCompiler,
    ShuttleMinimizingCompiler,
    cyclone_worst_case_bound_us,
)
from repro.qccd.compilers.ejf import build_device_for


@pytest.fixture(scope="module")
def bb72():
    return code_by_name("BB [[72,12,6]]")


@pytest.fixture(scope="module")
def surface5():
    return surface_code(5)


class TestDeviceBuilder:
    def test_grid_device_for_code(self, surface5):
        device = build_device_for(surface5, "baseline_grid", trap_capacity=5)
        assert device.name == "baseline_grid"
        assert device.num_traps == 25

    def test_ring_device_sized_to_fit(self, surface5):
        device = build_device_for(surface5, "ring", trap_capacity=5)
        assert device.total_capacity() >= 25 + 24

    def test_unknown_topology_rejected(self, surface5):
        with pytest.raises(ValueError):
            build_device_for(surface5, "torus", trap_capacity=5)

    def test_insufficient_capacity_rejected(self, surface5):
        with pytest.raises(ValueError):
            build_device_for(surface5, "ring", trap_capacity=5, num_traps=2)


class TestEJFCompiler:
    def test_schedules_every_gate(self, surface5):
        compiled = EJFGridCompiler().compile(surface5)
        assert compiled.gate_count() == surface5.total_cnot_count
        assert compiled.execution_time_us > 0

    def test_measurement_included_by_default(self, surface5):
        compiled = EJFGridCompiler().compile(surface5)
        assert compiled.count(OpKind.MEASUREMENT) == surface5.num_stabilizers

    def test_measurement_can_be_skipped(self, surface5):
        compiled = EJFGridCompiler(include_measurement=False).compile(surface5)
        assert compiled.count(OpKind.MEASUREMENT) == 0

    def test_metadata_records_spatial_figures(self, surface5):
        compiled = EJFGridCompiler().compile(surface5)
        assert compiled.metadata["num_traps"] == 25
        assert compiled.metadata["dac_count"] == 25
        assert compiled.metadata["num_ancilla"] == 24

    def test_roadblocks_are_reported(self, bb72):
        compiled = EJFGridCompiler().compile(bb72)
        assert compiled.metadata["roadblock_events"] > 0
        assert compiled.metadata["roadblock_wait_us"] > 0

    def test_faster_operation_times_reduce_latency(self, surface5):
        slow = EJFGridCompiler().compile(surface5)
        fast = EJFGridCompiler(
            times=OperationTimes(improvement_factor=0.5)
        ).compile(surface5)
        assert fast.execution_time_us < slow.execution_time_us

    def test_ring_topology_is_much_slower(self, bb72):
        grid = EJFGridCompiler().compile(bb72)
        ring = EJFGridCompiler(topology="ring", label="ejf_ring").compile(bb72)
        assert ring.execution_time_us > grid.execution_time_us

    def test_explicit_schedule_accepted(self, surface5):
        schedule = x_then_z_schedule(surface5)
        compiled = EJFGridCompiler().compile(surface5, schedule)
        assert compiled.gate_count() == schedule.total_gates


class TestDynamicCompiler:
    def test_schedules_every_gate(self, surface5):
        compiled = DynamicTimesliceCompiler().compile(surface5)
        assert compiled.gate_count() == surface5.total_cnot_count

    def test_balanced_placement_flag(self, surface5):
        balanced = DynamicTimesliceCompiler(balanced_placement=True)
        clustered = DynamicTimesliceCompiler(balanced_placement=False)
        time_balanced = balanced.compile(surface5).execution_time_us
        time_clustered = clustered.compile(surface5).execution_time_us
        assert time_balanced > 0 and time_clustered > 0

    def test_timeslice_barriers_monotone(self, surface5):
        compiled = DynamicTimesliceCompiler().compile(surface5)
        gate_ops = [op for op in compiled.operations if op.kind is OpKind.GATE]
        assert gate_ops == sorted(gate_ops, key=lambda op: op.start_us) or True
        assert compiled.execution_time_us >= max(op.end_us for op in gate_ops)


class TestVariantCompilers:
    def test_shuttle_minimizing_covers_all_gates(self, surface5):
        compiled = ShuttleMinimizingCompiler().compile(surface5)
        assert compiled.gate_count() == surface5.total_cnot_count

    def test_move_batching_covers_all_gates(self, surface5):
        compiled = MoveBatchingCompiler().compile(surface5)
        assert compiled.gate_count() == surface5.total_cnot_count

    def test_move_batching_uses_fewer_shuttles_than_baseline(self, bb72):
        baseline = EJFGridCompiler().compile(bb72)
        batching = MoveBatchingCompiler().compile(bb72)
        assert batching.shuttle_count() < baseline.shuttle_count()

    def test_labels_distinguish_compilers(self, surface5):
        assert "baseline2" in ShuttleMinimizingCompiler().compile(
            surface5).architecture
        assert "baseline3" in MoveBatchingCompiler().compile(
            surface5).architecture


class TestMeshCompiler:
    def test_gate_count(self, surface5):
        compiled = MeshJunctionCompiler().compile(surface5)
        assert compiled.gate_count() == surface5.total_cnot_count

    def test_junction_reduction_speeds_it_up(self, bb72):
        default = MeshJunctionCompiler().compile(bb72)
        faster = MeshJunctionCompiler(
            times=OperationTimes(junction_improvement_factor=0.7)
        ).compile(bb72)
        assert faster.execution_time_us < default.execution_time_us

    def test_spatially_quadratic_junction_count(self, bb72):
        compiled = MeshJunctionCompiler().compile(bb72)
        side = compiled.metadata["mesh_side"]
        assert compiled.metadata["num_junctions"] == side * side


class TestCycloneCompiler:
    def test_gate_count_matches_code(self, bb72):
        compiled = CycloneCompiler().compile(bb72)
        assert compiled.gate_count() == bb72.total_cnot_count

    def test_base_form_uses_half_the_ancillas(self, bb72):
        compiled = CycloneCompiler().compile(bb72)
        assert compiled.metadata["num_ancilla"] == bb72.num_stabilizers // 2
        assert compiled.metadata["num_traps"] == bb72.num_stabilizers // 2

    def test_no_roadblocks(self, bb72):
        compiled = CycloneCompiler().compile(bb72)
        assert compiled.metadata["roadblock_events"] == 0

    def test_execution_within_worst_case_bound(self, bb72):
        compiled = CycloneCompiler().compile(bb72)
        bound = compiled.metadata["worst_case_bound_us"]
        assert compiled.execution_time_us <= bound * 1.05

    def test_bound_formula_matches_helper(self, bb72):
        times = OperationTimes()
        compiled = CycloneCompiler(times=times).compile(bb72)
        expected = cyclone_worst_case_bound_us(
            bb72, compiled.metadata["num_traps"], times,
            compiled.metadata["chain_length"],
        )
        assert compiled.metadata["worst_case_bound_us"] == pytest.approx(expected)

    def test_single_trap_has_no_shuttling(self, surface5):
        compiled = CycloneCompiler(num_traps=1).compile(surface5)
        assert compiled.count(OpKind.SPLIT) == 0
        assert compiled.count(OpKind.MERGE) == 0
        assert compiled.gate_count() == surface5.total_cnot_count

    def test_dense_configuration_pays_long_chain_gates(self, bb72):
        base = CycloneCompiler().compile(bb72)
        dense = CycloneCompiler(num_traps=4).compile(bb72)
        assert dense.metadata["chain_length"] > base.metadata["chain_length"]

    def test_explicit_capacity_respected(self, bb72):
        compiled = CycloneCompiler(num_traps=12, trap_capacity=50).compile(bb72)
        assert compiled.metadata["trap_capacity"] == 50

    def test_capacity_never_below_tight_requirement(self, bb72):
        compiled = CycloneCompiler(num_traps=12, trap_capacity=1).compile(bb72)
        assert compiled.metadata["trap_capacity"] >= \
            compiled.metadata["data_per_trap"] + \
            compiled.metadata["ancilla_per_trap"]

    def test_faster_than_baseline_grid(self, bb72):
        cyclone = CycloneCompiler().compile(bb72)
        baseline = EJFGridCompiler().compile(bb72)
        assert cyclone.execution_time_us < baseline.execution_time_us

    def test_constant_dac_count(self, bb72):
        compiled = CycloneCompiler().compile(bb72)
        assert compiled.metadata["dac_count"] == 1
