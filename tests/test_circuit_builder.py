"""Tests for the syndrome-extraction / memory-experiment circuit builder."""

from __future__ import annotations

import pytest

from repro.circuits import SyndromeCircuitBuilder, memory_experiment_circuit
from repro.codes import x_then_z_schedule
from repro.noise import HardwareNoiseModel
from repro.sim import FrameSimulator


class TestStructure:
    def test_qubit_layout(self, surface_code_d3, hardware_noise):
        circuit = memory_experiment_circuit(surface_code_d3, hardware_noise,
                                            rounds=2)
        # 9 data + 8 ancilla qubits.
        assert circuit.num_qubits == 17

    def test_measurement_count(self, surface_code_d3, hardware_noise):
        rounds = 3
        circuit = memory_experiment_circuit(surface_code_d3, hardware_noise,
                                            rounds=rounds)
        expected = rounds * 8 + 9  # per-round ancillas + final data readout
        assert circuit.num_measurements == expected

    def test_detector_count(self, surface_code_d3, hardware_noise):
        rounds = 3
        circuit = memory_experiment_circuit(surface_code_d3, hardware_noise,
                                            rounds=rounds)
        # Round 0: only the 4 Z stabilizers are deterministic; later rounds
        # compare all 8; the final readout adds one per Z stabilizer.
        expected = 4 + (rounds - 1) * 8 + 4
        assert circuit.num_detectors == expected

    def test_observable_count_matches_k(self, surface_code_d3, hardware_noise):
        circuit = memory_experiment_circuit(surface_code_d3, hardware_noise,
                                            rounds=1)
        assert circuit.num_observables == 1

    def test_cx_count_per_round(self, surface_code_d3, hardware_noise):
        rounds = 2
        circuit = memory_experiment_circuit(surface_code_d3, hardware_noise,
                                            rounds=rounds)
        assert circuit.gate_count("CX") == rounds * \
            surface_code_d3.total_cnot_count

    def test_rounds_default_to_distance(self, surface_code_d3, hardware_noise):
        builder = SyndromeCircuitBuilder(code=surface_code_d3,
                                         noise=hardware_noise)
        assert builder.rounds == 3

    def test_invalid_basis_rejected(self, surface_code_d3, hardware_noise):
        with pytest.raises(ValueError):
            SyndromeCircuitBuilder(code=surface_code_d3, noise=hardware_noise,
                                   basis="Y")

    def test_zero_rounds_rejected(self, surface_code_d3, hardware_noise):
        with pytest.raises(ValueError):
            SyndromeCircuitBuilder(code=surface_code_d3, noise=hardware_noise,
                                   rounds=0)


class TestNoisePlacement:
    def test_idle_channel_present_when_latency_positive(self, surface_code_d3):
        noise = HardwareNoiseModel.from_physical_error_rate(
            1e-3, round_latency_us=5000.0
        )
        circuit = memory_experiment_circuit(surface_code_d3, noise, rounds=2)
        assert circuit.count("PAULI_CHANNEL_1") == 2

    def test_idle_channel_absent_without_latency(self, surface_code_d3):
        noise = HardwareNoiseModel.from_physical_error_rate(
            1e-3, round_latency_us=0.0
        )
        circuit = memory_experiment_circuit(surface_code_d3, noise, rounds=2)
        assert circuit.count("PAULI_CHANNEL_1") == 0

    def test_two_qubit_noise_follows_every_cx_layer(self, surface_code_d3,
                                                    hardware_noise):
        circuit = memory_experiment_circuit(surface_code_d3, hardware_noise,
                                            rounds=1)
        assert circuit.count("DEPOLARIZE2") == circuit.count("CX")


class TestDeterminism:
    @pytest.mark.parametrize("basis", ["Z", "X"])
    def test_noiseless_circuit_has_silent_detectors(self, surface_code_d3,
                                                    basis):
        noise = HardwareNoiseModel.from_physical_error_rate(1e-3)
        circuit = memory_experiment_circuit(surface_code_d3, noise, rounds=3,
                                            basis=basis).without_noise()
        result = FrameSimulator(circuit, seed=0).sample(32)
        assert not result.detectors.any()
        assert not result.observables.any()

    def test_noiseless_bb_circuit_is_deterministic(self, bb_72):
        noise = HardwareNoiseModel.from_physical_error_rate(1e-3)
        circuit = memory_experiment_circuit(bb_72, noise, rounds=2)
        clean = circuit.without_noise()
        result = FrameSimulator(clean, seed=1).sample(8)
        assert not result.detectors.any()

    def test_custom_schedule_respected(self, surface_code_d3, hardware_noise):
        schedule = x_then_z_schedule(surface_code_d3)
        circuit = memory_experiment_circuit(surface_code_d3, hardware_noise,
                                            schedule=schedule, rounds=1)
        clean = circuit.without_noise()
        result = FrameSimulator(clean, seed=2).sample(4)
        assert not result.detectors.any()
