"""Fault-injection suite: the stack must survive everything
:mod:`repro.parallel.faults` can throw at it, bit-identically.

Layer by layer:

* :class:`FaultPlan` itself — JSON wire format, env/CLI activation,
  fire-once semantics;
* the pipeline — worker kills and shard timeouts trigger bounded pool
  respawn + deterministic resubmission; exhausted retries degrade to
  in-process execution; all of it bit-identical to the fault-free run;
* the shared pool — self-healing across experiments, lifetime rebuild
  budget, permanent-failure downgrade;
* the campaign — the hypothesis-gated invariant from the ISSUE: for
  random fault plans (torn store tails, injected interrupts, worker
  kills), the crashed run's store resumes to byte-identical tables,
  completed work is never re-sampled, and a second resume samples
  nothing at all.
"""

from __future__ import annotations

import os
import signal

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import (
    CampaignInterrupted,
    CampaignSpec,
    run_campaign,
)
from repro.codes import code_by_name
from repro.core.memory import MemoryExperiment
from repro.parallel import (
    FaultPlan,
    InjectedFault,
    PoolUnavailable,
    SharedPool,
    activate,
)
from repro.parallel.faults import (
    active_plan,
    apply_task_fault,
    reset_env_cache,
)


def tiny_spec(budget: int = 400, seed: int = 3) -> CampaignSpec:
    return CampaignSpec.from_dict({
        "name": "tiny_faults",
        "budget": budget,
        "seed": seed,
        "sweeps": [{
            "name": "tiny_repetition",
            "code": "repetition-d3",
            "kind": "physical_error",
            "codesign": "cyclone",
            "physical_error_rates": [5e-3, 2e-2],
            "target": {"half_width": 0.03},
            "rounds": 2,
            "pilot_shots": 32,
            "shard_shots": 64,
        }],
    })


def render(result) -> str:
    return ("\n\n".join(table.to_text() for table in result.tables)
            + "\n" + result.summary_table().to_text())


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(kills=(3, 1), delays={2: 0.5},
                         tear_after_records=4, sigterm_after_points=2)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.kills == plan.kills
        assert clone.delays == plan.delays
        assert clone.tear_after_records == 4
        assert clone.sigterm_after_points == 2

    def test_lease_fault_keys_round_trip(self):
        plan = FaultPlan(kill_after_claims=2, suppress_heartbeats=True,
                         duplicate_claim=1, tear_lease_after=3)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.kill_after_claims == 2
        assert clone.suppress_heartbeats is True
        assert clone.duplicate_claim == 1
        assert clone.tear_lease_after == 3
        # Absent keys stay absent on the wire.
        assert "suppress_heartbeats" not in FaultPlan(kills=(1,)).to_dict()

    def test_lease_faults_fire_once(self):
        plan = FaultPlan(kill_after_claims=2, duplicate_claim=1,
                         tear_lease_after=2)
        assert not plan.take_lease_kill(1)
        assert plan.take_lease_kill(3)      # >= threshold fires
        assert not plan.take_lease_kill(5)  # already fired
        assert not plan.take_duplicate_claim(0)
        assert plan.take_duplicate_claim(1)
        assert not plan.take_duplicate_claim(1)
        assert not plan.take_lease_tear(1)
        assert plan.take_lease_tear(2)
        assert not plan.take_lease_tear(4)

    def test_suppress_heartbeats_is_a_mode_not_fire_once(self):
        plan = FaultPlan(suppress_heartbeats=True)
        assert plan.heartbeats_suppressed()
        assert plan.heartbeats_suppressed()  # never consumed
        assert not FaultPlan().heartbeats_suppressed()

    def test_from_arg_inline_and_at_path(self, tmp_path):
        inline = FaultPlan.from_arg('{"kills": [0]}')
        assert inline.kills == (0,)
        path = tmp_path / "plan.json"
        path.write_text('{"delays": {"1": 0.25}}')
        from_file = FaultPlan.from_arg(f"@{path}")
        assert from_file.delays == {1: 0.25}

    def test_unknown_keys_and_bad_values_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"kill": [0]})
        with pytest.raises(ValueError):
            FaultPlan(kills=(-1,))
        with pytest.raises(ValueError):
            FaultPlan(delays={0: -1.0})

    def test_task_faults_fire_once_per_ordinal(self):
        plan = FaultPlan(kills=(1,), delays={2: 0.5})
        assert plan.next_task_fault() is None          # ordinal 0
        assert plan.next_task_fault() == ("kill",)     # ordinal 1
        assert plan.next_task_fault() == ("delay", 0.5)
        assert plan.next_task_fault() is None          # ordinal 3
        # The schedule is consumed: re-submissions run clean.
        assert plan._submitted == 4

    def test_store_and_sigterm_faults_fire_once(self):
        plan = FaultPlan(tear_after_records=2, sigterm_after_points=1)
        assert not plan.take_store_tear(1)
        assert plan.take_store_tear(2)
        assert not plan.take_store_tear(5)   # already fired
        assert not plan.take_sigterm(0)
        assert plan.take_sigterm(1)
        assert not plan.take_sigterm(9)

    def test_activation_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", '{"kills": [7]}')
        reset_env_cache()
        try:
            assert active_plan().kills == (7,)
            explicit = FaultPlan(kills=(1,))
            with activate(explicit):
                assert active_plan() is explicit
                # activate(None) silences even the env plan.
                with activate(None):
                    assert active_plan() is None
            assert active_plan().kills == (7,)
        finally:
            monkeypatch.delenv("REPRO_FAULT_PLAN")
            reset_env_cache()
        assert active_plan() is None

    def test_apply_task_fault(self):
        apply_task_fault(None)             # no-op
        apply_task_fault(("delay", 0.0))   # returns after sleeping
        with pytest.raises(ValueError, match="unknown injected fault"):
            apply_task_fault(("meteor",))


def _run_memory(workers, plan=None, pool=None, shots=160, **kwargs):
    """One tiny experiment run; returns ((failures, shots), stats)."""
    code = code_by_name("repetition-d3")
    with activate(plan):
        with MemoryExperiment(code=code, rounds=2, workers=workers,
                              shard_shots=16, pool=pool,
                              **kwargs) as experiment:
            result = experiment.run(8e-3, 100.0, shots=shots, seed=5)
            stats = dict(experiment._pipeline.last_run_stats)
    return (result.failures, result.shots), stats


@pytest.fixture(scope="module")
def memory_reference():
    return _run_memory(1)[0]


class TestPipelineRecovery:
    def test_worker_kill_recovers_bit_identically(self, memory_reference):
        got, stats = _run_memory(2, FaultPlan(kills=(1,)))
        assert got == memory_reference
        assert stats["pool_failures"] == 1
        assert stats["shards_resubmitted"] > 0
        assert not stats["local_fallback"]

    def test_shard_timeout_recovers_bit_identically(self, memory_reference):
        got, stats = _run_memory(2, FaultPlan(delays={0: 5.0}),
                                 shard_timeout=0.5)
        assert got == memory_reference
        assert stats["shard_timeouts"] >= 1

    def test_delay_without_timeout_is_harmless(self, memory_reference):
        got, stats = _run_memory(2, FaultPlan(delays={1: 0.05}))
        assert got == memory_reference
        assert stats["shard_timeouts"] == 0
        assert stats["pool_failures"] == 0

    def test_exhausted_retries_fall_back_in_process(self, memory_reference):
        """Kill every submission: the dedicated pool cannot make
        progress, so the run must degrade to in-process execution —
        and still match the fault-free result exactly."""
        got, stats = _run_memory(2, FaultPlan(kills=tuple(range(64))),
                                 max_shard_retries=2)
        assert got == memory_reference
        assert stats["local_fallback"]
        assert stats["pool_failures"] == 3  # retries + the final straw

    def test_fault_free_run_reports_clean_stats(self, memory_reference):
        got, stats = _run_memory(2)
        assert got == memory_reference
        assert stats["pool_failures"] == 0
        assert stats["shard_timeouts"] == 0
        assert stats["shards_resubmitted"] == 0
        assert not stats["local_fallback"]

    def test_invalid_knobs_rejected(self):
        code = code_by_name("repetition-d3")
        with pytest.raises(ValueError, match="shard_timeout"):
            _run_memory(2, shard_timeout=0.0)
        with pytest.raises(ValueError, match="max_shard_retries"):
            _run_memory(2, max_shard_retries=-1)
        del code


class TestSharedPoolSelfHealing:
    def test_kill_heals_within_budget(self, memory_reference):
        with SharedPool(2, max_rebuilds=2) as pool:
            got, stats = _run_memory(2, FaultPlan(kills=(1,)), pool=pool)
            assert got == memory_reference
            assert pool.rebuilds == 1
            assert not pool.failed
            # The healed pool keeps serving fault-free runs.
            again, stats = _run_memory(2, pool=pool)
            assert again == memory_reference
            assert stats["pool_failures"] == 0

    def test_exhausted_pool_fails_permanently(self, memory_reference):
        with SharedPool(2, max_rebuilds=1) as pool:
            got, stats = _run_memory(
                2, FaultPlan(kills=tuple(range(64))), pool=pool)
            assert got == memory_reference
            assert pool.failed
            assert stats["local_fallback"]
            # Subsequent runs skip the dead pool entirely.
            again, stats = _run_memory(2, pool=pool)
            assert again == memory_reference
            assert stats["local_fallback"]
            assert stats["pool_failures"] == 0

    def test_failed_pool_raises_on_direct_use(self):
        pool = SharedPool(2, max_rebuilds=0)
        with pytest.raises(PoolUnavailable):
            pool.rebuild()
        assert pool.failed
        with pytest.raises(PoolUnavailable):
            _ = pool.executor
        pool.close()


class TestShardedDecoderRecovery:
    def test_dead_worker_recovers_bit_identically(self):
        """Kill a pool worker between batches: the next decode hits
        BrokenExecutor, respawns the pool and re-decodes identically."""
        import numpy as np

        from repro.core.phenomenological import build_phenomenological_model
        from repro.noise import HardwareNoiseModel
        from repro.parallel import DecoderHandle, ShardedDecoder

        code = code_by_name("repetition-d3")
        noise = HardwareNoiseModel.from_physical_error_rate(
            8e-3, round_latency_us=100.0)
        model = build_phenomenological_model(code, noise, rounds=2)
        syndromes, _ = model.sample(96, seed=np.random.SeedSequence(5))
        handle = DecoderHandle(model.check_matrix, model.priors,
                               max_iterations=12)
        reference = handle.build().decode_batch(syndromes)
        with ShardedDecoder(handle, workers=2, shard_shots=16) as decoder:
            warm = decoder.decode_batch(syndromes)
            assert np.array_equal(warm.errors, reference.errors)
            victim = next(iter(decoder._executor._processes))
            os.kill(victim, signal.SIGKILL)
            recovered = decoder.decode_batch(syndromes)
        assert np.array_equal(recovered.errors, reference.errors)
        assert np.array_equal(recovered.bp_converged,
                              reference.bp_converged)


class TestCampaignFaultInvariance:
    """The ISSUE's hypothesis gate: random fault plans, byte-identical
    recovery, completed shards never re-sampled."""

    _references: dict = {}

    def _reference(self, seed):
        if seed not in self._references:
            with activate(None):
                self._references[seed] = run_campaign(tiny_spec(seed=seed))
        return self._references[seed]

    @given(
        seed=st.integers(0, 2),
        tear=st.one_of(st.none(), st.integers(0, 4)),
        interrupt=st.one_of(st.none(), st.integers(1, 2)),
    )
    @settings(max_examples=12, deadline=None)
    def test_crashed_campaign_resumes_byte_identically(self, tmp_path_factory,
                                                       seed, tear, interrupt):
        import tempfile
        from pathlib import Path

        del tmp_path_factory
        reference = self._reference(seed)
        plan = FaultPlan(tear_after_records=tear,
                         sigterm_after_points=interrupt)
        with tempfile.TemporaryDirectory() as tmp:
            store = str(Path(tmp) / "store.jsonl")
            try:
                with activate(plan):
                    run_campaign(tiny_spec(seed=seed), store=store)
            except (InjectedFault, CampaignInterrupted):
                pass  # the planned crash/interrupt
            with activate(None):
                resumed = run_campaign(tiny_spec(seed=seed), store=store)
            assert render(resumed) == render(reference)
            # Conservation: every shot is sampled exactly once across
            # the crashed run and the resume — completed stages replay
            # from checkpoints, completed points resume whole.
            assert (resumed.shots_sampled + resumed.shots_replayed
                    + resumed.shots_reused) == reference.shots_sampled
            with activate(None):
                again = run_campaign(tiny_spec(seed=seed), store=store)
            assert again.shots_sampled == 0
            assert again.shots_replayed == 0
            assert render(again) == render(reference)

    def test_worker_kill_mid_campaign(self, tmp_path):
        """Pooled campaign under a worker kill + torn tail: the pool
        heals, the crash tears the store, the resume is byte-identical."""
        reference = self._reference(0)
        plan = FaultPlan(kills=(2,), tear_after_records=1)
        store = str(tmp_path / "store.jsonl")
        with pytest.raises(InjectedFault):
            with activate(plan):
                run_campaign(tiny_spec(seed=0), store=store, workers=2)
        with activate(None):
            resumed = run_campaign(tiny_spec(seed=0), store=store,
                                   workers=2)
        assert render(resumed) == render(reference)
        assert (resumed.shots_sampled + resumed.shots_replayed
                + resumed.shots_reused) == reference.shots_sampled

    def test_stop_callback_interrupts_cleanly(self, tmp_path):
        """run_campaign's stop hook (the CLI's signal path) interrupts
        between units of work and leaves a resumable store."""
        reference = self._reference(1)
        store = str(tmp_path / "store.jsonl")
        calls = {"n": 0}

        def stop_after_a_few():
            calls["n"] += 1
            return calls["n"] > 3

        with pytest.raises(CampaignInterrupted):
            run_campaign(tiny_spec(seed=1), store=store,
                         stop=stop_after_a_few)
        resumed = run_campaign(tiny_spec(seed=1), store=store)
        assert render(resumed) == render(reference)

    def test_shard_timeout_knob_threads_through(self):
        """A generous campaign-level shard_timeout must not perturb
        results (the deadline machinery only engages on timeout)."""
        reference = self._reference(2)
        result = run_campaign(tiny_spec(seed=2), shard_timeout=60.0,
                              max_shard_retries=5)
        assert render(result) == render(reference)


class TestJoinedFaultConservation:
    """Faults in ``--join`` mode: whatever dies, the *global* ledger
    across all workers adds up to the fault-free joined total, and the
    merged tables stay byte-identical."""

    def _joined_reference(self, tmp_path):
        with activate(None):
            return run_campaign(tiny_spec(), join=True, worker_id="ref",
                                store=str(tmp_path / "ref.jsonl"))

    def test_killed_worker_plus_finisher_conserve(self, tmp_path):
        reference = self._joined_reference(tmp_path)
        store = str(tmp_path / "store.jsonl")
        with pytest.raises(InjectedFault):
            with activate(FaultPlan(kill_after_claims=1)):
                run_campaign(tiny_spec(), join=True, worker_id="victim",
                             store=store, lease_ttl=0.05)
        with activate(None):
            finisher = run_campaign(tiny_spec(), join=True,
                                    worker_id="finisher", store=store,
                                    lease_ttl=0.05, poll_interval=0.06)
        # The victim died before sampling anything under its claims, so
        # the finisher alone accounts for every shot; any checkpointed
        # stages replay rather than re-sample.
        assert (finisher.shots_sampled + finisher.shots_replayed
                + finisher.shots_reused) == reference.shots_sampled
        assert render(finisher) == render(reference)

    def test_torn_lease_append_recovers(self, tmp_path):
        """A crash mid-lease-append leaves a torn (skipped) lease line;
        the next worker claims cleanly and finishes the campaign."""
        reference = self._joined_reference(tmp_path)
        store = str(tmp_path / "store.jsonl")
        with pytest.raises(InjectedFault):
            with activate(FaultPlan(tear_lease_after=1)):
                run_campaign(tiny_spec(), join=True, worker_id="torn",
                             store=store)
        with activate(None):
            finisher = run_campaign(tiny_spec(), join=True,
                                    worker_id="finisher", store=store,
                                    lease_ttl=0.05, poll_interval=0.06)
        assert (finisher.shots_sampled + finisher.shots_replayed
                + finisher.shots_reused) == reference.shots_sampled
        assert render(finisher) == render(reference)

    def test_tear_after_records_still_counts_only_results(self, tmp_path):
        """The pre-existing store-tear fault counts *result* appends
        only — lease traffic must not advance its ordinal, or joined
        mode would shift the long-standing chaos-CI semantics."""
        reference = self._joined_reference(tmp_path)
        store = str(tmp_path / "store.jsonl")
        with pytest.raises(InjectedFault, match="store append torn"):
            with activate(FaultPlan(tear_after_records=1)):
                run_campaign(tiny_spec(), join=True, worker_id="torn",
                             store=store)
        with activate(None):
            finisher = run_campaign(tiny_spec(), join=True,
                                    worker_id="finisher", store=store,
                                    lease_ttl=0.05, poll_interval=0.06)
        assert (finisher.shots_sampled + finisher.shots_replayed
                + finisher.shots_reused) == reference.shots_sampled
        assert render(finisher) == render(reference)
