"""Packed vs boolean backend equivalence.

The packed backends are pure layout optimisations: for a fixed seed the
frame simulator consumes the RNG identically in both layouts, DEM
extraction visits faults in the same order, and the OSD factorization
replays the exact pivoting of the reference elimination.  These tests
pin those equivalences down — bit-identical samples and models, and
identical OSD solutions — on randomly generated circuits and systems.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, memory_experiment_circuit
from repro.codes import repetition_quantum_code, surface_code
from repro.core.memory import MemoryExperiment
from repro.core.phenomenological import build_phenomenological_model
from repro.decoders import BeliefPropagationDecoder, BPOSDDecoder
from repro.noise import HardwareNoiseModel
from repro.sim import FrameSimulator, detector_error_model
from repro.sim.frame import FaultInjection


def _random_circuit(rng: np.random.Generator, num_qubits: int = 5) -> Circuit:
    """A random annotated stabilizer circuit touching every instruction."""
    circuit = Circuit()
    circuit.append("R", list(range(num_qubits)))
    record_indices: list[int] = []
    for _ in range(rng.integers(4, 12)):
        kind = rng.integers(0, 8)
        qubit = int(rng.integers(0, num_qubits))
        other = int(rng.integers(0, num_qubits - 1))
        other = other if other != qubit else num_qubits - 1
        if kind == 0:
            circuit.append("H", [qubit])
        elif kind == 1:
            circuit.append("CX", [qubit, other])
        elif kind == 2:
            circuit.append("X_ERROR", [qubit], float(rng.uniform(0.01, 0.3)))
        elif kind == 3:
            circuit.append("Z_ERROR", [qubit], float(rng.uniform(0.01, 0.3)))
        elif kind == 4:
            circuit.append("DEPOLARIZE1", [qubit],
                           float(rng.uniform(0.01, 0.3)))
        elif kind == 5:
            circuit.append("DEPOLARIZE2", [qubit, other],
                           float(rng.uniform(0.01, 0.3)))
        elif kind == 6:
            circuit.append("PAULI_CHANNEL_1", [qubit],
                           arguments=tuple(rng.uniform(0.01, 0.1, 3)))
        else:
            record_indices.extend(
                circuit.measure(qubit,
                                flip_probability=float(rng.uniform(0, 0.2)))
            )
    record_indices.extend(circuit.measure(list(range(num_qubits))))
    take = max(1, len(record_indices) // 2)
    circuit.detector(record_indices[:take])
    circuit.detector(record_indices[take - 1:])
    circuit.observable_include(record_indices[-2:], observable=0)
    return circuit


class TestFrameSimulatorEquivalence:
    @given(st.integers(0, 2 ** 31), st.sampled_from([1, 63, 64, 65, 130]))
    @settings(max_examples=25, deadline=None)
    def test_samples_bit_identical(self, seed, shots):
        circuit = _random_circuit(np.random.default_rng(seed))
        a = FrameSimulator(circuit, seed=seed, backend="bool").sample(
            shots, return_measurements=True)
        b = FrameSimulator(circuit, seed=seed, backend="packed").sample(
            shots, return_measurements=True)
        assert np.array_equal(a.detectors, b.detectors)
        assert np.array_equal(a.observables, b.observables)
        assert np.array_equal(a.measurements, b.measurements)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            FrameSimulator(Circuit(), backend="simd")

    @given(st.integers(0, 2 ** 31))
    @settings(max_examples=20, deadline=None)
    def test_fault_propagation_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        circuit = _random_circuit(rng)
        faults = [
            FaultInjection(instruction_index=0, shot=shot,
                           x_flips=(int(rng.integers(0, 5)),),
                           z_flips=(int(rng.integers(0, 5)),))
            for shot in range(int(rng.integers(1, 70)))
        ]
        a = FrameSimulator(circuit, backend="bool").propagate_faults(
            faults, shots=len(faults))
        b = FrameSimulator(circuit, backend="packed").propagate_faults(
            faults, shots=len(faults))
        assert np.array_equal(a.detectors, b.detectors)
        assert np.array_equal(a.observables, b.observables)


class TestDEMEquivalence:
    @given(st.integers(0, 2 ** 31))
    @settings(max_examples=20, deadline=None)
    def test_models_identical_on_random_circuits(self, seed):
        circuit = _random_circuit(np.random.default_rng(seed))
        # A tiny chunk size forces the packed path to cross block
        # boundaries even on small fault sets.
        dense = detector_error_model(circuit, backend="bool")
        packed = detector_error_model(circuit, backend="packed",
                                      chunk_shots=3)
        assert np.array_equal(dense.check_matrix, packed.check_matrix)
        assert np.array_equal(dense.observable_matrix,
                              packed.observable_matrix)
        assert dense.priors == pytest.approx(packed.priors)

    def test_unmerged_models_identical(self):
        circuit = _random_circuit(np.random.default_rng(7))
        dense = detector_error_model(circuit, merge=False, backend="bool")
        packed = detector_error_model(circuit, merge=False, backend="packed",
                                      chunk_shots=2)
        assert np.array_equal(dense.check_matrix, packed.check_matrix)
        assert dense.priors == pytest.approx(packed.priors)

    def test_memory_circuit_model_identical(self):
        code = surface_code(3)
        noise = HardwareNoiseModel.from_physical_error_rate(
            1e-3, round_latency_us=100.0)
        circuit = memory_experiment_circuit(code, noise, rounds=2)
        dense = detector_error_model(circuit, backend="bool")
        packed = detector_error_model(circuit, backend="packed",
                                      chunk_shots=64)
        assert np.array_equal(dense.check_matrix, packed.check_matrix)
        assert dense.priors == pytest.approx(packed.priors)

    def test_invalid_arguments_rejected(self):
        circuit = _random_circuit(np.random.default_rng(0))
        with pytest.raises(ValueError):
            detector_error_model(circuit, backend="simd")
        with pytest.raises(ValueError):
            detector_error_model(circuit, chunk_shots=0)


class TestDecoderEquivalence:
    def _decoding_problem(self, seed, error_rate=0.06):
        code = surface_code(5)
        matrix = code.hz
        rng = np.random.default_rng(seed)
        priors = np.full(matrix.shape[1], 0.05)
        errors = rng.random((80, matrix.shape[1])) < error_rate
        syndromes = ((errors @ matrix.T) % 2).astype(np.uint8)
        return matrix, priors, syndromes

    @given(st.integers(0, 2 ** 31))
    @settings(max_examples=10, deadline=None)
    def test_bposd_backends_agree(self, seed):
        """Both backends produce syndrome-consistent corrections, and the
        active-set backend converges on every shot the reference does.

        (Exact equality is not guaranteed: BP trajectories that satisfy
        the syndrome at some iteration but oscillate afterwards are
        frozen at first convergence by the active set, while the
        reference reports the final-iteration state.)
        """
        matrix, priors, syndromes = self._decoding_problem(seed)
        dense = BPOSDDecoder(matrix, priors, max_iterations=15,
                             backend="bool")
        packed = BPOSDDecoder(matrix, priors, max_iterations=15,
                              backend="packed")
        a = dense.decode_batch(syndromes)
        b = packed.decode_batch(syndromes)
        # Per-shot BP dynamics are identical until first convergence, so
        # packed convergence is a superset of reference convergence.
        assert np.all(b.bp_converged[a.bp_converged])
        for result in (a, b):
            achieved = (result.errors @ matrix.T) % 2
            assert np.array_equal(achieved.astype(np.uint8), syndromes)

    @given(st.integers(0, 2 ** 31), st.sampled_from([0, 1, 3]))
    @settings(max_examples=10, deadline=None)
    def test_osd_reuse_matches_reference(self, seed, osd_order):
        """The factored OSD-E must return the seed implementation's
        solutions given identical BP soft output."""
        matrix, priors, syndromes = self._decoding_problem(seed)
        dense = BPOSDDecoder(matrix, priors, max_iterations=15,
                             osd_order=osd_order, backend="bool")
        packed = BPOSDDecoder(matrix, priors, max_iterations=15,
                              osd_order=osd_order, backend="packed")
        bp = dense._bp.decode_batch(syndromes)
        checked = 0
        for shot in np.nonzero(~bp.converged)[0]:
            syndrome = syndromes[shot]
            posteriors = bp.posterior_llrs[shot]
            assert np.array_equal(dense._osd_single(syndrome, posteriors),
                                  packed._osd_single(syndrome, posteriors))
            checked += 1
        assert checked > 0

    def test_active_set_matches_reference_on_stable_problem(self):
        code = repetition_quantum_code(5)
        priors = np.full(code.hz.shape[1], 0.05)
        rng = np.random.default_rng(11)
        errors = rng.random((200, code.hz.shape[1])) < 0.05
        syndromes = ((errors @ code.hz.T) % 2).astype(np.uint8)
        reference = BeliefPropagationDecoder(code.hz, priors,
                                             max_iterations=30)
        active = BeliefPropagationDecoder(code.hz, priors, max_iterations=30,
                                          active_set=True)
        a = reference.decode_batch(syndromes)
        b = active.decode_batch(syndromes)
        assert np.array_equal(a.converged, b.converged)
        assert np.array_equal(a.errors, b.errors)

    def test_active_set_converged_shots_satisfy_syndrome(self):
        matrix, priors, syndromes = self._decoding_problem(21, error_rate=0.1)
        decoder = BeliefPropagationDecoder(matrix, priors, max_iterations=20,
                                           active_set=True)
        result = decoder.decode_batch(syndromes)
        achieved = (result.errors @ matrix.T) % 2
        assert np.array_equal(achieved[result.converged],
                              syndromes[result.converged])

    def test_update_priors_matches_fresh_decoder(self):
        matrix, priors, syndromes = self._decoding_problem(5)
        reused = BPOSDDecoder(matrix, np.full(matrix.shape[1], 0.2),
                              max_iterations=15)
        reused.update_priors(priors)
        fresh = BPOSDDecoder(matrix, priors, max_iterations=15)
        assert np.array_equal(reused.decode_batch(syndromes).errors,
                              fresh.decode_batch(syndromes).errors)


class TestMemoryExperimentBackends:
    def test_phenomenological_backends_agree(self):
        code = surface_code(3)
        a = MemoryExperiment(code=code, rounds=3, seed=2, backend="bool")
        b = MemoryExperiment(code=code, rounds=3, seed=2, backend="packed")
        ra = a.run(2e-3, 1000.0, shots=300)
        rb = b.run(2e-3, 1000.0, shots=300)
        assert ra.failures == rb.failures

    def test_circuit_backends_agree(self):
        code = surface_code(3)
        a = MemoryExperiment(code=code, rounds=2, method="circuit", seed=2,
                             backend="bool")
        b = MemoryExperiment(code=code, rounds=2, method="circuit", seed=2,
                             backend="packed")
        assert a.run(2e-3, 0.0, shots=200).failures == \
            b.run(2e-3, 0.0, shots=200).failures

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            MemoryExperiment(code=surface_code(3), backend="simd")


class TestSweepSeedDerivation:
    def test_points_get_distinct_seeds(self):
        experiment = MemoryExperiment(code=surface_code(3), rounds=2, seed=0)
        first = experiment._spawn_seed()
        second = experiment._spawn_seed()
        assert first.spawn_key != second.spawn_key
        assert np.any(first.generate_state(4) != second.generate_state(4))

    def test_sweeps_reproducible_across_instances(self):
        code = surface_code(3)
        points = [(2e-3, 1000.0), (2e-3, 1000.0), (1e-3, 500.0)]
        exp_a = MemoryExperiment(code=code, rounds=3, seed=9)
        exp_b = MemoryExperiment(code=code, rounds=3, seed=9)
        for p, latency in points:
            assert exp_a.run(p, latency, shots=150).failures == \
                exp_b.run(p, latency, shots=150).failures

    def test_identical_points_sample_different_noise(self):
        code = surface_code(3)
        experiment = MemoryExperiment(code=code, rounds=2, seed=3)
        noise = HardwareNoiseModel.from_physical_error_rate(
            5e-3, round_latency_us=1000.0)
        model = build_phenomenological_model(code, noise, rounds=2)
        a = model.sample(100, seed=experiment._spawn_seed())
        b = model.sample(100, seed=experiment._spawn_seed())
        assert not np.array_equal(a[0], b[0])
