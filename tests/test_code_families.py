"""Tests for the HGP, BB, surface constructions and the code library."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codes import (
    available_codes,
    bb_code_names,
    bivariate_bicycle_code,
    code_by_name,
    hamming_code,
    hgp_code_names,
    hypergraph_product,
    repetition_code,
    surface_code,
)
from repro.codes.bb import BB_CODE_SPECS, BBCodeSpec
from repro.codes.classical import full_rank_regular_ldpc


class TestHypergraphProduct:
    def test_repetition_product_is_surface_like(self):
        # HGP of the length-3 repetition code with itself is the distance-3
        # (unrotated) surface code: [[13, 1, 3]].
        factor = repetition_code(3)
        code = hypergraph_product(factor)
        assert code.num_qubits == 13
        assert code.num_logical_qubits == 1
        assert code.edge_colorable

    def test_parameters_formula_full_rank_factors(self):
        factor = full_rank_regular_ldpc(9, 12, seed=12)
        code = hypergraph_product(factor)
        assert code.num_qubits == 12 * 12 + 9 * 9
        assert code.num_logical_qubits == factor.dimension ** 2

    def test_asymmetric_product(self):
        code = hypergraph_product(repetition_code(3), repetition_code(4))
        assert code.num_qubits == 3 * 4 + 2 * 3
        assert code.num_logical_qubits == 1

    def test_commutation_by_construction(self):
        code = hypergraph_product(hamming_code(3))
        assert not ((code.hx @ code.hz.T) % 2).any()

    def test_metadata_records_factors(self):
        code = hypergraph_product(repetition_code(3))
        assert code.metadata["family"] == "hypergraph_product"
        assert code.metadata["primal_qubits"] == 9
        assert code.metadata["dual_qubits"] == 4

    def test_logicals_valid(self):
        code = hypergraph_product(repetition_code(3))
        assert code.verify_logical_operators()


class TestBivariateBicycle:
    @pytest.mark.parametrize("name,n,k", [
        ("[[72,12,6]]", 72, 12),
        ("[[90,8,10]]", 90, 8),
        ("[[108,8,10]]", 108, 8),
        ("[[144,12,12]]", 144, 12),
    ])
    def test_published_parameters(self, name, n, k):
        code = bivariate_bicycle_code(name)
        assert code.num_qubits == n
        assert code.num_logical_qubits == k

    def test_all_stabilizers_weight_six(self):
        code = bivariate_bicycle_code("[[72,12,6]]")
        assert set(code.hx.sum(axis=1)) == {6}
        assert set(code.hz.sum(axis=1)) == {6}

    def test_not_edge_colorable_flag(self):
        assert not bivariate_bicycle_code("[[72,12,6]]").edge_colorable

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            bivariate_bicycle_code("[[999,9,9]]")

    def test_custom_spec(self):
        spec = BBCodeSpec(l=6, m=6, a_powers=(3, 1, 2), b_powers=(3, 1, 2),
                          name="custom")
        code = bivariate_bicycle_code(spec)
        assert code.num_qubits == 72
        assert code.name == "custom"

    def test_distance_estimate_consistent_with_published(self):
        code = bivariate_bicycle_code("[[72,12,6]]")
        assert code.estimate_distance(trials=800, seed=1) >= 4

    def test_spec_registry_covers_paper_codes(self):
        for name in ("[[72,12,6]]", "[[90,8,10]]", "[[108,8,10]]",
                     "[[144,12,12]]"):
            assert name in BB_CODE_SPECS


class TestSurfaceAndRepetition:
    @pytest.mark.parametrize("distance", [3, 5, 7])
    def test_surface_code_parameters(self, distance):
        code = surface_code(distance)
        assert code.parameters == (distance * distance, 1, distance)
        assert code.num_stabilizers == distance * distance - 1

    def test_surface_requires_odd_distance(self):
        with pytest.raises(ValueError):
            surface_code(4)

    def test_surface_bulk_weights(self):
        code = surface_code(5)
        weights = set(code.hx.sum(axis=1)) | set(code.hz.sum(axis=1))
        assert weights <= {2, 4}

    def test_repetition_code_protects_bit_flips_only(self, repetition_code_d3):
        assert repetition_code_d3.num_x_stabilizers == 0
        assert repetition_code_d3.logical_z.shape == (1, 3)


class TestLibrary:
    def test_available_codes_constructible(self):
        names = available_codes()
        assert "HGP [[225,9,6]]" in names
        assert "BB [[144,12,12]]" in names

    def test_hgp_names_and_bb_names_disjoint(self):
        assert not set(hgp_code_names()) & set(bb_code_names())

    def test_hgp_225_matches_paper_parameters(self, hgp_225):
        assert hgp_225.parameters == (225, 9, 6)
        assert hgp_225.num_stabilizers == 216
        assert hgp_225.edge_colorable

    def test_hgp_factor_distance_is_verified(self, hgp_225):
        # The library's factor seed was chosen so the classical factor
        # reaches the nominal distance; the quantum distance estimate must
        # not contradict it.
        assert hgp_225.estimate_distance(trials=1500, seed=2) >= 4

    def test_bb_library_aliases(self):
        code = code_by_name("BB [[72,12,6]]")
        assert code.parameters[:2] == (72, 12)

    def test_surface_alias(self):
        assert code_by_name("surface-d3").parameters == (9, 1, 3)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            code_by_name("nonexistent code")

    def test_caching_returns_same_object(self):
        assert code_by_name("surface-d3") is code_by_name("surface-d3")


class TestCyclicShiftInternals:
    def test_monomial_identity(self):
        from repro.codes.bb import _cyclic_shift

        shift = _cyclic_shift(4, 0)
        assert np.array_equal(shift, np.identity(4, dtype=np.uint8))

    def test_shift_power_wraps(self):
        from repro.codes.bb import _cyclic_shift

        assert np.array_equal(_cyclic_shift(4, 4), _cyclic_shift(4, 0))
        assert np.array_equal(_cyclic_shift(4, 5), _cyclic_shift(4, 1))
