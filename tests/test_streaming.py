"""Streaming early stopping: determinism, prefix purity, circuit cache.

The contracts under test (see ``repro.parallel.pipeline`` and
``repro.core.sweep``):

* the early-stop decision is evaluated on the shard-**index prefix**
  tally only, so ``(shots_used, failures, corrections)`` are
  bit-identical for any worker count at fixed ``shard_shots`` /
  ``target_precision`` — completion order decides nothing;
* no shard beyond the stopping prefix contributes to the tally;
* the circuit method ships the circuit once per worker per operating
  point (not with every shard task), with a miss-retry fallback that
  never changes results;
* a mid-sweep failure releases the fused-pipeline worker pool;
* the adaptive pilot/allocate/refine scheduler concentrates a sweep's
  global budget on the points that need it, deterministically.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.analysis.sensitivity as sensitivity_module
from repro.circuits import memory_experiment_circuit
from repro.codes import code_by_name, surface_code
from repro.core.memory import MemoryExperiment
from repro.core.phenomenological import build_phenomenological_model
from repro.core.stats import PrecisionTarget
from repro.core.sweep import allocate_shots, sweep_physical_error
from repro.noise import HardwareNoiseModel
from repro.parallel import DecoderHandle, ExperimentHandle, ShardedExperiment
from repro.parallel.pipeline import _PipelineState


@pytest.fixture(scope="module")
def phen_model():
    """A hot phenomenological point: failures arrive early enough that
    modest targets genuinely stop runs mid-budget."""
    code = code_by_name("BB [[72,12,6]]")
    noise = HardwareNoiseModel.from_physical_error_rate(
        3e-3, round_latency_us=100_000.0
    )
    return build_phenomenological_model(code, noise, rounds=2)


def _phen_handle(model) -> ExperimentHandle:
    return ExperimentHandle(
        decoder=DecoderHandle(model.check_matrix, model.priors,
                              max_iterations=12),
        observable_matrix=model.observable_matrix,
        method="phenomenological",
    )


@pytest.fixture(scope="module")
def pools(phen_model):
    """One warm ``ShardedExperiment`` per worker count, shared by every
    hypothesis example (pool spawn is the expensive part)."""
    handle = _phen_handle(phen_model)
    sharded = {w: ShardedExperiment(handle, workers=w) for w in (1, 2, 4)}
    yield sharded
    for experiment in sharded.values():
        experiment.close()


class TestStreamingDeterminism:
    @given(
        seed=st.integers(0, 2 ** 16),
        shard_shots=st.sampled_from([16, 48, 64, 128]),
        half_width=st.floats(0.01, 0.2),
    )
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_early_stop_identical_across_worker_counts(self, pools, seed,
                                                       shard_shots,
                                                       half_width):
        """(shots_used, failures, corrections, flags) match for workers
        1/2/4 at any random (target_precision, shard_shots, seed)."""
        results = {}
        for workers, sharded in pools.items():
            sharded.shard_shots = shard_shots  # rekeying is part of the test
            results[workers] = sharded.run(
                1500, seed, collect_errors=True,
                target_precision=half_width,
            )
        baseline = results[1]
        for workers, result in results.items():
            assert result.shots_used == baseline.shots_used, workers
            assert result.failures == baseline.failures, workers
            assert result.stopped_early == baseline.stopped_early, workers
            assert result.num_shards == baseline.num_shards, workers
            assert (result.ci_low, result.ci_high) == (
                baseline.ci_low, baseline.ci_high), workers
            assert np.array_equal(result.errors, baseline.errors), workers
            assert np.array_equal(result.bp_converged,
                                  baseline.bp_converged), workers

    def test_early_stop_spends_less_than_budget(self, pools):
        result = pools[2].run(100_000, 3, target_precision=0.05)
        assert result.stopped_early
        assert result.target_met
        assert result.shots_used < 100_000
        assert result.shots_requested == 100_000
        half_width = (result.ci_high - result.ci_low) / 2
        assert half_width <= 0.05

    def test_unreachable_target_consumes_the_budget(self, pools):
        sharded = pools[2]
        sharded.shard_shots = 64
        result = sharded.run(256, 3, target_precision=1e-6)
        assert result.shots_used == 256
        assert not result.stopped_early
        assert result.target_met is False

    def test_no_target_reports_interval_but_never_stops(self, pools):
        sharded = pools[1]
        sharded.shard_shots = 64
        result = sharded.run(256, 3)
        assert result.shots_used == 256
        assert result.target_met is None
        assert not result.stopped_early
        assert 0.0 <= result.ci_low <= result.ci_high <= 1.0

    def test_prior_tally_tightens_the_stop(self, phen_model):
        """A refine run carrying a pilot tally stops sooner than a cold
        run with the same target — and an already-met tally contributes
        zero shards."""
        handle = _phen_handle(phen_model)
        with ShardedExperiment(handle, workers=1, shard_shots=48) as sharded:
            cold = sharded.run(3000, 9, target_precision=0.03)
            warm = sharded.run(3000, 10, target_precision=0.03,
                               prior_tally=(cold.failures, cold.shots_used))
            assert warm.shots_used < cold.shots_used
            met = sharded.run(3000, 11, target_precision=0.3,
                              prior_tally=(cold.failures, cold.shots_used))
            assert met.shots_used == 0
            assert met.num_shards == 0
            assert met.stopped_early
            assert met.target_met
            # The reported interval bounds the combined tally — which
            # the result surfaces explicitly — not the (empty) run.
            assert met.prior_shots == cold.shots_used
            assert met.tally_shots == cold.shots_used
            assert met.tally_error_rate == cold.logical_error_rate
            assert met.ci_low <= met.tally_error_rate <= met.ci_high

    def test_invalid_prior_tally_rejected(self, phen_model):
        handle = _phen_handle(phen_model)
        with ShardedExperiment(handle, workers=1) as sharded:
            with pytest.raises(ValueError, match="prior_tally"):
                sharded.run(10, 0, prior_tally=(5, 2))


class TestStoppingPrefixPurity:
    """No shard beyond the stopping prefix contributes to the tally."""

    def test_in_process_runs_exactly_the_prefix(self, phen_model,
                                                monkeypatch):
        ran = []
        real = _PipelineState.run_shard

        def recording(self, priors, circuit, seed, shots, collect_errors):
            ran.append(shots)
            return real(self, priors, circuit, seed, shots, collect_errors)

        monkeypatch.setattr(_PipelineState, "run_shard", recording)
        handle = _phen_handle(phen_model)
        with ShardedExperiment(handle, workers=1, shard_shots=48) as sharded:
            result = sharded.run(3000, 7, target_precision=0.04)
        # The parent executed exactly the contributing prefix, nothing
        # beyond it, and the tally is built from those shards alone.
        assert len(ran) == result.num_shards
        assert sum(ran) == result.shots_used
        assert result.stopped_early
        assert sharded.last_run_stats["shards_run"] == result.num_shards

    def test_streamed_fold_matches_in_process_prefix(self, phen_model):
        """Workers may *run* shards beyond the prefix (in-flight when
        the stop hits) but fold exactly the in-process prefix."""
        handle = _phen_handle(phen_model)
        with ShardedExperiment(handle, workers=1, shard_shots=48) as local:
            reference = local.run(3000, 7, target_precision=0.04,
                                  collect_errors=True)
        with ShardedExperiment(handle, workers=4, shard_shots=48) as sharded:
            streamed = sharded.run(3000, 7, target_precision=0.04,
                                   collect_errors=True)
            stats = sharded.last_run_stats
        assert streamed.shots_used == reference.shots_used
        assert streamed.failures == reference.failures
        assert np.array_equal(streamed.errors, reference.errors)
        assert stats["shards_folded"] == reference.num_shards
        # Early stop never materializes the whole budget.
        assert stats["tasks_submitted"] < stats["num_shards"]


class TestWorkerCircuitCache:
    def _circuit_setup(self):
        code = surface_code(3)
        noise = HardwareNoiseModel.from_physical_error_rate(
            2e-3, round_latency_us=0.0
        )
        circuit = memory_experiment_circuit(code, noise, rounds=2)
        from repro.sim import detector_error_model
        dem = detector_error_model(circuit)
        handle = ExperimentHandle(
            decoder=DecoderHandle(dem.check_matrix, dem.priors,
                                  max_iterations=12),
            observable_matrix=dem.observable_matrix,
            method="circuit",
        )
        return circuit, handle

    def test_circuit_ships_once_per_worker_not_per_shard(self):
        """Payload accounting plus the pickle-bytes instrumentation:
        the per-task pickle cost must collapse once the workers hold
        the circuit."""
        circuit, handle = self._circuit_setup()
        with ShardedExperiment(handle, workers=2, shard_shots=16) as sharded:
            executor = sharded._ensure_executor()
            task_bytes = []
            real_submit = executor.submit

            def recording_submit(fn, *args):
                task_bytes.append(len(pickle.dumps(args)))
                return real_submit(fn, *args)

            executor.submit = recording_submit
            result = sharded.run(480, 5, circuit=circuit)
            stats = dict(sharded.last_run_stats)
            executor.submit = real_submit
        assert result.shots_used == 480
        assert stats["num_shards"] == 30
        # The circuit rode along on (at most) one task per worker plus
        # any miss retries — never with every shard.
        payload_tasks = (stats["circuit_payload_tasks"]
                         + stats["circuit_cache_misses"])
        assert stats["circuit_payload_tasks"] >= 1
        assert payload_tasks < stats["tasks_submitted"] / 2
        # Pickle-bytes: keyed tasks are much smaller than payload tasks,
        # and the run as a whole ships far fewer bytes than the PR 3
        # behaviour (circuit with every task) would have.
        payload_size = max(task_bytes)
        keyed_size = min(task_bytes)
        assert keyed_size < payload_size / 3
        always_shipping_bytes = payload_size * len(task_bytes)
        assert sum(task_bytes) < 0.5 * always_shipping_bytes

    def test_cached_circuit_results_match_always_shipping(self):
        """Results are identical whether the circuit arrives by cache
        or by payload (workers=1 ships nothing at all)."""
        circuit, handle = self._circuit_setup()
        results = {}
        for workers in (1, 2, 4):
            with ShardedExperiment(handle, workers=workers,
                                   shard_shots=16) as sharded:
                results[workers] = sharded.run(480, 5, circuit=circuit,
                                               collect_errors=True)
        baseline = results[1]
        for workers, result in results.items():
            assert result.failures == baseline.failures, workers
            assert np.array_equal(result.errors, baseline.errors), workers

    def test_two_operating_points_get_distinct_keys(self):
        """A sweep's second point must not reuse the first point's
        cached circuit: fingerprints differ when noise rates differ."""
        from repro.parallel import circuit_fingerprint
        code = surface_code(3)
        circuits = [
            memory_experiment_circuit(
                code,
                HardwareNoiseModel.from_physical_error_rate(
                    p, round_latency_us=0.0),
                rounds=2,
            )
            for p in (1e-3, 2e-3)
        ]
        keys = {circuit_fingerprint(c) for c in circuits}
        assert len(keys) == 2
        # Same content -> same key (rebuilt object, no identity games).
        rebuilt = memory_experiment_circuit(
            code,
            HardwareNoiseModel.from_physical_error_rate(
                1e-3, round_latency_us=0.0),
            rounds=2,
        )
        assert circuit_fingerprint(rebuilt) in keys


class TestSweepPoolLifetime:
    """A mid-sweep failure must release the fused-pipeline worker pool."""

    def test_failing_point_releases_pool(self, monkeypatch):
        import repro.campaign.kinds as kinds_module

        created = []
        real_cls = kinds_module.MemoryExperiment

        class CapturingExperiment(real_cls):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                created.append(self)

        monkeypatch.setattr(kinds_module, "MemoryExperiment",
                            CapturingExperiment)

        real_run = MemoryExperiment.run
        calls = {"count": 0}

        def failing_run(self, *args, **kwargs):
            calls["count"] += 1
            if calls["count"] == 2:
                raise RuntimeError("injected mid-sweep failure")
            return real_run(self, *args, **kwargs)

        monkeypatch.setattr(MemoryExperiment, "run", failing_run)
        code = surface_code(3)
        with pytest.raises(RuntimeError, match="injected"):
            sensitivity_module.depth_speedup_ler(
                code, physical_error_rate=3e-3, speedups=(1.0, 2.0, 4.0),
                shots=96, rounds=2, workers=2,
            )
        assert len(created) == 1
        experiment = created[0]
        # The context manager released the pipeline (and its pool).
        assert experiment._pipeline is None

    def test_streamed_run_recovers_from_worker_error(self, phen_model):
        """A worker exception propagates, pending work is cancelled, and
        the same pool still services the next (valid) run."""
        handle = _phen_handle(phen_model)
        with ShardedExperiment(handle, workers=2, shard_shots=32) as sharded:
            bad_priors = np.full(3, 0.1)  # wrong length -> worker raises
            with pytest.raises(Exception):
                sharded.run(128, 0, priors=bad_priors)
            result = sharded.run(128, 0)
            assert result.shots_used == 128
        assert sharded._executor is None


class TestAdaptiveAllocation:
    def test_absolute_weights_favor_high_variance_points(self):
        allocations = allocate_shots(
            [(0, 200), (10, 200)], budget=1000, caps=[1000, 1000],
        )
        assert allocations[1] > allocations[0]

    def test_relative_weights_favor_low_rate_points(self):
        allocations = allocate_shots(
            [(2, 200), (40, 200)], budget=1000, caps=[1000, 1000],
            relative=True,
        )
        assert allocations[0] > allocations[1]

    def test_caps_and_empty_budget(self):
        assert allocate_shots([(1, 10)], budget=0, caps=[100]) == [0]
        assert allocate_shots([], budget=100, caps=[]) == []
        allocations = allocate_shots([(1, 10), (1, 10)], budget=1000,
                                     caps=[7, 1000])
        assert allocations[0] <= 7

    def test_allocation_is_deterministic(self):
        tallies = [(3, 128), (0, 128), (17, 128)]
        first = allocate_shots(tallies, 5000, [2000, 2000, 2000])
        second = allocate_shots(tallies, 5000, [2000, 2000, 2000])
        assert first == second


class TestAdaptiveSweep:
    def test_adaptive_sweep_concentrates_budget(self):
        """The noisy point gets the budget; quiet points stop early and
        every row reports its Wilson bounds."""
        code = surface_code(3)
        table = sweep_physical_error(
            code, round_latency_us=5040.0,
            physical_error_rates=[3e-3, 2e-2],
            shots=400, rounds=2, seed=3,
            target_precision=0.02, pilot_shots=64,
        )
        assert set(["shots_used", "ci_low", "ci_high",
                    "stopped_early"]) <= set(table.columns)
        quiet, noisy = table.rows
        assert quiet["shots_used"] < noisy["shots_used"]
        assert quiet["stopped_early"]
        for row in table.rows:
            assert 0.0 <= row["ci_low"] <= row["ci_high"] <= 1.0
            assert row["ci_low"] <= row["logical_error_rate"] <= row["ci_high"]
        # Global pool respected.
        assert sum(row["shots_used"] for row in table.rows) <= 800

    def test_adaptive_sweep_is_worker_count_invariant(self):
        """Pilot, allocation and refine are all prefix-deterministic, so
        the whole adaptive sweep matches across worker counts."""
        code = surface_code(3)
        rows = {}
        for workers in (1, 2):
            table = sweep_physical_error(
                code, round_latency_us=5040.0,
                physical_error_rates=[3e-3, 1e-2, 2e-2],
                shots=256, rounds=2, seed=3, workers=workers,
                shard_shots=32, target_precision=0.02, pilot_shots=64,
            )
            rows[workers] = table.rows
        assert rows[1] == rows[2]

    def test_fixed_budget_rows_unchanged_by_new_columns(self):
        code = surface_code(3)
        table = sweep_physical_error(
            code, round_latency_us=1000.0,
            physical_error_rates=[1e-3, 5e-3], shots=50, rounds=2,
        )
        for row in table.rows:
            assert row["shots_used"] == 50
            assert row["stopped_early"] is False

    def test_relative_target_spends_inversely_to_rate(self):
        """Relative targets route the budget to the low-rate point (the
        paper's threshold-scan regime)."""
        code = surface_code(3)
        table = sweep_physical_error(
            code, round_latency_us=5040.0,
            physical_error_rates=[8e-3, 3e-2],
            shots=1500, rounds=2, seed=5,
            target_precision=PrecisionTarget(half_width=0.5, relative=True),
            pilot_shots=128,
        )
        low_rate, high_rate = table.rows
        assert low_rate["logical_error_rate"] \
            < high_rate["logical_error_rate"]
        assert low_rate["shots_used"] > high_rate["shots_used"]
        assert high_rate["stopped_early"]
