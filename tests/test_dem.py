"""Tests for detector error model extraction."""

from __future__ import annotations

import pytest

from repro.circuits import Circuit, memory_experiment_circuit
from repro.noise import HardwareNoiseModel
from repro.sim import FrameSimulator, detector_error_model


def _one_check_circuit(p_data: float, p_meas: float) -> Circuit:
    circuit = Circuit()
    circuit.append("R", [0, 1, 2])
    circuit.append("X_ERROR", [0, 1], p_data)
    circuit.append("CX", [0, 2])
    circuit.append("CX", [1, 2])
    circuit.measure(2, flip_probability=p_meas)
    circuit.detector([0])
    circuit.measure([0, 1])
    circuit.observable_include([1, 2], observable=0)
    return circuit


class TestSmallModels:
    def test_mechanism_enumeration_and_merging(self):
        dem = detector_error_model(_one_check_circuit(0.01, 0.02))
        # The X errors on qubits 0 and 1 share the (detector, observable)
        # signature (the observable contains both final data readouts), so
        # they merge into one mechanism; the measurement flip is the other.
        assert dem.num_detectors == 1
        assert dem.num_observables == 1
        assert dem.num_mechanisms == 2

    def test_probabilities_preserved(self):
        dem = detector_error_model(_one_check_circuit(0.01, 0.02))
        merged_data = 0.01 * (1 - 0.01) + (1 - 0.01) * 0.01
        assert sorted(dem.priors) == pytest.approx(
            sorted([merged_data, 0.02]), rel=1e-9
        )

    def test_merge_combines_identical_signatures(self):
        circuit = Circuit()
        circuit.append("R", [0])
        circuit.append("X_ERROR", [0], 0.1)
        circuit.append("X_ERROR", [0], 0.1)
        circuit.measure(0)
        circuit.detector([0])
        dem = detector_error_model(circuit)
        assert dem.num_mechanisms == 1
        # Odd-number-of-events combination: 0.1*0.9 + 0.9*0.1 = 0.18.
        assert dem.priors[0] == pytest.approx(0.18)

    def test_unmerged_keeps_all_columns(self):
        circuit = Circuit()
        circuit.append("R", [0])
        circuit.append("X_ERROR", [0], 0.1)
        circuit.append("X_ERROR", [0], 0.1)
        circuit.measure(0)
        circuit.detector([0])
        dem = detector_error_model(circuit, merge=False)
        assert dem.num_mechanisms == 2

    def test_noiseless_circuit_gives_empty_model(self):
        circuit = Circuit()
        circuit.append("R", [0])
        circuit.measure(0)
        circuit.detector([0])
        dem = detector_error_model(circuit)
        assert dem.num_mechanisms == 0
        assert dem.expected_fault_count() == 0.0

    def test_invisible_faults_are_dropped(self):
        circuit = Circuit()
        circuit.append("R", [0, 1])
        circuit.append("X_ERROR", [1], 0.3)  # qubit 1 is never measured
        circuit.measure(0)
        circuit.detector([0])
        dem = detector_error_model(circuit)
        assert dem.num_mechanisms == 0


class TestAgainstSampling:
    def test_dem_statistics_match_frame_sampler(self, surface_code_d3):
        noise = HardwareNoiseModel.from_physical_error_rate(2e-3)
        circuit = memory_experiment_circuit(surface_code_d3, noise, rounds=2)
        dem = detector_error_model(circuit)

        shots = 4000
        sample = FrameSimulator(circuit, seed=9).sample(shots)
        sampled_rate = sample.detectors.mean()

        # Expected detector-firing rate from the DEM priors (linearised,
        # valid at these small probabilities).
        expected_rate = (dem.check_matrix * dem.priors).sum() / \
            dem.num_detectors
        assert sampled_rate == pytest.approx(expected_rate, rel=0.25)

    def test_every_detector_is_covered_by_some_mechanism(self, surface_code_d3,
                                                         hardware_noise):
        circuit = memory_experiment_circuit(surface_code_d3, hardware_noise,
                                            rounds=2)
        dem = detector_error_model(circuit)
        assert (dem.check_matrix.sum(axis=1) > 0).all()

    def test_mechanism_count_scales_with_rounds(self, surface_code_d3,
                                                hardware_noise):
        small = detector_error_model(
            memory_experiment_circuit(surface_code_d3, hardware_noise,
                                      rounds=1)
        )
        large = detector_error_model(
            memory_experiment_circuit(surface_code_d3, hardware_noise,
                                      rounds=3)
        )
        assert large.num_mechanisms > small.num_mechanisms
        assert large.num_detectors > small.num_detectors


class TestFaultFreeCircuit:
    @pytest.mark.parametrize("backend", ["packed", "bool"])
    def test_noiseless_circuit_yields_empty_model(self, backend):
        # Regression: the bool path used to crash on len(faults) == 0
        # (chunk size of zero) instead of returning the empty model.
        circuit = Circuit()
        circuit.append("R", [0, 1])
        circuit.measure([0, 1])
        circuit.detector([0])
        dem = detector_error_model(circuit, backend=backend)
        assert dem.num_mechanisms == 0
        assert dem.check_matrix.shape == (circuit.num_detectors, 0)
        assert dem.priors.shape == (0,)
