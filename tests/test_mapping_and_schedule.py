"""Tests for qubit placement strategies and the compiled-schedule container."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qccd import (
    CompiledSchedule,
    OpKind,
    baseline_grid_device,
    greedy_cluster_mapping,
    ring_device,
    round_robin_mapping,
)
from repro.qccd.mapping import balanced_data_partition, interaction_graph


class TestInteractionGraph:
    def test_nodes_cover_data_and_ancilla(self, surface_code_d3):
        graph = interaction_graph(surface_code_d3)
        assert graph.number_of_nodes() == 9 + 8

    def test_ancilla_data_edges_weighted_higher(self, surface_code_d3):
        graph = interaction_graph(surface_code_d3)
        ancilla = 9  # first X stabilizer's ancilla
        data = surface_code_d3.x_stabilizer_support(0)[0]
        assert graph[ancilla][data]["weight"] >= 1.0


class TestMappings:
    def test_greedy_mapping_places_every_qubit(self, surface_code_d3):
        device = baseline_grid_device(9, trap_capacity=4)
        placement = greedy_cluster_mapping(surface_code_d3, device)
        assert len(placement.qubit_to_trap) == 17
        occupancy = placement.occupancy()
        assert all(count <= 4 for count in occupancy.values())

    def test_greedy_mapping_colocates_interacting_qubits(self, surface_code_d3):
        device = baseline_grid_device(9, trap_capacity=6)
        placement = greedy_cluster_mapping(surface_code_d3, device)
        colocated = 0
        for stabilizer, (_, support) in enumerate(
                surface_code_d3.stabilizer_supports()):
            ancilla_trap = placement.trap_of(9 + stabilizer)
            colocated += sum(
                1 for q in support if placement.trap_of(q) == ancilla_trap
            )
        assert colocated > 0

    def test_round_robin_balances_occupancy(self, surface_code_d3):
        device = ring_device(num_traps=6, trap_capacity=4)
        placement = round_robin_mapping(surface_code_d3, device)
        occupancy = placement.occupancy()
        assert max(occupancy.values()) - min(occupancy.values()) <= 1

    def test_capacity_shortfall_raises(self, surface_code_d3):
        device = ring_device(num_traps=2, trap_capacity=2)
        with pytest.raises(ValueError):
            greedy_cluster_mapping(surface_code_d3, device)
        with pytest.raises(ValueError):
            round_robin_mapping(surface_code_d3, device)

    def test_apply_to_device(self, surface_code_d3):
        device = baseline_grid_device(9, trap_capacity=4)
        placement = greedy_cluster_mapping(surface_code_d3, device)
        placement.apply_to_device(device)
        total = sum(device.occupancy(t) for t in device.trap_ids())
        assert total == 17

    def test_copy_is_independent(self, surface_code_d3):
        device = baseline_grid_device(9, trap_capacity=4)
        placement = greedy_cluster_mapping(surface_code_d3, device)
        clone = placement.copy()
        clone.qubit_to_trap[0] = "elsewhere"
        assert placement.qubit_to_trap[0] != "elsewhere"


class TestBalancedPartition:
    def test_even_split(self):
        parts = balanced_data_partition(12, 4)
        assert [len(p) for p in parts] == [3, 3, 3, 3]

    def test_uneven_split_front_loads_remainder(self):
        parts = balanced_data_partition(10, 4)
        assert [len(p) for p in parts] == [3, 3, 2, 2]

    def test_covers_all_indices_exactly_once(self):
        parts = balanced_data_partition(17, 5)
        flat = [q for part in parts for q in part]
        assert sorted(flat) == list(range(17))

    def test_invalid_trap_count(self):
        with pytest.raises(ValueError):
            balanced_data_partition(5, 0)

    @given(st.integers(1, 200), st.integers(1, 40))
    @settings(max_examples=60, deadline=None)
    def test_partition_sizes_differ_by_at_most_one(self, n, traps):
        parts = balanced_data_partition(n, traps)
        sizes = [len(p) for p in parts]
        assert len(parts) == traps
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1


class TestCompiledSchedule:
    def _sample_schedule(self) -> CompiledSchedule:
        schedule = CompiledSchedule(architecture="test", code_name="code")
        schedule.add(OpKind.GATE, 0.0, 100.0, (0, 1), "T0")
        schedule.add(OpKind.GATE, 0.0, 100.0, (2, 3), "T1")
        schedule.add(OpKind.SPLIT, 100.0, 80.0, (0,), "T0")
        schedule.add(OpKind.MOVE, 180.0, 10.0, (0,), "seg")
        schedule.add(OpKind.MERGE, 190.0, 80.0, (0,), "T1")
        return schedule

    def test_execution_time_is_makespan(self):
        schedule = self._sample_schedule()
        assert schedule.execution_time_us == pytest.approx(270.0)

    def test_metadata_override_of_execution_time(self):
        schedule = self._sample_schedule()
        schedule.metadata["execution_time_us"] = 400.0
        assert schedule.execution_time_us == 400.0

    def test_serialized_time_sums_durations(self):
        schedule = self._sample_schedule()
        assert schedule.serialized_time_us == pytest.approx(370.0)

    def test_multiplicity_weights_serialized_metrics_only(self):
        schedule = CompiledSchedule(architecture="test", code_name="code")
        schedule.add(OpKind.SPLIT, 0.0, 80.0, (), "ring", multiplicity=10)
        assert schedule.execution_time_us == pytest.approx(80.0)
        assert schedule.serialized_time_us == pytest.approx(800.0)
        assert schedule.shuttle_count() == 10

    def test_component_breakdown(self):
        breakdown = self._sample_schedule().component_breakdown()
        assert breakdown["gate"] == pytest.approx(200.0)
        assert breakdown["split"] == pytest.approx(80.0)

    def test_parallelization_fraction_between_zero_and_one(self):
        schedule = self._sample_schedule()
        assert 0.0 <= schedule.parallelization_fraction < 1.0

    def test_counts(self):
        schedule = self._sample_schedule()
        assert schedule.gate_count() == 2
        assert schedule.shuttle_count() == 3
        assert schedule.count(OpKind.MOVE) == 1

    def test_max_concurrency(self):
        schedule = self._sample_schedule()
        assert schedule.max_concurrency() == 2

    def test_empty_schedule(self):
        schedule = CompiledSchedule(architecture="empty", code_name="code")
        assert schedule.execution_time_us == 0.0
        assert schedule.parallelization_fraction == 0.0
        assert schedule.max_concurrency() == 0

    def test_summary_keys(self):
        summary = self._sample_schedule().summary()
        assert summary["architecture"] == "test"
        assert summary["execution_time_us"] == pytest.approx(270.0)


def test_mapping_works_for_bb_code(bb_72):
    device = baseline_grid_device(bb_72.num_qubits, trap_capacity=5)
    placement = greedy_cluster_mapping(bb_72, device)
    assert len(placement.qubit_to_trap) == bb_72.num_qubits + \
        bb_72.num_stabilizers


def test_mapping_respects_capacity_for_surface(surface_code_d5):
    device = baseline_grid_device(surface_code_d5.num_qubits, trap_capacity=5)
    placement = greedy_cluster_mapping(surface_code_d5, device)
    assert max(placement.occupancy().values()) <= 5
