"""Tests for the word-packed GF(2) kernels in ``repro.linalg.bitops``."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.bitops import (
    WORD_BITS,
    bit_mask,
    num_words,
    pack_bits,
    unpack_bits,
    packed_matmul,
    packed_matmul_words,
    parity,
    popcount,
    xor_accumulate,
    xor_reduce,
)

#: Dimension strategy biased toward the word-boundary edge cases the
#: packed kernels have to get right: empty axes and sizes straddling
#: multiples of 64.
edge_dims = st.one_of(
    st.sampled_from([0, 1, 63, 64, 65, 127, 128, 129]),
    st.integers(0, 200),
)


class TestPackRoundTrip:
    @given(st.integers(0, 2 ** 31), st.integers(1, 200), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_axis0(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, (rows, cols)).astype(bool)
        packed = pack_bits(bits, axis=0)
        assert packed.shape == (num_words(rows), cols)
        assert np.array_equal(unpack_bits(packed, rows, axis=0), bits)

    @given(st.integers(0, 2 ** 31), st.integers(1, 5), st.integers(1, 200))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_axis1(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, (rows, cols)).astype(bool)
        packed = pack_bits(bits, axis=1)
        assert packed.shape == (rows, num_words(cols))
        assert np.array_equal(unpack_bits(packed, cols, axis=1), bits)

    def test_bit_convention_lsb_first(self):
        # Element j of the packed axis must land in bit j of word j // 64.
        bits = np.zeros(130, dtype=bool)
        bits[[0, 63, 64, 129]] = True
        packed = pack_bits(bits)
        assert packed[0] == (1 | (1 << 63))
        assert packed[1] == 1
        assert packed[2] == 2
        assert bit_mask(129) == np.uint64(2)

    def test_padding_bits_are_zero(self):
        packed = pack_bits(np.ones(70, dtype=bool))
        assert popcount(packed).sum() == 70

    def test_word_count(self):
        assert num_words(0) == 0
        assert num_words(1) == 1
        assert num_words(WORD_BITS) == 1
        assert num_words(WORD_BITS + 1) == 2


class TestWordKernels:
    @given(st.integers(0, 2 ** 31))
    @settings(max_examples=30, deadline=None)
    def test_popcount_matches_python(self, seed):
        rng = np.random.default_rng(seed)
        words = rng.integers(0, 2 ** 63, size=8, dtype=np.uint64)
        expected = [bin(int(w)).count("1") for w in words]
        assert popcount(words).tolist() == expected

    def test_parity(self):
        bits = np.array([[1, 1, 1], [1, 0, 1]], dtype=bool)
        packed = pack_bits(bits, axis=1)
        assert parity(packed, axis=1).tolist() == [1, 0]

    def test_xor_reduce_and_accumulate(self):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, (5, 100)).astype(bool)
        packed = pack_bits(bits, axis=1)
        reduced = xor_reduce(packed, axis=0)
        expected = np.bitwise_xor.reduce(bits, axis=0)
        assert np.array_equal(unpack_bits(reduced, 100), expected)
        acc = packed[0].copy()
        xor_accumulate(acc, packed[1])
        assert np.array_equal(unpack_bits(acc, 100), bits[0] ^ bits[1])

    @given(st.integers(0, 2 ** 31), st.integers(1, 40), st.integers(1, 40),
           st.integers(1, 150))
    @settings(max_examples=40, deadline=None)
    def test_packed_matmul_matches_dense(self, seed, m, n, k):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 2, (m, k), dtype=np.uint8)
        b = rng.integers(0, 2, (n, k), dtype=np.uint8)
        product = packed_matmul(pack_bits(a, axis=1), pack_bits(b, axis=1))
        assert np.array_equal(product, (a @ b.T) % 2)

    def test_packed_matmul_validates_shapes(self):
        with pytest.raises(ValueError):
            packed_matmul(np.zeros((2, 3), dtype=np.uint64),
                          np.zeros((2, 4), dtype=np.uint64))
        with pytest.raises(ValueError):
            packed_matmul(np.zeros(3, dtype=np.uint64),
                          np.zeros((2, 3), dtype=np.uint64))

    def test_packed_matmul_chunking(self):
        rng = np.random.default_rng(9)
        a = rng.integers(0, 2, (700, 65), dtype=np.uint8)
        b = rng.integers(0, 2, (3, 65), dtype=np.uint8)
        product = packed_matmul(pack_bits(a, axis=1), pack_bits(b, axis=1),
                                chunk=128)
        assert np.array_equal(product, (a @ b.T) % 2)


class TestEdgeShapeProperties:
    """Randomized round-trip/equivalence properties at awkward shapes:
    empty matrices and shot counts that are not multiples of 64."""

    @given(st.integers(0, 2 ** 31), edge_dims, st.integers(0, 6))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_any_shot_count_axis0(self, seed, shots, cols):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, (shots, cols)).astype(bool)
        packed = pack_bits(bits, axis=0)
        assert packed.shape == (num_words(shots), cols)
        assert packed.dtype == np.dtype("<u8")
        assert np.array_equal(unpack_bits(packed, shots, axis=0), bits)

    @given(st.integers(0, 2 ** 31), st.integers(0, 6), edge_dims)
    @settings(max_examples=60, deadline=None)
    def test_round_trip_any_shot_count_axis1(self, seed, rows, count):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, (rows, count)).astype(bool)
        packed = pack_bits(bits, axis=1)
        assert packed.shape == (rows, num_words(count))
        assert np.array_equal(unpack_bits(packed, count, axis=1), bits)

    @given(st.integers(0, 2 ** 31), edge_dims)
    @settings(max_examples=40, deadline=None)
    def test_padding_never_leaks_into_parity(self, seed, count):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, count).astype(bool)
        packed = pack_bits(bits)
        assert int(popcount(packed).sum()) == int(bits.sum())
        expected = np.uint8(bits.sum() & 1)
        assert parity(packed, axis=0) == expected

    @given(st.integers(0, 2 ** 31), st.integers(0, 12), st.integers(0, 12),
           edge_dims)
    @settings(max_examples=60, deadline=None)
    def test_packed_matmul_matches_bool_matmul(self, seed, m, n, k):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 2, (m, k), dtype=np.uint8)
        b = rng.integers(0, 2, (n, k), dtype=np.uint8)
        product = packed_matmul(pack_bits(a, axis=1), pack_bits(b, axis=1))
        expected = (a.astype(int) @ b.astype(int).T) % 2
        assert product.shape == (m, n)
        assert np.array_equal(product, expected)

    @given(st.integers(0, 2 ** 31), st.integers(0, 12), edge_dims,
           st.integers(0, 12))
    @settings(max_examples=60, deadline=None)
    def test_packed_matmul_words_round_trip(self, seed, m, n, k):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 2, (m, k), dtype=np.uint8)
        b = rng.integers(0, 2, (n, k), dtype=np.uint8)
        words = packed_matmul_words(pack_bits(a, axis=1),
                                    pack_bits(b, axis=1))
        assert words.shape == (m, num_words(n))
        expected = (a.astype(int) @ b.astype(int).T) % 2
        assert np.array_equal(unpack_bits(words, n, axis=1),
                              expected.astype(bool))

    def test_empty_matrix_product_is_zero(self):
        # Inner dimension 0: the product over an empty mechanism set is
        # identically zero, not garbage from uninitialised words.
        a = pack_bits(np.zeros((5, 0), dtype=np.uint8), axis=1)
        b = pack_bits(np.zeros((3, 0), dtype=np.uint8), axis=1)
        assert not packed_matmul(a, b).any()
        assert packed_matmul(a, b).shape == (5, 3)

    @given(st.integers(0, 2 ** 31), edge_dims)
    @settings(max_examples=40, deadline=None)
    def test_xor_reduce_any_width(self, seed, count):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, (4, count)).astype(bool)
        reduced = xor_reduce(pack_bits(bits, axis=1), axis=0)
        expected = np.bitwise_xor.reduce(bits, axis=0)
        assert np.array_equal(unpack_bits(reduced, count), expected)
