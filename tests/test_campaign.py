"""Tests for the cross-sweep campaign orchestrator, spec and store.

The two properties the ISSUE pins down are here as hypothesis tests:

* campaign-level allocation **degenerates to the single-sweep
  scheduler** when the spec contains exactly one sweep — the campaign
  allocates through the very same :func:`allocate_shots` /
  :func:`run_adaptive_refine` engine, and a uniform per-point relative
  flag sequence is proven equal to PR 4's scalar flag;
* **store-resumed results are bit-identical to a cold run** — for
  arbitrary campaign seeds, a second run against the store re-samples
  zero shots and renders byte-identical tables.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    SweepSpec,
    available_specs,
    builtin_spec,
    fingerprint,
    load_spec,
    run_campaign,
)
from repro.cli import main
from repro.core.results import PRECISION_COLUMNS
from repro.core.stats import PrecisionTarget
from repro.core.sweep import AdaptivePoint, allocate_shots, run_adaptive_refine


def tiny_spec(budget: int = 400, seed: int = 3,
              sweeps: int = 1) -> CampaignSpec:
    """A campaign small enough for sub-second cold runs."""
    sweep_dicts = [
        {
            "name": "tiny_repetition",
            "code": "repetition-d3",
            "kind": "physical_error",
            "codesign": "cyclone",
            "physical_error_rates": [5e-3, 2e-2],
            "target": {"half_width": 0.03},
            "rounds": 2,
            "pilot_shots": 32,
            "shard_shots": 64,
        },
        {
            "name": "tiny_architectures",
            "code": "surface-d3",
            "kind": "architectures",
            "codesigns": ["baseline", "cyclone"],
            "physical_error_rate": 3e-3,
            "target": {"half_width": 0.03},
            "rounds": 2,
            "pilot_shots": 32,
            "shard_shots": 64,
        },
    ]
    return CampaignSpec.from_dict({
        "name": "tiny",
        "budget": budget,
        "seed": seed,
        "sweeps": sweep_dicts[:sweeps],
    })


class TestSweepSpec:
    def test_round_trip(self):
        sweep = SweepSpec(
            name="s", code="repetition-d3",
            physical_error_rates=(1e-3, 2e-3),
            target=PrecisionTarget(half_width=0.1, relative=True),
            rounds=2, max_shots=500,
        )
        clone = SweepSpec.from_dict(sweep.to_dict())
        assert clone == sweep

    def test_architectures_round_trip(self):
        sweep = SweepSpec(
            name="a", code="surface-d3", kind="architectures",
            codesigns=("baseline", "cyclone"), physical_error_rate=1e-3,
        )
        assert SweepSpec.from_dict(sweep.to_dict()) == sweep

    def test_physical_error_requires_rates(self):
        with pytest.raises(ValueError, match="physical_error_rates"):
            SweepSpec(name="s", code="repetition-d3")

    def test_architectures_requires_codesigns_and_rate(self):
        with pytest.raises(ValueError, match="codesigns"):
            SweepSpec(name="s", code="surface-d3", kind="architectures",
                      physical_error_rate=1e-3)
        with pytest.raises(ValueError, match="physical_error_rate"):
            SweepSpec(name="s", code="surface-d3", kind="architectures",
                      codesigns=("baseline",))

    def test_unknown_kind_and_keys(self):
        with pytest.raises(ValueError, match="kind"):
            SweepSpec(name="s", code="repetition-d3", kind="bogus",
                      physical_error_rates=(1e-3,))
        with pytest.raises(ValueError, match="unknown sweep keys"):
            SweepSpec.from_dict({"name": "s", "code": "repetition-d3",
                                 "physical_error_rates": [1e-3],
                                 "bogus": 1})

    def test_validate_names(self):
        sweep = SweepSpec(name="s", code="no-such-code",
                          physical_error_rates=(1e-3,))
        with pytest.raises(ValueError, match="unknown code"):
            sweep.validate_names()
        sweep = SweepSpec(name="s", code="repetition-d3",
                          codesign="no-such-design",
                          physical_error_rates=(1e-3,))
        with pytest.raises(ValueError, match="unknown codesign"):
            sweep.validate_names()


class TestCampaignSpec:
    def test_json_round_trip(self):
        spec = tiny_spec(sweeps=2)
        assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_num_points(self):
        assert tiny_spec(sweeps=2).num_points == 4

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one sweep"):
            CampaignSpec(name="c", sweeps=(), budget=100)
        with pytest.raises(ValueError, match="budget"):
            tiny_spec(budget=0)
        sweep = tiny_spec().sweeps[0]
        with pytest.raises(ValueError, match="unique"):
            CampaignSpec(name="c", sweeps=(sweep, sweep), budget=100)

    def test_fingerprint_tracks_content(self):
        spec = tiny_spec()
        assert spec.fingerprint() == tiny_spec().fingerprint()
        assert spec.fingerprint() != tiny_spec(seed=4).fingerprint()
        assert spec.fingerprint() != spec.fingerprint(budget=999)

    def test_builtin_specs(self):
        assert "paper_figures" in available_specs()
        assert "ci_smoke" in available_specs()
        for name in available_specs():
            spec = builtin_spec(name)
            spec.validate_names()
            assert spec.num_points >= 2
        with pytest.raises(KeyError, match="unknown builtin"):
            builtin_spec("bogus")

    def test_load_spec_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(tiny_spec().to_json())
        assert load_spec(path) == tiny_spec()
        with pytest.raises(FileNotFoundError):
            load_spec(tmp_path / "missing.json")


class TestResultStore:
    def test_round_trip_and_last_wins(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        assert len(store) == 0
        store.append({"key": "a", "failures": 1, "shots": 10})
        store.append({"key": "a", "failures": 2, "shots": 20})
        store.append({"key": "b", "failures": 0, "shots": 5})
        reloaded = ResultStore(store.path)
        assert len(reloaded) == 2
        assert reloaded.get("a")["shots"] == 20
        assert "b" in reloaded and "c" not in reloaded

    def test_truncated_tail_is_skipped(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append({"key": "a", "failures": 1, "shots": 10})
        with store.path.open("a") as handle:
            handle.write('{"key": "b", "failures": 2, "sho')
        reloaded = ResultStore(store.path)
        assert len(reloaded) == 1
        assert reloaded.skipped_lines == 1

    def test_other_versions_ignored(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text(json.dumps({"key": "a", "version": 999}) + "\n")
        reloaded = ResultStore(path)
        assert len(reloaded) == 0
        assert reloaded.skipped_lines == 1

    def test_key_required(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        with pytest.raises(ValueError, match="key"):
            store.append({"failures": 1, "shots": 2})

    def test_fingerprint_stability(self):
        payload = {"b": 2, "a": [1, 2], "nested": {"x": 1.5}}
        assert fingerprint(payload) == fingerprint(dict(reversed(
            list(payload.items()))))
        assert fingerprint(payload) != fingerprint({**payload, "b": 3})


# ----------------------------------------------------------------------
# Allocation degeneracy: the campaign allocates through the same engine
# as the single sweep, and a uniform flag vector equals the scalar.

tallies_strategy = st.lists(
    st.tuples(st.integers(0, 50), st.integers(0, 1000)).map(
        lambda t: (min(t), max(t))),
    min_size=1, max_size=8,
)


class TestAllocationDegeneracy:
    @given(tallies=tallies_strategy,
           budget=st.integers(0, 100_000),
           cap=st.integers(1, 100_000),
           relative=st.booleans())
    @settings(max_examples=200, deadline=None)
    def test_uniform_flags_equal_scalar(self, tallies, budget, cap,
                                        relative):
        """A one-sweep campaign's allocation call — per-point flags, all
        equal — is exactly PR 4's scalar-flag allocation."""
        caps = [cap] * len(tallies)
        scalar = allocate_shots(tallies, budget, caps, relative=relative)
        vector = allocate_shots(tallies, budget, caps,
                                relative=[relative] * len(tallies))
        assert scalar == vector

    def test_flag_length_validated(self):
        with pytest.raises(ValueError, match="one relative flag"):
            allocate_shots([(0, 10)], 100, [50], relative=[True, False])

    @given(rates=st.lists(st.floats(0.001, 0.4), min_size=1, max_size=5),
           budget=st.integers(100, 5000),
           seed=st.integers(0, 10))
    @settings(max_examples=50, deadline=None)
    def test_refine_engine_respects_budget(self, rates, budget, seed):
        """The shared engine never overspends the global budget, with
        deterministic fake runners standing in for experiments."""
        del seed

        def runner_for(rate):
            def runner(allocation, prior, round_index):
                del prior, round_index
                return int(allocation * rate), allocation
            return runner

        points = [
            AdaptivePoint(target=PrecisionTarget(half_width=0.01),
                          cap=budget, runner=runner_for(rate))
            for rate in rates
        ]
        spent = run_adaptive_refine(points, budget, 0)
        assert spent <= budget
        assert spent == sum(point.tally[1] for point in points)

    def test_campaign_uses_the_sweep_engine(self):
        """Structural degeneracy: the orchestrator refines through the
        very function the single-sweep scheduler uses."""
        from repro.campaign import orchestrator
        from repro.core import sweep

        assert orchestrator.run_adaptive_refine is sweep.run_adaptive_refine
        assert orchestrator.AdaptivePoint is sweep.AdaptivePoint


# ----------------------------------------------------------------------
# End-to-end campaign runs.

class TestCampaignRun:
    def test_cold_run_shape_and_budget(self, tmp_path):
        spec = tiny_spec(sweeps=2)
        result = run_campaign(spec, store=tmp_path / "store.jsonl")
        assert result.points_total == 4
        assert result.points_reused == 0
        assert result.shots_reused == 0
        assert 0 < result.shots_sampled <= spec.budget
        assert len(result.tables) == 2
        for table in result.tables:
            for column in PRECISION_COLUMNS:
                assert column in table.columns
        summary = result.summary_table()
        assert len(summary) == 2
        assert sum(summary.column("shots_used")) == result.shots_sampled

    def test_resume_is_bit_identical(self, tmp_path):
        spec = tiny_spec(sweeps=2)
        store = tmp_path / "store.jsonl"
        cold = run_campaign(spec, store=store)
        warm = run_campaign(spec, store=store)
        assert warm.shots_sampled == 0
        assert warm.points_reused == warm.points_total
        assert warm.shots_reused == cold.shots_sampled
        assert [t.to_json() for t in warm.tables] == \
               [t.to_json() for t in cold.tables]
        assert warm.summary_table().to_json() == \
               cold.summary_table().to_json()

    @given(seed=st.integers(0, 2**31), budget=st.integers(150, 600))
    @settings(max_examples=5, deadline=None)
    def test_resume_property(self, tmp_path_factory, seed, budget):
        """ISSUE property: for arbitrary seeds and budgets, the resumed
        campaign samples zero shots and reproduces the cold tables."""
        tmp = tmp_path_factory.mktemp("campaign-resume")
        spec = tiny_spec(budget=budget, seed=seed)
        store = tmp / "store.jsonl"
        cold = run_campaign(spec, store=store)
        warm = run_campaign(spec, store=store)
        assert warm.shots_sampled == 0
        assert [t.to_json() for t in warm.tables] == \
               [t.to_json() for t in cold.tables]

    def test_partial_resume_resamples_only_missing_points(self, tmp_path):
        spec = tiny_spec(sweeps=2)
        store_path = tmp_path / "store.jsonl"
        cold = run_campaign(spec, store=store_path)
        records = ResultStore(store_path).records()
        assert len(records) == 4
        dropped = records[1]
        store_path.write_text("".join(
            json.dumps(record, sort_keys=True) + "\n"
            for record in records if record["key"] != dropped["key"]
        ))
        partial = run_campaign(spec, store=store_path)
        assert partial.points_reused == 3
        assert partial.shots_sampled > 0
        # The reused rows are identical to the cold run's; only the
        # dropped point was re-estimated.
        for cold_table, partial_table in zip(cold.tables, partial.tables):
            for row_index, (cold_row, partial_row) in enumerate(
                    zip(cold_table.rows, partial_table.rows)):
                if cold_row != partial_row:
                    assert cold_table is cold.tables[0]
                    assert row_index == 1

    def test_worker_count_is_not_a_statistics_knob(self, tmp_path):
        spec = tiny_spec(sweeps=2, budget=300)
        serial = run_campaign(spec, store=tmp_path / "a.jsonl", workers=1)
        pooled = run_campaign(spec, store=tmp_path / "b.jsonl", workers=2)
        assert [t.to_json() for t in serial.tables] == \
               [t.to_json() for t in pooled.tables]
        assert serial.shots_sampled == pooled.shots_sampled

    def test_budget_override_partitions_the_store(self, tmp_path):
        spec = tiny_spec()
        store = tmp_path / "store.jsonl"
        run_campaign(spec, store=store, budget=200)
        other = run_campaign(spec, store=store, budget=300)
        assert other.points_reused == 0  # different budget, different keys
        resumed = run_campaign(spec, store=store, budget=300)
        assert resumed.shots_sampled == 0

    def test_store_optional(self):
        result = run_campaign(tiny_spec(budget=200))
        assert result.store_path is None
        assert result.shots_sampled <= 200

    def test_interrupted_campaign_keeps_finalised_points(self, tmp_path,
                                                         monkeypatch):
        """Points are flushed to the store as they finalise, so a
        killed campaign resumes them instead of re-sampling."""
        from repro.core.memory import MemoryExperiment

        # Sweep A meets its loose target at the pilot and is flushed
        # right there; sweep B (tight relative target) keeps sampling.
        spec = CampaignSpec.from_dict({
            "name": "interruptible", "budget": 600, "seed": 5,
            "sweeps": [
                {"name": "easy", "code": "repetition-d3",
                 "physical_error_rates": [5e-3],
                 "target": {"half_width": 0.06}, "rounds": 2,
                 "pilot_shots": 64, "shard_shots": 64},
                {"name": "hard", "code": "repetition-d3",
                 "physical_error_rates": [5e-3],
                 "target": {"half_width": 0.05, "relative": True},
                 "rounds": 2, "pilot_shots": 32, "shard_shots": 64},
            ],
        })
        store_path = tmp_path / "store.jsonl"
        appended = {"n": 0}
        original_run = MemoryExperiment.run
        original_append = ResultStore.append

        def counting_append(self, record):
            appended["n"] += 1
            return original_append(self, record)

        def dying_run(self, *args, **kwargs):
            # Die on the first sampling call *after* something reached
            # the store: the campaign is provably mid-flight with a
            # finalised point already flushed.
            if appended["n"] >= 1:
                raise KeyboardInterrupt("simulated ^C mid-campaign")
            return original_run(self, *args, **kwargs)

        monkeypatch.setattr(ResultStore, "append", counting_append)
        monkeypatch.setattr(MemoryExperiment, "run", dying_run)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(spec, store=store_path)
        monkeypatch.setattr(MemoryExperiment, "run", original_run)
        interrupted = ResultStore(store_path)
        assert len(interrupted) == 1  # the easy point survived the ^C
        resumed = run_campaign(spec, store=store_path)
        assert resumed.points_reused == 1
        assert resumed.shots_sampled > 0
        assert resumed.points_total == 2
        # The resumed campaign finalises everything.
        assert len(ResultStore(store_path)) == 2

    def test_pooled_experiment_rejects_conflicting_workers(self):
        from repro.core.memory import MemoryExperiment
        from repro.parallel import SharedPool
        from repro.codes import code_by_name

        with SharedPool(2) as pool:
            with MemoryExperiment(code=code_by_name("repetition-d3"),
                                  rounds=2, pool=pool) as experiment:
                assert experiment.workers == 2
                with pytest.raises(ValueError, match="SharedPool"):
                    experiment.run(5e-3, 100.0, shots=32, workers=1)
                # Matching and default overrides are fine.
                result = experiment.run(5e-3, 100.0, shots=32, workers=2)
                assert result.shots == 32

    def test_spent_never_exceeds_budget_even_when_tiny(self):
        result = run_campaign(tiny_spec(budget=40, sweeps=2))
        assert result.shots_sampled <= 40


def capped_spec(budget: int = 4000) -> CampaignSpec:
    """Four points whose unreachable target makes every final a
    cap-final (500 shots each) — the adoptable kind of record."""
    return CampaignSpec.from_dict({
        "name": "adoptable", "budget": budget, "seed": 13,
        "sweeps": [{
            "name": "capped",
            "code": "repetition-d3",
            "kind": "physical_error",
            "codesign": "cyclone",
            "physical_error_rates": [5e-3, 1e-2, 1.5e-2, 2e-2],
            "target": {"half_width": 1e-6},
            "rounds": 2,
            "pilot_shots": 32,
            "shard_shots": 64,
            "max_shots": 500,
        }],
    })


class TestMidRunExternalAdoption:
    """The store is re-folded *before every allocation round*, not just
    at campaign start — finals another process lands mid-run are
    adopted instead of re-sampled (the ``repro serve`` + ``--join``
    coexistence story)."""

    def test_refresh_adopts_rival_finals_mid_run(self, tmp_path):
        spec = capped_spec()
        rival_store = ResultStore(tmp_path / "rival.jsonl")
        cold = run_campaign(spec, store=rival_store)
        assert cold.shots_sampled == 4 * 500
        cold_tables = [table.to_json() for table in cold.tables]

        live_path = tmp_path / "live.jsonl"
        injected = {"done": False}

        def inject_rival_finals(snapshot: dict) -> None:
            # After the first pilot flush, a rival process lands every
            # point's cap-final record in the live store *file*.  Only
            # a refresh() before the next allocation round can see
            # them — the live run's own store instance predates them.
            if snapshot["phase"] != "pilot" or injected["done"]:
                return
            injected["done"] = True
            rival = ResultStore(live_path)
            for record in rival_store.records():
                if not record.get("partial"):
                    rival.append(dict(record))

        result = run_campaign(spec, store=ResultStore(live_path),
                              progress=inject_rival_finals)
        assert injected["done"]
        # Every point was adopted; this run sampled only its pilots.
        assert result.shots_external == 4 * 500
        assert result.shots_sampled == 4 * 32
        assert result.shots_reused == 0
        assert [table.to_json() for table in result.tables] == cold_tables

    def test_budget_exhausted_rival_finals_are_not_adopted(self, tmp_path):
        # With budget 1000 the campaign force-flushes every point short
        # of its cap: final records, but only because *that run's*
        # budget ran dry.  Adopting them would freeze another run's
        # stopping decision into ours, so they are re-sampled instead.
        spec = capped_spec(budget=1000)
        rival_store = ResultStore(tmp_path / "rival.jsonl")
        cold = run_campaign(spec, store=rival_store)
        rival_finals = [record for record in rival_store.records()
                        if not record.get("partial")]
        assert rival_finals and all(record["shots"] < 500
                                    for record in rival_finals)

        live_path = tmp_path / "live.jsonl"
        injected = {"done": False}

        def inject_rival_finals(snapshot: dict) -> None:
            if snapshot["phase"] != "pilot" or injected["done"]:
                return
            injected["done"] = True
            rival = ResultStore(live_path)
            for record in rival_finals:
                rival.append(dict(record))

        result = run_campaign(spec, store=ResultStore(live_path),
                              progress=inject_rival_finals)
        assert injected["done"]
        assert result.shots_external == 0
        assert result.shots_sampled == cold.shots_sampled
        assert [table.to_json() for table in result.tables] == \
            [table.to_json() for table in cold.tables]

    def test_before_round_spend_feeds_the_engine(self):
        """`before_round`'s return value is external spend: it counts
        against the global budget exactly like carried-in reuse."""
        calls: list[int] = []

        def runner(allocation, prior, round_index):
            del prior, round_index
            return 0, allocation

        def before_round(round_index: int) -> int:
            calls.append(round_index)
            return 100 if round_index == 0 else 0

        points = [
            AdaptivePoint(target=PrecisionTarget(half_width=1e-9),
                          cap=1000, runner=runner)
            for _ in range(2)
        ]
        spent = run_adaptive_refine(points, 300, 0,
                                    before_round=before_round)
        # 100 of the 300-shot budget was adopted externally before
        # round 0, so the points' own sampling stays within 200.
        assert calls and calls[0] == 0
        assert spent <= 300
        assert sum(point.tally[1] for point in points) == spent - 100


class TestCampaignCLI:
    def test_list_specs(self, capsys):
        assert main(["campaign", "--list-specs"]) == 0
        out = capsys.readouterr().out
        assert "paper_figures" in out and "ci_smoke" in out

    def test_spec_required(self, capsys):
        assert main(["campaign"]) == 2
        assert "--list-specs" in capsys.readouterr().err

    def test_unknown_spec(self, capsys):
        assert main(["campaign", "no-such-spec"]) == 2
        assert "neither a builtin spec" in capsys.readouterr().err

    def test_run_resume_and_assert_flag(self, capsys, tmp_path):
        store = tmp_path / "store.jsonl"
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(tiny_spec(budget=240).to_json())
        out1 = tmp_path / "out1"
        out2 = tmp_path / "out2"
        assert main(["campaign", str(spec_path), "--store", str(store),
                     "--output", str(out1)]) == 0
        capsys.readouterr()
        assert main(["campaign", str(spec_path), "--store", str(store),
                     "--output", str(out2), "--assert-no-sampling"]) == 0
        output = capsys.readouterr().out
        assert "0 shots sampled" in output
        cold_files = sorted(p.name for p in out1.iterdir())
        assert cold_files == sorted(p.name for p in out2.iterdir())
        for name in cold_files:
            assert (out1 / name).read_text() == (out2 / name).read_text()

    def test_assert_flag_fails_on_fresh_store(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(tiny_spec(budget=240).to_json())
        code = main(["campaign", str(spec_path), "--store",
                     str(tmp_path / "fresh.jsonl"), "--assert-no-sampling"])
        assert code == 3
        assert "shots were sampled" in capsys.readouterr().err

    def test_budget_override(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(tiny_spec(budget=100_000).to_json())
        assert main(["campaign", str(spec_path), "--budget", "150"]) == 0
        assert "150" in capsys.readouterr().out

    def test_orchestrator_errors_are_usage_errors(self, capsys, tmp_path):
        spec = tiny_spec(budget=240)
        payload = json.loads(spec.to_json())
        payload["sweeps"][0]["code"] = "BB[[72,12,6]]"  # typo: no space
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(payload))
        assert main(["campaign", str(spec_path)]) == 2
        assert "unknown code" in capsys.readouterr().err

    def test_summary_ledger(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(tiny_spec(budget=240).to_json())
        summary_path = tmp_path / "ledger.json"
        assert main(["campaign", str(spec_path), "--summary",
                     str(summary_path)]) == 0
        ledger = json.loads(summary_path.read_text())
        assert ledger["budget"] == 240
        assert ledger["shots_sampled"] == ledger["spent"]
        assert ledger["points_total"] == 2


class TestPaperFiguresSpec:
    """Acceptance: the bundled paper_figures spec completes under a
    global budget and resumes with zero re-sampling (run here at a
    reduced budget override; CI smokes the ci_smoke spec the same way,
    and the full-budget run is the actual reproduction)."""

    def test_completes_and_resumes(self, tmp_path):
        spec = load_spec("paper_figures")
        assert spec.num_points == 12
        store = tmp_path / "figures.jsonl"
        cold = run_campaign(spec, store=store, budget=1200)
        assert cold.shots_sampled <= 1200
        assert cold.points_total == 12
        assert len(cold.tables) == 4
        warm = run_campaign(spec, store=store, budget=1200)
        assert warm.shots_sampled == 0
        assert warm.points_reused == 12
        assert [t.to_json() for t in warm.tables] == \
               [t.to_json() for t in cold.tables]


class TestExecutionKnobFingerprintStability:
    """shard_timeout / max_shard_retries shape recovery, not results —
    a store written under one retry policy must resume under any."""

    def test_sweep_round_trips_the_knobs(self):
        sweep = SweepSpec(
            name="s", code="repetition-d3",
            physical_error_rates=(1e-3,), rounds=2,
            shard_timeout=30.0, max_shard_retries=5,
        )
        clone = SweepSpec.from_dict(sweep.to_dict())
        assert clone.shard_timeout == 30.0
        assert clone.max_shard_retries == 5
        assert clone == sweep

    def test_knobs_are_validated(self):
        with pytest.raises(ValueError, match="shard_timeout"):
            SweepSpec(name="s", code="repetition-d3",
                      physical_error_rates=(1e-3,), shard_timeout=0.0)
        with pytest.raises(ValueError, match="max_shard_retries"):
            SweepSpec(name="s", code="repetition-d3",
                      physical_error_rates=(1e-3,), max_shard_retries=-1)

    def test_fingerprint_ignores_the_knobs(self):
        def spec_with(**knobs):
            return CampaignSpec(
                name="fp", budget=100,
                sweeps=(SweepSpec(name="s", code="repetition-d3",
                                  physical_error_rates=(1e-3,), rounds=2,
                                  **knobs),))
        plain = spec_with()
        assert (spec_with(shard_timeout=5.0,
                          max_shard_retries=7).fingerprint()
                == plain.fingerprint())
        # ...while real spec changes still re-key the store.
        assert spec_with().fingerprint(budget=200) != plain.fingerprint()


class TestStoreCrashSafety:
    def _record(self, key, shots=10):
        return {"key": key, "failures": 1, "shots": shots}

    def test_append_is_one_line_one_write(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append(self._record("a"))
        store.append(self._record("b"))
        text = (tmp_path / "s.jsonl").read_text()
        assert text.endswith("\n")
        assert len(text.strip().splitlines()) == 2

    def test_torn_tail_is_skipped_and_not_concatenated(self, tmp_path):
        """A file ending in a torn (newline-less) line must load
        cleanly AND keep the next append on a fresh line — otherwise
        the new record is corrupted by concatenation."""
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.append(self._record("a"))
        with path.open("a") as handle:
            handle.write('{"key": "torn", "failures": 0, "sho')
        reloaded = ResultStore(path)
        assert reloaded.skipped_lines == 1
        assert "a" in reloaded and "torn" not in reloaded
        reloaded.append(self._record("b"))
        final = ResultStore(path)
        assert final.skipped_lines == 1
        assert "a" in final and "b" in final
        assert final.get("b") == final._records["b"]

    def test_fsync_env_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_FSYNC", "1")
        store = ResultStore(tmp_path / "s.jsonl")
        assert store.fsync
        store.append(self._record("a"))
        assert "a" in ResultStore(tmp_path / "s.jsonl")

    @given(st.integers(min_value=0, max_value=200), st.integers(0, 2 ** 16))
    @settings(max_examples=40, deadline=None)
    def test_truncation_at_any_byte_recovers(self, cut_back, salt):
        """Chop the file anywhere (a crash mid-write), reload, append,
        reload: every untouched record survives and the appended record
        lands cleanly."""
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "s.jsonl"
            store = ResultStore(path)
            for index in range(3):
                store.append({"key": f"k{index}", "failures": index,
                              "shots": 10 + salt % 97})
            raw = path.read_bytes()
            cut = max(0, len(raw) - cut_back)
            path.write_bytes(raw[:cut])
            reloaded = ResultStore(path)
            intact = [f"k{i}" for i in range(3) if f"k{i}" in reloaded]
            # A cut only ever costs the tail: the surviving records are
            # a prefix, and every record whose newline survived is in it
            # (a cut landing exactly after the JSON text also recovers
            # that newline-less final record — a bonus, not a promise).
            whole_lines = raw[:cut].count(b"\n")
            assert intact == [f"k{i}" for i in range(len(intact))]
            assert len(intact) >= min(3, whole_lines)
            reloaded.append({"key": "after", "failures": 0, "shots": 1})
            final = ResultStore(path)
            assert "after" in final
            for key in intact:
                assert key in final
