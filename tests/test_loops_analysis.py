"""Tests for the Section IV-C independent/concurrent loop analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    independent_loop_partition,
    loop_split_cost,
    single_vs_split_loop_table,
    stabilizer_connectivity_graph,
)
from repro.codes import CSSCode, code_by_name


def _two_disjoint_repetition_blocks() -> CSSCode:
    """Two independent 3-qubit repetition codes on 6 qubits."""
    hz = np.zeros((4, 6), dtype=np.uint8)
    hz[0, [0, 1]] = 1
    hz[1, [1, 2]] = 1
    hz[2, [3, 4]] = 1
    hz[3, [4, 5]] = 1
    hx = np.zeros((0, 6), dtype=np.uint8)
    return CSSCode(hx=hx, hz=hz, name="two-blocks")


class TestConnectivityGraph:
    def test_graph_size(self, surface_code_d3):
        graph = stabilizer_connectivity_graph(surface_code_d3)
        assert graph.number_of_nodes() == surface_code_d3.num_stabilizers
        assert graph.number_of_edges() > 0

    def test_disjoint_blocks_are_disconnected(self):
        code = _two_disjoint_repetition_blocks()
        partition = independent_loop_partition(code)
        assert len(partition) == 2
        assert sorted(len(group) for group in partition) == [2, 2]

    def test_paper_codes_have_single_component(self):
        for name in ("BB [[72,12,6]]", "HGP [[225,9,6]]"):
            code = code_by_name(name)
            assert len(independent_loop_partition(code)) == 1

    def test_surface_code_is_connected_too(self, surface_code_d3):
        assert len(independent_loop_partition(surface_code_d3)) == 1


class TestLoopSplitCost:
    def test_single_loop_has_no_sharing(self, bb_72):
        cost = loop_split_cost(bb_72, 1)
        assert cost["shared_data_qubits"] == 0
        assert cost["extra_rotations"] == 0
        assert cost["estimated_time_us"] > 0

    def test_forced_split_shares_data_for_bb_codes(self, bb_72):
        cost = loop_split_cost(bb_72, 2)
        assert cost["shared_data_qubits"] > 0
        assert cost["extra_rotations"] >= 1

    def test_split_never_beats_single_loop_for_paper_codes(self, bb_72):
        single = loop_split_cost(bb_72, 1)["estimated_time_us"]
        for loops in (2, 3, 4):
            split = loop_split_cost(bb_72, loops)["estimated_time_us"]
            assert split >= single * 0.9

    def test_disjoint_blocks_split_cleanly(self):
        code = _two_disjoint_repetition_blocks()
        cost = loop_split_cost(code, 2)
        assert cost["shared_data_qubits"] == 0
        assert cost["extra_rotations"] == 0

    def test_invalid_loop_count(self, bb_72):
        with pytest.raises(ValueError):
            loop_split_cost(bb_72, 0)


class TestAblationTable:
    def test_table_rows_and_conclusion(self, bb_72):
        table = single_vs_split_loop_table(bb_72, loop_counts=(1, 2, 4))
        assert len(table) == 3
        times = dict(zip(table.column("num_loops"),
                         table.column("estimated_time_us")))
        assert times[1] <= min(times[2], times[4]) * 1.1
        assert all(value == 1 for value in
                   table.column("independent_components"))
