#!/usr/bin/env python
"""End-to-end CI smoke of the served campaign path (``repro serve``).

Boots the real ``repro serve`` process on an ephemeral port and checks
the three serving contracts over actual HTTP:

1. two *concurrent* submissions of the bundled ``ci_smoke`` campaign
   coalesce onto one job by content fingerprint — together they sample
   at most one cold run's shots;
2. a resubmission after completion is a fresh job served from the
   store: **zero** shots sampled, and a ``/tables`` body byte-identical
   to the cold job's;
3. SIGTERM drains gracefully — exit code 0 with the drain log lines —
   leaving a store a later run can resume.

Run from the repository root (the ``service-smoke`` CI job does)::

    PYTHONPATH=src python .github/scripts/service_smoke.py
"""

from __future__ import annotations

import concurrent.futures
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service import ServiceClient  # noqa: E402


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="service-smoke-"))
    port_file = tmp / "port"
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--store", str(tmp / "store.jsonl"),
         "--port", "0", "--port-file", str(port_file)],
        env=env, cwd=str(REPO_ROOT),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        deadline = time.monotonic() + 60
        while not port_file.exists():
            if process.poll() is not None or time.monotonic() > deadline:
                raise RuntimeError("repro serve did not come up: "
                                   + process.communicate()[0])
            time.sleep(0.05)
        client = ServiceClient(
            f"http://127.0.0.1:{int(port_file.read_text())}", timeout=30)

        health = client.healthz()
        assert health["status"] == "serving", health
        assert client.specs()["specs"], "no builtin specs served"

        # 1. Concurrent duplicate submissions coalesce (or, if the
        # first finishes before the second lands, the second reuses the
        # store) — either way the pair pays for at most one cold run.
        with concurrent.futures.ThreadPoolExecutor(2) as pool:
            futures = [pool.submit(client.submit, "ci_smoke")
                       for _ in range(2)]
            a, b = [future.result() for future in futures]
        print(f"submitted {a['job']} (deduplicated={a['deduplicated']}) "
              f"and {b['job']} (deduplicated={b['deduplicated']})")
        finals = {job_id: client.wait(job_id, timeout=300)
                  for job_id in {a["job"], b["job"]}}
        assert all(view["state"] == "done" for view in finals.values()), \
            finals
        cold_sampled = max(view["stats"]["shots_sampled"]
                           for view in finals.values())
        total_sampled = sum(view["stats"]["shots_sampled"]
                            for view in finals.values())
        assert cold_sampled > 0, "the cold run sampled nothing"
        assert total_sampled <= cold_sampled, (
            f"two concurrent submissions sampled {total_sampled} shots "
            f"in total; one cold run costs {cold_sampled}")
        print(f"concurrent pair sampled {total_sampled} shots in total "
              f"(one cold run: {cold_sampled})")
        cold_bytes = client.tables_bytes(a["job"])

        # 2. Resubmission after completion: zero sampling, same bytes.
        again = client.submit("ci_smoke")
        assert again["job"] not in finals, again
        warm = client.wait(again["job"], timeout=300)
        assert warm["state"] == "done", warm
        assert warm["stats"]["shots_sampled"] == 0, warm["stats"]
        assert warm["stats"]["shots_reused"] == cold_sampled, warm["stats"]
        assert client.tables_bytes(again["job"]) == cold_bytes, \
            "served tables are not byte-identical across jobs"
        print(f"resubmission {again['job']}: 0 shots sampled, "
              f"{warm['stats']['shots_reused']} reused, "
              "tables byte-identical")

        # 3. Graceful SIGTERM drain.
        process.send_signal(signal.SIGTERM)
        output = process.communicate(timeout=120)[0]
        assert process.returncode == 0, output
        assert "repro serve: drained" in output, output
        print("SIGTERM drain: exit 0")
        print("service smoke OK")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()


if __name__ == "__main__":
    sys.exit(main())
