#!/usr/bin/env python3
"""Bring your own code and hardware: the library as a research tool.

Shows the extension points a downstream user would touch:

* build a custom hypergraph product code from a hand-picked classical
  LDPC factor,
* inspect its maximally parallel syndrome-extraction schedule,
* compile it onto a condensed Cyclone ring with custom operation times
  (e.g. a future machine with 2x faster shuttling),
* and onto the baseline grid with a custom trap capacity,
* then estimate logical error rates for both.

Run with:  python examples/custom_code_and_hardware.py

Set ``REPRO_WORKERS=N`` (``0`` = one per core) to run the memory
experiments on the fused sample+decode pipeline across worker
processes (bit-identical results for any value).
"""

from __future__ import annotations

import os

from repro import logical_error_rate
from repro.codes import hypergraph_product, schedule_for
from repro.codes.classical import distance_targeted_regular_ldpc
from repro.qccd.compilers import CycloneCompiler, EJFGridCompiler
from repro.qccd.timing import OperationTimes


def main() -> None:
    # --- 1. A custom [[n, k]] HGP code from a distance-targeted factor.
    factor = distance_targeted_regular_ldpc(
        num_checks=6, num_bits=8, target_distance=4
    )
    code = hypergraph_product(factor, name="custom HGP")
    n, k, _ = code.parameters
    print(f"Custom code: [[{n}, {k}]] from a classical "
          f"[{factor.num_bits}, {factor.dimension}, "
          f"{factor.metadata['distance']}] factor")

    # --- 2. Its maximally parallel schedule.
    schedule = schedule_for(code)
    print(f"Maximally parallel schedule: {schedule.depth} timeslices for "
          f"{schedule.total_gates} CNOTs "
          f"(max {schedule.max_parallelism} concurrent)")

    # --- 3. Cyclone on a condensed ring with faster shuttling.
    fast_times = OperationTimes(improvement_factor=0.5)
    cyclone = CycloneCompiler(num_traps=16, times=fast_times).compile(code)
    print(f"\nCondensed Cyclone (16 traps, 2x faster operations): "
          f"{cyclone.execution_time_us / 1000:.2f} ms per round, "
          f"capacity {cyclone.metadata['trap_capacity']} ions/trap")

    # --- 4. Baseline grid with a roomier trap capacity.
    baseline = EJFGridCompiler(trap_capacity=8).compile(code)
    print(f"Baseline grid (capacity 8):                    "
          f"{baseline.execution_time_us / 1000:.2f} ms per round, "
          f"{baseline.metadata['roadblock_events']} roadblock waits")

    # --- 5. Hardware-aware logical error rates.
    p = 1e-3
    try:
        workers = int(os.environ.get("REPRO_WORKERS", "1"))
    except ValueError:
        workers = 1
    for label, compiled in (("cyclone", cyclone), ("baseline", baseline)):
        result = logical_error_rate(
            code, p, compiled.execution_time_us, shots=300, rounds=3, seed=2,
            workers=workers,
        )
        print(f"LER at p={p:g} on {label:8s}: "
              f"{result.logical_error_rate:.4f} per shot")


if __name__ == "__main__":
    main()
