#!/usr/bin/env python3
"""Design-space exploration: every codesign on one code.

Reproduces the flavour of the paper's Sections III-IV exploration: the
baseline grid, the dynamic-scheduled grid, the alternate grid, static
EJF on a ring, the mesh junction network, the alternative baseline
compilers and Cyclone (base and condensed forms) are all compiled for
the same code, and their temporal, spatial and control costs tabulated.

Run with:  python examples/design_space_exploration.py [code-name]
"""

from __future__ import annotations

import sys

from repro import code_by_name, codesign_by_name, sweep_architectures
from repro.core import Codesign
from repro.core.results import ResultTable
from repro.qccd.compilers import CycloneCompiler


def condensed_cyclone_table(code) -> ResultTable:
    """Cyclone's trap-count / capacity trade-off (Figure 13 style)."""
    m_basis = max(code.num_x_stabilizers, code.num_z_stabilizers)
    table = ResultTable(
        title=f"Condensed Cyclone variants on {code.name}",
        columns=["num_traps", "trap_capacity", "chain_length",
                 "execution_time_us", "worst_case_bound_us"],
    )
    for num_traps in sorted({1, 9, 16, 36, 64, m_basis // 2, m_basis}):
        num_traps = max(1, min(num_traps, m_basis))
        compiled = CycloneCompiler(num_traps=num_traps).compile(code)
        table.add_row(
            num_traps=num_traps,
            trap_capacity=compiled.metadata["trap_capacity"],
            chain_length=compiled.metadata["chain_length"],
            execution_time_us=compiled.execution_time_us,
            worst_case_bound_us=compiled.metadata["worst_case_bound_us"],
        )
    return table


def main() -> None:
    code_name = sys.argv[1] if len(sys.argv) > 1 else "BB [[72,12,6]]"
    code = code_by_name(code_name)
    print(f"Exploring the codesign space for {code.name} "
          f"({code.num_qubits} data qubits, {code.num_stabilizers} "
          f"stabilizers)\n")

    codesigns: list[Codesign] = [
        codesign_by_name("baseline"),
        codesign_by_name("baseline_grid_dynamic"),
        codesign_by_name("alternate_grid"),
        codesign_by_name("ejf_ring"),
        codesign_by_name("mesh_junction"),
        codesign_by_name("baseline2"),
        codesign_by_name("baseline3"),
        codesign_by_name("cyclone"),
    ]
    table = sweep_architectures(code, codesigns)
    print(table.to_text())

    print()
    print(condensed_cyclone_table(code).to_text())

    times = dict(zip(table.column("codesign"),
                     table.column("execution_time_us")))
    best = min(times, key=times.get)
    print(f"\nFastest codesign: {best} "
          f"({times[best] / 1000:.2f} ms per round)")


if __name__ == "__main__":
    main()
