#!/usr/bin/env python3
"""Quickstart: compile a code onto Cyclone and the baseline, compare LER.

This walks the library's main pipeline end to end:

1. build a code from the library (the paper's [[225,9,6]] hypergraph
   product code),
2. compile one round of syndrome extraction onto the baseline grid and
   onto Cyclone,
3. compare execution latency and spatial cost,
4. run hardware-aware memory experiments at a physical error rate and
   compare logical error rates.

Run with:  python examples/quickstart.py

Set ``REPRO_WORKERS=N`` (``0`` = one per core) to run the memory
experiments on the fused sample+decode pipeline across N worker
processes; the numbers are bit-identical for any value.  Set
``REPRO_TARGET_PRECISION`` (an absolute Wilson half-width) to stream
each experiment and stop early once its confidence interval is tight
enough — ``shots`` then acts as the budget cap.
"""

from __future__ import annotations

import os

from repro import (
    code_by_name,
    codesign_by_name,
    logical_error_rate,
    spacetime_comparison,
)


def _workers_from_env() -> int:
    """The shared examples knob: REPRO_WORKERS (default 1, 0 = per core)."""
    try:
        return int(os.environ.get("REPRO_WORKERS", "1"))
    except ValueError:
        return 1


def _target_precision_from_env() -> float | None:
    """REPRO_TARGET_PRECISION: Wilson half-width for early stopping."""
    try:
        return float(os.environ["REPRO_TARGET_PRECISION"])
    except (KeyError, ValueError):
        return None


def main() -> None:
    code = code_by_name("HGP [[225,9,6]]")
    print(f"Code: {code.name}  [[n={code.num_qubits}, "
          f"k={code.num_logical_qubits}, d={code.distance}]]  "
          f"({code.num_stabilizers} stabilizers)")

    print("\nCompiling one round of syndrome extraction...")
    baseline = codesign_by_name("baseline").compile(code)
    cyclone = codesign_by_name("cyclone").compile(code)

    for compiled in (baseline, cyclone):
        print(f"  {compiled.architecture:28s} "
              f"latency = {compiled.execution_time_us / 1000:8.2f} ms   "
              f"traps = {compiled.metadata['num_traps']:4d}   "
              f"ancilla = {compiled.metadata['num_ancilla']:4d}   "
              f"DACs = {compiled.metadata['dac_count']:4d}")

    speedup = baseline.execution_time_us / cyclone.execution_time_us
    comparison = spacetime_comparison(baseline, cyclone)
    print(f"\nCyclone speedup:              {speedup:.2f}x")
    print(f"Cyclone spacetime improvement: "
          f"{comparison['improvement_factor']:.1f}x")

    physical_error_rate = 5e-4
    shots = 200
    workers = _workers_from_env()
    print(f"\nMemory experiments at p = {physical_error_rate:g} "
          f"({shots} shots, {min(code.distance or 3, 4)} rounds, "
          f"workers={workers})...")
    for label, compiled in (("baseline", baseline), ("cyclone", cyclone)):
        result = logical_error_rate(
            code,
            physical_error_rate=physical_error_rate,
            round_latency_us=compiled.execution_time_us,
            shots=shots,
            rounds=min(code.distance or 3, 4),
            seed=1,
            workers=workers,
            target_precision=_target_precision_from_env(),
        )
        early = " (stopped early)" if result.stopped_early else ""
        print(f"  {label:10s} logical error rate per shot = "
              f"{result.logical_error_rate:.4f}   per round = "
              f"{result.logical_error_rate_per_round:.5f}   "
              f"[{result.shots_used} shots{early}]")

    print("\nDone.  See examples/design_space_exploration.py and "
          "examples/bb_memory_comparison.py for deeper dives.")


if __name__ == "__main__":
    main()
