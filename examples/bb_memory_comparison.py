#!/usr/bin/env python3
"""Bivariate-bicycle memory comparison: Cyclone vs baseline LER curves.

Reproduces a small version of the paper's Figure 14 workflow: for one
or more BB codes, compile the baseline grid and Cyclone, convert their
latencies into hardware-aware noise models, and sweep the physical
error rate to obtain logical error rate curves for both codesigns.

Run with:  python examples/bb_memory_comparison.py [shots] [workers]

``workers`` (or the ``REPRO_WORKERS`` environment variable; ``0`` = one
per core) runs each sweep's fused sample+decode pipeline across worker
processes — at the 100k+ shot budgets where the LER floor gets
interesting, that is the difference between minutes and one coffee.
The numbers are bit-identical for any worker count.

Set ``REPRO_TARGET_PRECISION`` (an absolute Wilson half-width, e.g.
``2e-3``) to switch each sweep onto the adaptive pilot/allocate/refine
scheduler: ``shots`` becomes the *average* per-point budget of a global
pool, points stream until their confidence interval is tight enough and
stop early, and the saved shots concentrate on the points that need
them.  Rows then report ``shots_used`` and the Wilson bounds.
"""

from __future__ import annotations

import os
import sys

from repro import code_by_name, codesign_by_name, sweep_physical_error

CODES = ["BB [[72,12,6]]", "BB [[144,12,12]]"]
PHYSICAL_ERROR_RATES = [1e-4, 3e-4, 1e-3]


def main() -> None:
    shots = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    if len(sys.argv) > 2:
        workers = int(sys.argv[2])
    else:
        try:
            workers = int(os.environ.get("REPRO_WORKERS", "1"))
        except ValueError:
            workers = 1
    try:
        target_precision = float(os.environ["REPRO_TARGET_PRECISION"])
    except (KeyError, ValueError):
        target_precision = None

    for code_name in CODES:
        code = code_by_name(code_name)
        print(f"\n### {code.name} ###")
        for design in ("baseline", "cyclone"):
            compiled = codesign_by_name(design).compile(code)
            latency = compiled.execution_time_us
            table = sweep_physical_error(
                code,
                round_latency_us=latency,
                physical_error_rates=PHYSICAL_ERROR_RATES,
                shots=shots,
                rounds=min(code.distance or 3, 4),
                label=f"{design}, {latency / 1000:.1f} ms/round",
                seed=5,
                workers=workers,
                target_precision=target_precision,
            )
            print()
            print(table.to_text())

    print(
        "\nNote: with the default shot budget the smallest resolvable LER is "
        "1/shots; increase the shot count argument to push the floor down."
    )


if __name__ == "__main__":
    main()
