"""Figure 13: Cyclone sensitivity to trap count / ion capacity ("tight" designs).

Paper message (for the [[225,9,6]] HGP code at p = 1e-4): a single dense
trap is terrible (441-ion chain, no shuttling but extremely slow gates),
the base form (m/2 traps) is good, and the optimum sits at an
intermediate density (the paper finds 64 traps with ~8 ions each); even
9 traps already beats the baseline grid.
"""

from repro.analysis import trap_arrangement_sensitivity
from repro.codes import code_by_name
from repro.core import codesign_by_name


def test_fig13_trap_ion_arrangements(benchmark, report, bench_shots,
                                     bench_rounds):
    code = code_by_name("HGP [[225,9,6]]")
    table = benchmark.pedantic(
        trap_arrangement_sensitivity,
        kwargs={
            "code": code,
            "trap_counts": (1, 9, 25, 64, 108),
            "physical_error_rate": 1e-4,
            "shots": bench_shots,
            "rounds": bench_rounds,
            "seed": 13,
        },
        rounds=1, iterations=1,
    )
    report(table)

    by_traps = {row["num_traps"]: row["execution_time_us"]
                for row in table.rows}
    # The single-trap configuration is by far the slowest.
    assert by_traps[1] == max(by_traps.values())
    # The 64-trap point is at least as good as the sparse base form.
    assert by_traps[64] <= by_traps[108] * 1.05
    # Even 9 traps outperforms the baseline grid codesign.
    baseline = codesign_by_name("baseline").compile(code).execution_time_us
    assert by_traps[9] < baseline
