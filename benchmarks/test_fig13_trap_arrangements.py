"""Figure 13: Cyclone sensitivity to trap count / capacity ("tight" designs).

Paper message (for the [[225,9,6]] HGP code at p = 1e-4): a single dense
trap is terrible (441-ion chain, no shuttling but extremely slow gates),
the base form (m/2 traps) is good, and the optimum sits at an
intermediate density (the paper finds 64 traps with ~8 ions each); even
9 traps already beats the baseline grid.

The table comes straight from the ``fig13_trap_arrangement`` sweep of
the ``paper_figures_full`` campaign spec, run through its registered
sweep kind — the benchmark only rescales the Monte-Carlo budget.
"""

from dataclasses import replace

from repro.campaign import builtin_spec, run_sweep_kind
from repro.codes import code_by_name
from repro.core import codesign_by_name


def _spec_sweep(name: str):
    spec = builtin_spec("paper_figures_full")
    return next(sweep for sweep in spec.sweeps if sweep.name == name)


def test_fig13_trap_ion_arrangements(benchmark, report, bench_shots,
                                     bench_rounds):
    sweep = replace(_spec_sweep("fig13_trap_arrangement"),
                    rounds=bench_rounds)
    table = benchmark.pedantic(
        run_sweep_kind, args=(sweep,),
        kwargs={"shots": bench_shots, "seed": 13},
        rounds=1, iterations=1,
    )
    report(table)

    by_traps = {row["num_traps"]: row["execution_time_us"]
                for row in table.rows}
    # The single-trap configuration is by far the slowest.
    assert by_traps[1] == max(by_traps.values())
    # The 64-trap point is at least as good as the sparse base form.
    assert by_traps[64] <= by_traps[108] * 1.05
    # Even 9 traps outperforms the baseline grid codesign.
    code = code_by_name(sweep.code)
    baseline = codesign_by_name("baseline").compile(code).execution_time_us
    assert by_traps[9] < baseline
