"""Figure 3: speedup of maximally parallel vs fully serial schedules.

Paper series: bars of relative speedup (x times over fully serialized)
for each HGP and BB code, growing with code size.
"""

from repro.analysis import speedup_table

CODES = [
    "HGP [[225,9,6]]",
    "HGP [[400,16,6]]",
    "HGP [[625,25,8]]",
    "BB [[72,12,6]]",
    "BB [[90,8,10]]",
    "BB [[108,8,10]]",
    "BB [[144,12,12]]",
]


def test_fig03_parallel_vs_serial_speedup(benchmark, report):
    table = benchmark.pedantic(
        speedup_table, args=(CODES,), rounds=1, iterations=1
    )
    report(table)

    speedups = dict(zip(table.column("code"), table.column("speedup")))
    # Every code is massively parallelizable (paper: 1-2 orders of magnitude).
    assert all(value > 10 for value in speedups.values())
    # Speedup grows with code size within each family.
    assert speedups["HGP [[625,25,8]]"] > speedups["HGP [[225,9,6]]"]
    assert speedups["BB [[144,12,12]]"] > speedups["BB [[72,12,6]]"]
