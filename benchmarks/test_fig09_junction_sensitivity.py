"""Figure 9: mesh junction network LER vs junction-crossing-time reduction.

Paper message: the dense junction mesh only becomes temporally
competitive with (and then better than) the baseline grid once junction
crossing times are reduced by roughly 70%.

The table comes straight from the ``fig09_junction`` sweep of the
``paper_figures_full`` campaign spec, run through its registered sweep
kind — the benchmark only rescales the Monte-Carlo budget.
"""

from dataclasses import replace

from repro.campaign import builtin_spec, run_sweep_kind


def _spec_sweep(name: str):
    spec = builtin_spec("paper_figures_full")
    return next(sweep for sweep in spec.sweeps if sweep.name == name)


def test_fig09_junction_crossing_sensitivity(benchmark, report, bench_shots,
                                             bench_rounds):
    sweep = replace(_spec_sweep("fig09_junction"), rounds=bench_rounds)
    table = benchmark.pedantic(
        run_sweep_kind, args=(sweep,),
        kwargs={"shots": bench_shots, "seed": 11},
        rounds=1, iterations=1,
    )
    report(table)

    baseline_time = next(row["execution_time_us"] for row in table.rows
                         if row["design"] == "baseline_grid")
    mesh = {row["junction_reduction"]: row["execution_time_us"]
            for row in table.rows if row["design"] == "mesh_junction"}
    # At the default junction crossing time the mesh offers no decisive win
    # over the baseline grid; at a 70% reduction it is decisively faster.
    assert mesh[0.0] >= baseline_time * 0.6
    assert mesh[0.7] < baseline_time * 0.5
    # Latency decreases monotonically with the reduction.
    reductions = sorted(mesh)
    times = [mesh[r] for r in reductions]
    assert times == sorted(times, reverse=True)
