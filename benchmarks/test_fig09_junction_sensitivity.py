"""Figure 9: mesh junction network LER vs junction-crossing-time reduction.

Paper message: the dense junction mesh only becomes temporally
competitive with (and then better than) the baseline grid once junction
crossing times are reduced by roughly 70%.
"""

from repro.analysis import junction_crossing_sensitivity
from repro.codes import code_by_name


def test_fig09_junction_crossing_sensitivity(benchmark, report, bench_shots,
                                             bench_rounds):
    code = code_by_name("HGP [[225,9,6]]")
    table = benchmark.pedantic(
        junction_crossing_sensitivity,
        kwargs={
            "code": code,
            "physical_error_rate": 1e-4,
            "reductions": (0.0, 0.3, 0.5, 0.7, 0.9),
            "shots": bench_shots,
            "rounds": bench_rounds,
            "seed": 11,
        },
        rounds=1, iterations=1,
    )
    report(table)

    baseline_time = next(row["execution_time_us"] for row in table.rows
                         if row["design"] == "baseline_grid")
    mesh = {row["junction_reduction"]: row["execution_time_us"]
            for row in table.rows if row["design"] == "mesh_junction"}
    # At the default junction crossing time the mesh offers no decisive win
    # over the baseline grid; at a 70% reduction it is decisively faster.
    assert mesh[0.0] >= baseline_time * 0.6
    assert mesh[0.7] < baseline_time * 0.5
    # Latency decreases monotonically with the reduction.
    reductions = sorted(mesh)
    times = [mesh[r] for r in reductions]
    assert times == sorted(times, reverse=True)
