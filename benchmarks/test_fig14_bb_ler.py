"""Figure 14: logical error rate, Cyclone vs baseline, bivariate bicycle codes.

Paper series: for each BB code and each physical error rate p, the LER
of the baseline grid codesign (labeled B) and of Cyclone (labeled C);
Cyclone improves the LER by up to ~3 orders of magnitude and keeps every
code below threshold across the tested p range.

The committed benchmark uses a reduced shot budget (see
benchmarks/conftest.py) so absolute LER floors are limited by 1/shots;
the asserted property is the ordering: Cyclone is never worse.
"""

import pytest

from repro.codes import code_by_name
from repro.core import codesign_by_name, logical_error_rate
from repro.core.results import ResultTable

BB_CODES = ["BB [[72,12,6]]", "BB [[144,12,12]]"]
PHYSICAL_ERROR_RATES = [3e-4, 1e-3]


def _bb_ler_table(shots: int, rounds: int) -> ResultTable:
    table = ResultTable(
        title="Fig. 14 — LER: Cyclone (C) vs baseline (B) on BB codes",
        columns=["code", "design", "p", "round_latency_us",
                 "logical_error_rate", "ler_per_round"],
    )
    for code_name in BB_CODES:
        code = code_by_name(code_name)
        latencies = {
            "B": codesign_by_name("baseline").compile(code).execution_time_us,
            "C": codesign_by_name("cyclone").compile(code).execution_time_us,
        }
        for p in PHYSICAL_ERROR_RATES:
            for design, latency in latencies.items():
                result = logical_error_rate(code, p, latency, shots=shots,
                                            rounds=rounds, seed=17)
                table.add_row(
                    code=code_name, design=design, p=p,
                    round_latency_us=latency,
                    logical_error_rate=result.logical_error_rate,
                    ler_per_round=result.logical_error_rate_per_round,
                )
    return table


@pytest.mark.benchmark(group="fig14")
def test_fig14_bb_logical_error_rates(benchmark, report, bench_shots,
                                      bench_rounds):
    table = benchmark.pedantic(
        _bb_ler_table, args=(bench_shots, bench_rounds), rounds=1, iterations=1
    )
    report(table)

    for code_name in BB_CODES:
        for p in PHYSICAL_ERROR_RATES:
            rows = {row["design"]: row["logical_error_rate"]
                    for row in table.rows
                    if row["code"] == code_name and row["p"] == p}
            assert rows["C"] <= rows["B"] + 1e-9
