"""Figure 14: logical error rate, Cyclone vs baseline, bivariate bicycle codes.

Paper series: for each BB code and each physical error rate p, the LER
of the baseline grid codesign (labeled B) and of Cyclone (labeled C);
Cyclone improves the LER by up to ~3 orders of magnitude and keeps every
code below threshold across the tested p range.

Each (code, design) series is the matching ``physical_error`` sweep of
the ``paper_figures_full`` campaign spec, run through its registered
sweep kind; the benchmark only trims the p grid and the Monte-Carlo
budget.  The asserted property is the ordering: Cyclone is never worse.
"""

from dataclasses import replace

import pytest

from repro.campaign import builtin_spec, run_sweep_kind
from repro.core.results import ResultTable

SWEEPS = {  # (code, design label) -> paper_figures_full sweep name
    ("BB [[72,12,6]]", "B"): "fig14_bb72_baseline",
    ("BB [[72,12,6]]", "C"): "fig14_bb72_cyclone",
    ("BB [[144,12,12]]", "B"): "fig14_bb144_baseline",
    ("BB [[144,12,12]]", "C"): "fig14_bb144_cyclone",
}
PHYSICAL_ERROR_RATES = [3e-4, 1e-3]


def _spec_sweep(name: str):
    spec = builtin_spec("paper_figures_full")
    return next(sweep for sweep in spec.sweeps if sweep.name == name)


def _bb_ler_table(shots: int, rounds: int) -> ResultTable:
    table = ResultTable(
        title="Fig. 14 — LER: Cyclone (C) vs baseline (B) on BB codes",
        columns=["code", "design", "p", "round_latency_us",
                 "logical_error_rate"],
    )
    for (code_name, design), sweep_name in SWEEPS.items():
        sweep = replace(_spec_sweep(sweep_name), rounds=rounds,
                        physical_error_rates=tuple(PHYSICAL_ERROR_RATES))
        for row in run_sweep_kind(sweep, shots=shots, seed=17).rows:
            table.add_row(code=code_name, design=design, **row)
    return table


@pytest.mark.benchmark(group="fig14")
def test_fig14_bb_logical_error_rates(benchmark, report, bench_shots,
                                      bench_rounds):
    table = benchmark.pedantic(
        _bb_ler_table, args=(bench_shots, bench_rounds), rounds=1, iterations=1
    )
    report(table)

    for code_name in {code for code, _ in SWEEPS}:
        for p in PHYSICAL_ERROR_RATES:
            rows = {row["design"]: row["logical_error_rate"]
                    for row in table.rows
                    if row["code"] == code_name and row["p"] == p}
            assert rows["C"] <= rows["B"] + 1e-9
