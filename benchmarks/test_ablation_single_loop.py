"""Section IV-C ablation: a single global Cyclone loop vs forced splits.

Paper message: splitting the stabilizers across independent or
concurrent loops never helps for HGP / BB codes because their long-range
stabilizers always share data qubits across any cut — the single global
loop is retained.
"""

from repro.analysis import independent_loop_partition, single_vs_split_loop_table
from repro.codes import code_by_name

CODES = ["BB [[72,12,6]]", "HGP [[225,9,6]]"]


def test_ablation_single_vs_split_loops(benchmark, report):
    def build_tables():
        return {name: single_vs_split_loop_table(code_by_name(name),
                                                 loop_counts=(1, 2, 4))
                for name in CODES}

    tables = benchmark.pedantic(build_tables, rounds=1, iterations=1)

    for name, table in tables.items():
        report(table)
        code = code_by_name(name)
        # Neither code admits an independent split...
        assert len(independent_loop_partition(code)) == 1
        # ...and forcing one is never better than the single global loop.
        times = dict(zip(table.column("num_loops"),
                         table.column("estimated_time_us")))
        assert times[1] <= times[2]
        assert times[1] <= times[4]
