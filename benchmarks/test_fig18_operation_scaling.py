"""Figure 18: sensitivity to uniformly reducing gate and shuttling times.

Paper message: as operation times improve by a fraction r, both the
baseline and Cyclone improve and the gap between them narrows, because
the code's own error-correcting ability becomes the limiting factor.

The table comes straight from the ``fig18_operation_time`` sweep of the
``paper_figures_full`` campaign spec, run through its registered sweep
kind — the benchmark only rescales the Monte-Carlo budget.
"""

from dataclasses import replace

from repro.campaign import builtin_spec, run_sweep_kind


def _spec_sweep(name: str):
    spec = builtin_spec("paper_figures_full")
    return next(sweep for sweep in spec.sweeps if sweep.name == name)


def test_fig18_operation_time_reduction(benchmark, report, bench_shots,
                                        bench_rounds):
    sweep = replace(_spec_sweep("fig18_operation_time"), rounds=bench_rounds)
    table = benchmark.pedantic(
        run_sweep_kind, args=(sweep,),
        kwargs={"shots": bench_shots, "seed": 29},
        rounds=1, iterations=1,
    )
    report(table)

    def times_for(design):
        return {row["reduction"]: row["execution_time_us"]
                for row in table.rows if row["design"] == design}

    baseline = times_for("baseline")
    cyclone = times_for("cyclone")
    # Latency decreases monotonically with r for both designs.
    for series in (baseline, cyclone):
        keys = sorted(series)
        values = [series[k] for k in keys]
        assert values == sorted(values, reverse=True)
    # The absolute latency gap between baseline and Cyclone narrows as r grows.
    gap_at_zero = baseline[0.0] - cyclone[0.0]
    gap_at_max = baseline[0.75] - cyclone[0.75]
    assert gap_at_max < gap_at_zero
