"""Figure 18: sensitivity to uniformly reducing gate and shuttling times.

Paper message: as operation times improve by a fraction r, both the
baseline and Cyclone improve and the gap between them narrows, because
the code's own error-correcting ability becomes the limiting factor.
"""

from repro.analysis import operation_time_sensitivity
from repro.codes import code_by_name


def test_fig18_operation_time_reduction(benchmark, report, bench_shots,
                                        bench_rounds):
    code = code_by_name("HGP [[225,9,6]]")
    table = benchmark.pedantic(
        operation_time_sensitivity,
        kwargs={
            "code": code,
            "reductions": (0.0, 0.5, 0.75),
            "physical_error_rate": 1e-4,
            "shots": bench_shots,
            "rounds": bench_rounds,
            "seed": 29,
        },
        rounds=1, iterations=1,
    )
    report(table)

    def times_for(design):
        return {row["reduction"]: row["execution_time_us"]
                for row in table.rows if row["design"] == design}

    baseline = times_for("baseline")
    cyclone = times_for("cyclone")
    # Latency decreases monotonically with r for both designs.
    for series in (baseline, cyclone):
        keys = sorted(series)
        values = [series[k] for k in keys]
        assert values == sorted(values, reverse=True)
    # The absolute latency gap between baseline and Cyclone narrows as r grows.
    gap_at_zero = baseline[0.0] - cyclone[0.0]
    gap_at_max = baseline[0.75] - cyclone[0.75]
    assert gap_at_max < gap_at_zero
