"""Figure 17: baseline LER sensitivity to loosely fitting trap capacities.

Paper message: giving the baseline grid extra ion capacity (beyond the
default of 5) yields negligible improvement — the baseline is limited by
roadblocks, not by architectural tightness.

The table comes straight from the ``fig17_loose_capacity`` sweep of the
``paper_figures_full`` campaign spec, run through its registered sweep
kind — the benchmark only rescales the Monte-Carlo budget.
"""

from dataclasses import replace

from repro.campaign import builtin_spec, run_sweep_kind


def _spec_sweep(name: str):
    spec = builtin_spec("paper_figures_full")
    return next(sweep for sweep in spec.sweeps if sweep.name == name)


def test_fig17_loose_trap_capacity(benchmark, report, bench_shots,
                                   bench_rounds):
    sweep = replace(_spec_sweep("fig17_loose_capacity"), rounds=bench_rounds)
    table = benchmark.pedantic(
        run_sweep_kind, args=(sweep,),
        kwargs={"shots": bench_shots, "seed": 23},
        rounds=1, iterations=1,
    )
    report(table)

    times = table.column("execution_time_us")
    lers = table.column("logical_error_rate")
    # Extra capacity changes the execution time by less than 2x and does
    # not produce an order-of-magnitude LER improvement.
    assert max(times) / min(times) < 2.0
    assert max(lers) - min(lers) < 0.25
