"""Figure 17: baseline LER sensitivity to loosely fitting trap capacities.

Paper message: giving the baseline grid extra ion capacity (beyond the
default of 5) yields negligible improvement — the baseline is limited by
roadblocks, not by architectural tightness.
"""

from repro.analysis import loose_capacity_sensitivity
from repro.codes import code_by_name


def test_fig17_loose_trap_capacity(benchmark, report, bench_shots,
                                   bench_rounds):
    code = code_by_name("HGP [[225,9,6]]")
    table = benchmark.pedantic(
        loose_capacity_sensitivity,
        kwargs={
            "code": code,
            "capacities": (5, 8, 12),
            "physical_error_rate": 1e-4,
            "shots": bench_shots,
            "rounds": bench_rounds,
            "seed": 23,
        },
        rounds=1, iterations=1,
    )
    report(table)

    times = table.column("execution_time_us")
    lers = table.column("logical_error_rate")
    # Extra capacity changes the execution time by less than 2x and does
    # not produce an order-of-magnitude LER improvement.
    assert max(times) / min(times) < 2.0
    assert max(lers) - min(lers) < 0.25
