"""Figure 19: execution times of the alternate grid, baseline and Cyclone.

Paper message: for HGP and BB codes the alternating-mesh grid with
L-shaped junctions beats the standard baseline grid, but Cyclone
outperforms both by a wide margin.  Raw execution times are compared.
"""

from repro.codes import code_by_name
from repro.core import codesign_by_name
from repro.core.results import ResultTable

CODES = ["HGP [[225,9,6]]", "BB [[144,12,12]]"]
DESIGNS = ["alternate_grid", "baseline", "cyclone"]


def _execution_time_table() -> ResultTable:
    table = ResultTable(
        title="Fig. 19 — execution times: alternate grid vs baseline vs Cyclone",
        columns=["code", "design", "execution_time_us",
                 "roadblock_events"],
    )
    for code_name in CODES:
        code = code_by_name(code_name)
        for design in DESIGNS:
            compiled = codesign_by_name(design).compile(code)
            table.add_row(
                code=code_name, design=design,
                execution_time_us=compiled.execution_time_us,
                roadblock_events=compiled.metadata.get("roadblock_events", 0),
            )
    return table


def test_fig19_alternate_grid_execution_times(benchmark, report):
    table = benchmark.pedantic(_execution_time_table, rounds=1, iterations=1)
    report(table)

    for code_name in CODES:
        times = {row["design"]: row["execution_time_us"]
                 for row in table.rows if row["code"] == code_name}
        assert times["alternate_grid"] < times["baseline"]
        assert times["cyclone"] < times["alternate_grid"]
        assert times["baseline"] / times["cyclone"] > 2.0
