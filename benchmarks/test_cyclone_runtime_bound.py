"""Section IV-A: the closed-form worst-case Cyclone runtime bound.

The compiled Cyclone schedule must never exceed the analytic bound
2x (s + ceil(m_basis/x)(t + g ceil(n/x))) and should track it within a
modest factor for the base configuration.
"""

from repro.codes import code_by_name
from repro.core.results import ResultTable
from repro.qccd.compilers import CycloneCompiler, cyclone_worst_case_bound_us
from repro.qccd.timing import OperationTimes

CODES = ["BB [[72,12,6]]", "BB [[144,12,12]]", "HGP [[225,9,6]]"]
TRAP_FRACTIONS = (1.0, 0.5, 0.25)


def _bound_table() -> ResultTable:
    times = OperationTimes()
    table = ResultTable(
        title="Cyclone worst-case runtime bound vs compiled schedule",
        columns=["code", "num_traps", "execution_time_us",
                 "worst_case_bound_us", "bound_ratio"],
    )
    for code_name in CODES:
        code = code_by_name(code_name)
        m_basis = max(code.num_x_stabilizers, code.num_z_stabilizers)
        for fraction in TRAP_FRACTIONS:
            num_traps = max(int(m_basis * fraction), 1)
            compiled = CycloneCompiler(num_traps=num_traps,
                                       times=times).compile(code)
            bound = cyclone_worst_case_bound_us(
                code, num_traps, times, compiled.metadata["chain_length"]
            )
            table.add_row(
                code=code_name, num_traps=num_traps,
                execution_time_us=compiled.execution_time_us,
                worst_case_bound_us=bound,
                bound_ratio=compiled.execution_time_us / bound,
            )
    return table


def test_cyclone_runtime_bound(benchmark, report):
    table = benchmark.pedantic(_bound_table, rounds=1, iterations=1)
    report(table)

    for row in table.rows:
        assert row["execution_time_us"] <= row["worst_case_bound_us"] * 1.05
        assert row["bound_ratio"] > 0.1
