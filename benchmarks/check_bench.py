#!/usr/bin/env python
"""Performance regression gate against the committed ``BENCH_sim.json``.

Re-measures the hot path against the committed baseline and fails —
exit code 1 — on a throughput regression past the tolerance.  Three
gates run (same operating point as ``perf_smoke.py``, packed backend):

1. **End-to-end**: the headline memory experiment's shots/second vs the
   baseline's ``memory_experiment`` section.
2. **Fused pipeline**: ``ShardedExperiment`` sample+decode shots/second
   vs the baseline's ``sharded_pipeline`` single-worker row (skipped
   with a note when the baseline predates that section).

A multi-worker **scaling check** (workers=2 must retain at least half
of the single-worker throughput — catching pathological serialization
in the pool, not chasing an exact speedup) runs after the gates and is
**auto-skipped with a logged note when ``cpu_count == 1``**: on a
single-core host all workers share one core and the comparison is
meaningless by construction.

Intended to run alongside the tier-1 tests whenever a hot path is
touched.  On the baseline host (where the committed numbers were
measured and the comparison is authoritative) run it **strict**::

    REPRO_CHECK_STRICT=1 PYTHONPATH=src python benchmarks/check_bench.py

Without ``REPRO_CHECK_STRICT=1`` the gate is **advisory**: failures
are reported in full but the exit code stays 0, because on an
arbitrary host (hosted CI runners included) absolute shots/s against a
baseline from another machine is noise, and a hard failure there
teaches people to ignore the gate.  Strict mode restores exit code 1
on any gate failure — set it wherever the baseline numbers are
trustworthy.  (CI uploads the advisory report as a workflow artifact
either way.)

Knobs (environment variables):

* ``REPRO_CHECK_STRICT``    — ``1``: exit non-zero on gate failures
  (baseline host); unset/other: report-only advisory mode
* ``REPRO_CHECK_SHOTS``     — fresh-measurement shot budget (default:
  the baseline's ``memory_experiment_shots``; throughput normalises the
  comparison, so a smaller budget still gates, just noisier)
* ``REPRO_CHECK_TOLERANCE`` — allowed fractional drop (default 0.30)
* ``REPRO_CHECK_WORKERS``   — workers for the end-to-end run (default
  1, matching how the baseline's packed number is measured)
* ``REPRO_CHECK_ADAPTIVE_MIN`` — minimum adaptive-sweep speedup
  (default 3.0; see below)
* ``REPRO_CHECK_CAMPAIGN_MIN`` — minimum campaign resume speedup
  (default 3.0; see below)
* ``REPRO_CHECK_NATIVE_MIN``   — minimum native-vs-packed decode
  speedup (default 2.0; see below)
* ``REPRO_CHECK_SERVICE_MIN``  — minimum cached served-campaign
  throughput in jobs/second (default 2.0; see below)

A **native kernel** gate re-measures the headline batched decode under
``backend="native"`` vs ``backend="packed"``
(``run_native_decode_comparison``): the C tier must be at least
``REPRO_CHECK_NATIVE_MIN``x faster with bit-identical outputs.  Being
a same-host ratio it is meaningful on any machine — but it is
**skipped with a note** (never failed) when the host has no C
toolchain, because the native backend then falls back to the packed
kernels and there is nothing to measure; also skipped when the
committed baseline predates the ``native_decode`` section.

A third gate covers the **adaptive sweep**: the fixed-budget vs
pilot/allocate/refine comparison (``run_adaptive_sweep_comparison``)
must deliver at least ``REPRO_CHECK_ADAPTIVE_MIN``x the fixed sweep's
wall-clock at equal worst-case relative Wilson half-width, and every
adaptive point must actually reach that width (``width_ok``).  The
sweep budget uses ``REPRO_CHECK_SHOTS`` but is floored at 1500
shots/point — below that the lowest-LER point sees too few failures
for a stable relative-width target.  Skipped with a note when the
committed baseline predates the ``adaptive_sweep`` section.

A fourth gate covers the **campaign resume contract**
(``run_campaign_resume_comparison``): the resumed run of the bundled
``ci_smoke`` campaign must sample **zero** shots, render bit-identical
tables, and come in at least ``REPRO_CHECK_CAMPAIGN_MIN``x faster than
the cold run.  Skipped with a note when the committed baseline
predates the ``campaign_resume`` section.

A fifth gate covers the **served-campaign request path**
(``run_service_requests_comparison``): with the ``repro serve`` stack
hosted in-process on a warm store, every cached resubmission — a full
``POST /jobs`` → poll → ``GET /tables`` HTTP round trip — must sample
zero shots, return byte-identical tables, and the cached throughput
must stay above ``REPRO_CHECK_SERVICE_MIN`` jobs/second (a floor on
queue + HTTP overhead, not a cross-host shots/s comparison, so it is
meaningful on any machine).  Skipped with a note when the committed
baseline predates the ``service_requests`` section.

Exit codes: 0 pass (always, unless strict), 1 gate failure under
``REPRO_CHECK_STRICT=1``, 2 missing/invalid baseline (any mode).
"""

from __future__ import annotations

import json
import os
import sys

from perf_smoke import (
    OUTPUT_PATH,
    run_adaptive_sweep_comparison,
    run_campaign_resume_comparison,
    run_native_decode_comparison,
    run_service_requests_comparison,
    time_memory_experiment,
    time_sharded_pipeline,
)


def _float_env(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


def _gate(label: str, baseline_throughput: float, throughput: float,
          tolerance: float) -> bool:
    """Print one gate's verdict; True when the measurement passes."""
    floor = (1.0 - tolerance) * baseline_throughput
    print(f"[{label}]")
    print(f"  baseline : {baseline_throughput:10.0f} shots/s")
    print(f"  measured : {throughput:10.0f} shots/s")
    print(f"  floor    : {floor:10.0f} shots/s "
          f"(tolerance {tolerance:.0%} below baseline)")
    if throughput < floor:
        print(f"  FAIL: {label} throughput regressed past the gate",
              file=sys.stderr)
        return False
    print("  OK")
    return True


def main() -> int:
    if not OUTPUT_PATH.exists():
        print(f"no baseline at {OUTPUT_PATH}; run "
              "`PYTHONPATH=src python benchmarks/perf_smoke.py` first",
              file=sys.stderr)
        return 2
    baseline = json.loads(OUTPUT_PATH.read_text())
    try:
        baseline_shots = baseline["budgets"]["memory_experiment_shots"]
        baseline_seconds = (
            baseline["sections"]["memory_experiment"]["packed_seconds"]
        )
    except KeyError as missing:
        print(f"baseline {OUTPUT_PATH} lacks {missing}; re-run perf_smoke",
              file=sys.stderr)
        return 2
    baseline_throughput = baseline_shots / baseline_seconds

    tolerance = _float_env("REPRO_CHECK_TOLERANCE", 0.30)
    shots = int(_float_env("REPRO_CHECK_SHOTS", baseline_shots))
    workers = int(_float_env("REPRO_CHECK_WORKERS", 1))
    ok = True

    print(f"measuring end-to-end packed throughput ({shots} shots, "
          f"workers={workers})...", flush=True)
    # Warm the structure/decoder caches first so a reduced shot budget
    # measures steady-state throughput, not fixed setup cost.  The
    # committed baseline is a cold run, whose throughput is slightly
    # *below* steady state — the floor derived from it is conservative
    # in the direction that never fails spuriously.
    seconds, _ = time_memory_experiment(shots, workers=workers,
                                        warmup_shots=min(1000, shots))
    ok &= _gate("end-to-end memory experiment", baseline_throughput,
                shots / seconds, tolerance)

    pipeline_section = baseline["sections"].get("sharded_pipeline")
    single = (pipeline_section or {}).get("workers", {}).get("1")
    if single is None:
        print("note: baseline has no sharded_pipeline single-worker row; "
              "skipping the fused-pipeline gate (re-run perf_smoke to "
              "record one)")
        pipeline_throughput = None
    else:
        print(f"measuring fused-pipeline throughput ({shots} shots)...",
              flush=True)
        seconds, _ = time_sharded_pipeline(shots,
                                           warmup_shots=min(1000, shots))
        pipeline_throughput = shots / seconds
        ok &= _gate("fused sample+decode pipeline",
                    single["shots_per_second"], pipeline_throughput,
                    tolerance)

    if (os.cpu_count() or 1) == 1:
        print("note: cpu_count == 1 — skipping the multi-worker scaling "
              "check (all workers share one core; the comparison is "
              "flat by construction)")
    elif pipeline_throughput is not None:
        print(f"measuring 2-worker pipeline scaling ({shots} shots)...",
              flush=True)
        # Any shot budget must still cross the process boundary: size
        # the shards off the *warmup* budget so the warmup (which
        # spawns the pool and builds the workers' decoders outside the
        # timed region) splits into at least 4 shards, and the timed
        # run genuinely fans out to the workers.
        warmup = min(1000, shots)
        scaling_shards = max(1, warmup // 4)
        seconds, _ = time_sharded_pipeline(shots, workers=2,
                                           warmup_shots=warmup,
                                           shard_shots=scaling_shards)
        two_worker = shots / seconds
        print(f"[pipeline scaling] workers=1 {pipeline_throughput:.0f} "
              f"shots/s, workers=2 {two_worker:.0f} shots/s "
              f"(x{two_worker / pipeline_throughput:.2f})")
        if two_worker < 0.5 * pipeline_throughput:
            print("FAIL: 2-worker pipeline lost more than half the "
                  "single-worker throughput", file=sys.stderr)
            ok = False
        else:
            print("  OK")

    if baseline["sections"].get("campaign_resume") is None:
        print("note: baseline has no campaign_resume section; skipping the "
              "campaign resume gate (re-run perf_smoke to record one)")
    else:
        campaign_min = _float_env("REPRO_CHECK_CAMPAIGN_MIN", 3.0)
        budget = int(baseline["budgets"].get("campaign_resume_budget", 3000))
        print(f"measuring campaign resume (ci_smoke, budget {budget}, cold "
              "vs resumed)...", flush=True)
        campaign = run_campaign_resume_comparison(budget)
        print(f"[campaign resume] cold {campaign['cold_seconds']:.2f}s, "
              f"resumed {campaign['resumed_seconds']:.2f}s "
              f"(x{campaign['speedup']:.2f}, resumed_shots="
              f"{campaign['resumed_shots_sampled']}, tables_identical="
              f"{campaign['tables_identical']})")
        if campaign["resumed_shots_sampled"] != 0:
            print("FAIL: a store-resumed campaign re-sampled "
                  f"{campaign['resumed_shots_sampled']} shots (must be 0)",
                  file=sys.stderr)
            ok = False
        elif not campaign["tables_identical"]:
            print("FAIL: store-resumed campaign tables differ from the "
                  "cold run", file=sys.stderr)
            ok = False
        elif campaign["speedup"] < campaign_min:
            print(f"FAIL: campaign resume speedup "
                  f"{campaign['speedup']:.2f}x below the "
                  f"{campaign_min:.1f}x gate", file=sys.stderr)
            ok = False
        else:
            print("  OK")

    if baseline["sections"].get("service_requests") is None:
        print("note: baseline has no service_requests section; skipping the "
              "served-campaign gate (re-run perf_smoke to record one)")
    else:
        service_min = _float_env("REPRO_CHECK_SERVICE_MIN", 2.0)
        service_budget = int(baseline["budgets"].get(
            "service_requests_budget", 900))
        print(f"measuring served-campaign requests (ci_smoke, budget "
              f"{service_budget}, cold vs cached over HTTP)...", flush=True)
        service = run_service_requests_comparison(service_budget)
        print(f"[service requests] cold {service['cold_seconds']:.2f}s, "
              f"cached {service['cached_jobs_per_second']:.1f} jobs/s, "
              f"status {service['status_requests_per_second']:.0f} req/s "
              f"(cached_shots={service['cached_shots_sampled']}, "
              f"tables_identical={service['cached_tables_identical']})")
        if service["cached_shots_sampled"] != 0:
            print("FAIL: cached served resubmissions sampled "
                  f"{service['cached_shots_sampled']} shots (must be 0)",
                  file=sys.stderr)
            ok = False
        elif not service["cached_tables_identical"]:
            print("FAIL: cached served tables differ from the cold job's",
                  file=sys.stderr)
            ok = False
        elif service["cached_jobs_per_second"] < service_min:
            print(f"FAIL: cached served throughput "
                  f"{service['cached_jobs_per_second']:.2f} jobs/s below "
                  f"the {service_min:.1f} jobs/s gate", file=sys.stderr)
            ok = False
        else:
            print("  OK")

    if baseline["sections"].get("native_decode") is None:
        print("note: baseline has no native_decode section; skipping the "
              "native-kernel gate (re-run perf_smoke to record one)")
    else:
        native_min = _float_env("REPRO_CHECK_NATIVE_MIN", 2.0)
        native_shots = int(baseline["budgets"].get("native_decode_shots",
                                                   2000))
        print(f"measuring native decode speedup ({native_shots} shots, "
              "native C kernels vs packed)...", flush=True)
        native = run_native_decode_comparison(native_shots)
        if "skipped_reason" in native:
            # No toolchain on this host: nothing to measure — the native
            # backend falls back to the packed kernels (note above, from
            # run_native_decode_comparison).  Never a failure.
            pass
        else:
            print(f"[native decode] packed {native['packed_seconds']:.2f}s, "
                  f"native {native['native_seconds']:.2f}s "
                  f"(x{native['speedup']:.2f}, outputs_identical="
                  f"{native['outputs_identical']})")
            if not native["outputs_identical"]:
                print("FAIL: native decode outputs differ from the packed "
                      "backend", file=sys.stderr)
                ok = False
            elif native["speedup"] < native_min:
                print(f"FAIL: native decode speedup "
                      f"{native['speedup']:.2f}x below the "
                      f"{native_min:.1f}x gate", file=sys.stderr)
                ok = False
            else:
                print("  OK")

    if baseline["sections"].get("adaptive_sweep") is None:
        print("note: baseline has no adaptive_sweep section; skipping the "
              "adaptive-sweep gate (re-run perf_smoke to record one)")
    else:
        adaptive_min = _float_env("REPRO_CHECK_ADAPTIVE_MIN", 3.0)
        sweep_shots = max(shots, 1500)
        print(f"measuring adaptive sweep speedup ({sweep_shots} shots/point, "
              "fixed vs adaptive at equal width)...", flush=True)
        comparison = run_adaptive_sweep_comparison(sweep_shots)
        print(f"[adaptive sweep] fixed {comparison['fixed_seconds']:.2f}s, "
              f"adaptive {comparison['adaptive_seconds']:.2f}s "
              f"(x{comparison['speedup']:.2f}, width_ok="
              f"{comparison['width_ok']})")
        if not comparison["width_ok"]:
            print("FAIL: adaptive sweep missed the fixed sweep's confidence "
                  "width", file=sys.stderr)
            ok = False
        elif comparison["speedup"] < adaptive_min:
            print(f"FAIL: adaptive sweep speedup "
                  f"{comparison['speedup']:.2f}x below the "
                  f"{adaptive_min:.1f}x gate", file=sys.stderr)
            ok = False
        else:
            print("  OK")

    if not ok:
        if os.environ.get("REPRO_CHECK_STRICT", "") == "1":
            print("FAIL: gate failures with REPRO_CHECK_STRICT=1",
                  file=sys.stderr)
            return 1
        print("ADVISORY: gate failures reported above, but exiting 0 "
              "because REPRO_CHECK_STRICT is unset — against a baseline "
              "from another machine the absolute numbers are noise.  On "
              "the baseline host run with REPRO_CHECK_STRICT=1 so real "
              "regressions fail the build.", file=sys.stderr)
        return 0
    print("OK: throughput within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
