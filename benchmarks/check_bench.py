#!/usr/bin/env python
"""Performance regression gate against the committed ``BENCH_sim.json``.

Re-measures the headline end-to-end memory experiment (packed backend,
same operating point as ``perf_smoke.py``) and fails — exit code 1 —
when its throughput (shots/second) drops more than the tolerance below
the committed baseline.  Intended to run alongside the tier-1 tests
whenever a hot path is touched::

    PYTHONPATH=src python benchmarks/check_bench.py

Knobs (environment variables):

* ``REPRO_CHECK_SHOTS``     — fresh-measurement shot budget (default:
  the baseline's ``memory_experiment_shots``; throughput normalises the
  comparison, so a smaller budget still gates, just noisier)
* ``REPRO_CHECK_TOLERANCE`` — allowed fractional drop (default 0.30)
* ``REPRO_CHECK_WORKERS``   — workers for the fresh run (default 1,
  matching how the baseline's packed end-to-end number is measured)

Exit codes: 0 pass, 1 throughput regression, 2 missing/invalid baseline.
"""

from __future__ import annotations

import json
import os
import sys

from perf_smoke import OUTPUT_PATH, time_memory_experiment


def _float_env(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


def main() -> int:
    if not OUTPUT_PATH.exists():
        print(f"no baseline at {OUTPUT_PATH}; run "
              "`PYTHONPATH=src python benchmarks/perf_smoke.py` first",
              file=sys.stderr)
        return 2
    baseline = json.loads(OUTPUT_PATH.read_text())
    try:
        baseline_shots = baseline["budgets"]["memory_experiment_shots"]
        baseline_seconds = (
            baseline["sections"]["memory_experiment"]["packed_seconds"]
        )
    except KeyError as missing:
        print(f"baseline {OUTPUT_PATH} lacks {missing}; re-run perf_smoke",
              file=sys.stderr)
        return 2
    baseline_throughput = baseline_shots / baseline_seconds

    tolerance = _float_env("REPRO_CHECK_TOLERANCE", 0.30)
    shots = int(_float_env("REPRO_CHECK_SHOTS", baseline_shots))
    workers = int(_float_env("REPRO_CHECK_WORKERS", 1))

    print(f"measuring end-to-end packed throughput ({shots} shots, "
          f"workers={workers})...", flush=True)
    # Warm the structure/decoder caches first so a reduced shot budget
    # measures steady-state throughput, not fixed setup cost.  The
    # committed baseline is a cold run, whose throughput is slightly
    # *below* steady state — the floor derived from it is conservative
    # in the direction that never fails spuriously.
    seconds, _ = time_memory_experiment(shots, workers=workers,
                                        warmup_shots=min(1000, shots))
    throughput = shots / seconds
    floor = (1.0 - tolerance) * baseline_throughput

    print(f"baseline : {baseline_throughput:10.0f} shots/s "
          f"({baseline_shots} shots in {baseline_seconds:.2f}s, "
          f"committed {baseline.get('generated', '?')})")
    print(f"measured : {throughput:10.0f} shots/s "
          f"({shots} shots in {seconds:.2f}s)")
    print(f"floor    : {floor:10.0f} shots/s "
          f"(tolerance {tolerance:.0%} below baseline)")

    if throughput < floor:
        print("FAIL: end-to-end throughput regressed past the gate",
              file=sys.stderr)
        return 1
    print("OK: throughput within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
