"""Figure 21: sensitivity to IonSWAP vs GateSWAP.

Paper message: the baseline tends to do better with IonSWAP while
Cyclone does better with GateSWAP, and Cyclone keeps a convincing
speedup under either swap implementation.
"""

from repro.analysis import swap_kind_sensitivity
from repro.codes import code_by_name


def test_fig21_ion_vs_gate_swap(benchmark, report):
    code = code_by_name("HGP [[225,9,6]]")
    table = benchmark.pedantic(swap_kind_sensitivity, args=(code,), rounds=1,
                               iterations=1)
    report(table)

    times = {(row["design"], row["swap_kind"]): row["execution_time_us"]
             for row in table.rows}
    # The paper's robust conclusion: Cyclone keeps a convincing speedup
    # over the baseline regardless of which swap implementation is used.
    for kind in ("gate_swap", "ion_swap"):
        assert times[("baseline", kind)] / times[("cyclone", kind)] > 2.0
    # Swap choice shifts each design's latency by well under 2x.
    for design in ("baseline", "cyclone"):
        ratio = times[(design, "gate_swap")] / times[(design, "ion_swap")]
        assert 0.5 < ratio < 2.0
