"""Figure 21: sensitivity to IonSWAP vs GateSWAP.

Paper message: the baseline tends to do better with IonSWAP while
Cyclone does better with GateSWAP, and Cyclone keeps a convincing
speedup under either swap implementation.

The table comes straight from the ``fig21_swap`` sweep of the
``paper_figures_full`` campaign spec (an analytic kind — no sampling).
"""

from repro.campaign import builtin_spec, run_sweep_kind


def _spec_sweep(name: str):
    spec = builtin_spec("paper_figures_full")
    return next(sweep for sweep in spec.sweeps if sweep.name == name)


def test_fig21_ion_vs_gate_swap(benchmark, report):
    sweep = _spec_sweep("fig21_swap")
    table = benchmark.pedantic(run_sweep_kind, args=(sweep,), rounds=1,
                               iterations=1)
    report(table)

    times = {(row["design"], row["swap_kind"]): row["execution_time_us"]
             for row in table.rows}
    # The paper's robust conclusion: Cyclone keeps a convincing speedup
    # over the baseline regardless of which swap implementation is used.
    for kind in ("gate_swap", "ion_swap"):
        assert times[("baseline", kind)] / times[("cyclone", kind)] > 2.0
    # Swap choice shifts each design's latency by well under 2x.
    for design in ("baseline", "cyclone"):
        ratio = times[(design, "gate_swap")] / times[(design, "ion_swap")]
        assert 0.5 < ratio < 2.0
