"""Figure 20: sensitivity to the baseline compiler choice.

Paper series (left): total execution time and unrolled component-wise
execution times for three baseline compilers on the same architecture;
(right): the achieved % parallelization.  Cyclone's coordinated schedule
achieves the highest parallelization of all.

The table comes straight from the ``fig20_compilers`` sweep of the
``paper_figures_full`` campaign spec (an analytic kind — no sampling).
"""

from repro.campaign import builtin_spec, run_sweep_kind


def _spec_sweep(name: str):
    spec = builtin_spec("paper_figures_full")
    return next(sweep for sweep in spec.sweeps if sweep.name == name)


def test_fig20_compiler_sensitivity(benchmark, report):
    sweep = _spec_sweep("fig20_compilers")
    table = benchmark.pedantic(run_sweep_kind, args=(sweep,), rounds=1,
                               iterations=1)
    report(table)

    rows = {row["compiler"]: row for row in table.rows}
    # All three baseline compilers achieve substantial parallelization.
    for name in ("baseline", "baseline2", "baseline3"):
        assert rows[name]["parallelization_fraction"] > 0.4
        assert rows[name]["unrolled_total_us"] >= \
            rows[name]["execution_time_us"]
    # Cyclone's schedule is the most coordinated (highest parallelization)
    # and the fastest overall.
    assert rows["cyclone"]["parallelization_fraction"] == max(
        row["parallelization_fraction"] for row in table.rows
    )
    assert rows["cyclone"]["execution_time_us"] == min(
        row["execution_time_us"] for row in table.rows
    )
