"""Figure 20: sensitivity to the baseline compiler choice.

Paper series (left): total execution time and unrolled component-wise
execution times for three baseline compilers on the same architecture;
(right): the achieved % parallelization.  Cyclone's coordinated schedule
achieves the highest parallelization of all.
"""

from repro.analysis import compiler_comparison
from repro.codes import code_by_name


def test_fig20_compiler_sensitivity(benchmark, report):
    code = code_by_name("HGP [[225,9,6]]")
    table = benchmark.pedantic(compiler_comparison, args=(code,), rounds=1,
                               iterations=1)
    report(table)

    rows = {row["compiler"]: row for row in table.rows}
    # All three baseline compilers achieve substantial parallelization.
    for name in ("baseline", "baseline2", "baseline3"):
        assert rows[name]["parallelization_fraction"] > 0.4
        assert rows[name]["unrolled_total_us"] >= \
            rows[name]["execution_time_us"]
    # Cyclone's schedule is the most coordinated (highest parallelization)
    # and the fastest overall.
    assert rows["cyclone"]["parallelization_fraction"] == max(
        row["parallelization_fraction"] for row in table.rows
    )
    assert rows["cyclone"]["execution_time_us"] == min(
        row["execution_time_us"] for row in table.rows
    )
