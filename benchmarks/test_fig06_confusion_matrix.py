"""Figure 6: the software (static/dynamic) x hardware (grid/circle) matrix.

Paper message: only the coordinated dynamic-software + circular-hardware
pairing (Cyclone) realises the parallelism; static EJF on a circle is
disastrous and dynamic scheduling on a grid roadblocks heavily.
"""

from repro.analysis import confusion_matrix
from repro.codes import code_by_name


def test_fig06_confusion_matrix(benchmark, report):
    code = code_by_name("HGP [[225,9,6]]")
    table = benchmark.pedantic(confusion_matrix, args=(code,), rounds=1,
                               iterations=1)
    report(table)

    cells = {
        (row["software"], row["hardware"]): row["execution_time_us"]
        for row in table.rows
    }
    cyclone = cells[("dynamic", "circle")]
    assert cyclone == min(cells.values())
    assert cells[("static", "circle")] == max(cells.values())
    # The grid baseline is a few times slower than Cyclone.
    assert cells[("static", "grid")] / cyclone > 2.0
