#!/usr/bin/env python
"""Performance smoke benchmark: packed vs boolean backends.

Times the three hot layers of the reproduction pipeline — frame
sampling, detector-error-model extraction and batched BP+OSD decoding —
plus the headline end-to-end memory experiment, in both the bit-packed
and the boolean reference backends, and writes the results to
``BENCH_sim.json`` at the repository root so future PRs have a
performance trajectory to regress against.

Run it from the repository root::

    PYTHONPATH=src python benchmarks/perf_smoke.py

Budgets are fixed so numbers stay comparable across commits; scale them
with the environment variables below (e.g. for a quick CI sanity check):

* ``REPRO_PERF_SHOTS``        — end-to-end memory-experiment shots (10000)
* ``REPRO_PERF_DECODE_SHOTS`` — batched-decode shots            (2000)
* ``REPRO_PERF_FRAME_SHOTS``  — frame-sampling shots            (20000)
* ``REPRO_PERF_SHARD_SHOTS``  — sharded-section shots           (100000)
* ``REPRO_PERF_SWEEP_SHOTS``  — adaptive-sweep shots per point  (4000)
* ``REPRO_PERF_CAMPAIGN_BUDGET`` — campaign-resume global budget (3000)
* ``REPRO_PERF_SERVICE_BUDGET``  — served-campaign global budget    (900)

The ``native_decode`` section times the headline batched decode under
``backend="native"`` (the compiled C kernel tier of
:mod:`repro.linalg.native`) against ``backend="packed"``, records the
build fingerprint of the binary it measured, and asserts the outputs
are bit-identical.  On hosts without a C toolchain the section is
skipped with a recorded ``skipped_reason`` — never a failure.

Two sharded sections run the headline workload single- and multi-core
(``workers`` 1/2/4, packed backend only): ``sharded_memory_experiment``
times the full ``MemoryExperiment`` end to end, ``sharded_pipeline``
times the fused sample→decode pipeline (``ShardedExperiment``) in
isolation.  On a single-core host the multi-worker rows are **skipped**
(with a logged note and a ``skipped_workers`` record) — all workers
would share one core, so the committed scaling curve would be flat by
construction and meaningless; re-run on a multi-core host to record
real scaling.  The report carries ``cpu_count`` either way.

The ``adaptive_sweep`` section times the same multi-point LER sweep
twice — fixed per-point budget vs the adaptive pilot/allocate/refine
scheduler with streaming early stopping — at equal worst-case relative
Wilson half-width, and records the wall-clock reduction (target: >= 3x;
``check_bench.py`` gates it).  It runs single-worker, so it is *not*
skipped on 1-core hosts.

The ``campaign_resume`` section runs the bundled ``ci_smoke`` campaign
twice against one result store — cold, then resumed — and records that
the resumed run samples **zero** shots while rendering bit-identical
tables, plus the wall-clock ratio (``check_bench.py`` gates both; also
single-worker and 1-core-meaningful).

The ``service_requests`` section hosts ``repro serve`` in-process and
splits a served campaign request into its cold cost (real sampling)
and its cached cost (``POST /jobs`` → poll → ``GET /tables`` against a
warm store: zero shots sampled, byte-identical tables) plus plain
status-poll throughput — the serving tier's RPC-vs-compute budget.
``check_bench.py`` gates the caching contract and a cached-jobs/s
floor (``REPRO_CHECK_SERVICE_MIN``); single-worker, 1-core-meaningful.

This is a plain script (not a pytest benchmark) because the boolean
reference path is deliberately slow — minutes at the default budget —
and should only run when a perf data point is wanted.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.campaign import load_spec, run_campaign
from repro.circuits import memory_experiment_circuit
from repro.codes import code_by_name, surface_code
from repro.core.memory import MemoryExperiment
from repro.core.phenomenological import build_phenomenological_model
from repro.core.stats import PrecisionTarget
from repro.core.sweep import sweep_physical_error
from repro.decoders.bposd import BPOSDDecoder
from repro.noise import HardwareNoiseModel
from repro.parallel import DecoderHandle, ExperimentHandle, ShardedExperiment
from repro.sim import FrameSimulator, detector_error_model

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_sim.json"

#: Operating point for the headline benchmark: the paper's [[72,12,6]]
#: bivariate bicycle code at p = 1e-3 and a 50 ms round latency.
BB_CODE = "BB [[72,12,6]]"
PHYSICAL_ERROR_RATE = 1e-3
ROUND_LATENCY_US = 50_000.0


def _int_env(name: str, default: int) -> int:
    try:
        return max(int(os.environ.get(name, default)), 1)
    except ValueError:
        return default


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def bench_frame_sampling(shots: int) -> dict:
    """Circuit-level frame sampling on a distance-5 surface-code memory."""
    code = surface_code(5)
    noise = HardwareNoiseModel.from_physical_error_rate(
        PHYSICAL_ERROR_RATE, round_latency_us=100.0
    )
    circuit = memory_experiment_circuit(code, noise, rounds=3)
    timings = {}
    samples = {}
    for backend in ("packed", "bool"):
        simulator = FrameSimulator(circuit, seed=0, backend=backend)
        timings[backend], samples[backend] = _timed(
            lambda: simulator.sample(shots)
        )
    identical = bool(
        np.array_equal(samples["packed"].detectors, samples["bool"].detectors)
        and np.array_equal(samples["packed"].observables,
                           samples["bool"].observables)
    )
    return {
        "description": f"surface d=5 memory circuit, {shots} shots",
        "packed_seconds": timings["packed"],
        "bool_seconds": timings["bool"],
        "speedup": timings["bool"] / timings["packed"],
        "outputs_identical": identical,
    }


def bench_dem_extraction() -> dict:
    """Circuit-level DEM extraction on a distance-5 surface-code memory."""
    code = surface_code(5)
    noise = HardwareNoiseModel.from_physical_error_rate(
        PHYSICAL_ERROR_RATE, round_latency_us=100.0
    )
    circuit = memory_experiment_circuit(code, noise, rounds=3)
    timings = {}
    models = {}
    for backend in ("packed", "bool"):
        timings[backend], models[backend] = _timed(
            lambda: detector_error_model(circuit, backend=backend)
        )
    identical = bool(
        np.array_equal(models["packed"].check_matrix,
                       models["bool"].check_matrix)
        and np.allclose(models["packed"].priors, models["bool"].priors)
    )
    return {
        "description": "surface d=5 memory circuit, "
                       f"{models['packed'].num_mechanisms} mechanisms",
        "packed_seconds": timings["packed"],
        "bool_seconds": timings["bool"],
        "speedup": timings["bool"] / timings["packed"],
        "outputs_identical": identical,
    }


def bench_batched_decode(shots: int) -> dict:
    """Batched BP+OSD decode of phenomenological BB-code syndromes."""
    code = code_by_name(BB_CODE)
    noise = HardwareNoiseModel.from_physical_error_rate(
        PHYSICAL_ERROR_RATE, round_latency_us=ROUND_LATENCY_US
    )
    model = build_phenomenological_model(code, noise, rounds=6)
    syndromes, _ = model.sample(shots, seed=0)
    timings = {}
    converged = {}
    for backend in ("packed", "bool"):
        decoder = BPOSDDecoder(model.check_matrix, model.priors,
                               max_iterations=40, backend=backend)
        timings[backend], result = _timed(
            lambda: decoder.decode_batch(syndromes)
        )
        converged[backend] = float(result.bp_converged.mean())
    return {
        "description": f"{BB_CODE} phenomenological syndromes, {shots} shots",
        "packed_seconds": timings["packed"],
        "bool_seconds": timings["bool"],
        "speedup": timings["bool"] / timings["packed"],
        "bp_converged_fraction": converged,
    }


def run_native_decode_comparison(shots: int) -> dict:
    """Native C kernel tier vs packed numpy on the headline decode.

    Same workload as ``bench_batched_decode`` (phenomenological BB-code
    syndromes, 40 BP iterations) timed under ``backend="native"`` vs
    ``backend="packed"``.  On hosts without a C toolchain the section
    is **skipped** — recorded as a ``skipped_reason`` entry, never a
    failure — because there is nothing to measure: the native backend
    falls back to the packed kernels.  When the tier is available the
    section records the build fingerprint (compiler, flags, source
    hash) alongside the timings, so committed numbers are traceable to
    the binary that produced them.  Shared by ``perf_smoke.py``
    (committed section) and ``check_bench.py`` (>= 2x regression gate)
    so both measure the identical workload.
    """
    from repro.linalg.native import (
        get_kernels,
        native_available,
        native_unavailable_reason,
    )

    section: dict = {
        "description": f"{BB_CODE} phenomenological syndromes, {shots} "
                       f"shots, native C kernels vs packed numpy",
    }
    if not native_available():
        reason = native_unavailable_reason() or "native tier unavailable"
        section["skipped_reason"] = reason
        print(f"  note: native tier unavailable ({reason}); "
              "section skipped", flush=True)
        return section
    kernels = get_kernels()
    section["build_fingerprint"] = kernels.fingerprint

    code = code_by_name(BB_CODE)
    noise = HardwareNoiseModel.from_physical_error_rate(
        PHYSICAL_ERROR_RATE, round_latency_us=ROUND_LATENCY_US
    )
    model = build_phenomenological_model(code, noise, rounds=6)
    syndromes, _ = model.sample(shots, seed=0)
    timings = {}
    results = {}
    for backend in ("packed", "native"):
        decoder = BPOSDDecoder(model.check_matrix, model.priors,
                               max_iterations=40, backend=backend)
        timings[backend], results[backend] = _timed(
            lambda: decoder.decode_batch(syndromes)
        )
    section.update({
        "native_active": True,
        "packed_seconds": timings["packed"],
        "native_seconds": timings["native"],
        "speedup": timings["packed"] / timings["native"],
        "outputs_identical": bool(
            np.array_equal(results["packed"].errors,
                           results["native"].errors)
            and np.array_equal(results["packed"].bp_converged,
                               results["native"].bp_converged)
        ),
    })
    return section


def time_memory_experiment(shots: int, backend: str = "packed",
                           workers: int = 1,
                           warmup_shots: int = 0) -> tuple[float, object]:
    """Time one end-to-end headline memory experiment.

    Shared by the backend comparison, the multi-core scaling section and
    the ``check_bench.py`` regression gate so all three measure the
    identical workload.  ``warmup_shots > 0`` runs a throwaway point
    first so the timed run measures steady-state throughput (structure
    and decoder caches built, pool spawned) — the regression gate uses
    this so reduced budgets aren't dominated by fixed setup costs; the
    perf_smoke sections themselves stay cold for comparability with the
    committed trajectory.
    """
    code = code_by_name(BB_CODE)
    with MemoryExperiment(code=code, seed=0, backend=backend) as experiment:
        if warmup_shots > 0:
            experiment.run(PHYSICAL_ERROR_RATE, ROUND_LATENCY_US,
                           shots=warmup_shots, workers=workers)
        return _timed(
            lambda: experiment.run(PHYSICAL_ERROR_RATE, ROUND_LATENCY_US,
                                   shots=shots, workers=workers)
        )


def bench_memory_experiment(shots: int) -> dict:
    """Headline: end-to-end 10k-shot BB-code memory experiment."""
    timings = {}
    lers = {}
    for backend in ("packed", "bool"):
        timings[backend], result = time_memory_experiment(shots,
                                                          backend=backend)
        lers[backend] = result.logical_error_rate
    return {
        "description": f"{BB_CODE} memory experiment, {shots} shots, "
                       f"p={PHYSICAL_ERROR_RATE:g}, "
                       f"latency={ROUND_LATENCY_US:g}us",
        "packed_seconds": timings["packed"],
        "bool_seconds": timings["bool"],
        "speedup": timings["bool"] / timings["packed"],
        "logical_error_rate": lers,
    }


#: Worker counts the scaling sections sweep on a multi-core host.
SCALING_WORKERS = (1, 2, 4)

SINGLE_CORE_NOTE = (
    "cpu_count == 1: multi-worker rows skipped — all workers would share "
    "one core, so the scaling curve would be flat by construction.  "
    "Re-run perf_smoke.py on a multi-core host to record real scaling."
)


def resolve_scaling_workers(
        workers_list: tuple[int, ...] = SCALING_WORKERS
) -> tuple[tuple[int, ...], list[int], str | None]:
    """(workers to run, workers skipped, note) for the scaling sections."""
    if (os.cpu_count() or 1) > 1:
        return workers_list, [], None
    kept = tuple(w for w in workers_list if w <= 1) or (1,)
    skipped = [w for w in workers_list if w > 1]
    return kept, skipped, SINGLE_CORE_NOTE


def _scaling_section(description: str, runner,
                     workers_list: tuple[int, ...]) -> dict:
    """Sweep ``runner(workers) -> (seconds, failures)`` over workers."""
    workers_list, skipped, note = resolve_scaling_workers(workers_list)
    per_workers = {}
    failures = set()
    for workers in workers_list:
        seconds, shots, run_failures = runner(workers)
        failures.add(run_failures)
        per_workers[str(workers)] = {
            "seconds": seconds,
            "shots_per_second": shots / seconds,
        }
    base = per_workers[str(workers_list[0])]["seconds"]
    section = {
        "description": description,
        "workers": per_workers,
        "speedup_vs_single": {
            w: base / stats["seconds"] for w, stats in per_workers.items()
        },
        "results_identical": len(failures) == 1,
    }
    if skipped:
        section["skipped_workers"] = skipped
        section["skip_note"] = note
        print(f"  note: {note}", flush=True)
    return section


def bench_sharded_memory(shots: int,
                         workers_list: tuple[int, ...] = SCALING_WORKERS
                         ) -> dict:
    """Multi-core scaling: the headline experiment sharded across workers.

    Packed backend only (the boolean reference is orders of magnitude
    off this budget).  Results are bit-identical across worker counts —
    the section records that alongside the throughputs.
    """
    def runner(workers):
        seconds, result = time_memory_experiment(shots, workers=workers)
        return seconds, shots, result.failures

    return _scaling_section(
        f"{BB_CODE} memory experiment, {shots} shots, packed backend, "
        f"workers sweep",
        runner, workers_list,
    )


def build_pipeline_handle() -> ExperimentHandle:
    """The headline workload as a fused-pipeline recipe (shared with
    ``check_bench.py`` so the gate measures the identical pipeline)."""
    code = code_by_name(BB_CODE)
    noise = HardwareNoiseModel.from_physical_error_rate(
        PHYSICAL_ERROR_RATE, round_latency_us=ROUND_LATENCY_US
    )
    model = build_phenomenological_model(code, noise, rounds=6)
    return ExperimentHandle(
        decoder=DecoderHandle(model.check_matrix, model.priors,
                              max_iterations=40),
        observable_matrix=model.observable_matrix,
        method="phenomenological",
    )


def time_sharded_pipeline(shots: int, workers: int = 1,
                          warmup_shots: int = 0,
                          shard_shots: int | None = None
                          ) -> tuple[float, object]:
    """Time one fused sample→decode pipeline run at the headline point.

    Pass a ``shard_shots`` below ``warmup_shots`` when measuring
    multi-worker runs at reduced budgets: a warmup that fits in one
    shard executes in-process and would leave pool spawn plus the
    workers' decoder builds inside the timed region.
    """
    handle = build_pipeline_handle()
    with ShardedExperiment(handle, workers=workers,
                           shard_shots=shard_shots) as sharded:
        if warmup_shots > 0:
            sharded.run(warmup_shots, seed=1)
        return _timed(lambda: sharded.run(shots, seed=0))


def bench_sharded_pipeline(shots: int,
                           workers_list: tuple[int, ...] = SCALING_WORKERS
                           ) -> dict:
    """The fused sample→decode pipeline in isolation, workers 1/2/4.

    Unlike ``sharded_memory_experiment`` this times
    ``ShardedExperiment.run`` directly — no noise-model or structure
    (re)builds — so the row is a clean measure of the sample+decode
    hot loop and of how it scales when every worker samples and decodes
    its own shards.
    """
    handle = build_pipeline_handle()

    def runner(workers):
        with ShardedExperiment(handle, workers=workers) as sharded:
            seconds, result = _timed(lambda: sharded.run(shots, seed=0))
        return seconds, shots, result.failures

    return _scaling_section(
        f"{BB_CODE} fused sample+decode pipeline, {shots} shots, "
        f"packed backend, workers sweep",
        runner, workers_list,
    )


#: Operating points of the adaptive-sweep benchmark: same BB code and
#: 50 ms latency as the headline, physical error rates whose LERs span
#: ~0.002 to ~0.12 — so, at equal *relative* confidence width, the
#: shots each point needs vary by ~70x while a fixed budget spends the
#: same everywhere.
ADAPTIVE_SWEEP_RATES = (1e-3, 1.5e-3, 2e-3, 3e-3, 4e-3)

#: Shard size for both sweeps of the comparison: small enough that the
#: streaming engine can stop a point mid-run at useful granularity.
ADAPTIVE_SWEEP_SHARD_SHOTS = 256


def run_adaptive_sweep_comparison(shots: int) -> dict:
    """Fixed-budget vs adaptive sweep at equal worst-case Wilson width.

    Runs the LER sweep twice over :data:`ADAPTIVE_SWEEP_RATES`: once
    with a fixed ``shots`` budget per point, then adaptively
    (pilot/allocate/refine + streaming early stop) with the *relative*
    half-width target set to the widest relative interval the fixed
    sweep achieved — i.e. the adaptive sweep must deliver at least the
    fixed sweep's worst confidence quality, from the same average
    per-point budget, and is timed on how much faster it gets there.
    Shared by ``perf_smoke.py`` (committed section) and
    ``check_bench.py`` (regression gate) so both measure the identical
    workload.
    """
    code = code_by_name(BB_CODE)

    def run_sweep(target):
        return sweep_physical_error(
            code, ROUND_LATENCY_US, ADAPTIVE_SWEEP_RATES, shots=shots,
            seed=0, shard_shots=ADAPTIVE_SWEEP_SHARD_SHOTS,
            target_precision=target,
            pilot_shots=None if target is None else max(64, shots // 16),
        )

    fixed_seconds, fixed_table = _timed(lambda: run_sweep(None))
    # A zero-failure fixed row has no defined relative width: the fixed
    # sweep itself failed to measure that point, so it is excluded from
    # the target *and*, symmetrically, from the adaptive width check —
    # the comparison only holds the adaptive sweep to widths the fixed
    # sweep actually achieved.
    measurable = [
        index for index, row in enumerate(fixed_table.rows)
        if row["logical_error_rate"] > 0
    ]
    if not measurable:
        raise RuntimeError(
            "fixed sweep observed no failures at any point; increase the "
            "adaptive-sweep budget (REPRO_PERF_SWEEP_SHOTS / "
            "REPRO_CHECK_SHOTS)"
        )
    target_relative = max(
        ((fixed_table.rows[i]["ci_high"] - fixed_table.rows[i]["ci_low"])
         / 2.0) / fixed_table.rows[i]["logical_error_rate"]
        for i in measurable
    )
    target = PrecisionTarget(half_width=target_relative, relative=True)
    adaptive_seconds, adaptive_table = _timed(lambda: run_sweep(target))

    def row_width_ok(row):
        ler = row["logical_error_rate"]
        if ler <= 0:
            return False
        half = (row["ci_high"] - row["ci_low"]) / 2.0
        return half <= target_relative * ler * (1.0 + 1e-9)

    return {
        "description": f"{BB_CODE} LER sweep over p={ADAPTIVE_SWEEP_RATES}, "
                       f"fixed {shots} shots/point vs adaptive "
                       f"(pilot/allocate/refine + streaming early stop) at "
                       f"equal worst-case relative Wilson half-width",
        "fixed_seconds": fixed_seconds,
        "adaptive_seconds": adaptive_seconds,
        "speedup": fixed_seconds / adaptive_seconds,
        "target_relative_half_width": target_relative,
        "fixed_shots_total": shots * len(ADAPTIVE_SWEEP_RATES),
        "adaptive_shots_total": sum(
            row["shots_used"] for row in adaptive_table.rows),
        "adaptive_shots_per_point": [
            row["shots_used"] for row in adaptive_table.rows],
        "adaptive_stopped_early": [
            bool(row["stopped_early"]) for row in adaptive_table.rows],
        "measured_points": len(measurable),
        "width_ok": all(row_width_ok(adaptive_table.rows[i])
                        for i in measurable),
    }


def run_campaign_resume_comparison(budget: int) -> dict:
    """Cold vs store-resumed run of the bundled ``ci_smoke`` campaign.

    The cold run samples the campaign under its global budget and
    appends every point to a fresh result store; the resumed run must
    serve every point from the store — zero shots sampled — and render
    bit-identical tables.  Shared by ``perf_smoke.py`` (committed
    section) and ``check_bench.py`` (regression gate: correctness of
    the resume contract plus the wall-clock ratio).
    """
    import tempfile

    spec = load_spec("ci_smoke")
    with tempfile.TemporaryDirectory() as tmp:
        store = os.path.join(tmp, "campaign_store.jsonl")
        cold_seconds, cold = _timed(
            lambda: run_campaign(spec, store=store, budget=budget))
        resumed_seconds, resumed = _timed(
            lambda: run_campaign(spec, store=store, budget=budget))
    tables_identical = all(
        a.to_json() == b.to_json()
        for a, b in zip(cold.tables, resumed.tables)
    )
    return {
        "description": f"ci_smoke campaign ({spec.num_points} points, "
                       f"budget {budget}), cold vs store-resumed",
        "budget": budget,
        "cold_seconds": cold_seconds,
        "resumed_seconds": resumed_seconds,
        "speedup": cold_seconds / max(resumed_seconds, 1e-9),
        "cold_shots_sampled": cold.shots_sampled,
        "resumed_shots_sampled": resumed.shots_sampled,
        "points_resumed": resumed.points_reused,
        "points_total": resumed.points_total,
        "tables_identical": tables_identical,
    }


def run_service_requests_comparison(budget: int,
                                    cached_jobs: int = 10,
                                    status_requests: int = 200) -> dict:
    """Served-campaign throughput: cold job vs cached resubmissions.

    Hosts the ``repro serve`` stack in-process (real sockets, real
    HTTP) on a temporary store, runs the bundled ``ci_smoke`` campaign
    once cold, then measures two request classes against the warm
    store: *cached resubmissions* — each a full ``POST /jobs`` →
    poll-to-done → ``GET /tables`` round trip that must sample zero
    shots and return byte-identical tables — and plain *status polls*
    (``GET /jobs/<id>``).  The cold/cached split is the serving-tier
    counterpart of the accelerator papers' RPC-vs-compute budget: it
    shows how much of a served request is HTTP + queue plumbing once
    the Monte Carlo work is cached.  Shared by ``perf_smoke.py``
    (committed section) and ``check_bench.py`` (regression gate:
    the zero-sampling/bit-identity contract plus a floor on cached
    jobs/second under ``REPRO_CHECK_SERVICE_MIN``).
    """
    import tempfile

    from repro.service import ServiceClient, ServiceThread

    with tempfile.TemporaryDirectory() as tmp:
        store = os.path.join(tmp, "served_store.jsonl")
        with ServiceThread(store) as service:
            client = ServiceClient(service.url)

            def run_job():
                view = client.submit("ci_smoke", budget=budget)
                final = client.wait(view["job"], poll=0.005)
                if final["state"] != "done":
                    raise RuntimeError(
                        f"served job ended {final['state']}: "
                        f"{final['error']}")
                return final, client.tables_bytes(view["job"])

            cold_seconds, (cold, cold_bytes) = _timed(run_job)

            cached_sampled = 0
            identical = True
            def run_cached():
                nonlocal cached_sampled, identical
                for _ in range(cached_jobs):
                    final, body = run_job()
                    cached_sampled += final["stats"]["shots_sampled"]
                    identical &= body == cold_bytes
            cached_seconds, _ = _timed(run_cached)

            job_id = cold["job"]
            status_seconds, _ = _timed(
                lambda: [client.job(job_id)
                         for _ in range(status_requests)])

    cached_per_job = cached_seconds / cached_jobs
    return {
        "description": f"ci_smoke (budget {budget}) served over HTTP: "
                       "cold job vs cached resubmissions vs status polls",
        "budget": budget,
        "cold_seconds": cold_seconds,
        "cold_shots_sampled": cold["stats"]["shots_sampled"],
        "cached_jobs": cached_jobs,
        "cached_seconds": cached_seconds,
        "cached_jobs_per_second": cached_jobs / max(cached_seconds, 1e-9),
        "cached_shots_sampled": cached_sampled,
        "cached_tables_identical": identical,
        "speedup": cold_seconds / max(cached_per_job, 1e-9),
        "status_requests": status_requests,
        "status_requests_per_second":
            status_requests / max(status_seconds, 1e-9),
    }


def main() -> None:
    shots = _int_env("REPRO_PERF_SHOTS", 10_000)
    decode_shots = _int_env("REPRO_PERF_DECODE_SHOTS", 2_000)
    frame_shots = _int_env("REPRO_PERF_FRAME_SHOTS", 20_000)
    shard_shots = _int_env("REPRO_PERF_SHARD_SHOTS", 100_000)
    sweep_shots = _int_env("REPRO_PERF_SWEEP_SHOTS", 4_000)
    campaign_budget = _int_env("REPRO_PERF_CAMPAIGN_BUDGET", 3_000)
    service_budget = _int_env("REPRO_PERF_SERVICE_BUDGET", 900)

    sections = {}
    print(f"frame sampling ({frame_shots} shots)...", flush=True)
    sections["frame_sampling"] = bench_frame_sampling(frame_shots)
    print("dem extraction...", flush=True)
    sections["dem_extraction"] = bench_dem_extraction()
    print(f"batched decode ({decode_shots} shots)...", flush=True)
    sections["batched_decode"] = bench_batched_decode(decode_shots)
    print(f"native decode ({decode_shots} shots, native C kernels vs "
          "packed)...", flush=True)
    sections["native_decode"] = run_native_decode_comparison(decode_shots)
    print(f"memory experiment ({shots} shots, slow: runs the boolean "
          "reference too)...", flush=True)
    sections["memory_experiment"] = bench_memory_experiment(shots)
    print(f"sharded memory experiment ({shard_shots} shots, "
          "workers 1/2/4)...", flush=True)
    sections["sharded_memory_experiment"] = bench_sharded_memory(shard_shots)
    print(f"sharded pipeline ({shard_shots} shots, workers 1/2/4)...",
          flush=True)
    sections["sharded_pipeline"] = bench_sharded_pipeline(shard_shots)
    print(f"adaptive sweep ({sweep_shots} shots/point fixed vs adaptive)...",
          flush=True)
    sections["adaptive_sweep"] = run_adaptive_sweep_comparison(sweep_shots)
    print(f"campaign resume (ci_smoke, budget {campaign_budget}, cold vs "
          "resumed)...", flush=True)
    sections["campaign_resume"] = run_campaign_resume_comparison(
        campaign_budget)
    print(f"service requests (ci_smoke, budget {service_budget}, cold job "
          "vs cached resubmissions over HTTP)...", flush=True)
    sections["service_requests"] = run_service_requests_comparison(
        service_budget)

    report = {
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "budgets": {
            "memory_experiment_shots": shots,
            "batched_decode_shots": decode_shots,
            "native_decode_shots": decode_shots,
            "frame_sampling_shots": frame_shots,
            "sharded_memory_experiment_shots": shard_shots,
            "adaptive_sweep_shots": sweep_shots,
            "campaign_resume_budget": campaign_budget,
            "service_requests_budget": service_budget,
        },
        "sections": sections,
        "headline_speedup": sections["memory_experiment"]["speedup"],
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print()
    for name, section in sections.items():
        if "bool_seconds" not in section:
            continue
        print(f"{name:20s} packed {section['packed_seconds']:8.2f}s  "
              f"bool {section['bool_seconds']:8.2f}s  "
              f"speedup {section['speedup']:6.1f}x")
    native = sections["native_decode"]
    if "skipped_reason" in native:
        print(f"native_decode        skipped: {native['skipped_reason']}")
    else:
        print(f"{'native_decode':20s} packed {native['packed_seconds']:8.2f}s"
              f"  native {native['native_seconds']:6.2f}s  "
              f"speedup {native['speedup']:6.1f}x (target >= 2x)")
    for name in ("sharded_memory_experiment", "sharded_pipeline"):
        sharded = sections[name]
        print(f"{name}:")
        for workers, stats in sharded["workers"].items():
            print(f"  workers={workers:<3s}        {stats['seconds']:8.2f}s  "
                  f"{stats['shots_per_second']:10.0f} shots/s  "
                  f"x{sharded['speedup_vs_single'][workers]:.2f} vs 1 worker")
        if sharded.get("skipped_workers"):
            print(f"  (skipped workers {sharded['skipped_workers']}: "
                  "single-core host)")
    adaptive = sections["adaptive_sweep"]
    print("adaptive_sweep:")
    print(f"  fixed    {adaptive['fixed_seconds']:8.2f}s  "
          f"({adaptive['fixed_shots_total']} shots)")
    print(f"  adaptive {adaptive['adaptive_seconds']:8.2f}s  "
          f"({adaptive['adaptive_shots_total']} shots)  "
          f"x{adaptive['speedup']:.2f} at equal width "
          f"(width_ok={adaptive['width_ok']}, target >= 3x)")
    campaign = sections["campaign_resume"]
    print("campaign_resume:")
    print(f"  cold     {campaign['cold_seconds']:8.2f}s  "
          f"({campaign['cold_shots_sampled']} shots sampled)")
    print(f"  resumed  {campaign['resumed_seconds']:8.2f}s  "
          f"({campaign['resumed_shots_sampled']} shots sampled)  "
          f"x{campaign['speedup']:.2f}  "
          f"tables_identical={campaign['tables_identical']}")
    service = sections["service_requests"]
    print("service_requests:")
    print(f"  cold job {service['cold_seconds']:8.2f}s  "
          f"({service['cold_shots_sampled']} shots sampled)")
    print(f"  cached   {service['cached_jobs_per_second']:8.1f} jobs/s  "
          f"({service['cached_shots_sampled']} shots sampled, "
          f"tables_identical={service['cached_tables_identical']})")
    print(f"  status   {service['status_requests_per_second']:8.0f} "
          "requests/s")
    print(f"\nheadline speedup: {report['headline_speedup']:.1f}x "
          f"(target >= 5x) on {report['cpu_count']} cores; "
          f"wrote {OUTPUT_PATH}")


if __name__ == "__main__":
    main()
