"""Figure 15: logical error rate, Cyclone vs baseline, HGP codes.

Paper series: LER vs physical error rate for each HGP code under the
baseline grid (B) and Cyclone (C); Cyclone improves the LER by about two
orders of magnitude and exhibits error correction across the whole
tested p range while the baseline only does at lower p.

Each (code, design) series is the matching ``physical_error`` sweep of
the ``paper_figures_full`` campaign spec, run through its registered
sweep kind; the benchmark only trims the p grid and the Monte-Carlo
budget.
"""

from dataclasses import replace

import pytest

from repro.campaign import builtin_spec, run_sweep_kind
from repro.core.results import ResultTable

SWEEPS = {  # (code, design label) -> paper_figures_full sweep name
    ("HGP [[225,9,6]]", "B"): "fig15_hgp225_baseline",
    ("HGP [[225,9,6]]", "C"): "fig15_hgp225_cyclone",
    ("HGP [[400,16,6]]", "B"): "fig15_hgp400_baseline",
    ("HGP [[400,16,6]]", "C"): "fig15_hgp400_cyclone",
}
PHYSICAL_ERROR_RATES = [3e-4, 1e-3]


def _spec_sweep(name: str):
    spec = builtin_spec("paper_figures_full")
    return next(sweep for sweep in spec.sweeps if sweep.name == name)


def _hgp_ler_table(shots: int, rounds: int) -> ResultTable:
    table = ResultTable(
        title="Fig. 15 — LER: Cyclone (C) vs baseline (B) on HGP codes",
        columns=["code", "design", "p", "round_latency_us",
                 "logical_error_rate"],
    )
    for (code_name, design), sweep_name in SWEEPS.items():
        sweep = replace(_spec_sweep(sweep_name), rounds=rounds,
                        physical_error_rates=tuple(PHYSICAL_ERROR_RATES))
        for row in run_sweep_kind(sweep, shots=shots, seed=19).rows:
            table.add_row(code=code_name, design=design, **row)
    return table


@pytest.mark.benchmark(group="fig15")
def test_fig15_hgp_logical_error_rates(benchmark, report, bench_shots,
                                       bench_rounds):
    table = benchmark.pedantic(
        _hgp_ler_table, args=(bench_shots, bench_rounds), rounds=1,
        iterations=1,
    )
    report(table)

    for code_name in {code for code, _ in SWEEPS}:
        for p in PHYSICAL_ERROR_RATES:
            rows = {row["design"]: row["logical_error_rate"]
                    for row in table.rows
                    if row["code"] == code_name and row["p"] == p}
            assert rows["C"] <= rows["B"] + 1e-9
    # At the highest tested p the baseline on the larger code performs
    # clearly worse than Cyclone (the paper's headline gap).
    worst_baseline = max(row["logical_error_rate"] for row in table.rows
                         if row["design"] == "B" and row["p"] == 1e-3)
    best_cyclone = max(row["logical_error_rate"] for row in table.rows
                       if row["design"] == "C" and row["p"] == 1e-3)
    assert best_cyclone <= worst_baseline
