"""Figure 15: logical error rate, Cyclone vs baseline, hypergraph product codes.

Paper series: LER vs physical error rate for each HGP code under the
baseline grid (B) and Cyclone (C); Cyclone improves the LER by about two
orders of magnitude and exhibits error correction across the whole
tested p range while the baseline only does at lower p.
"""

import pytest

from repro.codes import code_by_name
from repro.core import codesign_by_name, logical_error_rate
from repro.core.results import ResultTable

HGP_CODES = ["HGP [[225,9,6]]", "HGP [[400,16,6]]"]
PHYSICAL_ERROR_RATES = [3e-4, 1e-3]


def _hgp_ler_table(shots: int, rounds: int) -> ResultTable:
    table = ResultTable(
        title="Fig. 15 — LER: Cyclone (C) vs baseline (B) on HGP codes",
        columns=["code", "design", "p", "round_latency_us",
                 "logical_error_rate", "ler_per_round"],
    )
    for code_name in HGP_CODES:
        code = code_by_name(code_name)
        latencies = {
            "B": codesign_by_name("baseline").compile(code).execution_time_us,
            "C": codesign_by_name("cyclone").compile(code).execution_time_us,
        }
        for p in PHYSICAL_ERROR_RATES:
            for design, latency in latencies.items():
                result = logical_error_rate(code, p, latency, shots=shots,
                                            rounds=rounds, seed=19)
                table.add_row(
                    code=code_name, design=design, p=p,
                    round_latency_us=latency,
                    logical_error_rate=result.logical_error_rate,
                    ler_per_round=result.logical_error_rate_per_round,
                )
    return table


@pytest.mark.benchmark(group="fig15")
def test_fig15_hgp_logical_error_rates(benchmark, report, bench_shots,
                                       bench_rounds):
    table = benchmark.pedantic(
        _hgp_ler_table, args=(bench_shots, bench_rounds), rounds=1,
        iterations=1,
    )
    report(table)

    for code_name in HGP_CODES:
        for p in PHYSICAL_ERROR_RATES:
            rows = {row["design"]: row["logical_error_rate"]
                    for row in table.rows
                    if row["code"] == code_name and row["p"] == p}
            assert rows["C"] <= rows["B"] + 1e-9
    # At the highest tested p the baseline on the larger code performs
    # clearly worse than Cyclone (the paper's headline gap).
    worst_baseline = max(row["logical_error_rate"] for row in table.rows
                         if row["design"] == "B" and row["p"] == 1e-3)
    best_cyclone = max(row["logical_error_rate"] for row in table.rows
                       if row["design"] == "C" and row["p"] == 1e-3)
    assert best_cyclone <= worst_baseline
