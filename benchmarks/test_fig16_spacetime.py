"""Figure 16: spacetime cost of the baseline relative to Cyclone.

Paper series: per code, the spacetime cost (traps x execution time x
ancilla qubits) of the baseline grid divided by Cyclone's; the overall
improvement is up to ~20x.
"""

from repro.codes import code_by_name
from repro.core import codesign_by_name, spacetime_comparison
from repro.core.results import ResultTable

CODES = ["HGP [[225,9,6]]", "BB [[72,12,6]]", "BB [[144,12,12]]"]


def _spacetime_table() -> ResultTable:
    table = ResultTable(
        title="Fig. 16 — spacetime cost of baseline relative to Cyclone",
        columns=["code", "baseline_cost", "cyclone_cost",
                 "improvement_factor", "trap_ratio", "ancilla_ratio",
                 "time_ratio"],
    )
    for code_name in CODES:
        code = code_by_name(code_name)
        baseline = codesign_by_name("baseline").compile(code)
        cyclone = codesign_by_name("cyclone").compile(code)
        comparison = spacetime_comparison(baseline, cyclone)
        table.add_row(
            code=code_name,
            baseline_cost=comparison["baseline_cost"],
            cyclone_cost=comparison["candidate_cost"],
            improvement_factor=comparison["improvement_factor"],
            trap_ratio=comparison["trap_ratio"],
            ancilla_ratio=comparison["ancilla_ratio"],
            time_ratio=comparison["time_ratio"],
        )
    return table


def test_fig16_spacetime_cost(benchmark, report):
    table = benchmark.pedantic(_spacetime_table, rounds=1, iterations=1)
    report(table)

    for row in table.rows:
        # Traps and ancillas are halved, execution is a few times faster,
        # so the combined improvement is order 10x (paper: up to ~20x).
        assert row["trap_ratio"] >= 1.9
        assert row["ancilla_ratio"] >= 1.9
        assert row["time_ratio"] > 1.5
        assert row["improvement_factor"] > 8
