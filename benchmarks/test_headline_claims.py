"""Abstract / Section I headline claims.

Regenerates the paper's headline numbers in one table:

* up to ~4x execution-time speedup over the baseline grid,
* ~2x fewer traps and ancilla qubits,
* a constant number of DACs versus one per trap,
* an overall spacetime improvement of order 10-20x.
"""

from repro.codes import code_by_name
from repro.core import codesign_by_name, spacetime_comparison
from repro.core.results import ResultTable

CODES = ["HGP [[225,9,6]]", "BB [[72,12,6]]", "BB [[144,12,12]]"]


def _headline_table() -> ResultTable:
    table = ResultTable(
        title="Headline claims — Cyclone vs baseline grid",
        columns=["code", "speedup", "trap_ratio", "ancilla_ratio",
                 "baseline_dacs", "cyclone_dacs", "spacetime_improvement"],
    )
    for code_name in CODES:
        code = code_by_name(code_name)
        baseline = codesign_by_name("baseline").compile(code)
        cyclone = codesign_by_name("cyclone").compile(code)
        comparison = spacetime_comparison(baseline, cyclone)
        table.add_row(
            code=code_name,
            speedup=comparison["time_ratio"],
            trap_ratio=comparison["trap_ratio"],
            ancilla_ratio=comparison["ancilla_ratio"],
            baseline_dacs=baseline.metadata["dac_count"],
            cyclone_dacs=cyclone.metadata["dac_count"],
            spacetime_improvement=comparison["improvement_factor"],
        )
    return table


def test_headline_claims(benchmark, report):
    table = benchmark.pedantic(_headline_table, rounds=1, iterations=1)
    report(table)

    for row in table.rows:
        assert 2.0 <= row["speedup"] <= 8.0
        assert row["trap_ratio"] >= 1.9
        assert row["ancilla_ratio"] >= 1.9
        assert row["cyclone_dacs"] == 1
        assert row["baseline_dacs"] > 50
        assert row["spacetime_improvement"] > 8
