"""Shared configuration for the benchmark harness.

Every benchmark regenerates the data behind one of the paper's tables or
figures and prints the corresponding rows/series.  Because pytest
captures per-test stdout for passing tests, the tables are additionally
collected and re-emitted in the terminal summary, so a plain
``pytest benchmarks/ --benchmark-only`` run shows every figure's data.

Monte-Carlo budgets default to values that keep the whole harness
runnable on a laptop; scale them up towards paper-quality statistics
with the environment variables below:

* ``REPRO_BENCH_SHOTS``  — shots per logical-error-rate point (default 150)
* ``REPRO_BENCH_ROUNDS`` — syndrome-extraction rounds per shot (default 3)

EXPERIMENTS.md records the budgets used for the committed reference run.
"""

from __future__ import annotations

import os

import pytest

_COLLECTED_TABLES: list[str] = []


def _int_env(name: str, default: int) -> int:
    try:
        return max(int(os.environ.get(name, default)), 1)
    except ValueError:
        return default


@pytest.fixture(scope="session")
def bench_shots() -> int:
    """Shots per LER data point."""
    return _int_env("REPRO_BENCH_SHOTS", 150)


@pytest.fixture(scope="session")
def bench_rounds() -> int:
    """Syndrome extraction rounds per shot."""
    return _int_env("REPRO_BENCH_ROUNDS", 3)


@pytest.fixture(scope="session")
def report():
    """Record a result table for the end-of-run summary (and print it)."""

    def _record(table) -> None:
        rendered = table.to_text()
        _COLLECTED_TABLES.append(rendered)
        print()
        print("=" * 72)
        print(rendered)
        print("=" * 72)

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Re-emit every recorded table so it appears in the run's output."""
    del exitstatus, config
    if not _COLLECTED_TABLES:
        return
    terminalreporter.write_sep("=", "reproduced paper tables and figures")
    for rendered in _COLLECTED_TABLES:
        terminalreporter.write_line("")
        terminalreporter.write_line(rendered)
    terminalreporter.write_line("")
