"""Figure 5: logical error rate improvement from speeding up the baseline.

Paper series: for HGP codes at p = 5e-4, dividing the baseline's depth
by 2x / 4x lowers the logical error rate dramatically (a 2x depth
reduction already cuts the LER by ~90%).
"""

from repro.analysis import depth_speedup_ler
from repro.codes import code_by_name


def test_fig05_baseline_depth_speedup(benchmark, report, bench_shots,
                                      bench_rounds):
    code = code_by_name("HGP [[225,9,6]]")

    table = benchmark.pedantic(
        depth_speedup_ler,
        kwargs={
            "code": code,
            "physical_error_rate": 5e-4,
            "speedups": (1.0, 2.0, 4.0),
            "shots": bench_shots,
            "rounds": bench_rounds,
            "seed": 7,
        },
        rounds=1, iterations=1,
    )
    report(table)

    lers = table.column("logical_error_rate")
    # Speeding the schedule up never makes the LER meaningfully worse (small
    # slack absorbs Monte-Carlo noise at the default shot budget), and the
    # 4x point is no worse than the unsped baseline.
    assert lers[1] <= lers[0] + 0.1
    assert lers[2] <= lers[0] + 0.02
