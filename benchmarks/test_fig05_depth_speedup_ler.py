"""Figure 5: logical error rate improvement from speeding up the baseline.

Paper series: for HGP codes at p = 5e-4, dividing the baseline's depth
by 2x / 4x lowers the logical error rate dramatically (a 2x depth
reduction already cuts the LER by ~90%).

The table comes straight from the ``fig05_depth_speedup`` sweep of the
``paper_figures_full`` campaign spec, run through its registered sweep
kind — the benchmark only rescales the Monte-Carlo budget.
"""

from dataclasses import replace

from repro.campaign import builtin_spec, run_sweep_kind


def _spec_sweep(name: str):
    spec = builtin_spec("paper_figures_full")
    return next(sweep for sweep in spec.sweeps if sweep.name == name)


def test_fig05_baseline_depth_speedup(benchmark, report, bench_shots,
                                      bench_rounds):
    sweep = replace(_spec_sweep("fig05_depth_speedup"), rounds=bench_rounds)

    table = benchmark.pedantic(
        run_sweep_kind, args=(sweep,),
        kwargs={"shots": bench_shots, "seed": 7},
        rounds=1, iterations=1,
    )
    report(table)

    lers = table.column("logical_error_rate")
    # Speeding the schedule up never makes the LER meaningfully worse (small
    # slack absorbs Monte-Carlo noise at the default shot budget), and the
    # 4x point is no worse than the unsped baseline.
    assert lers[1] <= lers[0] + 0.1
    assert lers[2] <= lers[0] + 0.02
