"""The base circuit-level noise model (Section II-C-1).

Every error source is an independent stochastic depolarizing channel
parameterised by the physical error rate ``p``: two-qubit gate errors,
single-qubit gate errors, state preparation errors and measurement
errors.  The individual rates default to ``p`` but can be overridden to
study asymmetric models.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["BaseNoiseModel"]


@dataclass(frozen=True)
class BaseNoiseModel:
    """Circuit-level depolarizing noise parameters.

    Attributes
    ----------
    physical_error_rate:
        The headline ``p``; used as default for all error sources.
    two_qubit_error, single_qubit_error, preparation_error, measurement_error:
        Individual error probabilities.  ``None`` means "use
        ``physical_error_rate``".
    """

    physical_error_rate: float
    two_qubit_error: float | None = None
    single_qubit_error: float | None = None
    preparation_error: float | None = None
    measurement_error: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.physical_error_rate <= 1.0:
            raise ValueError("physical_error_rate must be in [0, 1]")
        for name in (
            "two_qubit_error",
            "single_qubit_error",
            "preparation_error",
            "measurement_error",
        ):
            value = getattr(self, name)
            if value is not None and not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @property
    def p2(self) -> float:
        """Two-qubit gate depolarizing probability."""
        return self.two_qubit_error if self.two_qubit_error is not None \
            else self.physical_error_rate

    @property
    def p1(self) -> float:
        """Single-qubit gate depolarizing probability."""
        return self.single_qubit_error if self.single_qubit_error is not None \
            else self.physical_error_rate / 10.0

    @property
    def p_prep(self) -> float:
        """State preparation flip probability."""
        return self.preparation_error if self.preparation_error is not None \
            else self.physical_error_rate

    @property
    def p_meas(self) -> float:
        """Measurement flip probability."""
        return self.measurement_error if self.measurement_error is not None \
            else self.physical_error_rate

    def with_physical_error_rate(self, p: float) -> "BaseNoiseModel":
        """Same overrides, different headline ``p``."""
        return replace(self, physical_error_rate=p)
