"""Latency-induced decoherence via the Pauli twirling approximation.

Section II-C-2: idling for a time ``t`` on a qubit with relaxation time
T1 (= T_a) and dephasing time T2 (= T_b) is approximated, after Pauli
twirling, by the independent Pauli channel

    p_x = p_y = (1 - exp(-t / T1)) / 4
    p_z = (1 - exp(-t / T2)) / 2 - (1 - exp(-t / T1)) / 4

(Geller & Zhou 2013; Tomita & Svore 2014).  The paper parameterises the
coherence time by the physical error rate with a log fit anchored at
(p = 1e-4, T = 100 s) and (p = 1e-3, T = 10 s), i.e. ``T = 0.01 / p``
seconds, and uses the same value for T1 and T2.
"""

from __future__ import annotations

import math

__all__ = [
    "coherence_time_from_physical_error",
    "pauli_twirl_probabilities",
    "decoherence_channel",
]

#: The product p * T implied by the paper's two anchor points.
_COHERENCE_FIT_CONSTANT_SECONDS = 0.01

#: Coherence times quoted for present-day trapped-ion devices (seconds).
MIN_COHERENCE_TIME_S = 10.0
MAX_COHERENCE_TIME_S = 100.0


def coherence_time_from_physical_error(physical_error_rate: float,
                                       clamp: bool = False) -> float:
    """Coherence time (seconds) from the paper's log fit T = 0.01 / p.

    With ``clamp=True`` the value is clipped to the 10-100 s range the
    paper quotes for present-day trapped-ion hardware; by default the
    fit is extrapolated so that sweeps over wider ``p`` ranges stay
    smooth.
    """
    if physical_error_rate <= 0:
        raise ValueError("physical_error_rate must be positive")
    coherence = _COHERENCE_FIT_CONSTANT_SECONDS / physical_error_rate
    if clamp:
        coherence = min(MAX_COHERENCE_TIME_S,
                        max(MIN_COHERENCE_TIME_S, coherence))
    return coherence


def pauli_twirl_probabilities(idle_time_s: float, t1_s: float,
                              t2_s: float) -> tuple[float, float, float]:
    """(px, py, pz) of the Pauli-twirled idle channel for ``idle_time_s``.

    Raises ``ValueError`` for non-physical inputs (negative times, or
    T2 > 2 * T1 which has no CPTP amplitude/phase damping realisation).
    """
    if idle_time_s < 0:
        raise ValueError("idle time must be non-negative")
    if t1_s <= 0 or t2_s <= 0:
        raise ValueError("coherence times must be positive")
    if t2_s > 2 * t1_s + 1e-12:
        raise ValueError("T2 cannot exceed 2*T1 for a physical channel")
    relax = 1.0 - math.exp(-idle_time_s / t1_s)
    dephase = 1.0 - math.exp(-idle_time_s / t2_s)
    px = relax / 4.0
    py = relax / 4.0
    pz = dephase / 2.0 - relax / 4.0
    # Guard against tiny negative values from floating point noise.
    pz = max(pz, 0.0)
    return (px, py, pz)


def decoherence_channel(idle_time_s: float,
                        physical_error_rate: float) -> tuple[float, float, float]:
    """Pauli channel for idling ``idle_time_s`` at physical error rate ``p``.

    Convenience wrapper that derives T1 = T2 = 0.01 / p and applies
    :func:`pauli_twirl_probabilities`, exactly as the paper's
    hardware-aware noise model does with the compiled execution latency.
    """
    coherence = coherence_time_from_physical_error(physical_error_rate)
    return pauli_twirl_probabilities(idle_time_s, coherence, coherence)
