"""Noise models for hardware-aware memory simulation.

The paper combines a conventional circuit-level depolarizing model (the
"base" model, parameterised by the physical error rate ``p``) with a
latency-induced decoherence channel obtained from the Pauli twirling
approximation of amplitude and phase damping.  Coherence times are tied
to ``p`` by the paper's log fit (100 s at p = 1e-4, 10 s at p = 1e-3,
i.e. T = 0.01 / p seconds).
"""

from repro.noise.base import BaseNoiseModel
from repro.noise.twirling import (
    pauli_twirl_probabilities,
    coherence_time_from_physical_error,
    decoherence_channel,
)
from repro.noise.hardware import HardwareNoiseModel

__all__ = [
    "BaseNoiseModel",
    "pauli_twirl_probabilities",
    "coherence_time_from_physical_error",
    "decoherence_channel",
    "HardwareNoiseModel",
]
