"""The combined hardware-aware noise model.

This couples the base circuit-level model with the latency-induced
decoherence channel: the compiled execution latency of one syndrome
extraction round (produced by a QCCD compiler) determines the
per-round idle error applied to every qubit, which is what makes slow
architectures (the roadblocked grid baseline) pay a logical-error-rate
penalty relative to fast ones (Cyclone).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.noise.base import BaseNoiseModel
from repro.noise.twirling import (
    coherence_time_from_physical_error,
    pauli_twirl_probabilities,
)

__all__ = ["HardwareNoiseModel"]


@dataclass(frozen=True)
class HardwareNoiseModel:
    """Base circuit noise plus latency-derived decoherence.

    Parameters
    ----------
    base:
        The circuit-level depolarizing model.
    round_latency_us:
        Execution latency of one syndrome-extraction round in
        microseconds, as reported by a QCCD compiler.  Zero latency
        disables the decoherence channel (pure circuit-level noise).
    t1_s, t2_s:
        Optional explicit coherence times; by default both come from
        the paper's log fit T = 0.01 / p.
    """

    base: BaseNoiseModel
    round_latency_us: float = 0.0
    t1_s: float | None = None
    t2_s: float | None = None

    def __post_init__(self) -> None:
        if self.round_latency_us < 0:
            raise ValueError("round latency must be non-negative")

    # ------------------------------------------------------------------
    @property
    def physical_error_rate(self) -> float:
        return self.base.physical_error_rate

    @property
    def coherence_time_s(self) -> tuple[float, float]:
        """(T1, T2) in seconds."""
        default = coherence_time_from_physical_error(
            self.base.physical_error_rate
        )
        t1 = self.t1_s if self.t1_s is not None else default
        t2 = self.t2_s if self.t2_s is not None else default
        return (t1, t2)

    @property
    def idle_channel(self) -> tuple[float, float, float]:
        """(px, py, pz) applied to each qubit once per round."""
        if self.round_latency_us <= 0:
            return (0.0, 0.0, 0.0)
        t1, t2 = self.coherence_time_s
        return pauli_twirl_probabilities(
            self.round_latency_us * 1e-6, t1, t2
        )

    @property
    def total_idle_error(self) -> float:
        """px + py + pz of the per-round idle channel."""
        return float(sum(self.idle_channel))

    # ------------------------------------------------------------------
    def with_round_latency(self, latency_us: float) -> "HardwareNoiseModel":
        return replace(self, round_latency_us=latency_us)

    def with_physical_error_rate(self, p: float) -> "HardwareNoiseModel":
        return replace(self, base=self.base.with_physical_error_rate(p))

    @classmethod
    def from_physical_error_rate(cls, p: float,
                                 round_latency_us: float = 0.0,
                                 **base_overrides) -> "HardwareNoiseModel":
        """Build a model from just ``p`` (and optional base-model overrides)."""
        return cls(
            base=BaseNoiseModel(physical_error_rate=p, **base_overrides),
            round_latency_us=round_latency_us,
        )
