"""The job queue behind ``repro serve``: one executor, one store, one pool.

Every submitted campaign runs on a single executor thread against one
shared :class:`~repro.campaign.store.ResultStore` and (when ``workers >
1``) one shared :class:`~repro.parallel.pipeline.SharedPool`.  That
single-writer discipline is what makes concurrent multi-user serving
"free": two submissions of the same spec and budget fingerprint to the
same job (coalesced at submit time), and a finished job's points are
instant cache hits for the next submission — the second run reuses
every store record and samples zero shots, returning byte-identical
tables.

Cancellation and drain both ride the orchestrator's ``stop=`` callback
(PR 8): ``DELETE /jobs/<id>`` flips the job's cancel flag, drain flips
a queue-wide flag, and the running campaign stops at the next point
boundary having already flushed everything finalised — the store is
left resumable, never corrupt.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.campaign import (
    CampaignInterrupted,
    CampaignSpec,
    ResultStore,
    run_campaign,
)
from repro.parallel.pipeline import SharedPool
from repro.parallel.sharded import resolve_workers
from repro.service.protocol import ProtocolError

__all__ = ["JOB_STATES", "Job", "JobQueue"]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: Every state a job can report; the last three are terminal.
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)


@dataclass
class Job:
    """One submitted campaign and everything the API reports about it."""

    id: str
    spec: CampaignSpec
    budget: int
    fingerprint: str
    state: str = QUEUED
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    progress: dict | None = None
    stats: dict | None = None
    tables: list | None = None
    error: str | None = None
    cancel_requested: bool = False
    dedup_hits: int = 0


class JobQueue:
    """Thread-safe queue + the single executor thread running jobs.

    All public methods are safe to call from the async frontend's event
    loop: they only take the queue lock briefly and never block on job
    execution.  The executor is a daemon thread so a hard kill of the
    process never hangs on it — graceful exit goes through
    :meth:`drain`.
    """

    def __init__(self, store: "ResultStore | str",
                 workers: int = 1) -> None:
        self.store = (store if isinstance(store, ResultStore)
                      else ResultStore(store))
        self.worker_count = resolve_workers(workers)
        self._pool = (SharedPool(self.worker_count)
                      if self.worker_count > 1 else None)
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._pending: deque[Job] = deque()
        self._by_fp: dict[str, Job] = {}
        self._draining = False
        self._seq = 0
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-executor", daemon=True)
        self._thread.start()

    # -- submission ----------------------------------------------------
    def submit(self, spec: CampaignSpec,
               budget: int | None = None) -> tuple[str, bool]:
        """Enqueue a campaign; returns ``(job_id, deduplicated)``.

        Submissions are coalesced by content fingerprint: while a job
        for the same spec *and* effective budget is queued or running,
        a new submission returns that job's id instead of enqueueing a
        duplicate (``deduplicated=True``) — two concurrent users of one
        spec pay for at most one cold run.  A finished fingerprint
        re-runs as a fresh job, which reuses every store record and
        samples nothing.
        """
        effective = int(budget) if budget is not None else spec.budget
        if effective < 1:
            raise ProtocolError(400, "budget must be a positive shot count")
        fp = spec.fingerprint(budget=effective)
        with self._wake:
            if self._draining:
                raise ProtocolError(
                    503, "service is draining; submissions are closed")
            active = self._by_fp.get(fp)
            if (active is not None and active.state in (QUEUED, RUNNING)
                    and not active.cancel_requested):
                active.dedup_hits += 1
                return active.id, True
            self._seq += 1
            job = Job(id=f"job-{self._seq:06d}", spec=spec,
                      budget=effective, fingerprint=fp,
                      submitted_at=time.time())
            self._jobs[job.id] = job
            self._by_fp[fp] = job
            self._pending.append(job)
            self._wake.notify_all()
            return job.id, False

    # -- views ---------------------------------------------------------
    def _get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ProtocolError(404, f"no such job {job_id!r}")
        return job

    def describe(self, job_id: str) -> dict:
        """The ``GET /jobs/<id>`` payload (tables excluded — they have
        their own endpoint so status polling stays cheap)."""
        with self._lock:
            job = self._get(job_id)
            return {
                "job": job.id,
                "state": job.state,
                "campaign": job.spec.name,
                "fingerprint": job.fingerprint,
                "budget": job.budget,
                "submitted_at": job.submitted_at,
                "started_at": job.started_at,
                "finished_at": job.finished_at,
                "dedup_hits": job.dedup_hits,
                "error": job.error,
                "progress": job.progress,
                "stats": job.stats,
            }

    def jobs(self) -> list[dict]:
        """One summary row per job, in submission order."""
        with self._lock:
            return [
                {"job": job.id, "state": job.state,
                 "campaign": job.spec.name,
                 "fingerprint": job.fingerprint}
                for job in self._jobs.values()
            ]

    def tables(self, job_id: str) -> list:
        """The finished job's result tables (409 until it is done)."""
        with self._lock:
            job = self._get(job_id)
            if job.state != DONE:
                raise ProtocolError(
                    409, f"job {job_id} is {job.state}, not done")
            return job.tables or []

    def stats(self) -> dict:
        """The ``GET /healthz`` payload: queue + store state."""
        with self._lock:
            states = dict.fromkeys(JOB_STATES, 0)
            for job in self._jobs.values():
                states[job.state] += 1
            return {
                "status": "draining" if self._draining else "serving",
                "workers": self.worker_count,
                "jobs": states,
                "store": self.store.stats(),
            }

    # -- cancellation / drain ------------------------------------------
    def cancel(self, job_id: str) -> dict:
        """``DELETE /jobs/<id>``: cancel a queued job immediately, ask
        a running one to stop at its next point boundary (everything it
        already finalised stays flushed — the store remains resumable).
        Cancelling a finished job is a 409."""
        with self._wake:
            job = self._get(job_id)
            if job.state == QUEUED:
                job.cancel_requested = True
                job.state = CANCELLED
                job.error = "cancelled while queued"
                job.finished_at = time.time()
                return {"job": job.id, "state": CANCELLED}
            if job.state == RUNNING:
                job.cancel_requested = True
                return {"job": job.id, "state": "cancelling"}
            raise ProtocolError(409, f"job {job_id} already {job.state}")

    def drain(self) -> None:
        """Graceful shutdown: close submissions, cancel queued jobs,
        stop the running job at its next point boundary, join the
        executor and release the pool.  Idempotent."""
        with self._wake:
            self._draining = True
            for job in self._pending:
                if job.state == QUEUED:
                    job.state = CANCELLED
                    job.error = "drained"
                    job.finished_at = time.time()
            self._pending.clear()
            self._wake.notify_all()
        self._thread.join()
        if self._pool is not None:
            self._pool.close()

    # -- executor ------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._wake:
                while not self._pending and not self._draining:
                    self._wake.wait()
                if not self._pending:
                    return  # draining, nothing left
                job = self._pending.popleft()
                if job.state != QUEUED:
                    continue  # cancelled while queued
                job.state = RUNNING
                job.started_at = time.time()
            self._execute(job)

    def _execute(self, job: Job) -> None:
        def stop() -> bool:
            return job.cancel_requested or self._draining

        def progress(snapshot: dict) -> None:
            with self._lock:
                job.progress = snapshot

        try:
            result = run_campaign(job.spec, store=self.store,
                                  workers=self.worker_count,
                                  budget=job.budget, stop=stop,
                                  progress=progress, pool=self._pool)
        except CampaignInterrupted as exc:
            with self._lock:
                job.state = CANCELLED
                job.error = str(exc)
        except Exception as exc:  # noqa: BLE001 — a bad job must never
            # take the executor thread (and with it the service) down.
            with self._lock:
                job.state = FAILED
                job.error = f"{type(exc).__name__}: {exc}"
        else:
            # Tables are snapshotted as plain JSON documents outside
            # the lock; the spec seeds make them a pure function of the
            # fingerprint, which is what byte-identity rides on.
            tables = [json.loads(table.to_json())
                      for table in result.tables]
            with self._lock:
                job.state = DONE
                job.stats = result.stats_dict()
                job.tables = tables
        finally:
            with self._lock:
                job.finished_at = time.time()
