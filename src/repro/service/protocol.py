"""Wire protocol of the campaign service: parsing and payload shapes.

Everything the HTTP frontend reads or writes is defined here, separate
from both the socket handling (:mod:`repro.service.app`) and the job
execution (:mod:`repro.service.jobs`), so the protocol is testable
without a running server and the request path stays thin (the RPCAcc
lesson: on small/cached requests serialization and dispatch overhead —
not compute — caps throughput).

Two submission shapes are accepted at ``POST /jobs``:

* an **inline campaign document** — the ``CampaignSpec`` JSON itself
  (recognised by its ``sweeps`` key), run at its own budget;
* an **envelope** — ``{"spec": <builtin name or inline document>,
  "budget": <optional override>}``.

Validation failures surface as :class:`ProtocolError` carrying the
HTTP status and the underlying spec validation message, which the
frontend renders as ``{"error": ...}`` — a malformed spec is a 4xx
with the real reason, never a 500.

Responses are rendered through :func:`encode_json` — canonical JSON
(sorted keys, tight separators) — so equal payloads are equal *bytes*:
the dedupe guarantee "served twice == run once" is checkable by
comparing response bodies directly.
"""

from __future__ import annotations

import json

from repro.campaign import (
    CampaignSpec,
    available_kinds,
    available_specs,
    builtin_spec,
    kind_by_name,
)

__all__ = [
    "MAX_BODY_BYTES",
    "ProtocolError",
    "encode_json",
    "parse_submission",
    "specs_payload",
]

#: Reject request bodies past this size before reading them (an inline
#: campaign document is a few KiB; anything near this is a mistake).
MAX_BODY_BYTES = 1 << 20


class ProtocolError(Exception):
    """A request error mappable to an HTTP status + JSON error body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = str(message)


def encode_json(payload: object) -> bytes:
    """Canonical JSON bytes: sorted keys, tight separators.

    Deterministic rendering is part of the protocol — two jobs that
    resolve to the same tables return byte-identical ``/tables``
    bodies, which is what the CI smoke test asserts.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str).encode("utf-8")


def parse_submission(body: bytes) -> tuple[CampaignSpec, int | None]:
    """Parse a ``POST /jobs`` body into ``(spec, budget override)``.

    Raises :class:`ProtocolError` (status 400) with the underlying
    validation message for anything malformed: non-JSON bodies, unknown
    builtin names, unknown spec/sweep keys, bad budgets, names that
    fail the code/codesign registries.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(400, f"request body is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(400, "request body must be a JSON object")
    budget: int | None = None
    try:
        if "sweeps" in payload:
            spec = CampaignSpec.from_dict(payload)
        else:
            unknown = set(payload) - {"spec", "budget"}
            if unknown:
                raise ProtocolError(
                    400, f"unknown submission keys {sorted(unknown)} "
                         "(an envelope takes 'spec' and optionally "
                         "'budget'; an inline campaign document needs "
                         "'sweeps')")
            source = payload.get("spec")
            if isinstance(source, str):
                try:
                    spec = builtin_spec(source)
                except KeyError as exc:
                    raise ProtocolError(400, str(exc.args[0])) from exc
            elif isinstance(source, dict):
                spec = CampaignSpec.from_dict(source)
            else:
                raise ProtocolError(
                    400, "'spec' must be a builtin spec name or an "
                         "inline campaign document")
            raw_budget = payload.get("budget")
            if raw_budget is not None:
                budget = int(raw_budget)
                if budget < 1:
                    raise ProtocolError(
                        400, "budget must be a positive shot count")
        spec.validate_names()
    except ProtocolError:
        raise
    except (ValueError, TypeError, KeyError) as exc:
        raise ProtocolError(400, f"invalid campaign spec: {exc}") from exc
    return spec, budget


def specs_payload() -> dict:
    """``GET /specs``: the machine-readable ``--list-specs`` listing.

    Mirrors :func:`repro.cli._print_specs_and_kinds` — every builtin
    spec (name, sweep count, budget, description) and every registered
    sweep kind with its parameter schema.
    """
    specs = []
    for name in available_specs():
        spec = builtin_spec(name)
        specs.append({
            "name": name,
            "description": spec.description,
            "budget": spec.budget,
            "sweeps": len(spec.sweeps),
        })
    kinds = []
    for name in available_kinds():
        kind = kind_by_name(name)
        kinds.append({
            "name": name,
            "description": kind.description,
            "params": [
                {"name": param.name, "type": param.type,
                 "default": param.default, "doc": param.doc}
                for param in kind.params
            ],
        })
    return {"specs": specs, "kinds": kinds}
