"""Minimal stdlib client for the campaign service.

One urllib-based class shared by the unit tests, the perf benchmark
and the CI smoke script — nothing here that ``curl`` + ``jq`` could
not do, but having it in-tree keeps the three harnesses byte-for-byte
consistent about how they submit, poll and fetch tables (the dedupe
assertions compare raw response bodies).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

__all__ = ["ServiceClient", "ServiceError", "TERMINAL_STATES"]

#: Job states after which polling stops.
TERMINAL_STATES = ("done", "failed", "cancelled")


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: object) -> None:
        super().__init__(f"HTTP {status}: {payload}")
        self.status = int(status)
        self.payload = payload


class ServiceClient:
    """Blocking JSON client for one service base URL."""

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # -- transport -----------------------------------------------------
    def request(self, method: str, path: str,
                payload: object = None) -> tuple[int, bytes]:
        """One request; returns ``(status, raw body bytes)``."""
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers,
            method=method)
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()

    def json(self, method: str, path: str, payload: object = None,
             expect: tuple[int, ...] = (200, 201)) -> dict:
        status, body = self.request(method, path, payload)
        decoded = json.loads(body) if body else None
        if status not in expect:
            raise ServiceError(status, decoded)
        return decoded

    # -- endpoints -----------------------------------------------------
    def healthz(self) -> dict:
        return self.json("GET", "/healthz")

    def specs(self) -> dict:
        return self.json("GET", "/specs")

    def submit(self, spec, budget: int | None = None) -> dict:
        """Submit a builtin name or inline campaign document."""
        payload = {"spec": spec}
        if budget is not None:
            payload["budget"] = budget
        return self.json("POST", "/jobs", payload)

    def jobs(self) -> list:
        return self.json("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self.json("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self.json("DELETE", f"/jobs/{job_id}")

    def tables_bytes(self, job_id: str) -> bytes:
        """The raw ``/tables`` body — what byte-identity compares."""
        status, body = self.request("GET", f"/jobs/{job_id}/tables")
        if status != 200:
            raise ServiceError(status,
                               json.loads(body) if body else None)
        return body

    def tables(self, job_id: str) -> list:
        return json.loads(self.tables_bytes(job_id))["tables"]

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.05) -> dict:
        """Poll ``GET /jobs/<id>`` until the job reaches a terminal
        state; returns the final view."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view["state"] in TERMINAL_STATES:
                return view
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {view['state']!r} "
                    f"after {timeout}s")
            time.sleep(poll)
