"""Async HTTP frontend for the campaign service (stdlib only).

A deliberately small HTTP/1.1 server on :func:`asyncio.start_server` —
no framework, no new dependency, one short-lived connection per
request (``Connection: close``).  The request path is thin by design
(the RPCAcc constraint): parse one request line and headers, dispatch
on ``(method, path)``, answer canonical JSON rendered by
:mod:`repro.service.protocol`.  Routing runs on the event loop and
only ever takes the job queue's lock briefly — campaigns execute on
the queue's single executor thread, so a long cold run never blocks
status polls or further submissions.

Routes::

    GET    /healthz            queue + store state
    GET    /specs              builtin specs and sweep-kind schemas
    POST   /jobs               submit a campaign (201; 200 when
                               coalesced onto an active duplicate)
    GET    /jobs               all jobs, submission order
    GET    /jobs/<id>          status, progress, final stats
    GET    /jobs/<id>/tables   finished ResultTables (409 until done)
    DELETE /jobs/<id>          cancel (graceful, store stays resumable)

:func:`run_service` is the blocking entry point behind ``repro
serve``; :class:`ServiceThread` hosts the same service on a background
thread for tests and benchmarks.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from pathlib import Path

from repro.service import protocol
from repro.service.jobs import JobQueue
from repro.service.protocol import ProtocolError

__all__ = ["CampaignService", "ServiceThread", "run_service"]

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}

#: Header-count bound: a legitimate client sends a handful.
_MAX_HEADER_LINES = 64


class CampaignService:
    """The listening socket + request handling over a :class:`JobQueue`."""

    def __init__(self, queue: JobQueue, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.queue = queue
        self.host = host
        self.port = port  # resolved to the bound port by start()
        self._server: asyncio.Server | None = None

    async def start(self) -> "CampaignService":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def aclose(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    # -- request handling ----------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
                status, payload = self._route(method, path, body)
            except ProtocolError as exc:
                status, payload = exc.status, {"error": exc.message}
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except Exception as exc:  # noqa: BLE001 — one bad request
                # must never take the accept loop down with it.
                status = 500
                payload = {"error": f"{type(exc).__name__}: {exc}"}
            content = protocol.encode_json(payload)
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(content)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
            writer.write(head + content)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> tuple[str, str, bytes]:
        line = await reader.readline()
        if not line.strip():
            raise ProtocolError(400, "empty request")
        parts = line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ProtocolError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        content_length = 0
        for _ in range(_MAX_HEADER_LINES):
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise ProtocolError(400, "bad Content-Length") from None
        else:
            raise ProtocolError(400, "too many headers")
        if content_length < 0 or content_length > protocol.MAX_BODY_BYTES:
            # Drain (a bounded amount of) the oversized body before
            # answering: rejecting with the client mid-send would reset
            # the connection and it might never see the 413.
            remaining = min(max(content_length, 0),
                            4 * protocol.MAX_BODY_BYTES)
            while remaining > 0:
                chunk = await reader.read(min(remaining, 1 << 16))
                if not chunk:
                    break
                remaining -= len(chunk)
            raise ProtocolError(413, "request body too large")
        body = (await reader.readexactly(content_length)
                if content_length else b"")
        return method, target.split("?", 1)[0], body

    def _route(self, method: str, path: str,
               body: bytes) -> tuple[int, object]:
        segments = [part for part in path.split("/") if part]
        if segments == ["healthz"] and method == "GET":
            return 200, self.queue.stats()
        if segments == ["specs"] and method == "GET":
            return 200, protocol.specs_payload()
        if segments and segments[0] == "jobs":
            if len(segments) == 1:
                if method == "POST":
                    spec, budget = protocol.parse_submission(body)
                    job_id, deduplicated = self.queue.submit(spec, budget)
                    view = self.queue.describe(job_id)
                    view["deduplicated"] = deduplicated
                    return (200 if deduplicated else 201), view
                if method == "GET":
                    return 200, {"jobs": self.queue.jobs()}
                raise ProtocolError(405, f"{method} not allowed on /jobs")
            job_id = segments[1]
            if len(segments) == 2:
                if method == "GET":
                    return 200, self.queue.describe(job_id)
                if method == "DELETE":
                    return 200, self.queue.cancel(job_id)
                raise ProtocolError(
                    405, f"{method} not allowed on /jobs/<id>")
            if (len(segments) == 3 and segments[2] == "tables"
                    and method == "GET"):
                return 200, {"tables": self.queue.tables(job_id)}
        raise ProtocolError(404, f"no route for {method} {path}")


def run_service(queue: JobQueue, host: str = "127.0.0.1", port: int = 0,
                port_file: "str | None" = None, log=print) -> int:
    """Serve until SIGTERM/SIGINT, then drain gracefully; returns 0.

    The blocking entry point behind ``repro serve``.  ``port_file``
    (written after bind) lets scripts discover an ephemeral ``--port
    0`` choice.  On the first signal the listener closes, queued jobs
    are cancelled and the running job stops at its next point boundary
    with everything finalised already flushed — the store is left
    resumable.  Signal handlers are removed once drain starts, so a
    second signal kills the process the default way.
    """
    async def _main() -> int:
        service = await CampaignService(queue, host, port).start()
        if port_file:
            Path(port_file).write_text(f"{service.port}\n")
        log(f"repro serve: http://{service.host}:{service.port} "
            f"(store {queue.store.path}, workers {queue.worker_count})")
        drain = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, drain.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                signal.signal(
                    signum,
                    lambda *_: loop.call_soon_threadsafe(drain.set))
        await drain.wait()
        for signum in installed:
            loop.remove_signal_handler(signum)
        log("repro serve: drain requested, finishing the running job")
        await service.aclose()
        await loop.run_in_executor(None, queue.drain)
        log("repro serve: drained")
        return 0
    return asyncio.run(_main())


class ServiceThread:
    """The service on a background thread (tests, benchmarks).

    >>> with ServiceThread(store_path) as service:
    ...     client = ServiceClient(service.url)

    Owns a :class:`JobQueue` built from ``store``/``workers``; exit
    drains it (graceful — the store stays resumable) and stops the
    event loop.
    """

    def __init__(self, store, workers: int = 1,
                 host: str = "127.0.0.1") -> None:
        self.queue = JobQueue(store, workers=workers)
        self.host = host
        self.port: int | None = None
        self.url: str | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._service: CampaignService | None = None

    def __enter__(self) -> "ServiceThread":
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-serve-loop",
            daemon=True)
        self._thread.start()
        self._service = CampaignService(self.queue, self.host, 0)
        asyncio.run_coroutine_threadsafe(
            self._service.start(), self._loop).result(timeout=10)
        self.port = self._service.port
        self.url = f"http://{self.host}:{self.port}"
        return self

    def __exit__(self, *exc_info) -> None:
        if self._service is not None:
            asyncio.run_coroutine_threadsafe(
                self._service.aclose(), self._loop).result(timeout=10)
        self.queue.drain()
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()
