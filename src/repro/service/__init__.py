"""Campaign serving: ``repro serve`` turns campaigns into a job API.

The serving tier over :mod:`repro.campaign` (ROADMAP item 1): a
stdlib-only async HTTP service with a job queue.  Submit a
:class:`~repro.campaign.CampaignSpec` to ``POST /jobs``, poll ``GET
/jobs/<id>`` for progress (points done, the shot ledger, per-sweep CI
widths), fetch finished :class:`~repro.core.results.ResultTable`
documents from ``GET /jobs/<id>/tables``.

All jobs share one :class:`~repro.campaign.ResultStore`, one
:class:`~repro.parallel.pipeline.SharedPool` and one executor thread,
so the multi-user story falls out of the existing machinery:
concurrent submissions of the same spec+budget coalesce to one job by
content fingerprint, a finished job's points are instant cache hits
for the next user (zero shots sampled, byte-identical tables), and a
store shared with ``--join`` workers is folded in before every
allocation round.  Cancellation (``DELETE /jobs/<id>``) and SIGTERM
drain both ride the orchestrator's graceful ``stop=`` callback — the
store is always left resumable.

See ``docs/service.md`` for the endpoint reference and deployment
notes, and ``repro serve --help`` for the CLI.
"""

from repro.service.app import CampaignService, ServiceThread, run_service
from repro.service.client import (
    TERMINAL_STATES,
    ServiceClient,
    ServiceError,
)
from repro.service.jobs import JOB_STATES, Job, JobQueue
from repro.service.protocol import (
    MAX_BODY_BYTES,
    ProtocolError,
    encode_json,
    parse_submission,
    specs_payload,
)

__all__ = [
    "CampaignService",
    "JOB_STATES",
    "Job",
    "JobQueue",
    "MAX_BODY_BYTES",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "ServiceThread",
    "TERMINAL_STATES",
    "encode_json",
    "parse_submission",
    "run_service",
    "specs_payload",
]
