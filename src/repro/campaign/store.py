"""Resumable on-disk result store for campaign runs.

A campaign spends real compute per point, so an interrupted or re-run
campaign must not re-sample what it already estimated.  The store is a
JSON-lines file: one self-describing record per *completed* point,
appended (and flushed) the moment the point finalises, keyed by a
content fingerprint of everything that determines the point's tally —
the campaign spec (budget included), the point's position, its
code/noise/decoder/precision parameters and its seed material.  Two
consequences:

* **Resume is bit-identical.**  A record's tally is re-rendered into
  table rows through the same pure function a cold run uses
  (:func:`repro.core.sweep.tally_point_fields`), so a fully resumed
  campaign reproduces the cold run's tables exactly — with zero shots
  sampled.
* **Stale records are inert.**  Any change to the spec changes the
  campaign fingerprint embedded in every key, so old records simply
  stop matching; the file is append-only and never rewritten.

The format is deliberately tolerant of interruption: a truncated final
line (the process died mid-append) is skipped on load and counted in
:attr:`ResultStore.skipped_lines`, never an error.  Appends are
crash-safe: each record is serialised to a single buffer and written
with one ``write`` + flush, so a crash tears at most the final line —
it never interleaves two records.  ``REPRO_STORE_FSYNC=1`` adds an
``os.fsync`` per append for callers who need the record durable
against power loss, not just process death.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.parallel.faults import InjectedFault, active_plan

__all__ = ["ResultStore", "fingerprint"]

#: Bump when the record layout changes incompatibly; loads ignore
#: records from other versions (they re-run rather than misread).
STORE_VERSION = 1


def fingerprint(payload: dict) -> str:
    """Stable content fingerprint of a JSON-serialisable payload.

    Canonical JSON (sorted keys, tight separators) through sha256 —
    the same dict always fingerprints identically across processes and
    sessions, and any changed value changes the digest.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultStore:
    """Append-only JSON-lines store of finalised campaign points.

    Records are dicts with at least ``key`` (the point fingerprint),
    ``failures`` and ``shots``; the campaign also records the point's
    parameters for human inspection.  ``get``/``__contains__`` address
    the *last* record per key, so a re-run that legitimately recomputes
    a point supersedes the old record without rewriting the file.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self.skipped_lines = 0
        self.fsync = os.environ.get("REPRO_STORE_FSYNC") == "1"
        self._records: dict[str, dict] = {}
        self._appends = 0
        self._tail_open = False
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        self._records.clear()
        self.skipped_lines = 0
        self._tail_open = False
        if not self.path.exists():
            return
        text = self.path.read_text()
        # A file not ending in a newline has a torn tail (the previous
        # writer died mid-append).  Remember it: the next append must
        # start on a fresh line or it would corrupt itself by
        # concatenating onto the torn fragment.
        self._tail_open = bool(text) and not text.endswith("\n")
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Interrupted append: the tail line never finished.
                self.skipped_lines += 1
                continue
            if (not isinstance(record, dict) or "key" not in record
                    or record.get("version") != STORE_VERSION):
                self.skipped_lines += 1
                continue
            self._records[record["key"]] = record

    # ------------------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """The last record stored under ``key``, or ``None``."""
        return self._records.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> list[dict]:
        """All live records (last per key), in insertion order."""
        return list(self._records.values())

    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Persist one finalised point (flushed before returning).

        The record is stamped with the store version; ``key`` is
        required.  Appending never rewrites existing lines, so a crash
        mid-append costs at most the one record being written.
        """
        if "key" not in record:
            raise ValueError("a store record needs a 'key'")
        record = dict(record, version=STORE_VERSION)
        # One buffer, one write: a crash can tear the tail of this line
        # but never interleave it with another record.  If the file
        # already ends in a torn line, lead with a newline so the
        # fragment stays isolated (and skippable) instead of corrupting
        # this append by concatenation.
        line = json.dumps(record, sort_keys=True) + "\n"
        if self._tail_open:
            line = "\n" + line
        self.path.parent.mkdir(parents=True, exist_ok=True)
        plan = active_plan()
        with self.path.open("a") as handle:
            if plan is not None and plan.take_store_tear(self._appends):
                # Simulated crash mid-write: persist only part of the
                # line (no newline) and die the way a real crash would.
                handle.write(line[:max(1, len(line) // 2)])
                handle.flush()
                self._tail_open = True
                raise InjectedFault(
                    f"store append torn after {self._appends} records")
            handle.write(line)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        self._tail_open = False
        self._appends += 1
        self._records[record["key"]] = record
