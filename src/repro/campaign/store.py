"""Resumable on-disk result store for campaign runs.

A campaign spends real compute per point, so an interrupted or re-run
campaign must not re-sample what it already estimated.  The store is a
JSON-lines file: one self-describing record per *completed* point,
appended (and flushed) the moment the point finalises, keyed by a
content fingerprint of everything that determines the point's tally —
the campaign spec (budget included), the point's position, its
code/noise/decoder/precision parameters and its seed material.  Two
consequences:

* **Resume is bit-identical.**  A record's tally is re-rendered into
  table rows through the same pure function a cold run uses
  (:func:`repro.core.sweep.tally_point_fields`), so a fully resumed
  campaign reproduces the cold run's tables exactly — with zero shots
  sampled.
* **Stale records are inert.**  Any change to the spec changes the
  campaign fingerprint embedded in every key, so old records simply
  stop matching; the file is append-only and never rewritten.

The format is deliberately tolerant of interruption: a truncated final
line (the process died mid-append) is skipped on load and counted in
:attr:`ResultStore.skipped_lines`, never an error.  Appends are
crash-safe: each record is serialised to a single buffer and written
with one ``write`` + flush, so a crash tears at most the final line —
it never interleaves two records.  ``REPRO_STORE_FSYNC=1`` adds an
``os.fsync`` per append for callers who need the record durable
against power loss, not just process death.

Multi-writer coordination
-------------------------
The same file doubles as the lease log for multi-host campaigns
(``repro campaign --join``).  Lease events — ``claim``, ``renew``,
``release``, ``abandon`` — are ordinary JSONL records distinguished by
a ``type`` field, folded into per-key :class:`Lease` state strictly in
file order.  Because every append is a single ``write(2)`` on a file
opened in append mode (``O_APPEND``), records from concurrent writers
land whole at EOF and the file order is a total order every reader
agrees on — which is the entire race-resolution mechanism: the first
``claim`` in the file at a given epoch wins, full stop.  Lease events
appended by *this* process are deliberately **not** applied to local
state; the owner must :meth:`ResultStore.refresh` and read back the
folded state, so a rival's earlier claim is never shadowed by local
optimism.

Result records may carry a lease ``epoch``; resolution is epoch-aware
last-wins: a record at a lower epoch never supersedes one at a higher
epoch (a usurped worker's stale final cannot clobber the usurper's),
while records at equal epochs keep plain file-order last-wins.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.parallel.faults import InjectedFault, active_plan

__all__ = ["Lease", "LEASE_TYPES", "ResultStore", "fingerprint"]

#: Bump when the record layout changes incompatibly; loads ignore
#: records from other versions (they re-run rather than misread).
STORE_VERSION = 1

#: Record ``type`` values that are lease events, not results.
LEASE_TYPES = ("claim", "renew", "release", "abandon")


def fingerprint(payload: dict) -> str:
    """Stable content fingerprint of a JSON-serialisable payload.

    Canonical JSON (sorted keys, tight separators) through sha256 —
    the same dict always fingerprints identically across processes and
    sessions, and any changed value changes the digest.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class Lease:
    """Folded per-key lease state (the result of replaying the log).

    ``epoch`` is monotonic per key: every reclaim bumps it, so stale
    owners are recognisable by epoch alone even if their clock lies.
    ``renewed_at`` starts at the claim timestamp and advances with
    each accepted ``renew``; liveness is always judged against it.
    """

    key: str
    worker: str
    epoch: int
    ttl: float
    acquired_at: float
    renewed_at: float
    released: bool = False
    abandoned: bool = False

    def live(self, now: float) -> bool:
        """Whether the lease still excludes rival claims at ``now``."""
        return not self.released and now < self.renewed_at + self.ttl


def _epoch_of(record: dict) -> int:
    try:
        return int(record.get("epoch", 0))
    except (TypeError, ValueError):
        return 0


class ResultStore:
    """Append-only JSON-lines store of finalised campaign points.

    Records are dicts with at least ``key`` (the point fingerprint),
    ``failures`` and ``shots``; the campaign also records the point's
    parameters for human inspection.  ``get``/``__contains__`` address
    the winning record per key (epoch-aware last-wins), so a re-run
    that legitimately recomputes a point supersedes the old record
    without rewriting the file.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self.skipped_lines = 0
        self.fsync = os.environ.get("REPRO_STORE_FSYNC") == "1"
        self._records: dict[str, dict] = {}
        #: Winner per key among *final* records only — a final landed
        #: by another process stays visible to mid-run adoption even
        #: after this run's own later partial checkpoints supersede it
        #: in the plain last-wins view.
        self._finals: dict[str, dict] = {}
        self._leases: dict[str, Lease] = {}
        self._appends = 0
        self._lease_appends = 0
        #: Byte offset of the first unconsumed byte: everything before
        #: it is complete lines already folded into memory.
        self._offset = 0
        #: File size at the last read — lets ``refresh`` no-op cheaply.
        self._size_seen = 0
        #: Whether the trailing torn fragment (bytes past ``_offset``)
        #: has already been counted in ``skipped_lines``.
        self._frag_counted = False
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        self._records.clear()
        self._leases.clear()
        self.skipped_lines = 0
        self._offset = 0
        self._size_seen = 0
        self._frag_counted = False
        self._read_new()

    def refresh(self) -> int:
        """Fold in records other processes appended since the last read.

        Returns the number of newly applied records (results + lease
        events).  Cheap when nothing changed: one ``stat``.  A file
        that shrank underneath us (truncated or replaced) triggers a
        full reload.
        """
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            size = 0
        if size < self._offset:
            self._load()
            return len(self._records)
        if size == self._size_seen:
            return 0
        return self._read_new()

    def _read_new(self) -> int:
        """Consume complete lines from ``_offset`` to EOF."""
        if not self.path.exists():
            return 0
        with self.path.open("rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read()
        self._size_seen = self._offset + len(chunk)
        if not chunk:
            return 0
        if self._frag_counted:
            # The fragment's bytes are re-read below; un-count it so a
            # fragment later terminated by a rival's leading newline is
            # counted once as a (corrupt) complete line, not twice.
            self.skipped_lines -= 1
            self._frag_counted = False
        lines = chunk.split(b"\n")
        fragment = lines.pop()  # b"" when the chunk ends in a newline
        self._offset += len(chunk) - len(fragment)
        applied = 0
        for raw in lines:
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except (json.JSONDecodeError, UnicodeDecodeError):
                # Interrupted append: the line never finished.
                self.skipped_lines += 1
                continue
            if self._apply(record):
                applied += 1
        if fragment.strip():
            # A torn tail (some writer died mid-append).  Count it now;
            # re-counted correctly if more bytes ever complete it.
            self.skipped_lines += 1
            self._frag_counted = True
        return applied

    def _apply(self, record: object) -> bool:
        if (not isinstance(record, dict) or "key" not in record
                or record.get("version") != STORE_VERSION):
            self.skipped_lines += 1
            return False
        if record.get("type") in LEASE_TYPES:
            return self._apply_lease(record)
        self._install(record)
        return True

    def _install(self, record: dict) -> None:
        # Epoch-aware last-wins: equal epochs keep file-order
        # last-wins; a stale lower-epoch record never supersedes.
        current = self._records.get(record["key"])
        if current is None or _epoch_of(record) >= _epoch_of(current):
            self._records[record["key"]] = record
        if not record.get("partial"):
            final = self._finals.get(record["key"])
            if final is None or _epoch_of(record) >= _epoch_of(final):
                self._finals[record["key"]] = record

    def _apply_lease(self, record: dict) -> bool:
        try:
            key = record["key"]
            rtype = record["type"]
            worker = str(record["worker"])
            epoch = int(record["epoch"])
            ts = float(record["ts"])
        except (KeyError, TypeError, ValueError):
            self.skipped_lines += 1
            return False
        current = self._leases.get(key)
        if rtype == "claim":
            try:
                ttl = float(record.get("ttl", 0.0))
            except (TypeError, ValueError):
                self.skipped_lines += 1
                return False
            # First claim in file order wins at a given epoch; a
            # higher epoch (reclaim after expiry) always supersedes.
            if (current is None or epoch > current.epoch
                    or (epoch == current.epoch and current.released)):
                self._leases[key] = Lease(key=key, worker=worker,
                                          epoch=epoch, ttl=ttl,
                                          acquired_at=ts, renewed_at=ts)
        elif rtype == "renew":
            # Only the current owner at the current epoch can extend
            # liveness; stale heartbeats from usurped workers are inert.
            if (current is not None and not current.released
                    and current.worker == worker
                    and current.epoch == epoch):
                current.renewed_at = max(current.renewed_at, ts)
        else:  # release / abandon
            if (current is not None and current.worker == worker
                    and current.epoch == epoch):
                current.released = True
                current.abandoned = rtype == "abandon"
        return True

    # ------------------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """The winning record stored under ``key``, or ``None``."""
        return self._records.get(key)

    def final_for(self, key: str) -> dict | None:
        """The winning *final* (non-partial) record under ``key``.

        Unlike :meth:`get` this is not shadowed by a later partial
        checkpoint: mid-run adoption asks "has anyone, ever, finalised
        this point?" — our own in-flight stage log under the same key
        must not hide a rival's completed answer.
        """
        return self._finals.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> list[dict]:
        """All live result records (winner per key), in insertion order."""
        return list(self._records.values())

    def stats(self) -> dict:
        """JSON-safe inspection summary of the folded store state.

        What ``repro serve`` reports at ``GET /healthz``: live record
        counts (finals vs partial checkpoints), lease keys ever seen,
        skipped (torn/foreign) lines and the on-disk bytes as of the
        last read — enough to watch a shared store converge without
        parsing the file.
        """
        finals = sum(1 for record in self._records.values()
                     if not record.get("partial"))
        return {
            "path": str(self.path),
            "records": len(self._records),
            "final_records": finals,
            "partial_records": len(self._records) - finals,
            "lease_keys": len(self._leases),
            "skipped_lines": self.skipped_lines,
            "bytes_read": self._size_seen,
            "version": STORE_VERSION,
        }

    def lease_for(self, key: str) -> Lease | None:
        """Folded lease state for ``key`` as of the last read."""
        return self._leases.get(key)

    def leases(self) -> dict[str, Lease]:
        """Folded lease state for every key ever claimed."""
        return dict(self._leases)

    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Persist one finalised point (flushed before returning).

        The record is stamped with the store version; ``key`` is
        required.  Appending never rewrites existing lines, so a crash
        mid-append costs at most the one record being written.
        """
        if "key" not in record:
            raise ValueError("a store record needs a 'key'")
        record = dict(record, version=STORE_VERSION)
        self._write_line(record, lease=False)
        self._appends += 1
        self._install(record)

    def append_lease(self, record: dict) -> None:
        """Persist one lease event (claim/renew/release/abandon).

        The event is **not** applied to local state: race resolution is
        file order, so the caller must :meth:`refresh` and read back
        the folded state to learn whether its claim actually won.
        """
        for name in ("type", "key", "worker", "epoch", "ts"):
            if name not in record:
                raise ValueError(f"a lease record needs {name!r}")
        if record["type"] not in LEASE_TYPES:
            raise ValueError(f"unknown lease type {record['type']!r}")
        record = dict(record, version=STORE_VERSION)
        self._write_line(record, lease=True)
        self._lease_appends += 1

    def _write_line(self, record: dict, *, lease: bool) -> None:
        # One buffer, one write on an O_APPEND handle: a crash can tear
        # the tail of this line but never interleave it with another
        # record, even with concurrent writers on other hosts.  Probe
        # the file's actual last byte (not a cached flag — a *rival*
        # writer may have torn or repaired the tail since we last
        # looked) and lead with a newline if the tail is torn, so the
        # fragment stays isolated (and skippable) instead of corrupting
        # this append by concatenation.
        encoded = (json.dumps(record, sort_keys=True) + "\n").encode()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        plan = active_plan()
        with self.path.open("ab+") as handle:
            end = handle.seek(0, os.SEEK_END)
            lead = b""
            if end:
                handle.seek(end - 1)
                if handle.read(1) != b"\n":
                    lead = b"\n"
            data = lead + encoded
            torn = plan is not None and (
                plan.take_lease_tear(self._lease_appends) if lease
                else plan.take_store_tear(self._appends))
            if torn:
                # Simulated crash mid-write: persist only part of the
                # line (no newline) and die the way a real crash would.
                handle.write(data[:max(1, len(data) // 2)])
                handle.flush()
                kind = "lease" if lease else "store"
                count = self._lease_appends if lease else self._appends
                raise InjectedFault(
                    f"{kind} append torn after {count} records")
            handle.write(data)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
