"""Multi-host campaign coordination: leases, liveness, merge, verify.

N campaign processes on N hosts sharing one store directory partition
one global shot budget by *claiming* points — no coordinator process,
no RPCs, no lock files.  Every coordination primitive is a single
flushed JSONL append to the shared :class:`~repro.campaign.store.ResultStore`
(claim / renew / release / abandon), so the coordination path stays as
thin as the result path and the race arbiter is the filesystem itself:
appends on an ``O_APPEND`` handle land whole at EOF, file order is a
total order every reader agrees on, and **the first claim in the file
at a given epoch wins** — a worker learns whether it won by refreshing
and reading back the folded lease state, never by trusting its own
append.

Liveness is heartbeat renewals: a worker renews its held leases every
``ttl / 3`` while sampling.  A lease whose ``renewed_at + ttl`` passed
is *reclaimable*: any worker may claim it at ``epoch + 1``, which
supersedes the stale owner deterministically (epochs are monotonic per
key).  The usurped owner — alive but slow, or partitioned — discovers
the loss at its next heartbeat, raises :class:`LeaseLost`, forfeits
the point's un-flushed work, and moves on; the usurper resumes from
the per-stage checkpoints already in the store, so the crash/usurp
cost is bounded by one un-checkpointed stage.

This module also owns the store *tooling* behind ``repro store``:

* :func:`merge_stores` — fold per-host stores into one canonical file,
  bit-identically under any input order, reporting conflicts;
* :func:`verify_store` — offline consistency check (torn tail, corrupt
  lines, lease-log violations), the thing to run before trusting a
  store that survived a crash;
* :func:`repair_store` — drop what :func:`verify_store` flagged,
  keeping every healthy record.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from secrets import token_hex

from repro.campaign.store import (
    LEASE_TYPES,
    STORE_VERSION,
    Lease,
    ResultStore,
)
from repro.parallel.faults import InjectedFault, active_plan

__all__ = [
    "LeaseLost",
    "LeaseManager",
    "WorkerIdentity",
    "merge_stores",
    "repair_store",
    "verify_store",
]


class LeaseLost(RuntimeError):
    """This worker's lease on a key was usurped (or expired unrenewed).

    Raised from :meth:`LeaseManager.heartbeat` between sampling stages;
    the orchestrator catches it, forfeits the point's un-flushed work
    and leaves the point to whoever holds the lease now."""

    def __init__(self, key: str) -> None:
        super().__init__(f"lease lost on {key[:16]}...")
        self.key = key


@dataclass(frozen=True)
class WorkerIdentity:
    """Who holds a lease: host, pid and a random token.

    The token disambiguates pid reuse (a rebooted host can hand the
    same pid to a new campaign process) — equality of the full triple
    is the ownership test, never host+pid alone."""

    host: str
    pid: int
    token: str

    def __str__(self) -> str:
        return f"{self.host}:{self.pid}:{self.token}"

    @classmethod
    def generate(cls, label: str | None = None) -> "WorkerIdentity":
        """A fresh identity for this process; ``label`` overrides the
        hostname (the CLI's ``--worker-id`` for readable CI logs)."""
        host = label if label else socket.gethostname()
        return cls(host=str(host), pid=os.getpid(), token=token_hex(4))

    @classmethod
    def parse(cls, value: str) -> "WorkerIdentity":
        """Parse ``host:pid:token``; anything else becomes a label for
        a freshly generated identity (so ``--worker-id blue`` works)."""
        parts = value.split(":")
        if len(parts) == 3:
            try:
                return cls(host=parts[0], pid=int(parts[1]), token=parts[2])
            except ValueError:
                pass
        return cls.generate(label=value)


class LeaseManager:
    """Claim, renew and release leases for one worker on one store.

    All decisions are made against the store's *folded* lease state
    (file order), never against local optimism: :meth:`claim` appends
    claim records, refreshes, and reports only the keys whose folded
    lease actually names this worker at the claimed epoch.  ``clock``
    is injectable for deterministic expiry tests.
    """

    def __init__(self, store: ResultStore, worker: WorkerIdentity,
                 ttl: float, clock=time.time) -> None:
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        self.store = store
        self.worker = worker
        self.ttl = float(ttl)
        self.clock = clock
        #: key -> epoch we hold it at.
        self.held: dict[str, int] = {}
        self.reclaims = 0
        self._claims_appended = 0
        self._last_renew = clock()

    # ------------------------------------------------------------------
    def claimable(self, key: str, now: float | None = None) -> bool:
        """Whether ``key`` is up for grabs as of the last refresh."""
        lease = self.store.lease_for(key)
        if lease is None or lease.released:
            return True
        return not lease.live(self.clock() if now is None else now)

    def claim(self, keys: list[str]) -> list[str]:
        """Try to claim ``keys``; return those actually won.

        Expired leases are reclaimed at ``epoch + 1``.  The append →
        refresh → read-back dance resolves races by file order: if a
        rival's claim for the same key and epoch landed first, the
        folded lease names the rival and the key is simply not in the
        returned list."""
        plan = active_plan()
        attempted: list[tuple[str, int]] = []
        for key in keys:
            now = self.clock()
            lease = self.store.lease_for(key)
            if lease is not None and not lease.released and lease.live(now):
                continue  # live with someone else (or already ours)
            epoch = lease.epoch + 1 if lease is not None else 0
            if lease is not None and not lease.released:
                self.reclaims += 1
            if plan is not None and plan.take_duplicate_claim(
                    self._claims_appended):
                # Injected duplicate-claim race: a phantom rival's claim
                # for the same key and epoch lands first in the file,
                # so this worker must lose the race by file order.
                self.store.append_lease({
                    "type": "claim", "key": key,
                    "worker": "phantom:0:deadbeef",
                    "epoch": epoch, "ttl": self.ttl, "ts": now,
                })
            self.store.append_lease({
                "type": "claim", "key": key, "worker": str(self.worker),
                "epoch": epoch, "ttl": self.ttl, "ts": now,
            })
            self._claims_appended += 1
            attempted.append((key, epoch))
            if plan is not None and plan.take_lease_kill(
                    self._claims_appended):
                # Injected mid-lease death: claims are in the file but
                # this process dies before winning/working them, so the
                # leases sit live-but-orphaned until TTL expiry.
                raise InjectedFault(
                    f"joined worker {self.worker} killed after "
                    f"{self._claims_appended} claims")
        if not attempted:
            return []
        self.store.refresh()
        won = []
        for key, epoch in attempted:
            lease = self.store.lease_for(key)
            if (lease is not None and lease.worker == str(self.worker)
                    and lease.epoch == epoch and not lease.released):
                self.held[key] = epoch
                won.append(key)
        if won:
            self._last_renew = self.clock()
        return won

    # ------------------------------------------------------------------
    def _owns(self, key: str, epoch: int) -> bool:
        lease = self.store.lease_for(key)
        return (lease is not None and lease.worker == str(self.worker)
                and lease.epoch == epoch and not lease.released)

    def renew(self) -> list[str]:
        """Heartbeat every held lease; return the keys found lost.

        Under an injected ``suppress_heartbeats`` plan no renewals are
        appended — but the refresh and ownership check still run, which
        is exactly how a silenced worker discovers its leases expired
        and were usurped."""
        plan = active_plan()
        now = self.clock()
        suppressed = plan is not None and plan.heartbeats_suppressed()
        if self.held and not suppressed:
            for key, epoch in self.held.items():
                self.store.append_lease({
                    "type": "renew", "key": key,
                    "worker": str(self.worker), "epoch": epoch, "ts": now,
                })
        self._last_renew = now
        self.store.refresh()
        lost = [key for key, epoch in self.held.items()
                if not self._owns(key, epoch)]
        for key in lost:
            self.held.pop(key, None)
        return lost

    def maybe_renew(self) -> list[str]:
        """Renew if a third of the TTL elapsed since the last renewal
        (frequent enough that one missed beat never expires a lease)."""
        if self.clock() - self._last_renew >= self.ttl / 3.0:
            return self.renew()
        return []

    def heartbeat(self, key: str) -> None:
        """Liveness check between sampling stages of a held point.

        Renews (when due), refreshes, and raises :class:`LeaseLost` if
        the folded lease no longer names this worker — the signal to
        forfeit the point."""
        self.maybe_renew()
        self.store.refresh()
        epoch = self.held.get(key)
        if epoch is None or not self._owns(key, epoch):
            self.held.pop(key, None)
            raise LeaseLost(key)

    # ------------------------------------------------------------------
    def release(self, key: str) -> None:
        """Release a finished point's lease (the happy path)."""
        epoch = self.held.pop(key, None)
        if epoch is None:
            return
        self.store.append_lease({
            "type": "release", "key": key, "worker": str(self.worker),
            "epoch": epoch, "ts": self.clock(),
        })

    def abandon_all(self) -> None:
        """Give up every held lease (graceful shutdown): abandoned
        leases are immediately claimable, no TTL wait."""
        now = self.clock()
        for key, epoch in list(self.held.items()):
            self.store.append_lease({
                "type": "abandon", "key": key, "worker": str(self.worker),
                "epoch": epoch, "ts": now,
            })
        self.held.clear()


# ----------------------------------------------------------------------
# Store tooling: merge / verify / repair (the ``repro store`` CLI).

def _canonical(record: dict) -> str:
    return json.dumps(record, sort_keys=True)


def _result_records(path: Path) -> tuple[list[dict], int]:
    """All well-formed result records in ``path`` (file order), plus a
    count of skipped lines (torn/corrupt/foreign-version/lease)."""
    records: list[dict] = []
    skipped = 0
    if not path.exists():
        return records, skipped
    raw = path.read_bytes()
    lines = raw.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            skipped += 1
            continue
        if (not isinstance(record, dict) or "key" not in record
                or record.get("version") != STORE_VERSION):
            skipped += 1
            continue
        if record.get("type") in LEASE_TYPES:
            continue  # lease events never survive a merge
        records.append(record)
    return records, skipped


def _epoch_of(record: dict) -> int:
    try:
        return int(record.get("epoch", 0))
    except (TypeError, ValueError):
        return 0


_PROVENANCE_KEYS = ("worker", "epoch")


def _payload(record: dict) -> str:
    """Canonical JSON of a record minus its provenance — the fields
    that legitimately differ when independent workers (or independent
    runs) finalise the same point with identical tallies."""
    return _canonical({k: v for k, v in record.items()
                       if k not in _PROVENANCE_KEYS})


def _resolve(a: dict, b: dict) -> tuple[dict, bool]:
    """Pick the winner of two records for one key; ``True`` flags a
    genuine conflict (two finals whose *payloads* differ at the same
    epoch).

    Resolution order: final beats partial; higher epoch beats lower;
    among equal partials, more logged stages win; identical canonical
    JSON is no conflict at all.  Finals that differ only in provenance
    (``worker``, ``epoch``) are the expected outcome of merging
    independently-executed stores — deterministic sampling made their
    tallies identical — so they resolve silently; only differing
    *payloads* (the impossible-with-honest-seeds case) are reported.
    Every tie-break is *deterministic and symmetric*, which is what
    keeps the merged file bit-identical under any input order."""
    if _canonical(a) == _canonical(b):
        return a, False
    a_final = not a.get("partial")
    b_final = not b.get("partial")
    if a_final != b_final:
        return (a if a_final else b), False
    ea, eb = _epoch_of(a), _epoch_of(b)
    if ea != eb:
        return (a if ea > eb else b), False
    if not a_final:  # both partial, same epoch: longer stage log wins
        sa, sb = len(a.get("stages") or ()), len(b.get("stages") or ())
        if sa != sb:
            return (a if sa > sb else b), False
        return max(a, b, key=_canonical), False
    return max(a, b, key=_canonical), _payload(a) != _payload(b)


def merge_stores(inputs: "list[str | Path]",
                 output: "str | Path") -> dict:
    """Fold per-host stores into one canonical store, bit-identically.

    Lease events are dropped (they are per-run coordination state, not
    results); result records are resolved per key by :func:`_resolve`
    and written in a canonical order — sorted by the point's position
    (``sweep_index``, ``point_index``) then key — as canonical JSON
    lines, so **any permutation of the same inputs produces a
    byte-identical output file**.  Returns a report dict with the
    record counts and the conflicting keys (if any)."""
    inputs = [Path(p) for p in inputs]
    output = Path(output)
    resolved: dict[str, dict] = {}
    conflicts: set[str] = set()
    read = 0
    skipped = 0
    for path in inputs:
        records, bad = _result_records(path)
        skipped += bad
        for record in records:
            read += 1
            key = record["key"]
            current = resolved.get(key)
            if current is None:
                resolved[key] = record
                continue
            winner, conflicted = _resolve(current, record)
            resolved[key] = winner
            if conflicted:
                conflicts.add(key)

    def sort_key(item: "tuple[str, dict]") -> tuple:
        key, record = item
        params = record.get("params") or {}
        try:
            position = (0, int(params.get("sweep_index", 1 << 30)),
                        int(params.get("point_index", 1 << 30)))
        except (TypeError, ValueError):
            position = (1, 0, 0)
        return (*position, key)

    lines = [_canonical(record) + "\n"
             for _, record in sorted(resolved.items(), key=sort_key)]
    output.parent.mkdir(parents=True, exist_ok=True)
    tmp = output.with_name(output.name + ".tmp")
    tmp.write_text("".join(lines))
    os.replace(tmp, output)
    return {
        "inputs": [str(p) for p in inputs],
        "output": str(output),
        "records_read": read,
        "records_written": len(resolved),
        "lines_skipped": skipped,
        "conflicts": sorted(conflicts),
    }


def verify_store(path: "str | Path") -> dict:
    """Offline consistency check of one store file.

    Flags (``problems`` — corruption worth exit 1):

    * unparseable interior lines (not a torn tail — those are expected
      after a crash and merely reported in ``info``);
    * a torn (newline-less) final line;
    * lease-log violations: a ``renew``/``release``/``abandon`` with no
      matching claim at that (worker, epoch), and two *overlapping
      live* claims for one key — a claim at a new epoch appended while
      the previous lease was neither released nor expired by its own
      timestamps (clock skew or a broken reclaim).

    ``info`` collects benign oddities: foreign-version records, lost
    duplicate-claim races (same key+epoch, later in file — exactly
    what an injected duplicate-claim race leaves behind).  Returns a
    report dict; ``ok`` is ``False`` iff ``problems`` is non-empty."""
    path = Path(path)
    problems: list[str] = []
    info: list[str] = []
    if not path.exists():
        return {"path": str(path), "ok": False,
                "problems": [f"{path}: no such file"], "info": [],
                "records": 0, "leases": 0}
    raw = path.read_bytes()
    torn = bool(raw) and not raw.endswith(b"\n")
    lines = raw.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    n_results = 0
    n_leases = 0
    leases: dict[str, Lease] = {}
    for index, line in enumerate(lines, start=1):
        last = index == len(lines)
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except (json.JSONDecodeError, UnicodeDecodeError):
            if last and torn:
                info.append(f"line {index}: torn tail (crash mid-append; "
                            "skipped on load, repair removes it)")
            else:
                problems.append(f"line {index}: unparseable JSON in the "
                                "interior of the file")
            continue
        if not isinstance(record, dict) or "key" not in record:
            problems.append(f"line {index}: record without a 'key'")
            continue
        if record.get("version") != STORE_VERSION:
            info.append(f"line {index}: foreign store version "
                        f"{record.get('version')!r} (ignored on load)")
            continue
        rtype = record.get("type")
        if rtype not in LEASE_TYPES:
            n_results += 1
            continue
        n_leases += 1
        try:
            key = record["key"]
            worker = str(record["worker"])
            epoch = int(record["epoch"])
            ts = float(record["ts"])
        except (KeyError, TypeError, ValueError):
            problems.append(f"line {index}: malformed lease record "
                            f"({rtype})")
            continue
        current = leases.get(key)
        if rtype == "claim":
            ttl = float(record.get("ttl", 0.0))
            if current is None or epoch > current.epoch:
                if (current is not None and not current.released
                        and ts < current.renewed_at + current.ttl):
                    problems.append(
                        f"line {index}: overlapping live leases on "
                        f"{key[:16]}...: claim at epoch {epoch} while "
                        f"epoch {current.epoch} (worker {current.worker}) "
                        f"was neither released nor expired")
                leases[key] = Lease(key=key, worker=worker, epoch=epoch,
                                    ttl=ttl, acquired_at=ts, renewed_at=ts)
            elif epoch == current.epoch and current.released:
                leases[key] = Lease(key=key, worker=worker, epoch=epoch,
                                    ttl=ttl, acquired_at=ts, renewed_at=ts)
            else:
                info.append(f"line {index}: claim on {key[:16]}... lost "
                            f"the race at epoch {epoch} (file order)")
        elif rtype == "renew":
            if (current is None or current.worker != worker
                    or current.epoch != epoch):
                problems.append(
                    f"line {index}: renew on {key[:16]}... by {worker} at "
                    f"epoch {epoch} without a matching claim")
            elif current.released:
                info.append(f"line {index}: renew on {key[:16]}... after "
                            "release (stale heartbeat; ignored on load)")
            else:
                current.renewed_at = max(current.renewed_at, ts)
        else:  # release / abandon
            if (current is None or current.worker != worker
                    or current.epoch != epoch):
                problems.append(
                    f"line {index}: {rtype} on {key[:16]}... by {worker} "
                    f"at epoch {epoch} without a matching claim")
            else:
                current.released = True
    return {
        "path": str(path),
        "ok": not problems,
        "problems": problems,
        "info": info,
        "records": n_results,
        "leases": n_leases,
    }


def repair_store(path: "str | Path") -> dict:
    """Rewrite the store keeping only healthy lines.

    Keeps every line that parses to a keyed dict (results *and* lease
    events — epoch folding needs the full lease history); drops torn
    fragments and corrupt lines.  Atomic: written to a sibling temp
    file and ``os.replace``d in.  Returns ``{"kept", "dropped"}``."""
    path = Path(path)
    raw = path.read_bytes() if path.exists() else b""
    lines = raw.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    kept: list[bytes] = []
    dropped = 0
    for line in lines:
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except (json.JSONDecodeError, UnicodeDecodeError):
            dropped += 1
            continue
        if not isinstance(record, dict) or "key" not in record:
            dropped += 1
            continue
        kept.append(stripped)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(b"\n".join(kept) + (b"\n" if kept else b""))
    os.replace(tmp, path)
    return {"path": str(path), "kept": len(kept), "dropped": dropped}
