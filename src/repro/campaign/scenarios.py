"""Randomized scenarios: property-testing the stack beyond the paper.

The paper evaluates a fixed set of codes, trap topologies and operating
points.  A :class:`Scenario` is one randomly generated — but fully
deterministic and replayable — configuration drawn from a much wider
space: sampled code families (repetition, rotated surface, small seeded
hypergraph products), random trap topologies (Cyclone rings with random
trap counts, baseline grids with random capacities, junction meshes)
and perturbed noise/timing models (operation-time improvement factors,
swap implementations, log-uniform physical error rates).

Scenarios exist to be **differentially tested**: every scenario runs
through the fused sample→decode pipeline on a fast backend
(``"packed"`` or ``"native"``) *and* on the ``backend="bool"`` /
``workers=1`` reference, and the two tallies must match bit for bit
(the repository-wide equivalence contract).  When they do not,
:func:`report_scenario_mismatch` shrinks the scenario to a minimal
still-failing configuration (:func:`minimize_scenario`, the
exhaustive-vs-optimized differential-harness pattern) and writes it to
a replayable JSON file before raising :class:`ScenarioMismatch` — CI
uploads the file, and :func:`load_scenario` + :func:`run_scenario`
reproduce the failure exactly.

Everything here is a pure function of the generation seed: scenarios
are generated from ``SeedSequence(entropy, spawn_key=(index,))``
streams, sampled with seeds stored *in* the scenario, and round-trip
through JSON without loss.
"""

from __future__ import annotations

import json
from collections.abc import Callable
from dataclasses import dataclass, replace
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.codes.classical import full_rank_regular_ldpc
from repro.codes.css import CSSCode
from repro.codes.hgp import hypergraph_product
from repro.codes.surface import repetition_quantum_code, surface_code
from repro.core.codesign import codesign_by_name
from repro.core.memory import MemoryExperiment, MemoryResult
from repro.qccd.timing import OperationTimes, SwapKind

__all__ = [
    "Scenario",
    "ScenarioMismatch",
    "build_scenario",
    "generate_scenario",
    "load_scenario",
    "minimize_scenario",
    "report_scenario_mismatch",
    "run_scenario",
    "scenario_differs",
    "scenario_run_seed",
    "write_failure_scenario",
]

#: Bump when the scenario layout changes incompatibly; stored failure
#: files from other versions are rejected on load.
SCENARIO_VERSION = 1

_CODE_FAMILIES = ("repetition", "surface", "hgp")
_CODESIGNS = ("cyclone", "baseline", "baseline2", "baseline3",
              "mesh_junction")


@dataclass(frozen=True)
class Scenario:
    """One generated configuration: code, topology, noise, sampling.

    Every field is JSON-native (:meth:`to_dict` / :meth:`from_dict`
    round-trip losslessly), and the sampling ``seed`` lives inside the
    scenario, so a stored scenario file replays bit-identically on any
    host: same code, same compiled latency, same noise realisation,
    same tally.
    """

    name: str
    code_family: str
    code_params: tuple[int, ...]
    codesign: str
    codesign_overrides: dict
    improvement_factor: float
    junction_improvement_factor: float
    swap_kind: str
    physical_error_rate: float
    rounds: int
    basis: str
    shots: int
    shard_shots: int
    max_bp_iterations: int
    seed: int

    def __post_init__(self) -> None:
        if self.code_family not in _CODE_FAMILIES:
            raise ValueError(f"unknown code family {self.code_family!r}")
        if self.codesign not in _CODESIGNS:
            raise ValueError(f"unknown scenario codesign {self.codesign!r}")
        if self.shots < 1:
            raise ValueError("a scenario needs a positive shot count")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "code_family": self.code_family,
            "code_params": list(self.code_params),
            "codesign": self.codesign,
            "codesign_overrides": dict(self.codesign_overrides),
            "improvement_factor": self.improvement_factor,
            "junction_improvement_factor": self.junction_improvement_factor,
            "swap_kind": self.swap_kind,
            "physical_error_rate": self.physical_error_rate,
            "rounds": self.rounds,
            "basis": self.basis,
            "shots": self.shots,
            "shard_shots": self.shard_shots,
            "max_bp_iterations": self.max_bp_iterations,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Scenario":
        known = {
            "name", "code_family", "code_params", "codesign",
            "codesign_overrides", "improvement_factor",
            "junction_improvement_factor", "swap_kind",
            "physical_error_rate", "rounds", "basis", "shots",
            "shard_shots", "max_bp_iterations", "seed",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown scenario keys {sorted(unknown)}")
        payload = dict(payload)
        payload["code_params"] = tuple(
            int(value) for value in payload.get("code_params", ()))
        payload["codesign_overrides"] = {
            str(key): int(value)
            for key, value in payload.get("codesign_overrides", {}).items()
        }
        return cls(**payload)


class ScenarioMismatch(RuntimeError):
    """A fast backend disagreed with the bool/serial reference oracle.

    Carries the (minimized) failing :attr:`scenario` and the
    :attr:`path` of the replayable JSON file it was written to.
    """

    def __init__(self, message: str, scenario: Scenario,
                 path: "Path | None" = None) -> None:
        super().__init__(message)
        self.scenario = scenario
        self.path = path


# ----------------------------------------------------------------------
# Generation.

def generate_scenario(entropy: int, index: int,
                      shots: int = 128) -> Scenario:
    """Deterministically generate scenario ``index`` of stream ``entropy``.

    A pure function of ``(entropy, index)``: the generator is rooted at
    ``SeedSequence(entropy, spawn_key=(index,))``, so a spec that names
    a scenario seed regenerates the identical scenarios on every run —
    the property the campaign fingerprint (and hence store resume)
    relies on.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=int(entropy),
                               spawn_key=(int(index),)))

    family = _CODE_FAMILIES[int(rng.integers(len(_CODE_FAMILIES)))]
    if family == "repetition":
        code_params = (int(rng.choice((3, 5))),)
        basis = "Z"  # the repetition code has Z stabilizers only
    elif family == "surface":
        code_params = (int(rng.choice((3, 5))),)
        basis = str(rng.choice(("Z", "X")))
    else:
        # Regular LDPC factors need num_checks * row_weight divisible
        # by num_bits AND an odd column weight (even column weights sum
        # the rows to zero — never full rank); these shapes keep the
        # product code small enough for a fuzzing budget.
        checks, bits, weight = ((3, 4, 4), (3, 9, 3))[int(rng.integers(2))]
        code_params = (checks, bits, weight, int(rng.integers(256)))
        basis = str(rng.choice(("Z", "X")))
    code = _code_for(family, code_params)

    codesign = _CODESIGNS[int(rng.integers(len(_CODESIGNS)))]
    overrides: dict[str, int] = {}
    if codesign == "cyclone":
        m_basis = max(code.num_x_stabilizers, code.num_z_stabilizers, 1)
        overrides["num_traps"] = int(rng.integers(1, m_basis + 1))
    elif codesign == "baseline":
        overrides["trap_capacity"] = int(rng.integers(5, 13))

    return Scenario(
        name=f"scenario-{int(entropy)}-{int(index):03d}",
        code_family=family,
        code_params=code_params,
        codesign=codesign,
        codesign_overrides=overrides,
        improvement_factor=round(float(rng.uniform(0.0, 0.8)), 4),
        junction_improvement_factor=round(float(rng.uniform(0.0, 0.8)), 4),
        swap_kind=str(rng.choice((SwapKind.GATE_SWAP.value,
                                  SwapKind.ION_SWAP.value))),
        physical_error_rate=float(np.exp(rng.uniform(np.log(5e-4),
                                                     np.log(3e-2)))),
        rounds=int(rng.integers(1, 4)),
        basis=basis,
        shots=max(1, int(shots)),
        shard_shots=int(rng.choice((32, 64))),
        max_bp_iterations=int(rng.choice((10, 20, 40))),
        seed=int(rng.integers(2**31 - 1)),
    )


@lru_cache(maxsize=64)
def _code_for(family: str, params: tuple[int, ...]) -> CSSCode:
    """Construct (and cache) a scenario's code instance."""
    if family == "repetition":
        return repetition_quantum_code(params[0])
    if family == "surface":
        return surface_code(params[0])
    checks, bits, weight, seed = params
    factor = full_rank_regular_ldpc(checks, bits, row_weight=weight,
                                    seed=seed)
    return hypergraph_product(factor)


def build_scenario(scenario: Scenario) -> tuple[CSSCode, float]:
    """Materialise a scenario: its code and its compiled round latency."""
    code = _code_for(scenario.code_family, scenario.code_params)
    times = OperationTimes(
        improvement_factor=scenario.improvement_factor,
        junction_improvement_factor=scenario.junction_improvement_factor,
        swap_kind=SwapKind(scenario.swap_kind),
    )
    design = codesign_by_name(scenario.codesign, times=times,
                              **scenario.codesign_overrides)
    compiled = design.compile(code)
    return code, compiled.execution_time_us


# ----------------------------------------------------------------------
# Execution and the differential oracle.

def scenario_run_seed(scenario: Scenario,
                      stage: int = 0) -> np.random.SeedSequence:
    """The seed tree root for one (scenario, stage) — a pure function
    of the scenario's stored seed, so stored scenario files replay
    bit-identically (the campaign uses stage 0 for the full-cap pilot,
    which is also what :func:`run_scenario` replays)."""
    return np.random.SeedSequence(entropy=int(scenario.seed),
                                  spawn_key=(int(stage),))


def run_scenario(scenario: Scenario, backend: str = "packed",
                 workers: int = 1, pool=None, shots: int | None = None,
                 stage: int = 0,
                 prior_tally: tuple[int, int] = (0, 0),
                 target=None) -> MemoryResult:
    """Execute one scenario through the fused pipeline.

    Bit-identical for any ``workers``/``pool`` at the scenario's fixed
    ``shard_shots``, and — per the repository's backend-equivalence
    contract — for any ``backend``; :func:`scenario_differs` checks
    exactly that.
    """
    code, latency = build_scenario(scenario)
    with MemoryExperiment(
        code=code, rounds=scenario.rounds, basis=scenario.basis,
        max_bp_iterations=scenario.max_bp_iterations,
        backend=backend, workers=workers,
        shard_shots=scenario.shard_shots, pool=pool,
    ) as experiment:
        return experiment.run(
            scenario.physical_error_rate, latency,
            shots=shots if shots is not None else scenario.shots,
            target_precision=target, prior_tally=prior_tally,
            seed=scenario_run_seed(scenario, stage),
        )


def scenario_differs(scenario: Scenario, backend: str = "packed",
                     reference: str = "bool") -> bool:
    """Does ``backend`` disagree with the serial ``reference`` oracle?

    ``True`` means a real equivalence violation: the two tallies came
    from the identical seed tree, shard split and stop rule.
    """
    fast = run_scenario(scenario, backend=backend, workers=1)
    oracle = run_scenario(scenario, backend=reference, workers=1)
    return (fast.failures, fast.shots) != (oracle.failures, oracle.shots)


# ----------------------------------------------------------------------
# Failure minimization and replayable artifacts.

def minimize_scenario(scenario: Scenario,
                      differs: Callable[[Scenario], bool],
                      max_attempts: int = 24) -> Scenario:
    """Greedily shrink a failing scenario while ``differs`` stays true.

    Classic delta-debugging over the scenario's knobs: halve the shot
    count, drop rounds, zero the timing perturbations, shrink the code
    within (then across) families — each reduction is kept only if the
    reduced scenario still fails.  ``max_attempts`` bounds the total
    number of oracle evaluations (each one is a real pair of runs).
    """
    def candidates(s: Scenario):
        if s.shots > 16:
            yield replace(s, shots=s.shots // 2)
        if s.rounds > 1:
            yield replace(s, rounds=s.rounds - 1)
        if s.code_family == "hgp":
            yield replace(s, code_family="repetition", code_params=(3,),
                          basis="Z", codesign_overrides={})
        if s.code_family in ("repetition", "surface") and s.code_params[0] > 3:
            yield replace(s, code_params=(3,), codesign_overrides={})
        if s.shard_shots > 32:
            yield replace(s, shard_shots=32)
        if s.improvement_factor:
            yield replace(s, improvement_factor=0.0)
        if s.junction_improvement_factor:
            yield replace(s, junction_improvement_factor=0.0)
        if s.swap_kind != SwapKind.GATE_SWAP.value:
            yield replace(s, swap_kind=SwapKind.GATE_SWAP.value)
        if s.max_bp_iterations > 10:
            yield replace(s, max_bp_iterations=10)

    current = scenario
    attempts = 0
    progressed = True
    while progressed and attempts < max_attempts:
        progressed = False
        for candidate in candidates(current):
            attempts += 1
            if attempts > max_attempts:
                break
            if differs(candidate):
                current = candidate
                progressed = True
                break
    return current


def write_failure_scenario(scenario: Scenario, directory: "str | Path",
                           reason: str,
                           extra: dict | None = None) -> Path:
    """Persist a failing scenario as a replayable JSON artifact."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{scenario.name}.json"
    payload = {
        "version": SCENARIO_VERSION,
        "reason": reason,
        "scenario": scenario.to_dict(),
    }
    if extra:
        payload.update(extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_scenario(path: "str | Path") -> Scenario:
    """Load a scenario back from a failure artifact (or bare dict file)."""
    payload = json.loads(Path(path).read_text())
    if "scenario" in payload:
        if payload.get("version") != SCENARIO_VERSION:
            raise ValueError(
                f"scenario file version {payload.get('version')!r} does not "
                f"match {SCENARIO_VERSION}")
        payload = payload["scenario"]
    return Scenario.from_dict(payload)


def report_scenario_mismatch(scenario: Scenario, fast_backend: str,
                             reference_backend: str,
                             failure_dir: "str | Path",
                             detail: str = "") -> None:
    """Minimize, persist and raise for a detected oracle mismatch.

    The minimizer re-tests with the scenario's own stored seed; if the
    mismatch only reproduces under the campaign's stage seeds, the
    original scenario is written unminimized (still replayable, with
    ``detail`` recording where it was seen).
    """
    def differs(candidate: Scenario) -> bool:
        return scenario_differs(candidate, backend=fast_backend,
                                reference=reference_backend)

    minimized = (minimize_scenario(scenario, differs)
                 if differs(scenario) else scenario)
    reason = (f"backend {fast_backend!r} disagrees with the "
              f"{reference_backend!r}/workers=1 reference oracle")
    path = write_failure_scenario(minimized, failure_dir, reason=reason,
                                  extra={
                                      "fast_backend": fast_backend,
                                      "reference_backend": reference_backend,
                                      "detail": detail,
                                  })
    raise ScenarioMismatch(
        f"{reason} on scenario {scenario.name!r}; minimized replay "
        f"written to {path} (replay with repro.campaign.load_scenario + "
        f"run_scenario)", minimized, path)
