"""Cross-sweep campaign orchestration: the paper as one run.

``repro.campaign`` turns the library's sweeps into a reproduction
engine: a declarative spec (:class:`CampaignSpec`) lists every curve to
estimate, and :func:`run_campaign` runs them all against one shared
process pool and one global shot budget — piloting every point, then
repeatedly re-allocating the remaining budget to the points (in any
sweep) whose confidence intervals need it most.  A resumable result
store (:class:`ResultStore`) makes re-runs free and interruption safe:
completed points are keyed by a content fingerprint of their
parameters and are reused bit-identically instead of re-sampled.

See ``docs/campaigns.md`` for the spec format, budget semantics and
resume guarantees, and ``repro campaign --help`` for the CLI.
"""

from repro.campaign.orchestrator import CampaignResult, run_campaign
from repro.campaign.spec import (
    CampaignSpec,
    SweepSpec,
    available_specs,
    builtin_spec,
    load_spec,
)
from repro.campaign.store import ResultStore, fingerprint

__all__ = [
    "CampaignResult",
    "CampaignSpec",
    "ResultStore",
    "SweepSpec",
    "available_specs",
    "builtin_spec",
    "fingerprint",
    "load_spec",
    "run_campaign",
]
