"""Cross-sweep campaign orchestration: the paper as one run.

``repro.campaign`` turns the library's sweeps into a reproduction
engine: a declarative spec (:class:`CampaignSpec`) lists every curve to
estimate, and :func:`run_campaign` runs them all against one shared
process pool and one global shot budget — piloting every point, then
repeatedly re-allocating the remaining budget to the points (in any
sweep) whose confidence intervals need it most.  A resumable result
store (:class:`ResultStore`) makes re-runs free and interruption safe:
completed points are keyed by a content fingerprint of their
parameters and are reused bit-identically instead of re-sampled, and
per-stage checkpoints let a crash *mid-point* resume by replaying the
logged stages.  SIGINT/SIGTERM (and the injected equivalent from
:mod:`repro.parallel.faults`) stop a run cleanly via
:class:`CampaignInterrupted` with everything finalised already flushed.

What a sweep computes is pluggable: every figure of the evaluation is a
registered **sweep kind** (:mod:`repro.campaign.kinds` —
:func:`register_kind`, :func:`run_sweep_kind`), including the
randomized differential-testing ``scenario_sweep`` kind
(:mod:`repro.campaign.scenarios`), which cross-checks generated
scenarios bit-for-bit against a reference-backend oracle and minimizes
any mismatch to a replayable JSON file.

Campaigns also scale *out*: ``repro campaign --join`` turns N
processes (on N hosts sharing one store file) into cooperating
workers that partition the budget by claiming points under TTL'd
leases (:mod:`repro.campaign.coordination` — :class:`LeaseManager`,
:class:`WorkerIdentity`), heartbeat renewals while sampling, reclaim
expired leases deterministically, and produce tables byte-identical
to a single joined worker.  Per-host stores fold together with
:func:`merge_stores`; :func:`verify_store` / :func:`repair_store`
back the ``repro store`` CLI.

See ``docs/campaigns.md`` for the spec format, budget semantics, resume
guarantees and the kind registry, and ``repro campaign --help`` for the
CLI.
"""

from repro.campaign.coordination import (
    LeaseLost,
    LeaseManager,
    WorkerIdentity,
    merge_stores,
    repair_store,
    verify_store,
)
from repro.campaign.kinds import (
    ExpandedPoint,
    KindParam,
    OracleCheck,
    SweepKind,
    available_kinds,
    kind_by_name,
    kind_params,
    register_kind,
    run_sweep_kind,
)
from repro.campaign.orchestrator import (
    CampaignInterrupted,
    CampaignResult,
    JoinedCampaign,
    run_campaign,
)
from repro.campaign.scenarios import (
    Scenario,
    ScenarioMismatch,
    generate_scenario,
    load_scenario,
    minimize_scenario,
    run_scenario,
    write_failure_scenario,
)
from repro.campaign.spec import (
    CampaignSpec,
    SweepSpec,
    available_specs,
    builtin_spec,
    load_spec,
)
from repro.campaign.store import Lease, ResultStore, fingerprint

__all__ = [
    "CampaignInterrupted",
    "CampaignResult",
    "CampaignSpec",
    "ExpandedPoint",
    "JoinedCampaign",
    "KindParam",
    "Lease",
    "LeaseLost",
    "LeaseManager",
    "OracleCheck",
    "ResultStore",
    "Scenario",
    "ScenarioMismatch",
    "SweepKind",
    "SweepSpec",
    "WorkerIdentity",
    "available_kinds",
    "available_specs",
    "builtin_spec",
    "fingerprint",
    "generate_scenario",
    "kind_by_name",
    "kind_params",
    "load_scenario",
    "load_spec",
    "merge_stores",
    "minimize_scenario",
    "register_kind",
    "repair_store",
    "run_campaign",
    "run_scenario",
    "run_sweep_kind",
    "verify_store",
    "write_failure_scenario",
]
