"""Declarative campaign specifications.

A campaign is the paper's whole evaluation as one configuration-driven
run: a list of sweeps (LER curves, architecture comparisons) that share
one global shot budget and one worker pool.  The spec layer is plain
data — dataclasses with a JSON round-trip — so a campaign can live in a
file next to the figures it reproduces, and a content fingerprint of
the spec keys the resumable result store
(:mod:`repro.campaign.store`).

A sweep's ``kind`` names an entry of the sweep-kind registry
(:mod:`repro.campaign.kinds`) — each registered kind supplies its own
expansion, table shape and parameter schema (the sweep's free-form
``params`` mapping is validated against it).

Four specs ship with the repository (:func:`builtin_spec`):

``paper_figures``
    The main LER curves: Figure 14 (bivariate bicycle) and Figure 15
    (hypergraph product), baseline vs Cyclone, each curve under a
    relative Wilson-width target.
``paper_figures_full``
    Every figure of the evaluation as one campaign: the LER curves
    plus the migrated sensitivity studies (Figures 5, 9, 13, 17, 18)
    and the analytic compiler/swap tables (Figures 20, 21), under one
    global budget with full store-resume.
``ci_smoke``
    A two-sweep miniature on the smallest codes, sized for the CI
    resume check (seconds, not minutes).
``scenario_fuzz``
    A short seeded ``scenario_sweep``: randomized codes, trap
    topologies and noise models, each cross-checked bit-for-bit
    against the ``backend="bool"`` oracle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.kinds import (
    sweep_point_count,
    validate_sweep,
    validate_sweep_names,
)
from repro.campaign.store import fingerprint
from repro.core.stats import PrecisionTarget

__all__ = [
    "CampaignSpec",
    "SweepSpec",
    "available_specs",
    "builtin_spec",
    "load_spec",
]


@dataclass(frozen=True)
class SweepSpec:
    """One sweep of a campaign: a curve of estimation points.

    ``kind`` names a registered sweep kind
    (:func:`repro.campaign.kinds.available_kinds`):
    ``"physical_error"`` sweeps the physical error rate of one
    ``codesign`` (one LER curve); ``"architectures"`` sweeps a list of
    ``codesigns`` at one fixed ``physical_error_rate``; the migrated
    figure kinds (``depth_speedup``, ``junction_crossing``, ...) and
    ``scenario_sweep`` take their knobs through the free-form
    ``params`` mapping, validated against the kind's schema.
    ``target`` is the per-point precision the campaign tries to reach
    before its global budget runs out; ``max_shots`` caps any single
    point (default: the whole global budget may concentrate on one
    point) and ``pilot_shots`` sizes the pilot pass (default: derived
    from the per-point budget share).

    ``shard_timeout`` / ``max_shard_retries`` are *execution* knobs —
    a per-shard wall-clock deadline and the pool respawn budget the
    pipeline tolerates before degrading to in-process execution.  They
    change how a run recovers from faults, never what it computes, so
    they are deliberately excluded from the campaign fingerprint: a
    store written with one retry policy resumes under any other.
    """

    name: str
    code: str = ""
    kind: str = "physical_error"
    codesign: str = "cyclone"
    physical_error_rates: tuple[float, ...] = ()
    codesigns: tuple[str, ...] = ()
    physical_error_rate: float | None = None
    params: dict = field(default_factory=dict)
    target: PrecisionTarget = field(
        default_factory=lambda: PrecisionTarget(half_width=0.2,
                                                relative=True))
    rounds: int | None = None
    method: str = "phenomenological"
    basis: str = "Z"
    backend: str = "packed"
    shard_shots: int | None = None
    max_shots: int | None = None
    pilot_shots: int | None = None
    max_bp_iterations: int = 40
    osd_order: int = 0
    shard_timeout: float | None = None
    max_shard_retries: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("every sweep needs a name")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive")
        if self.max_shard_retries is not None and self.max_shard_retries < 0:
            raise ValueError("max_shard_retries must be non-negative")
        if self.method not in ("phenomenological", "circuit"):
            raise ValueError("method must be 'phenomenological' or 'circuit'")
        if self.backend not in ("packed", "bool", "native"):
            raise ValueError("backend must be 'packed', 'bool' or 'native'")
        validate_sweep(self)

    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        return sweep_point_count(self)

    def validate_names(self) -> None:
        """Check the code and codesign names against the registries.

        Kept out of ``__post_init__`` so building a spec stays cheap;
        the orchestrator and the CLI call this before any real work.
        """
        validate_sweep_names(self)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "code": self.code,
            "kind": self.kind,
            "target": self.target.to_dict(),
            "rounds": self.rounds,
            "method": self.method,
            "basis": self.basis,
            "backend": self.backend,
            "shard_shots": self.shard_shots,
            "max_shots": self.max_shots,
            "pilot_shots": self.pilot_shots,
            "max_bp_iterations": self.max_bp_iterations,
            "osd_order": self.osd_order,
        }
        # Execution-only knobs: serialised only when set, and stripped
        # again by CampaignSpec.fingerprint() — see the class docstring.
        if self.shard_timeout is not None:
            payload["shard_timeout"] = self.shard_timeout
        if self.max_shard_retries is not None:
            payload["max_shard_retries"] = self.max_shard_retries
        if self.kind == "physical_error":
            payload["codesign"] = self.codesign
            payload["physical_error_rates"] = list(self.physical_error_rates)
        else:
            payload["codesigns"] = list(self.codesigns)
            payload["physical_error_rate"] = self.physical_error_rate
        if self.params:
            payload["params"] = dict(self.params)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepSpec":
        known = {
            "name", "code", "kind", "codesign", "physical_error_rates",
            "codesigns", "physical_error_rate", "params", "target",
            "rounds", "method", "basis", "backend", "shard_shots",
            "max_shots", "pilot_shots", "max_bp_iterations", "osd_order",
            "shard_timeout", "max_shard_retries",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown sweep keys {sorted(unknown)}")
        # Dropping explicit nulls lets the dataclass defaults apply (the
        # keys whose default *is* None lose nothing by the drop).
        kwargs = {k: v for k, v in payload.items() if v is not None}
        if "target" in kwargs:
            target = kwargs["target"]
            kwargs["target"] = (target if isinstance(target, PrecisionTarget)
                                else PrecisionTarget.from_dict(target))
        if "physical_error_rates" in kwargs:
            kwargs["physical_error_rates"] = tuple(
                float(p) for p in kwargs["physical_error_rates"])
        if "codesigns" in kwargs:
            kwargs["codesigns"] = tuple(str(c) for c in kwargs["codesigns"])
        return cls(**kwargs)


@dataclass(frozen=True)
class CampaignSpec:
    """A full campaign: sweeps plus the global budget they share.

    ``budget`` is the total number of shots the whole campaign may
    sample, across every point of every sweep — the orchestrator
    pilots each point, then repeatedly re-allocates what is left to
    the points whose confidence intervals need it most.  ``seed``
    roots every point's sampling: point seeds are derived from
    ``(seed, sweep_index, point_index, stage)``, never from execution
    order, which is what lets the result store resume a campaign
    bit-identically.

    ``lease_ttl`` / ``claim_batch`` are *execution* knobs for joined
    (multi-host) runs — the lease heartbeat deadline and how many
    points a worker claims per scheduling pass.  Like the sweeps'
    fault-tolerance knobs they are excluded from :meth:`fingerprint`:
    they shape coordination, never tallies, so stores written under
    one TTL resume under any other.
    """

    name: str
    sweeps: tuple[SweepSpec, ...]
    budget: int
    seed: int = 0
    description: str = ""
    lease_ttl: float | None = None
    claim_batch: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a campaign needs a name")
        if not self.sweeps:
            raise ValueError("a campaign needs at least one sweep")
        if self.budget < 1:
            raise ValueError("budget must be a positive shot count")
        if self.lease_ttl is not None and self.lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        if self.claim_batch is not None and self.claim_batch < 1:
            raise ValueError("claim_batch must be positive")
        names = [sweep.name for sweep in self.sweeps]
        if len(set(names)) != len(names):
            raise ValueError("sweep names must be unique within a campaign")

    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        return sum(sweep.num_points for sweep in self.sweeps)

    def validate_names(self) -> None:
        for sweep in self.sweeps:
            sweep.validate_names()

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "description": self.description,
            "budget": self.budget,
            "seed": self.seed,
            "sweeps": [sweep.to_dict() for sweep in self.sweeps],
        }
        if self.lease_ttl is not None:
            payload["lease_ttl"] = self.lease_ttl
        if self.claim_batch is not None:
            payload["claim_batch"] = self.claim_batch
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignSpec":
        unknown = set(payload) - {"name", "description", "budget", "seed",
                                  "sweeps", "lease_ttl", "claim_batch"}
        if unknown:
            raise ValueError(f"unknown campaign keys {sorted(unknown)}")
        for key in ("name", "budget", "sweeps"):
            if key not in payload:
                raise ValueError(f"a campaign spec needs {key!r}")
        sweeps = tuple(
            sweep if isinstance(sweep, SweepSpec) else SweepSpec.from_dict(sweep)
            for sweep in payload["sweeps"]
        )
        lease_ttl = payload.get("lease_ttl")
        claim_batch = payload.get("claim_batch")
        return cls(
            name=str(payload["name"]),
            description=str(payload.get("description", "")),
            budget=int(payload["budget"]),
            seed=int(payload.get("seed", 0)),
            sweeps=sweeps,
            lease_ttl=float(lease_ttl) if lease_ttl is not None else None,
            claim_batch=int(claim_batch) if claim_batch is not None else None,
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    def fingerprint(self, budget: int | None = None) -> str:
        """Content fingerprint of the campaign (optionally re-budgeted).

        Every stored point record embeds this value in its key, so any
        change to the spec — a new point, a different target, another
        budget — cleanly invalidates the store instead of resuming a
        different campaign's tallies.
        """
        payload = self.to_dict()
        if budget is not None:
            payload["budget"] = int(budget)
        # Fault-tolerance knobs shape recovery, not results (recovery is
        # bit-identical by construction), so a store written with one
        # retry policy must resume under any other.
        for sweep_payload in payload["sweeps"]:
            sweep_payload.pop("shard_timeout", None)
            sweep_payload.pop("max_shard_retries", None)
        # Likewise the multi-host lease knobs: coordination cadence
        # never changes a tally.
        payload.pop("lease_ttl", None)
        payload.pop("claim_batch", None)
        return fingerprint(payload)


# ----------------------------------------------------------------------
# Bundled specs.

_FIGURE_RATES = (3e-4, 1e-3, 3e-3)

_BUILTIN_SPEC_DICTS: dict[str, dict] = {
    "paper_figures": {
        "name": "paper_figures",
        "description": (
            "Main LER curves of the paper's evaluation: Figure 14 "
            "(bivariate bicycle [[72,12,6]]) and Figure 15 (hypergraph "
            "product [[225,9,6]]), baseline grid vs Cyclone, each point "
            "estimated to a +-20% relative Wilson half-width under one "
            "global shot budget."
        ),
        "budget": 400_000,
        "seed": 17,
        "sweeps": [
            {
                "name": f"{figure}_{label}",
                "code": code,
                "kind": "physical_error",
                "codesign": codesign,
                "physical_error_rates": list(_FIGURE_RATES),
                "target": {"half_width": 0.2, "relative": True,
                           "confidence": 0.95},
                "max_shots": 100_000,
            }
            for figure, code in (("fig14_bb72", "BB [[72,12,6]]"),
                                 ("fig15_hgp225", "HGP [[225,9,6]]"))
            for label, codesign in (("baseline", "baseline"),
                                    ("cyclone", "cyclone"))
        ],
    },
    "paper_figures_full": {
        "name": "paper_figures_full",
        "description": (
            "Every figure of the evaluation as one campaign: the "
            "Figure 14/15 LER curves (both code sizes, baseline vs "
            "Cyclone), the migrated sensitivity studies (Figures 5, 9, "
            "13, 17, 18) and the analytic compiler/swap tables "
            "(Figures 20, 21), under one global shot budget with full "
            "store-resume."
        ),
        "budget": 600_000,
        "seed": 17,
        "sweeps": [
            {
                "name": f"{figure}_{label}",
                "code": code,
                "kind": "physical_error",
                "codesign": codesign,
                "physical_error_rates": list(_FIGURE_RATES),
                "target": {"half_width": 0.2, "relative": True,
                           "confidence": 0.95},
                "max_shots": 100_000,
            }
            for figure, code in (("fig14_bb72", "BB [[72,12,6]]"),
                                 ("fig14_bb144", "BB [[144,12,12]]"),
                                 ("fig15_hgp225", "HGP [[225,9,6]]"),
                                 ("fig15_hgp400", "HGP [[400,16,6]]"))
            for label, codesign in (("baseline", "baseline"),
                                    ("cyclone", "cyclone"))
        ] + [
            {
                "name": "fig05_depth_speedup",
                "code": "HGP [[225,9,6]]",
                "kind": "depth_speedup",
                "physical_error_rate": 5e-4,
                "params": {"speedups": [1.0, 2.0, 4.0]},
                "target": {"half_width": 0.2, "relative": True,
                           "confidence": 0.95},
                "max_shots": 50_000,
            },
            {
                "name": "fig09_junction",
                "code": "HGP [[225,9,6]]",
                "kind": "junction_crossing",
                "physical_error_rate": 1e-4,
                "params": {"reductions": [0.0, 0.3, 0.5, 0.7, 0.9]},
                "target": {"half_width": 0.2, "relative": True,
                           "confidence": 0.95},
                "max_shots": 50_000,
            },
            {
                "name": "fig13_trap_arrangement",
                "code": "HGP [[225,9,6]]",
                "kind": "trap_arrangement",
                "physical_error_rate": 1e-4,
                "params": {"trap_counts": [1, 9, 25, 64, 108]},
                "target": {"half_width": 0.2, "relative": True,
                           "confidence": 0.95},
                "max_shots": 50_000,
            },
            {
                "name": "fig17_loose_capacity",
                "code": "HGP [[225,9,6]]",
                "kind": "loose_capacity",
                "physical_error_rate": 1e-4,
                "params": {"capacities": [5, 8, 12]},
                "target": {"half_width": 0.2, "relative": True,
                           "confidence": 0.95},
                "max_shots": 50_000,
            },
            {
                "name": "fig18_operation_time",
                "code": "HGP [[225,9,6]]",
                "kind": "operation_time",
                "physical_error_rate": 1e-4,
                "params": {"reductions": [0.0, 0.5, 0.75]},
                "target": {"half_width": 0.2, "relative": True,
                           "confidence": 0.95},
                "max_shots": 50_000,
            },
            {
                "name": "fig20_compilers",
                "code": "HGP [[225,9,6]]",
                "kind": "compiler_comparison",
            },
            {
                "name": "fig21_swap",
                "code": "HGP [[225,9,6]]",
                "kind": "swap_kind",
            },
        ],
    },
    "scenario_fuzz": {
        "name": "scenario_fuzz",
        "description": (
            "Short seeded scenario_sweep: randomized codes, trap "
            "topologies and noise models, each run through the fused "
            "pipeline and cross-checked bit-for-bit against the "
            "backend='bool' reference oracle; mismatches are minimized "
            "to replayable JSON files under scenario-failures/."
        ),
        "budget": 4000,
        "seed": 7,
        "sweeps": [
            {
                "name": "fuzz",
                "kind": "scenario_sweep",
                "params": {"num_scenarios": 6, "shots": 192,
                           "scenario_seed": 11},
                # Effectively unreachable width: every scenario consumes
                # its full pinned shot count (cap == pilot == shots), so
                # the oracle cross-checks the whole draw.
                "target": {"half_width": 1e-9},
            },
        ],
    },
    "ci_smoke": {
        "name": "ci_smoke",
        "description": (
            "Two-sweep miniature for the CI resume check: smallest "
            "codes, two rounds, absolute targets, a few hundred shots."
        ),
        "budget": 900,
        "seed": 7,
        "sweeps": [
            {
                "name": "smoke_repetition",
                "code": "repetition-d3",
                "kind": "physical_error",
                "codesign": "cyclone",
                "physical_error_rates": [2e-3, 8e-3],
                "target": {"half_width": 0.02},
                "rounds": 2,
                "pilot_shots": 32,
                "shard_shots": 64,
            },
            {
                "name": "smoke_architectures",
                "code": "surface-d3",
                "kind": "architectures",
                "codesigns": ["baseline", "cyclone"],
                "physical_error_rate": 3e-3,
                "target": {"half_width": 0.02},
                "rounds": 2,
                "pilot_shots": 32,
                "shard_shots": 64,
            },
        ],
    },
}


def available_specs() -> list[str]:
    """Names of the specs bundled with the repository."""
    return sorted(_BUILTIN_SPEC_DICTS)


def builtin_spec(name: str) -> CampaignSpec:
    """Load one of the bundled campaign specs by name."""
    try:
        payload = _BUILTIN_SPEC_DICTS[name]
    except KeyError:
        raise KeyError(f"unknown builtin spec {name!r}; available: "
                       f"{available_specs()}") from None
    return CampaignSpec.from_dict(payload)


def load_spec(source: "str | Path") -> CampaignSpec:
    """Resolve a spec argument: a builtin name or a JSON file path."""
    name = str(source)
    if name in _BUILTIN_SPEC_DICTS:
        return builtin_spec(name)
    path = Path(source)
    if not path.exists():
        raise FileNotFoundError(
            f"{name!r} is neither a builtin spec ({available_specs()}) "
            "nor an existing JSON file")
    return CampaignSpec.from_json(path.read_text())
