"""The sweep-kind registry: every figure as a campaign-runnable kind.

A :class:`SweepKind` packages what used to be a bespoke figure function
— how a sweep spec expands into concrete estimation points, which
static columns its table carries, how the table is titled — behind one
name that a :class:`~repro.campaign.spec.SweepSpec` can reference.  The
original two kinds (``physical_error``, ``architectures``) live here
now, next to the migrated sensitivity studies (Figures 5, 9, 13, 17,
18, 20, 21) and the randomized ``scenario_sweep`` fuzz kind, so one
campaign spec (``paper_figures_full``) reproduces every figure table
under one global shot budget with full store-resume — and the analysis
wrappers (:mod:`repro.analysis.sensitivity`,
:mod:`repro.analysis.compilers`) are thin shells over
:func:`run_sweep_kind`.

Registering a custom kind::

    from repro.campaign.kinds import KindParam, SweepKind, register_kind

    register_kind(SweepKind(
        name="my_kind",
        description="what the sweep varies",
        params=(KindParam("knobs", "list[float]", [1.0, 2.0], "..."),),
        expand=my_expand,          # (sweep, code) -> [ExpandedPoint, ...]
        static_columns=lambda sweep: ["knob", "round_latency_us"],
        title=lambda sweep: f"my kind ({sweep.code})",
    ))

``expand`` returns :class:`ExpandedPoint` entries; each carries its
table row's static cells, the operating point ``(p, latency)`` the
memory experiment runs at, the fingerprint material for the result
store, and optional per-point overrides (own code, rounds, backend, a
differential-oracle check).  Points with ``sampled=False`` are
analytic rows (compiled latencies only) that never cost budget.

Execution paths
---------------
:func:`run_sweep_kind` runs one sweep standalone with a fixed per-point
shot budget — bit-identical to the legacy bespoke functions it
replaced: one :class:`~repro.core.memory.MemoryExperiment` per sweep
(sequentially spawned per-run seeds) and one ``run`` per point in
expansion order.  The campaign orchestrator
(:mod:`repro.campaign.orchestrator`) drives the same expansion through
the global pilot/allocate/refine budget with store-resume instead.
"""

from __future__ import annotations

from collections.abc import Callable
from contextlib import ExitStack
from dataclasses import dataclass, field

import numpy as np

from repro.campaign.scenarios import (
    Scenario,
    build_scenario,
    generate_scenario,
    report_scenario_mismatch,
    scenario_run_seed,
)
from repro.codes import available_codes, code_by_name
from repro.codes.css import CSSCode
from repro.core.codesign import available_codesigns, codesign_by_name
from repro.core.memory import MemoryExperiment
from repro.core.results import ResultTable
from repro.core.stats import as_precision_target
from repro.qccd.compilers import CycloneCompiler, EJFGridCompiler
from repro.qccd.timing import OperationTimes, SwapKind

__all__ = [
    "ExpandedPoint",
    "KindParam",
    "OracleCheck",
    "SweepKind",
    "available_kinds",
    "kind_by_name",
    "kind_params",
    "register_kind",
    "run_sweep_kind",
    "validate_sweep",
    "validate_sweep_names",
]


@dataclass(frozen=True)
class KindParam:
    """One entry of a kind's parameter schema.

    ``type`` is a human-readable annotation (``"int"``,
    ``"list[float]"``, ...) shown by ``repro campaign --list-specs``;
    ``default`` applies when a sweep's ``params`` omit the key.
    """

    name: str
    type: str
    default: object
    doc: str = ""


@dataclass(frozen=True)
class OracleCheck:
    """A differential check attached to a point: re-run the identical
    sampling on the ``reference`` backend (``workers=1``, no pool) and
    require a bit-identical tally; on mismatch the ``scenario`` is
    minimized and written under ``failure_dir``."""

    reference: str
    scenario: Scenario
    failure_dir: str


@dataclass
class ExpandedPoint:
    """One concrete estimation point produced by a kind's ``expand``.

    ``row`` holds the static table cells; ``params`` the extra
    JSON-safe material that distinguishes this point in the result
    store's fingerprint key.  ``None`` overrides fall back to the
    sweep's fields.  ``cap``/``pilot`` pin the campaign budget for the
    point (a scenario samples exactly its own shot count);
    ``seed_entropy`` replaces the campaign's positional seed with the
    point's own stored entropy, so the point replays identically
    outside the campaign.  Points sharing an ``experiment_key`` share
    one :class:`MemoryExperiment` ("" — the whole sweep shares one).
    """

    row: dict
    params: dict = field(default_factory=dict)
    physical_error_rate: float = 0.0
    round_latency_us: float = 0.0
    sampled: bool = True
    code: CSSCode | None = None
    rounds: int | None = None
    basis: str | None = None
    backend: str | None = None
    shard_shots: int | None = None
    max_bp_iterations: int | None = None
    osd_order: int | None = None
    experiment_key: str = ""
    cap: int | None = None
    pilot: int | None = None
    seed_entropy: int | None = None
    oracle: OracleCheck | None = None


@dataclass(frozen=True)
class SweepKind:
    """A registered sweep kind: expansion, table shape, validation.

    ``expand(sweep, code)`` produces the points; ``static_columns`` /
    ``title`` shape the result table; ``count`` is the number of
    *sampled* points (the campaign budget denominator) without running
    anything.  ``sampled=False`` marks kinds whose tables are purely
    compiled quantities (no Monte-Carlo column at all);
    ``needs_code=False`` frees the sweep from naming a registry code
    (``scenario_sweep`` generates its own).  ``validate`` runs at spec
    construction, ``validate_names`` against the registries just
    before real work.
    """

    name: str
    description: str
    expand: Callable[[object, "CSSCode | None"], list[ExpandedPoint]]
    static_columns: Callable[[object], list[str]]
    title: Callable[[object], str]
    params: tuple[KindParam, ...] = ()
    count: "Callable[[object], int] | None" = None
    sampled: bool = True
    needs_code: bool = True
    validate: "Callable[[object], None] | None" = None
    validate_names: "Callable[[object], None] | None" = None


_KINDS: dict[str, SweepKind] = {}


def register_kind(kind: SweepKind) -> SweepKind:
    """Register a sweep kind under its name (unique, stable)."""
    if kind.name in _KINDS:
        raise ValueError(f"sweep kind {kind.name!r} is already registered")
    _KINDS[kind.name] = kind
    return kind


def available_kinds() -> list[str]:
    """Names accepted as ``SweepSpec.kind``, sorted."""
    return sorted(_KINDS)


def kind_by_name(name: str) -> SweepKind:
    """Look up a registered sweep kind (ValueError on unknown names)."""
    try:
        return _KINDS[name]
    except KeyError:
        raise ValueError(f"unknown sweep kind {name!r}; registered kinds: "
                         f"{available_kinds()}") from None


def kind_params(sweep) -> dict:
    """The sweep's kind parameters: schema defaults + spec overrides."""
    kind = kind_by_name(sweep.kind)
    values = {param.name: param.default for param in kind.params}
    values.update(getattr(sweep, "params", {}))
    return values


def validate_sweep(sweep) -> None:
    """Structural validation shared by every kind (spec construction)."""
    kind = kind_by_name(sweep.kind)
    known = {param.name for param in kind.params}
    unknown = set(getattr(sweep, "params", {})) - known
    if unknown:
        raise ValueError(f"sweep {sweep.name!r}: unknown {sweep.kind} "
                         f"params {sorted(unknown)}")
    if kind.needs_code and not sweep.code:
        raise ValueError(f"sweep {sweep.name!r}: kind {sweep.kind!r} "
                         "needs a code")
    if kind.validate is not None:
        kind.validate(sweep)


def validate_sweep_names(sweep) -> None:
    """Registry-level validation (deferred so spec building stays cheap)."""
    kind = kind_by_name(sweep.kind)
    if kind.needs_code and sweep.code not in available_codes():
        raise ValueError(f"sweep {sweep.name!r}: unknown code "
                         f"{sweep.code!r}")
    if kind.validate_names is not None:
        kind.validate_names(sweep)


def sweep_point_count(sweep) -> int:
    """Number of sampled points the sweep expands to (budget denominator)."""
    kind = kind_by_name(sweep.kind)
    if kind.count is not None:
        return kind.count(sweep)
    if not kind.sampled:
        return 0
    return len(kind.expand(sweep, code_by_name(sweep.code)
                           if kind.needs_code else None))


# ----------------------------------------------------------------------
# Standalone execution (the legacy bespoke-function path, preserved
# bit-for-bit: one experiment per sweep, sequential per-run seed
# spawning, one run per point in expansion order).

def run_sweep_kind(sweep, *, code: CSSCode | None = None, shots: int = 200,
                   seed: int = 0, workers: int = 1, pool=None,
                   target_precision=None,
                   max_shots: int | None = None) -> ResultTable:
    """Run one sweep standalone with a fixed per-point budget.

    ``code`` overrides the registry lookup of ``sweep.code`` (the
    analysis wrappers pass their caller's code object through, so
    non-registry codes keep working).  ``target_precision`` /
    ``max_shots`` stream each point to a Wilson-width stop exactly as
    the legacy figure functions did; ``pool`` shares one worker pool
    across sweeps.  Points carrying an :class:`OracleCheck` are re-run
    on the reference backend and must match bit for bit
    (:class:`~repro.campaign.scenarios.ScenarioMismatch` otherwise).
    """
    kind = kind_by_name(sweep.kind)
    validate_sweep(sweep)
    if kind.needs_code and code is None:
        code = code_by_name(sweep.code)
    points = kind.expand(sweep, code)
    columns = list(kind.static_columns(sweep))
    if kind.sampled:
        columns = columns + ["logical_error_rate"]
    table = ResultTable(title=kind.title(sweep), columns=columns)
    target = as_precision_target(target_precision)

    with ExitStack() as stack:
        experiments: dict = {}

        def experiment_for(point: ExpandedPoint, backend: str | None = None,
                           oracle: bool = False) -> MemoryExperiment:
            key = (point.experiment_key, oracle)
            experiment = experiments.get(key)
            if experiment is None:
                experiment = stack.enter_context(MemoryExperiment(
                    code=point.code if point.code is not None else code,
                    rounds=(point.rounds if point.rounds is not None
                            else sweep.rounds),
                    basis=(point.basis if point.basis is not None
                           else sweep.basis),
                    method=sweep.method,
                    max_bp_iterations=(
                        point.max_bp_iterations
                        if point.max_bp_iterations is not None
                        else sweep.max_bp_iterations),
                    osd_order=(point.osd_order if point.osd_order is not None
                               else sweep.osd_order),
                    seed=seed,
                    backend=(backend if backend is not None
                             else point.backend if point.backend is not None
                             else sweep.backend),
                    workers=1 if oracle else workers,
                    shard_shots=(point.shard_shots
                                 if point.shard_shots is not None
                                 else sweep.shard_shots),
                    pool=None if oracle else pool,
                ))
                experiments[key] = experiment
            return experiment

        for point in points:
            if not point.sampled:
                row = dict(point.row)
                if kind.sampled:
                    row["logical_error_rate"] = float("nan")
                table.add_row(**row)
                continue
            budget = point.cap if point.cap is not None else shots
            run_seed = (scenario_run_seed(point.oracle.scenario)
                        if point.seed_entropy is not None
                        and point.oracle is not None else None)
            if run_seed is None and point.seed_entropy is not None:
                run_seed = np.random.SeedSequence(
                    entropy=point.seed_entropy, spawn_key=(0,))
            result = experiment_for(point).run(
                point.physical_error_rate, point.round_latency_us,
                shots=budget, target_precision=target, max_shots=max_shots,
                seed=run_seed)
            if point.oracle is not None:
                fast = (point.backend if point.backend is not None
                        else sweep.backend)
                reference = experiment_for(
                    point, backend=point.oracle.reference, oracle=True,
                ).run(point.physical_error_rate, point.round_latency_us,
                      shots=budget, target_precision=target,
                      max_shots=max_shots,
                      seed=scenario_run_seed(point.oracle.scenario))
                if ((reference.failures, reference.shots)
                        != (result.failures, result.shots)):
                    report_scenario_mismatch(
                        point.oracle.scenario, fast, point.oracle.reference,
                        point.oracle.failure_dir,
                        detail=f"run_sweep_kind({sweep.name!r})")
            table.add_row(**point.row,
                          logical_error_rate=result.logical_error_rate)
    return table


# ----------------------------------------------------------------------
# Builtin kinds.

def _operating_point(sweep, default: float) -> float:
    p = getattr(sweep, "physical_error_rate", None)
    return default if p is None else float(p)


def _check_codesigns(sweep, names) -> None:
    for name in names:
        if name not in available_codesigns():
            raise ValueError(f"sweep {sweep.name!r}: unknown codesign "
                             f"{name!r}")


# -- physical_error ----------------------------------------------------

def _expand_physical_error(sweep, code):
    latency = codesign_by_name(sweep.codesign).compile(
        code).execution_time_us
    return [
        ExpandedPoint(row={"p": p, "round_latency_us": latency},
                      params={"codesign": sweep.codesign},
                      physical_error_rate=p, round_latency_us=latency)
        for p in sweep.physical_error_rates
    ]


def _validate_physical_error(sweep) -> None:
    if not sweep.physical_error_rates:
        raise ValueError(f"sweep {sweep.name!r}: physical_error sweeps "
                         "need physical_error_rates")


register_kind(SweepKind(
    name="physical_error",
    description="LER curve of one codesign across physical error rates "
                "(Figures 14/15).",
    expand=_expand_physical_error,
    static_columns=lambda sweep: ["p", "round_latency_us"],
    title=lambda sweep: f"{sweep.code} ({sweep.codesign})",
    count=lambda sweep: len(sweep.physical_error_rates),
    validate=_validate_physical_error,
    validate_names=lambda sweep: _check_codesigns(sweep, [sweep.codesign]),
))


# -- architectures -----------------------------------------------------

def _expand_architectures(sweep, code):
    points = []
    for name in sweep.codesigns:
        latency = codesign_by_name(name).compile(code).execution_time_us
        points.append(ExpandedPoint(
            row={"codesign": name, "execution_time_us": latency,
                 "p": sweep.physical_error_rate},
            params={"codesign": name},
            physical_error_rate=sweep.physical_error_rate,
            round_latency_us=latency))
    return points


def _validate_architectures(sweep) -> None:
    if not sweep.codesigns:
        raise ValueError(f"sweep {sweep.name!r}: architectures sweeps "
                         "need codesigns")
    if sweep.physical_error_rate is None:
        raise ValueError(f"sweep {sweep.name!r}: architectures sweeps "
                         "need a physical_error_rate")


register_kind(SweepKind(
    name="architectures",
    description="Codesigns compared at one fixed operating point "
                "(Figures 6/16/19).",
    expand=_expand_architectures,
    static_columns=lambda sweep: ["codesign", "execution_time_us", "p"],
    title=lambda sweep: f"{sweep.code} (p={sweep.physical_error_rate:g})",
    count=lambda sweep: len(sweep.codesigns),
    validate=_validate_architectures,
    validate_names=lambda sweep: _check_codesigns(sweep, sweep.codesigns),
))


# -- depth_speedup (Figure 5) ------------------------------------------

def _expand_depth_speedup(sweep, code):
    values = kind_params(sweep)
    p = _operating_point(sweep, 5e-4)
    latency = codesign_by_name("baseline").compile(code).execution_time_us
    points = []
    for speedup in values["speedups"]:
        scaled = latency / speedup
        points.append(ExpandedPoint(
            row={"speedup": speedup, "round_latency_us": scaled},
            params={"speedup": speedup},
            physical_error_rate=p, round_latency_us=scaled))
    return points


register_kind(SweepKind(
    name="depth_speedup",
    description="Figure 5: LER when the baseline latency is divided by "
                "each speedup factor (physical_error_rate defaults to "
                "5e-4).",
    params=(KindParam("speedups", "list[float]", [1.0, 2.0, 4.0],
                      "divisors applied to the compiled baseline "
                      "latency"),),
    expand=_expand_depth_speedup,
    static_columns=lambda sweep: ["speedup", "round_latency_us"],
    title=lambda sweep: (
        f"Fig. 5 — LER vs baseline depth speedup ({sweep.code}, "
        f"p={_operating_point(sweep, 5e-4):g})"),
    count=lambda sweep: len(kind_params(sweep)["speedups"]),
))


# -- junction_crossing (Figure 9) --------------------------------------

def _expand_junction_crossing(sweep, code):
    values = kind_params(sweep)
    p = _operating_point(sweep, 1e-4)
    baseline = codesign_by_name("baseline").compile(code)
    points = [ExpandedPoint(
        row={"design": "baseline_grid", "junction_reduction": 0.0,
             "execution_time_us": baseline.execution_time_us},
        params={"design": "baseline_grid", "junction_reduction": 0.0},
        physical_error_rate=p,
        round_latency_us=baseline.execution_time_us)]
    for reduction in values["reductions"]:
        times = OperationTimes(junction_improvement_factor=reduction)
        mesh = codesign_by_name("mesh_junction", times=times).compile(code)
        points.append(ExpandedPoint(
            row={"design": "mesh_junction", "junction_reduction": reduction,
                 "execution_time_us": mesh.execution_time_us},
            params={"design": "mesh_junction",
                    "junction_reduction": reduction},
            physical_error_rate=p,
            round_latency_us=mesh.execution_time_us))
    return points


register_kind(SweepKind(
    name="junction_crossing",
    description="Figure 9: mesh-junction LER vs junction-crossing-time "
                "reduction, with the baseline grid as reference row "
                "(physical_error_rate defaults to 1e-4).",
    params=(KindParam("reductions", "list[float]",
                      [0.0, 0.3, 0.5, 0.7, 0.9],
                      "junction crossing time reduction fractions"),),
    expand=_expand_junction_crossing,
    static_columns=lambda sweep: ["design", "junction_reduction",
                                  "execution_time_us"],
    title=lambda sweep: (
        f"Fig. 9 — junction crossing sensitivity ({sweep.code}, "
        f"p={_operating_point(sweep, 1e-4):g})"),
    count=lambda sweep: len(kind_params(sweep)["reductions"]) + 1,
))


# -- trap_arrangement (Figure 13) --------------------------------------

def _trap_counts_for(sweep, code) -> tuple[list, int]:
    counts = kind_params(sweep)["trap_counts"]
    m_basis = max(code.num_x_stabilizers, code.num_z_stabilizers)
    if counts is None:
        counts = sorted({1, 9, 25, 64, m_basis // 2, m_basis})
    return list(counts), m_basis


def _expand_trap_arrangement(sweep, code):
    values = kind_params(sweep)
    p = _operating_point(sweep, 1e-4)
    counts, m_basis = _trap_counts_for(sweep, code)
    include_ler = bool(values["include_ler"])
    points = []
    for x in counts:
        x = max(1, min(int(x), m_basis)) if m_basis else 1
        compiled = CycloneCompiler(num_traps=x).compile(code)
        points.append(ExpandedPoint(
            row={"num_traps": x,
                 "trap_capacity": compiled.metadata["trap_capacity"],
                 "chain_length": compiled.metadata["chain_length"],
                 "execution_time_us": compiled.execution_time_us},
            params={"num_traps": x},
            physical_error_rate=p,
            round_latency_us=compiled.execution_time_us,
            sampled=include_ler))
    return points


def _count_trap_arrangement(sweep) -> int:
    values = kind_params(sweep)
    if not values["include_ler"]:
        return 0
    counts = values["trap_counts"]
    if counts is None:
        counts, _ = _trap_counts_for(sweep, code_by_name(sweep.code))
    return len(counts)


register_kind(SweepKind(
    name="trap_arrangement",
    description="Figure 13: Cyclone across tight trap/ion arrangements "
                "(trap_counts defaults to a spread derived from the "
                "code; physical_error_rate defaults to 1e-4).",
    params=(
        KindParam("trap_counts", "list[int] | null", None,
                  "Cyclone trap counts (null: derived from the code)"),
        KindParam("include_ler", "bool", True,
                  "sample LERs (false: compiled quantities only)"),
    ),
    expand=_expand_trap_arrangement,
    static_columns=lambda sweep: ["num_traps", "trap_capacity",
                                  "chain_length", "execution_time_us"],
    title=lambda sweep: (
        f"Fig. 13 — Cyclone trap/ion arrangement sensitivity "
        f"({sweep.code}, p={_operating_point(sweep, 1e-4):g})"),
    count=_count_trap_arrangement,
))


# -- loose_capacity (Figure 17) ----------------------------------------

def _expand_loose_capacity(sweep, code):
    values = kind_params(sweep)
    p = _operating_point(sweep, 1e-4)
    points = []
    for capacity in values["capacities"]:
        compiled = EJFGridCompiler(trap_capacity=capacity).compile(code)
        points.append(ExpandedPoint(
            row={"trap_capacity": capacity,
                 "execution_time_us": compiled.execution_time_us},
            params={"trap_capacity": capacity},
            physical_error_rate=p,
            round_latency_us=compiled.execution_time_us))
    return points


register_kind(SweepKind(
    name="loose_capacity",
    description="Figure 17: baseline LER with loosely fitting trap "
                "capacities (physical_error_rate defaults to 1e-4).",
    params=(KindParam("capacities", "list[int]", [5, 8, 12, 20],
                      "baseline grid trap capacities"),),
    expand=_expand_loose_capacity,
    static_columns=lambda sweep: ["trap_capacity", "execution_time_us"],
    title=lambda sweep: (
        f"Fig. 17 — baseline sensitivity to loose trap capacity "
        f"({sweep.code}, p={_operating_point(sweep, 1e-4):g})"),
    count=lambda sweep: len(kind_params(sweep)["capacities"]),
))


# -- operation_time (Figure 18) ----------------------------------------

_OPERATION_TIME_DESIGNS = ("baseline", "cyclone")


def _expand_operation_time(sweep, code):
    values = kind_params(sweep)
    p = _operating_point(sweep, 1e-4)
    points = []
    for reduction in values["reductions"]:
        times = OperationTimes(improvement_factor=reduction)
        for design in _OPERATION_TIME_DESIGNS:
            compiled = codesign_by_name(design, times=times).compile(code)
            points.append(ExpandedPoint(
                row={"reduction": reduction, "design": design,
                     "execution_time_us": compiled.execution_time_us},
                params={"reduction": reduction, "design": design},
                physical_error_rate=p,
                round_latency_us=compiled.execution_time_us))
    return points


register_kind(SweepKind(
    name="operation_time",
    description="Figure 18: baseline and Cyclone as gate/shuttle times "
                "are uniformly reduced (physical_error_rate defaults "
                "to 1e-4).",
    params=(KindParam("reductions", "list[float]", [0.0, 0.25, 0.5, 0.75],
                      "uniform gate/shuttle time reduction fractions"),),
    expand=_expand_operation_time,
    static_columns=lambda sweep: ["reduction", "design",
                                  "execution_time_us"],
    title=lambda sweep: (
        f"Fig. 18 — gate/shuttle time reduction sensitivity "
        f"({sweep.code}, p={_operating_point(sweep, 1e-4):g})"),
    count=lambda sweep: (len(kind_params(sweep)["reductions"])
                         * len(_OPERATION_TIME_DESIGNS)),
))


# -- compiler_comparison (Figure 20, no sampling) ----------------------

_COMPILER_SET = ["baseline", "baseline2", "baseline3", "cyclone"]
_SHUTTLE_COMPONENTS = ("split", "move", "junction_cross", "merge",
                       "rebalance", "swap")


def _expand_compiler_comparison(sweep, code):
    points = []
    for name in kind_params(sweep)["compilers"]:
        compiled = codesign_by_name(name).compile(code)
        breakdown = compiled.component_breakdown()
        shuttle = sum(breakdown.get(key, 0.0)
                      for key in _SHUTTLE_COMPONENTS)
        points.append(ExpandedPoint(
            row={"compiler": name,
                 "execution_time_us": compiled.execution_time_us,
                 "unrolled_total_us": compiled.serialized_time_us,
                 "unrolled_gate_us": breakdown.get("gate", 0.0),
                 "unrolled_shuttle_us": shuttle,
                 "unrolled_measurement_us": breakdown.get("measurement",
                                                          0.0),
                 "parallelization_fraction":
                     compiled.parallelization_fraction},
            sampled=False))
    return points


register_kind(SweepKind(
    name="compiler_comparison",
    description="Figure 20: execution time, unrolled components and "
                "parallelization per compiler (no sampling).",
    params=(KindParam("compilers", "list[str]", list(_COMPILER_SET),
                      "codesign names to compile and compare"),),
    expand=_expand_compiler_comparison,
    static_columns=lambda sweep: [
        "compiler", "execution_time_us", "unrolled_total_us",
        "unrolled_gate_us", "unrolled_shuttle_us",
        "unrolled_measurement_us", "parallelization_fraction"],
    title=lambda sweep: f"Fig. 20 — compiler sensitivity ({sweep.code})",
    count=lambda sweep: 0,
    sampled=False,
    validate_names=lambda sweep: _check_codesigns(
        sweep, kind_params(sweep)["compilers"]),
))


# -- swap_kind (Figure 21, no sampling) --------------------------------

def _expand_swap_kind(sweep, code):
    points = []
    for swap_kind in (SwapKind.GATE_SWAP, SwapKind.ION_SWAP):
        times = OperationTimes(swap_kind=swap_kind)
        for design in ("baseline", "cyclone"):
            compiled = codesign_by_name(design, times=times).compile(code)
            points.append(ExpandedPoint(
                row={"design": design, "swap_kind": swap_kind.value,
                     "execution_time_us": compiled.execution_time_us},
                sampled=False))
    return points


register_kind(SweepKind(
    name="swap_kind",
    description="Figure 21: IonSWAP vs GateSWAP execution times for "
                "baseline and Cyclone (no sampling).",
    expand=_expand_swap_kind,
    static_columns=lambda sweep: ["design", "swap_kind",
                                  "execution_time_us"],
    title=lambda sweep: (
        f"Fig. 21 — IonSWAP vs GateSWAP sensitivity ({sweep.code})"),
    count=lambda sweep: 0,
    sampled=False,
))


# -- scenario_sweep (randomized differential fuzzing) ------------------

def _expand_scenario_sweep(sweep, code):
    del code  # scenarios bring their own generated codes
    values = kind_params(sweep)
    points = []
    for index in range(int(values["num_scenarios"])):
        scenario = generate_scenario(int(values["scenario_seed"]), index,
                                     shots=int(values["shots"]))
        scenario_code, latency = build_scenario(scenario)
        points.append(ExpandedPoint(
            row={"scenario": scenario.name, "code": scenario_code.name,
                 "codesign": scenario.codesign, "rounds": scenario.rounds,
                 "p": scenario.physical_error_rate,
                 "round_latency_us": latency,
                 "oracle_backend": values["check_backend"]},
            params={"scenario": scenario.to_dict(),
                    "oracle_backend": values["check_backend"]},
            physical_error_rate=scenario.physical_error_rate,
            round_latency_us=latency,
            code=scenario_code,
            rounds=scenario.rounds,
            basis=scenario.basis,
            shard_shots=scenario.shard_shots,
            max_bp_iterations=scenario.max_bp_iterations,
            experiment_key=scenario.name,
            cap=scenario.shots,
            pilot=scenario.shots,
            seed_entropy=scenario.seed,
            oracle=OracleCheck(reference=values["check_backend"],
                               scenario=scenario,
                               failure_dir=values["failure_dir"]),
        ))
    return points


def _validate_scenario_sweep(sweep) -> None:
    values = kind_params(sweep)
    if int(values["num_scenarios"]) < 1:
        raise ValueError(f"sweep {sweep.name!r}: num_scenarios must be "
                         "positive")
    if int(values["shots"]) < 1:
        raise ValueError(f"sweep {sweep.name!r}: scenario shots must be "
                         "positive")
    if values["check_backend"] not in ("packed", "bool", "native"):
        raise ValueError(f"sweep {sweep.name!r}: check_backend must be "
                         "'packed', 'bool' or 'native'")


register_kind(SweepKind(
    name="scenario_sweep",
    description="Randomized scenarios (generated codes, trap topologies "
                "and noise models) cross-checked bit-for-bit against a "
                "reference-backend oracle; mismatches are minimized to "
                "replayable JSON files.",
    params=(
        KindParam("num_scenarios", "int", 8,
                  "scenarios to generate"),
        KindParam("scenario_seed", "int", 0,
                  "entropy of the deterministic scenario stream"),
        KindParam("shots", "int", 128,
                  "shots sampled per scenario"),
        KindParam("check_backend", "str", "bool",
                  "reference oracle backend (runs workers=1, no pool)"),
        KindParam("failure_dir", "str", "scenario-failures",
                  "directory for minimized failure scenario files"),
    ),
    expand=_expand_scenario_sweep,
    static_columns=lambda sweep: ["scenario", "code", "codesign", "rounds",
                                  "p", "round_latency_us",
                                  "oracle_backend"],
    title=lambda sweep: (
        f"scenario fuzz (n={kind_params(sweep)['num_scenarios']}, "
        f"seed={kind_params(sweep)['scenario_seed']}, "
        f"oracle={kind_params(sweep)['check_backend']})"),
    count=lambda sweep: int(kind_params(sweep)["num_scenarios"]),
    needs_code=False,
    validate=_validate_scenario_sweep,
))
