"""The campaign orchestrator: every sweep, one budget, one pool.

PR 4's adaptive scheduler splits one sweep's budget across that sweep's
points.  A campaign runs the same pilot/allocate/refine loop **one
level up**: every curve point of every sweep joins a single pool of
:class:`~repro.core.sweep.AdaptivePoint` entries, and the global shot
budget flows to whichever points — in whichever sweeps — still need
confidence width.  The refine engine itself is shared with the
single-sweep scheduler (:func:`repro.core.sweep.run_adaptive_refine`),
so a one-sweep campaign allocates exactly like
:func:`repro.core.sweep.sweep_physical_error` (the degeneracy the
property tests pin down).

What a sweep *means* is delegated to the sweep-kind registry
(:mod:`repro.campaign.kinds`): each kind expands its spec into
:class:`~repro.campaign.kinds.ExpandedPoint` entries — the static table
cells, the operating point, optional per-point overrides (own code,
rounds, backend, budget pins) and an optional differential-oracle
check.  Points with ``sampled=False`` (the analytic compiler/swap
tables) appear in the result tables but never touch the budget or the
store.  Points carrying an :class:`~repro.campaign.kinds.OracleCheck`
(the ``scenario_sweep`` kind) are re-run after every sampling stage on
the reference backend with ``workers=1`` and must match bit for bit —
a mismatch minimizes the scenario to a replayable JSON file and raises
:class:`~repro.campaign.scenarios.ScenarioMismatch`.  Oracle re-runs
are a *check*, not an estimate, so their shots do not count against
the campaign budget.

Determinism and resume
----------------------
Every point samples from seeds derived as
``SeedSequence(entropy=spec.seed, spawn_key=(sweep_index, point_index,
stage))`` — a pure function of the spec, never of execution order — so
a point's tally does not depend on which other points ran before it.
(Points that carry their own entropy — a scenario's stored seed — use
``SeedSequence(entropy=point_entropy, spawn_key=(stage,))`` instead, so
the stored scenario file replays identically outside the campaign.)
Completed points are appended to a :class:`~repro.campaign.store.ResultStore`
the moment the campaign finalises them; a re-run against the same store
reuses every record (zero shots sampled) and re-renders the identical
tables, because rows are a pure function of the stored tallies
(:func:`~repro.core.sweep.tally_point_fields`).

All sweeps share one :class:`~repro.parallel.pipeline.SharedPool` when
``workers > 1`` — the campaign spawns worker processes once, and the
workers keep per-code pipeline state in a fingerprint-keyed cache.
Results are bit-identical for any worker count.
"""

from __future__ import annotations

import time
from contextlib import ExitStack
from dataclasses import dataclass, field

import numpy as np

from repro.campaign.coordination import (
    LeaseLost,
    LeaseManager,
    WorkerIdentity,
)
from repro.campaign.kinds import ExpandedPoint, OracleCheck, kind_by_name
from repro.campaign.scenarios import report_scenario_mismatch
from repro.campaign.spec import CampaignSpec, SweepSpec
from repro.campaign.store import ResultStore, fingerprint
from repro.codes import code_by_name
from repro.core.memory import MemoryExperiment, effective_rounds
from repro.core.results import PRECISION_COLUMNS, ResultTable
from repro.core.stats import PrecisionTarget
from repro.core.sweep import (
    AdaptivePoint,
    default_pilot_shots,
    run_adaptive_refine,
    tally_point_fields,
)
from repro.parallel.faults import active_plan
from repro.parallel.pipeline import SharedPool
from repro.parallel.sharded import resolve_workers

__all__ = ["CampaignInterrupted", "CampaignResult", "JoinedCampaign",
           "run_campaign"]


class CampaignInterrupted(RuntimeError):
    """A campaign stopped cleanly before finishing its budget.

    Raised when the ``stop`` callback (wired to SIGINT/SIGTERM by the
    CLI) or an injected ``sigterm_after_points`` fault fires: every
    point already finalised has been flushed to the store, no further
    sampling starts, and the pool is released on the way out.  A rerun
    against the same store resumes from everything flushed."""


def _point_seed(seed: int, sweep_index: int, point_index: int,
                stage: int) -> np.random.SeedSequence:
    """The seed for one (point, stage): pilot is stage 0, refine round
    ``r`` is stage ``r + 1``.  A pure function of the spec's seed and
    the point's position — execution order never enters."""
    return np.random.SeedSequence(
        entropy=seed, spawn_key=(sweep_index, point_index, stage))


@dataclass
class _CampaignPoint:
    """One estimation point, expanded from a sweep spec via its kind."""

    sweep_index: int
    point_index: int
    sweep: SweepSpec
    row: dict
    sampled: bool
    physical_error_rate: float
    round_latency_us: float
    rounds: int
    target: PrecisionTarget
    cap: int
    pilot: int
    key: str
    params: dict
    code: object = None
    basis: str = "Z"
    backend: str = "packed"
    shard_shots: int | None = None
    max_bp_iterations: int = 40
    osd_order: int = 0
    experiment_key: str = ""
    seed_entropy: int | None = None
    oracle: OracleCheck | None = None
    tally: list[int] = field(default_factory=lambda: [0, 0])
    reused: bool = False
    # Per-stage sampling log: [{"stage", "allocation", "failures",
    # "shots"}, ...], checkpointed to the store after every fresh stage
    # so a crash mid-point resumes from folded stages.  ``replay`` is
    # the stage → entry map rebuilt from such a partial record.
    stage_log: list = field(default_factory=list)
    replay: dict | None = None

    def fields(self) -> dict:
        return tally_point_fields(self.tally[0], self.tally[1], self.rounds,
                                  self.target, self.cap)


@dataclass
class CampaignResult:
    """Outcome of a campaign run: the tables plus the budget ledger.

    ``shots_sampled`` counts fresh Monte-Carlo work this run performed;
    ``shots_reused`` counts tallies served by whole-point store
    records; ``shots_replayed`` counts stages served by *partial*
    checkpoint records (a crash mid-point left a stage log behind).
    Their sum never exceeds ``budget`` (store records count against the
    budget exactly as they did when first sampled).  ``points_total``
    and ``targets_met`` count *sampled* points only — analytic rows
    (``compiler_comparison``, ``swap_kind``) have no budget story.

    Joined (multi-host) runs add three fields: ``shots_external``
    counts points finalised *by other workers* during this run (so
    every worker's ``spent`` reports the same global total and writes
    byte-identical summaries); ``shots_forfeited`` counts work this
    worker discarded after losing a lease mid-point (outside ``spent``
    — the usurper's final record carries those shots); ``worker`` is
    this process's lease identity.
    """

    spec: CampaignSpec
    tables: list[ResultTable]
    budget: int
    points_total: int
    points_reused: int
    shots_sampled: int
    shots_reused: int
    targets_met: int
    store_path: str | None = None
    shots_replayed: int = 0
    shots_external: int = 0
    shots_forfeited: int = 0
    worker: str | None = None

    @property
    def spent(self) -> int:
        return (self.shots_sampled + self.shots_reused
                + self.shots_replayed + self.shots_external)

    def summary_table(self) -> ResultTable:
        """Per-sweep rollup.  Deliberately free of the sampled/reused
        split (that is this *run's* ledger, see :meth:`stats_dict`), so
        a resumed campaign saves byte-identical summary files."""
        table = ResultTable(
            title=f"Campaign {self.spec.name}: "
                  f"{self.spent}/{self.budget} shots spent",
            columns=["sweep", "points", "shots_used", "targets_met"],
        )
        for sweep, sweep_table in zip(self.spec.sweeps, self.tables):
            table.add_row(
                sweep=sweep.name, points=sweep.num_points,
                shots_used=sum(row.get("shots_used", 0) or 0
                               for row in sweep_table.rows),
                targets_met=sum(
                    1 for row in sweep_table.rows
                    if sweep.target.met(row.get("failures", 0),
                                        row.get("shots_used", 0))),
            )
        return table

    def stats_dict(self) -> dict:
        """JSON-safe run ledger (what ``repro campaign --summary``
        writes): budget, sampled-vs-reused shots, resumed points."""
        return {
            "campaign": self.spec.name,
            "budget": self.budget,
            "spent": self.spent,
            "shots_sampled": self.shots_sampled,
            "shots_reused": self.shots_reused,
            "shots_replayed": self.shots_replayed,
            "shots_external": self.shots_external,
            "shots_forfeited": self.shots_forfeited,
            "points_total": self.points_total,
            "points_reused": self.points_reused,
            "targets_met": self.targets_met,
            "store": self.store_path,
            "worker": self.worker,
        }


def _point_final(point: _CampaignPoint, stored_keys: set[str]) -> bool:
    """Whether a sampled point can no longer change in this run."""
    if point.reused or point.key in stored_keys:
        return True
    failures, shots = point.tally
    return (point.target.met(failures, shots)
            or (point.cap > 0 and shots >= point.cap))


def _progress_snapshot(spec: CampaignSpec, points: list[_CampaignPoint],
                       phase: str, round_index: int | None, budget: int,
                       shots_sampled: int, shots_reused: int,
                       shots_replayed: int, shots_external: int,
                       stored_keys: set[str]) -> dict:
    """JSON-safe view of a running campaign for progress callbacks.

    This is the payload ``repro serve`` exposes at ``GET /jobs/<id>``,
    so it is part of the service protocol: points done, the shot
    ledger so far, and per-sweep confidence-interval widths (the
    worst remaining half-width per sweep, relative when the sweep's
    target is).  A pure function of its inputs — emitting progress
    never perturbs the run.
    """
    sweeps = []
    for sweep_index, sweep in enumerate(spec.sweeps):
        sweep_points = [point for point in points
                        if point.sweep_index == sweep_index and point.sampled]
        max_half_width = None
        for point in sweep_points:
            failures, shots = point.tally
            if shots <= 0:
                continue
            fields = tally_point_fields(failures, shots, point.rounds,
                                        point.target, point.cap)
            half = (fields["ci_high"] - fields["ci_low"]) / 2.0
            if point.target.relative and fields["logical_error_rate"] > 0:
                half /= fields["logical_error_rate"]
            if max_half_width is None or half > max_half_width:
                max_half_width = half
        sweeps.append({
            "sweep": sweep.name,
            "kind": sweep.kind,
            "points": len(sweep_points),
            "points_final": sum(1 for point in sweep_points
                                if _point_final(point, stored_keys)),
            "max_ci_half_width": max_half_width,
            "target": sweep.target.to_dict(),
        })
    sampled = [point for point in points if point.sampled]
    return {
        "phase": phase,
        "round": round_index,
        "budget": budget,
        "points_total": len(sampled),
        "points_final": sum(1 for point in sampled
                            if _point_final(point, stored_keys)),
        "shots_sampled": shots_sampled,
        "shots_reused": shots_reused,
        "shots_replayed": shots_replayed,
        "shots_external": shots_external,
        "sweeps": sweeps,
    }


def _expand_points(spec: CampaignSpec, budget: int,
                   campaign_fp: str) -> list[_CampaignPoint]:
    """Expand the spec via each sweep's kind (latencies compiled here).

    The store key of a sampled point fingerprints everything that
    shapes its tally: the campaign fingerprint, the point's position,
    its full experiment configuration and the kind-specific parameters
    the expansion attached.  Unsampled points get no key (they never
    reach the store).
    """
    points = []
    per_point = max(1, budget // max(1, spec.num_points))
    for sweep_index, sweep in enumerate(spec.sweeps):
        kind = kind_by_name(sweep.kind)
        code = code_by_name(sweep.code) if kind.needs_code else None
        cap_default = (sweep.max_shots if sweep.max_shots is not None
                       else budget)
        cap_default = max(1, min(int(cap_default), budget))
        if sweep.pilot_shots is not None:
            pilot_default = max(1, int(sweep.pilot_shots))
        else:
            pilot_default = default_pilot_shots(per_point)
        for point_index, expanded in enumerate(kind.expand(sweep, code)):
            point_code = (expanded.code if expanded.code is not None
                          else code)
            rounds = effective_rounds(
                point_code,
                expanded.rounds if expanded.rounds is not None
                else sweep.rounds) if point_code is not None else 1
            basis = (expanded.basis if expanded.basis is not None
                     else sweep.basis)
            backend = (expanded.backend if expanded.backend is not None
                       else sweep.backend)
            shard_shots = (expanded.shard_shots
                           if expanded.shard_shots is not None
                           else sweep.shard_shots)
            max_bp = (expanded.max_bp_iterations
                      if expanded.max_bp_iterations is not None
                      else sweep.max_bp_iterations)
            osd = (expanded.osd_order if expanded.osd_order is not None
                   else sweep.osd_order)
            if not expanded.sampled:
                points.append(_CampaignPoint(
                    sweep_index=sweep_index, point_index=point_index,
                    sweep=sweep, row=dict(expanded.row), sampled=False,
                    physical_error_rate=expanded.physical_error_rate,
                    round_latency_us=expanded.round_latency_us,
                    rounds=rounds, target=sweep.target, cap=0, pilot=0,
                    key="", params={},
                ))
                continue
            cap = cap_default
            if expanded.cap is not None:
                cap = max(1, min(int(expanded.cap), budget))
            pilot = (pilot_default if expanded.pilot is None
                     else max(1, int(expanded.pilot)))
            pilot = min(pilot, cap)
            params = {
                "campaign": campaign_fp,
                "sweep": sweep.name,
                "kind": sweep.kind,
                "sweep_index": sweep_index,
                "point_index": point_index,
                "code": point_code.name if point_code is not None else "",
                "method": sweep.method,
                "basis": basis,
                "backend": backend,
                "rounds": rounds,
                "shard_shots": shard_shots,
                "max_bp_iterations": max_bp,
                "osd_order": osd,
                "physical_error_rate": expanded.physical_error_rate,
                "round_latency_us": expanded.round_latency_us,
                "target": sweep.target.to_dict(),
                "cap": cap,
                "pilot": pilot,
                "seed": (expanded.seed_entropy
                         if expanded.seed_entropy is not None
                         else spec.seed),
            }
            params.update(expanded.params)
            points.append(_CampaignPoint(
                sweep_index=sweep_index, point_index=point_index,
                sweep=sweep, row=dict(expanded.row), sampled=True,
                physical_error_rate=expanded.physical_error_rate,
                round_latency_us=expanded.round_latency_us,
                rounds=rounds, target=sweep.target, cap=cap, pilot=pilot,
                key=fingerprint(params), params=params,
                code=point_code, basis=basis, backend=backend,
                shard_shots=shard_shots, max_bp_iterations=max_bp,
                osd_order=osd, experiment_key=expanded.experiment_key,
                seed_entropy=expanded.seed_entropy,
                oracle=expanded.oracle,
            ))
    return points


def _partition_points(points: list[_CampaignPoint], budget: int) -> None:
    """Statically partition the global budget across the sampled points.

    Joined (multi-host) mode cannot run the *global* variance-weighted
    allocator — it would need every worker's live tallies, exactly the
    coordination traffic the design forbids.  Instead each point gets a
    fixed share (budget // n, remainder to the earliest points) as its
    cap, and each point's pilot/refine schedule becomes a pure function
    of that point alone — so any worker that claims it produces the
    bit-identical tally, and ``--join`` with N hosts equals ``--join``
    with one.  The share, the clamped pilot and a ``coordination``
    marker are folded into the point's params (and thus its store key),
    so joined records and plain-campaign records never cross-match.
    """
    sampled = [point for point in points if point.sampled]
    if not sampled:
        return
    base, remainder = divmod(budget, len(sampled))
    for index, point in enumerate(sampled):
        share = max(1, base + (1 if index < remainder else 0))
        point.cap = max(1, min(point.cap, share))
        point.pilot = max(1, min(point.pilot, point.cap))
        point.params = dict(point.params, cap=point.cap, pilot=point.pilot,
                            coordination="lease-v1")
        point.key = fingerprint(point.params)


def _build_tables(spec: CampaignSpec,
                  points: list[_CampaignPoint]) -> list[ResultTable]:
    tables = []
    for sweep_index, sweep in enumerate(spec.sweeps):
        kind = kind_by_name(sweep.kind)
        sweep_points = [point for point in points
                        if point.sweep_index == sweep_index]
        columns = list(kind.static_columns(sweep))
        any_sampled = any(point.sampled for point in sweep_points)
        if kind.sampled and any_sampled:
            columns += (["failures", "logical_error_rate", "ler_per_round"]
                        + PRECISION_COLUMNS)
        elif kind.sampled:
            columns += ["logical_error_rate"]
        table = ResultTable(
            title=f"{spec.name} / {sweep.name}: {kind.title(sweep)}",
            columns=columns,
        )
        for point in sweep_points:
            row = dict(point.row)
            if point.sampled:
                row.update(point.fields())
            elif kind.sampled:
                row["logical_error_rate"] = float("nan")
            table.add_row(**row)
        tables.append(table)
    return tables


class JoinedCampaign:
    """One joined worker's view of a multi-host campaign.

    N of these (one per host/process, sharing one store file) cooperate
    through the lease protocol: each scans for points without a final
    record, claims a batch whose leases are free or expired, runs each
    claimed point to completion under heartbeat renewals, and releases.
    The budget is statically partitioned per point
    (:func:`_partition_points`), so every point's schedule is a pure
    function of the point — whichever worker runs it, the tally and
    therefore the tables are bit-identical, and N workers produce the
    same tables as one.

    A context manager (owns the worker pool and experiment cache):

    >>> with JoinedCampaign(spec, store, worker=identity) as joined:
    ...     result = joined.run()

    ``step()`` performs a single scheduling iteration (claim + run one
    batch) and returns a status string — the unit tests drive two
    workers by alternating ``step()`` calls.  ``clock`` and ``sleep``
    are injectable for deterministic expiry tests.
    """

    def __init__(self, spec: CampaignSpec,
                 store: "ResultStore | str",
                 worker: WorkerIdentity | None = None,
                 workers: int = 1,
                 budget: int | None = None,
                 lease_ttl: float | None = None,
                 claim_batch: int | None = None,
                 poll_interval: float | None = None,
                 shard_timeout: float | None = None,
                 max_shard_retries: int | None = None,
                 stop=None,
                 progress=None,
                 clock=time.time,
                 sleep=time.sleep) -> None:
        spec.validate_names()
        if store is None:
            raise ValueError("a joined campaign requires a shared store")
        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.spec = spec
        self.store = store
        self.worker = worker if worker is not None else \
            WorkerIdentity.generate()
        self.budget = int(budget) if budget is not None else spec.budget
        if self.budget < 1:
            raise ValueError("budget must be a positive shot count")
        ttl = (float(lease_ttl) if lease_ttl is not None
               else spec.lease_ttl if spec.lease_ttl is not None else 60.0)
        batch = (int(claim_batch) if claim_batch is not None
                 else spec.claim_batch if spec.claim_batch is not None
                 else 2)
        if batch < 1:
            raise ValueError("claim batch must be positive")
        self.claim_batch = batch
        self.poll_interval = (float(poll_interval)
                              if poll_interval is not None
                              else min(1.0, ttl / 3.0))
        self.stop = stop
        self.progress = progress
        self.clock = clock
        self.sleep = sleep
        self.shard_timeout = shard_timeout
        self.max_shard_retries = max_shard_retries
        self.campaign_fp = spec.fingerprint(budget=self.budget)
        self.points = _expand_points(spec, self.budget, self.campaign_fp)
        _partition_points(self.points, self.budget)
        self.sampled = [point for point in self.points if point.sampled]
        self.by_key = {point.key: point for point in self.sampled}
        self.manager = LeaseManager(store, self.worker, ttl, clock=clock)
        self.shots_sampled = 0
        self.shots_replayed = 0
        self.shots_forfeited = 0
        self.points_finalized = 0
        self.finalized_by_us: set[str] = set()
        self.reused_at_start: set[str] = set()
        store.refresh()
        for point in self.sampled:
            record = store.get(point.key)
            if record is not None and not record.get("partial"):
                self.reused_at_start.add(point.key)
        self.worker_count = resolve_workers(workers)
        self._stack: ExitStack | None = None
        self._pool = None
        self._experiments: dict = {}

    # ------------------------------------------------------------------
    def __enter__(self) -> "JoinedCampaign":
        self._stack = ExitStack().__enter__()
        if self.worker_count > 1:
            self._pool = self._stack.enter_context(
                SharedPool(self.worker_count))
        return self

    def __exit__(self, *exc_info) -> bool | None:
        stack, self._stack = self._stack, None
        self._pool = None
        self._experiments.clear()
        if stack is not None:
            return stack.__exit__(*exc_info)
        return None

    # ------------------------------------------------------------------
    def _experiment_for(self, point: _CampaignPoint,
                        reference: str | None = None) -> MemoryExperiment:
        if self._stack is None:
            raise RuntimeError("JoinedCampaign must be entered first")
        key = (point.sweep_index, point.experiment_key, reference)
        experiment = self._experiments.get(key)
        if experiment is None:
            timeout = (self.shard_timeout if self.shard_timeout is not None
                       else point.sweep.shard_timeout)
            retries = (self.max_shard_retries
                       if self.max_shard_retries is not None
                       else point.sweep.max_shard_retries)
            experiment = self._stack.enter_context(MemoryExperiment(
                code=point.code, rounds=point.rounds,
                basis=point.basis, method=point.sweep.method,
                max_bp_iterations=point.max_bp_iterations,
                osd_order=point.osd_order, seed=self.spec.seed,
                backend=(reference if reference is not None
                         else point.backend),
                workers=1 if reference is not None else self.worker_count,
                shard_shots=point.shard_shots,
                pool=None if reference is not None else self._pool,
                shard_timeout=None if reference is not None else timeout,
                max_shard_retries=(None if reference is not None
                                   else retries),
            ))
            self._experiments[key] = experiment
        return experiment

    def _seed_for(self, point: _CampaignPoint,
                  stage: int) -> np.random.SeedSequence:
        if point.seed_entropy is not None:
            return np.random.SeedSequence(entropy=point.seed_entropy,
                                          spawn_key=(int(stage),))
        return _point_seed(self.spec.seed, point.sweep_index,
                           point.point_index, stage)

    # ------------------------------------------------------------------
    def _checkpoint(self, point: _CampaignPoint) -> None:
        self.store.append({
            "key": point.key,
            "campaign": self.campaign_fp,
            "spec_name": self.spec.name,
            "sweep": point.sweep.name,
            "params": point.params,
            "partial": True,
            "stages": list(point.stage_log),
            "failures": sum(e["failures"] for e in point.stage_log),
            "shots": sum(e["shots"] for e in point.stage_log),
            "epoch": self.manager.held.get(point.key, 0),
            "worker": str(self.worker),
        })

    def _flush_final(self, point: _CampaignPoint) -> None:
        self.store.append({
            "key": point.key,
            "campaign": self.campaign_fp,
            "spec_name": self.spec.name,
            "sweep": point.sweep.name,
            "params": point.params,
            "failures": point.tally[0],
            "shots": point.tally[1],
            "epoch": self.manager.held.get(point.key, 0),
            "worker": str(self.worker),
        })
        self.points_finalized += 1
        plan = active_plan()
        if plan is not None and plan.take_sigterm(self.points_finalized):
            raise CampaignInterrupted(
                f"injected interrupt after {self.points_finalized} points")

    def _sample(self, point: _CampaignPoint, allocation: int,
                prior: tuple[int, int], stage: int) -> tuple[int, int]:
        # Liveness first: if the lease was usurped (our heartbeats were
        # too slow, or suppressed by a fault plan), LeaseLost propagates
        # to _run_point which forfeits the whole point.
        self.manager.heartbeat(point.key)
        if point.replay is not None:
            logged = point.replay.get(stage)
            if (logged is not None
                    and int(logged["allocation"]) == int(allocation)):
                failures = int(logged["failures"])
                used = int(logged["shots"])
                self.shots_replayed += used
                point.stage_log.append({
                    "stage": stage, "allocation": int(allocation),
                    "failures": failures, "shots": used,
                })
                return failures, used
            point.replay = None
        result = self._experiment_for(point).run(
            point.physical_error_rate, point.round_latency_us,
            shots=allocation, target_precision=point.target,
            prior_tally=prior,
            seed=self._seed_for(point, stage),
        )
        if point.oracle is not None:
            check = self._experiment_for(
                point, reference=point.oracle.reference,
            ).run(point.physical_error_rate, point.round_latency_us,
                  shots=allocation, target_precision=point.target,
                  prior_tally=prior, seed=self._seed_for(point, stage))
            if ((check.failures, check.shots)
                    != (result.failures, result.shots)):
                report_scenario_mismatch(
                    point.oracle.scenario, point.backend,
                    point.oracle.reference, point.oracle.failure_dir,
                    detail=(f"campaign {self.spec.name!r} sweep "
                            f"{point.sweep.name!r} stage {stage}: "
                            f"fast ({result.failures}, {result.shots}) "
                            f"!= oracle ({check.failures}, "
                            f"{check.shots})"))
        self.shots_sampled += int(result.shots)
        point.stage_log.append({
            "stage": stage, "allocation": int(allocation),
            "failures": int(result.failures), "shots": int(result.shots),
        })
        self._checkpoint(point)
        return result.failures, result.shots

    def _run_point(self, point: _CampaignPoint) -> str:
        """Run one claimed point to completion (or forfeit it)."""
        before_sampled = self.shots_sampled
        before_replayed = self.shots_replayed
        try:
            record = self.store.get(point.key)
            if record is not None and not record.get("partial"):
                # Finalised between our scan and our claim winning.
                self.manager.release(point.key)
                return "external"
            point.tally[:] = [0, 0]
            point.stage_log.clear()
            point.replay = None
            if record is not None and record.get("partial"):
                # A dead (or usurped) owner left per-stage checkpoints:
                # replay them instead of re-sampling — bit-identical,
                # because stage seeds are pure functions of the spec.
                point.replay = {int(entry["stage"]): entry
                                for entry in record.get("stages", ())}
            allocation = min(point.pilot, point.cap)
            if allocation > 0:
                failures, used = self._sample(point, allocation, (0, 0),
                                              stage=0)
                point.tally[0] += failures
                point.tally[1] += used
            adaptive = [AdaptivePoint(
                target=point.target, cap=point.cap,
                runner=(lambda allocation, prior, round_index:
                        self._sample(point, allocation, prior,
                                     stage=round_index + 1)),
                tally=point.tally,
            )]
            run_adaptive_refine(adaptive, point.cap, point.tally[1],
                                should_stop=self.stop)
            if self.stop is not None and self.stop():
                # Graceful interrupt mid-point: the stage log is already
                # checkpointed, so whoever claims next replays it.
                raise CampaignInterrupted(
                    "joined campaign interrupted mid-point")
            self._flush_final(point)
            self.manager.release(point.key)
            self.finalized_by_us.add(point.key)
            return "done"
        except LeaseLost:
            # Usurped: un-count everything this run put into the point
            # — the usurper's final record carries those shots — and
            # reset it so a later reclaim rebuilds from the store.
            forfeited = ((self.shots_sampled - before_sampled)
                         + (self.shots_replayed - before_replayed))
            self.shots_sampled = before_sampled
            self.shots_replayed = before_replayed
            self.shots_forfeited += forfeited
            point.tally[:] = [0, 0]
            point.stage_log.clear()
            point.replay = None
            return "lost"

    # ------------------------------------------------------------------
    def step(self) -> str:
        """One scheduling iteration.  Returns ``"complete"`` (every
        point has a final record), ``"worked"`` (claimed and ran a
        batch), ``"contended"`` (lost every claim race), or
        ``"waiting"`` (all remaining points are under live leases held
        elsewhere — poll again after a sleep)."""
        if self.stop is not None and self.stop():
            self.manager.abandon_all()
            raise CampaignInterrupted("joined campaign interrupted")
        self.store.refresh()
        pending = [point for point in self.sampled
                   if point.key not in self.finalized_by_us]
        pending = [point for point in pending
                   if (self.store.get(point.key) is None
                       or self.store.get(point.key).get("partial"))]
        if not pending:
            return "complete"
        now = self.clock()
        claimable = [point.key for point in pending
                     if point.key not in self.manager.held
                     and self.manager.claimable(point.key, now)]
        if not claimable:
            return "waiting"
        won = self.manager.claim(claimable[:self.claim_batch])
        if not won:
            return "contended"
        for key in won:
            self._run_point(self.by_key[key])
        self._emit("join")
        return "worked"

    def _emit(self, phase: str) -> None:
        """Progress for a served joined worker: finals in the shared
        store count as done whichever worker paid for them."""
        if self.progress is None:
            return
        stored = set()
        for point in self.sampled:
            record = self.store.get(point.key)
            if record is not None and not record.get("partial"):
                stored.add(point.key)
        self.progress(_progress_snapshot(
            self.spec, self.points, phase, None, self.budget,
            self.shots_sampled, 0, self.shots_replayed, 0, stored))

    def run(self) -> CampaignResult:
        """Claim and run until every point has a final record."""
        try:
            while True:
                status = self.step()
                if status == "complete":
                    return self.result()
                if status in ("waiting", "contended"):
                    self.sleep(self.poll_interval)
        except CampaignInterrupted:
            # Graceful exit: give the held leases back immediately so
            # surviving workers need not wait out the TTL.  (Injected
            # crashes — InjectedFault — deliberately do NOT abandon:
            # a dead process cannot clean up, and the whole point is
            # exercising TTL-expiry reclaim.)
            self.manager.abandon_all()
            raise

    def result(self) -> CampaignResult:
        """Assemble this worker's result (tables from the shared store).

        Every final record is attributed exactly once: our own
        sampling/replay, reuse (final before we started), or external
        (another worker finalised it during the run) — so ``spent`` is
        the same global total on every worker and the summary tables
        are byte-identical."""
        self.store.refresh()
        shots_reused = 0
        shots_external = 0
        for point in self.sampled:
            record = self.store.get(point.key)
            if record is None or record.get("partial"):
                continue
            if point.key not in self.finalized_by_us:
                shots = int(record["shots"])
                if point.key in self.reused_at_start:
                    shots_reused += shots
                else:
                    shots_external += shots
                point.tally[:] = [int(record["failures"]), shots]
        targets_met = sum(
            1 for point in self.sampled
            if point.target.met(point.tally[0], point.tally[1]))
        return CampaignResult(
            spec=self.spec,
            tables=_build_tables(self.spec, self.points),
            budget=self.budget,
            points_total=len(self.sampled),
            points_reused=len(self.reused_at_start),
            shots_sampled=self.shots_sampled,
            shots_reused=shots_reused,
            shots_replayed=self.shots_replayed,
            targets_met=targets_met,
            store_path=str(self.store.path),
            shots_external=shots_external,
            shots_forfeited=self.shots_forfeited,
            worker=str(self.worker),
        )


def run_campaign(spec: CampaignSpec,
                 store: "ResultStore | str | None" = None,
                 workers: int = 1,
                 budget: int | None = None,
                 shard_timeout: float | None = None,
                 max_shard_retries: int | None = None,
                 stop=None,
                 join: bool = False,
                 worker_id: "WorkerIdentity | str | None" = None,
                 lease_ttl: float | None = None,
                 claim_batch: int | None = None,
                 poll_interval: float | None = None,
                 progress=None,
                 pool: "SharedPool | None" = None) -> CampaignResult:
    """Run (or resume) a campaign under its global shot budget.

    ``store`` enables resume: a path or :class:`ResultStore` whose
    records — keyed on the campaign fingerprint plus each point's
    parameters — are reused instead of re-sampled.  Beyond whole-point
    records, the orchestrator checkpoints a per-stage sampling log
    into the store after every pilot/refine stage of every point, so a
    crash mid-point resumes by *replaying* the logged stages (their
    seeds are pure functions of the spec, so replay is bit-identical
    and costs zero sampling) instead of re-sampling the point from
    scratch.  ``workers`` sizes the shared process pool every sweep
    streams through (``1``: in-process; ``0``: one per core; results
    bit-identical for any value).  ``budget`` overrides the spec's
    global budget, e.g. to dry-run ``paper_figures`` at a fraction of
    the paper's shots (the override participates in the store key:
    runs at different budgets never cross-contaminate).

    ``shard_timeout`` / ``max_shard_retries`` override every sweep's
    fault-tolerance knobs for this run (see
    :class:`~repro.campaign.spec.SweepSpec`; excluded from the store
    key).  ``stop`` is an optional zero-argument callable polled
    between units of work; once it returns true the campaign flushes
    everything finalised, releases the pool and raises
    :class:`CampaignInterrupted` — the CLI wires SIGINT/SIGTERM to it.

    ``join=True`` switches to multi-host mode (see
    :class:`JoinedCampaign`): this process becomes one worker among
    possibly many sharing ``store``, claiming points under leases of
    ``lease_ttl`` seconds (renewed while sampling), ``claim_batch`` at
    a time, polling every ``poll_interval`` seconds while rivals hold
    live leases.  ``worker_id`` labels this worker (a
    ``host:pid:token`` triple, or any string used as the host label of
    a generated identity).  The budget is statically partitioned per
    point, so joined tables are bit-identical for any number of
    workers — but differ from a non-joined run of the same spec (the
    store keys differ too, so the two modes never cross-contaminate).

    ``progress`` is an optional callback receiving a JSON-safe
    snapshot dict (see :func:`_progress_snapshot`) after the reuse
    scan, after every pilot point, after every refine round and at
    completion — ``repro serve`` wires it to job status.  ``pool``
    lends an externally owned :class:`SharedPool` to the run (the
    service shares one pool across every job); the campaign then
    neither creates nor closes a pool and sizes the experiments to
    ``pool.workers``.

    A store shared with other live writers (``--join`` workers or a
    second plain run of the *same spec and budget*) is re-read before
    every allocation round: fresh points that gained a final record
    elsewhere — final on merit, i.e. target met or cap reached — are
    adopted instead of re-sampled, counted as ``shots_external``
    against this run's budget exactly like the start-of-run reuse
    scan.
    """
    if join:
        if store is None:
            raise ValueError("a joined campaign requires a shared store "
                             "(--join needs --store)")
        if isinstance(worker_id, WorkerIdentity):
            worker = worker_id
        elif worker_id:
            worker = WorkerIdentity.parse(str(worker_id))
        else:
            worker = WorkerIdentity.generate()
        with JoinedCampaign(
                spec, store, worker=worker, workers=workers, budget=budget,
                lease_ttl=lease_ttl, claim_batch=claim_batch,
                poll_interval=poll_interval, shard_timeout=shard_timeout,
                max_shard_retries=max_shard_retries, stop=stop,
                progress=progress) as joined:
            return joined.run()

    spec.validate_names()
    effective_budget = int(budget) if budget is not None else spec.budget
    if effective_budget < 1:
        raise ValueError("budget must be a positive shot count")
    campaign_fp = spec.fingerprint(budget=effective_budget)
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)
    if store is not None:
        # A long-lived ResultStore instance may predate another
        # process's appends; fold them in before deciding what to
        # reuse vs re-sample.
        store.refresh()

    points = _expand_points(spec, effective_budget, campaign_fp)
    sampled_points = [point for point in points if point.sampled]

    shots_reused = 0
    for point in sampled_points:
        record = store.get(point.key) if store is not None else None
        if record is None:
            continue
        if record.get("partial"):
            # A crash left a per-stage checkpoint behind: the point is
            # still fresh (it runs through pilot/refine as usual), but
            # every logged stage is served from the log instead of
            # sampled — bit-identical, because stage seeds are pure
            # functions of the spec.
            point.replay = {int(entry["stage"]): entry
                            for entry in record.get("stages", ())}
            continue
        point.tally = [int(record["failures"]), int(record["shots"])]
        point.reused = True
        shots_reused += point.tally[1]

    spent = shots_reused
    shots_sampled = 0
    shots_replayed = 0
    shots_external = 0
    points_finalized = 0
    fresh = [point for point in sampled_points if not point.reused]

    # Interruption safety: flush a fresh point to the store the moment
    # it can no longer change — target met or per-point cap reached —
    # so a killed campaign resumes everything already finalised.  The
    # remaining (budget-exhausted) points are flushed at the end.
    stored_keys: set[str] = set()

    def emit(phase: str, round_index: int | None = None) -> None:
        if progress is None:
            return
        progress(_progress_snapshot(
            spec, points, phase, round_index, effective_budget,
            shots_sampled - shots_replayed, shots_reused, shots_replayed,
            shots_external, stored_keys))

    def adopt_external(round_index: int | None = None) -> int:
        """Fold in finals appended by other processes since we last
        looked — the mid-run counterpart of the start-of-run reuse
        scan, so a long-running served job benefits from ``--join``
        workers (or a second run of the same spec and budget) feeding
        the same store file.  Only records final *on merit* — target
        met or cap reached — are adopted; a record final merely
        because another run's budget ran out keeps sampling here.
        Returns the adopted shots, which count against this run's
        budget exactly like start-of-run reuse."""
        nonlocal shots_external
        if store is None or store.refresh() == 0:
            return 0
        adopted = 0
        for point in fresh:
            if point.key in stored_keys:
                continue
            # ``final_for``, not ``get``: this run's own in-flight
            # partial checkpoints land *after* a rival's final under
            # the same key, and plain last-wins would hide it.
            record = store.final_for(point.key)
            if record is None:
                continue
            failures = int(record["failures"])
            shots = int(record["shots"])
            if not (point.target.met(failures, shots)
                    or shots >= point.cap):
                continue
            point.tally[:] = [failures, shots]
            point.replay = None
            point.stage_log.clear()
            stored_keys.add(point.key)
            if store.get(point.key) is not record:
                # Our own partial checkpoint shadows the adopted final
                # in file order; re-append it so a later cold resume
                # reuses the point instead of replaying the stale log.
                store.append({k: v for k, v in record.items()
                              if k != "version"})
            shots_external += shots
            adopted += shots
        if adopted:
            emit("external", round_index)
        return adopted

    def flush(point: _CampaignPoint, force: bool = False) -> None:
        nonlocal points_finalized
        if store is None or point.key in stored_keys:
            return
        final = (force or point.tally[1] >= point.cap
                 or point.target.met(point.tally[0], point.tally[1]))
        if not final:
            return
        store.append({
            "key": point.key,
            "campaign": campaign_fp,
            "spec_name": spec.name,
            "sweep": point.sweep.name,
            "params": point.params,
            "failures": point.tally[0],
            "shots": point.tally[1],
        })
        stored_keys.add(point.key)
        points_finalized += 1
        plan = active_plan()
        if plan is not None and plan.take_sigterm(points_finalized):
            # Injected stand-in for SIGTERM: exercise the same
            # flush/raise path the real signal handlers reach via
            # ``stop``, deterministically placed after this point.
            raise CampaignInterrupted(
                f"injected interrupt after {points_finalized} points")

    def checkpoint(point: _CampaignPoint) -> None:
        """Persist the point's stage log (a partial, superseded later
        by the final record under the same key)."""
        if store is None:
            return
        store.append({
            "key": point.key,
            "campaign": campaign_fp,
            "spec_name": spec.name,
            "sweep": point.sweep.name,
            "params": point.params,
            "partial": True,
            "stages": list(point.stage_log),
            "failures": sum(e["failures"] for e in point.stage_log),
            "shots": sum(e["shots"] for e in point.stage_log),
        })

    def seed_for(point: _CampaignPoint, stage: int) -> np.random.SeedSequence:
        if point.seed_entropy is not None:
            return np.random.SeedSequence(entropy=point.seed_entropy,
                                          spawn_key=(int(stage),))
        return _point_seed(spec.seed, point.sweep_index, point.point_index,
                           stage)

    emit("reuse")

    with ExitStack() as stack:
        if pool is not None:
            # Externally owned (the service lends its pool to every
            # job): use it, never close it.
            worker_count = pool.workers
        else:
            worker_count = resolve_workers(workers)
            if worker_count > 1 and fresh:
                pool = stack.enter_context(SharedPool(worker_count))
        experiments: dict = {}

        def experiment_for(point: _CampaignPoint,
                           reference: str | None = None) -> MemoryExperiment:
            key = (point.sweep_index, point.experiment_key, reference)
            experiment = experiments.get(key)
            if experiment is None:
                # The run-level overrides win over the sweep's knobs;
                # oracle reference runs are in-process and need neither.
                timeout = (shard_timeout if shard_timeout is not None
                           else point.sweep.shard_timeout)
                retries = (max_shard_retries if max_shard_retries is not None
                           else point.sweep.max_shard_retries)
                experiment = stack.enter_context(MemoryExperiment(
                    code=point.code, rounds=point.rounds,
                    basis=point.basis, method=point.sweep.method,
                    max_bp_iterations=point.max_bp_iterations,
                    osd_order=point.osd_order, seed=spec.seed,
                    backend=(reference if reference is not None
                             else point.backend),
                    workers=1 if reference is not None else worker_count,
                    shard_shots=point.shard_shots,
                    pool=None if reference is not None else pool,
                    shard_timeout=None if reference is not None else timeout,
                    max_shard_retries=(None if reference is not None
                                       else retries),
                ))
                experiments[key] = experiment
            return experiment

        def sample(point: _CampaignPoint, allocation: int,
                   prior: tuple[int, int], stage: int) -> tuple[int, int]:
            nonlocal shots_replayed
            if point.replay is not None:
                logged = point.replay.get(stage)
                if (logged is not None
                        and int(logged["allocation"]) == int(allocation)):
                    # Completed stage from a partial checkpoint: serve
                    # the logged tally, sample nothing.  (The oracle
                    # check already passed when the stage first ran.)
                    failures = int(logged["failures"])
                    used = int(logged["shots"])
                    shots_replayed += used
                    point.stage_log.append({
                        "stage": stage, "allocation": int(allocation),
                        "failures": failures, "shots": used,
                    })
                    return failures, used
                # Allocation diverged (e.g. the log predates a spec-
                # compatible change in execution knobs): drop the rest
                # of the log and re-sample — stage seeds make that
                # bit-identical anyway.
                point.replay = None
            result = experiment_for(point).run(
                point.physical_error_rate, point.round_latency_us,
                shots=allocation, target_precision=point.target,
                prior_tally=prior,
                seed=seed_for(point, stage),
            )
            if point.oracle is not None:
                # Identical sampling on the reference backend (workers=1,
                # no pool); an equal-valued SeedSequence rebuilds the same
                # shard tree, so the oracle re-draws the fast run's exact
                # shots.  Oracle shots are a check, not an estimate —
                # they never count against the campaign budget.
                check = experiment_for(
                    point, reference=point.oracle.reference,
                ).run(point.physical_error_rate, point.round_latency_us,
                      shots=allocation, target_precision=point.target,
                      prior_tally=prior, seed=seed_for(point, stage))
                if ((check.failures, check.shots)
                        != (result.failures, result.shots)):
                    report_scenario_mismatch(
                        point.oracle.scenario, point.backend,
                        point.oracle.reference, point.oracle.failure_dir,
                        detail=(f"campaign {spec.name!r} sweep "
                                f"{point.sweep.name!r} stage {stage}: "
                                f"fast ({result.failures}, {result.shots}) "
                                f"!= oracle ({check.failures}, "
                                f"{check.shots})"))
            point.stage_log.append({
                "stage": stage, "allocation": int(allocation),
                "failures": int(result.failures), "shots": int(result.shots),
            })
            checkpoint(point)
            return result.failures, result.shots

        def interrupt(message: str) -> None:
            """Stop cleanly: flush whatever already finalised, raise."""
            for point in fresh:
                flush(point)
            raise CampaignInterrupted(message)

        # Pilot: a streamed taste of every fresh point, in spec order.
        for point in fresh:
            if stop is not None and stop():
                interrupt("campaign interrupted during pilot")
            allocation = min(point.pilot, point.cap,
                             max(0, effective_budget - spent))
            if allocation > 0:
                failures, used = sample(point, allocation, (0, 0), stage=0)
                point.tally[0] += failures
                point.tally[1] += used
                spent += used
                shots_sampled += used
            flush(point)
            emit("pilot")

        # Allocate / refine the global pool across every fresh point of
        # every sweep — the single-sweep engine, one level up.
        adaptive = [
            AdaptivePoint(
                target=point.target, cap=point.cap,
                runner=(lambda allocation, prior, round_index, *,
                        _point=point: sample(_point, allocation, prior,
                                             stage=round_index + 1)),
                tally=point.tally,
            )
            for point in fresh
        ]

        def flush_round(round_index: int) -> None:
            for point in fresh:
                flush(point)
            emit("refine", round_index)

        spent_before_refine = spent
        spent_after = run_adaptive_refine(adaptive, effective_budget, spent,
                                          after_round=flush_round,
                                          should_stop=stop,
                                          before_round=adopt_external)
        # The refine spend is everything beyond what we carried in,
        # minus the external finals adopted between rounds (those were
        # sampled elsewhere; ``adopt_external`` fed them into the
        # engine's budget arithmetic but they are not our sampling).
        shots_sampled += spent_after - spent_before_refine - shots_external
        if stop is not None and stop():
            interrupt("campaign interrupted during refine")

        # One last look before force-flushing: a final that landed
        # elsewhere after our last round must win over our
        # budget-exhausted tally (force-flushing ours would clobber
        # the merit-final record under last-wins resume).
        adopt_external()

        # Whatever is left stopped because the global budget ran out —
        # final for this campaign, so it is stored too.
        for point in fresh:
            flush(point, force=True)
        emit("final")

    targets_met = sum(
        1 for point in sampled_points
        if point.target.met(point.tally[0], point.tally[1]))
    return CampaignResult(
        spec=spec,
        tables=_build_tables(spec, points),
        budget=effective_budget,
        points_total=len(sampled_points),
        points_reused=len(sampled_points) - len(fresh),
        # Replayed stages flowed through the same counters as sampling
        # (they spend budget identically); split them back out here.
        shots_sampled=shots_sampled - shots_replayed,
        shots_reused=shots_reused,
        shots_replayed=shots_replayed,
        shots_external=shots_external,
        targets_met=targets_met,
        store_path=str(store.path) if store is not None else None,
    )
