"""Parameter sweeps behind the evaluation figures.

Two sweeps recur throughout the paper: the physical-error-rate sweep of
a fixed codesign (the LER curves of Figures 5, 14, 15, 17, 18) and the
architecture sweep at a fixed operating point (Figures 6, 13, 16, 19,
20).  Both return :class:`~repro.core.results.ResultTable` rows so the
benchmarks can print exactly the series the paper plots.

Adaptive shot allocation
------------------------
A fixed per-point shot budget wastes most of its wall-clock: at equal
confidence widths, the shots a point *needs* vary by orders of
magnitude across a sweep (binomial variance ``p(1-p)`` for absolute
widths; ``(1-p)/p`` for relative ones).  With ``target_precision=`` the
sweeps therefore run a **pilot / allocate / refine loop** instead of a
fixed budget:

1. **Pilot** — every point gets a small budget (``pilot_shots``),
   streamed through the early-stopping pipeline (points that already
   meet the target stop right there).
2. **Allocate** — the remaining global budget (``shots`` × number of
   points) is split across the unmet points proportional to their
   estimated per-shot variance (:func:`allocate_shots`), so shots
   concentrate where they actually buy confidence width.
3. **Refine** — each unmet point streams through its allocation with
   the pilot tally carried into the stop rule (``prior_tally``), and
   the loop repeats with updated estimates until every point meets the
   target or the global budget is spent.

Every step is a pure function of shard-prefix tallies, so the whole
adaptive sweep inherits the pipeline's determinism contract: results
are bit-identical for any ``workers=`` at fixed ``shard_shots`` /
``target_precision`` / ``pilot_shots``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.codes.css import CSSCode
from repro.core.codesign import Codesign
from repro.core.memory import MemoryExperiment
from repro.core.results import PRECISION_COLUMNS, ResultTable, precision_fields
from repro.core.spacetime import spacetime_cost
from repro.core.stats import PrecisionTarget, as_precision_target, binomial_interval

__all__ = [
    "AdaptivePoint",
    "allocate_shots",
    "default_pilot_shots",
    "run_adaptive_refine",
    "sweep_architectures",
    "sweep_physical_error",
    "tally_point_fields",
]

#: Hard ceiling on refine rounds — each round spends real budget, so
#: this only guards against a pathological no-progress loop.
_MAX_REFINE_ROUNDS = 8

#: Smallest refine allocation worth dispatching (one worthwhile shard).
_MIN_REFINE_SHOTS = 32


def default_pilot_shots(per_point_budget: int) -> int:
    """Pilot sizing shared by the sweep and campaign schedulers: a
    quarter of the per-point budget share, clamped to [32, 512]."""
    return max(_MIN_REFINE_SHOTS, min(int(per_point_budget) // 4, 512))


def _estimated_rate(failures: int, shots: int) -> float:
    """Laplace-smoothed failure-rate estimate (defined at 0 failures)."""
    return (failures + 1.0) / (shots + 2.0)


def allocate_shots(tallies: Sequence[tuple[int, int]], budget: int,
                   caps: Sequence[int],
                   relative: "bool | Sequence[bool]" = False) -> list[int]:
    """Split ``budget`` shots across points proportional to variance.

    ``tallies`` holds each point's observed ``(failures, shots)``;
    ``caps`` bounds what each point may still receive.  The weight is
    the estimated per-shot variance of what the target constrains: the
    absolute estimate's variance ``p(1-p)`` by default, or the relative
    estimate's ``(1-p)/p`` for relative targets (low-rate points need
    the extra shots there).  ``relative`` may be one flag for the whole
    sweep or one flag per point — the campaign orchestrator pools
    points whose sweeps target different width kinds, and a uniform
    flag sequence allocates identically to the scalar (the single-sweep
    degeneracy the property tests pin down).  Rates are
    Laplace-smoothed so zero-failure pilots still produce usable
    weights.  Pure arithmetic on the inputs — allocation is part of
    the determinism contract.
    """
    if isinstance(relative, bool):
        flags: Sequence[bool] = [relative] * len(tallies)
    else:
        flags = list(relative)
        if len(flags) != len(tallies):
            raise ValueError("one relative flag per tally required")
    if budget <= 0 or not tallies:
        return [0] * len(tallies)
    weights = []
    for (failures, shots), point_relative in zip(tallies, flags):
        p = _estimated_rate(failures, shots)
        weights.append((1.0 - p) / p if point_relative else p * (1.0 - p))
    total = sum(weights)
    if total <= 0.0:
        weights = [1.0] * len(tallies)
        total = float(len(tallies))
    allocations = []
    for weight, cap in zip(weights, caps):
        share = int(budget * weight / total)
        allocations.append(max(0, min(cap, share)))
    return allocations


@dataclass
class AdaptivePoint:
    """One estimation point of an adaptive allocate/refine run.

    ``runner(shots, prior_tally, round_index)`` spends up to ``shots``
    on the point (with the accumulated tally carried into the stop
    rule) and returns the ``(failures, shots)`` it actually used;
    ``cap`` bounds the point's total spend and ``tally`` accumulates
    across rounds.  :func:`run_adaptive_refine` drives a pool of these
    — the same engine serves one sweep's points
    (:func:`sweep_physical_error`) and a whole campaign's
    (:mod:`repro.campaign`).
    """

    target: PrecisionTarget
    cap: int
    runner: Callable[[int, tuple[int, int], int], tuple[int, int]]
    tally: list[int] = field(default_factory=lambda: [0, 0])

    @property
    def met(self) -> bool:
        return self.target.met(self.tally[0], self.tally[1])

    @property
    def exhausted(self) -> bool:
        return self.tally[1] >= self.cap


def run_adaptive_refine(points: Sequence[AdaptivePoint], global_budget: int,
                        spent: int = 0,
                        after_round: Callable[[int], None] | None = None,
                        should_stop: Callable[[], bool] | None = None,
                        before_round: Callable[[int], int | None] | None
                        = None) -> int:
    """Allocate / refine until every point is tight or the budget is gone.

    Each round re-allocates the remaining ``global_budget - spent``
    across the unmet points by estimated variance
    (:func:`allocate_shots`), floors starved points at
    ``_MIN_REFINE_SHOTS`` for forward progress, and runs them in point
    order — a deterministic function of the accumulated tallies, which
    is what lets a campaign re-run reproduce a sweep bit for bit.
    Returns the total spend (the ``spent`` argument plus every shot the
    refine rounds used).

    ``after_round(round_index)`` is invoked after each completed round
    — the campaign uses it to flush freshly finalised points to its
    result store, so an interrupted run keeps everything already tight.

    ``should_stop()`` is polled before each round and before each
    point's runner; once it returns true the engine stops cleanly
    without starting further work (tallies accumulated so far are left
    intact for the caller to flush) — this is the graceful-interrupt
    hook the campaign's SIGINT/SIGTERM handling rides on.

    ``before_round(round_index)`` is invoked before the round's
    allocation is computed; mutating point tallies there is allowed.
    The campaign uses it to fold in result-store records appended by
    other processes (``--join`` workers, other served jobs) so finals
    paid for elsewhere stop receiving allocations.  Its return value
    (if not ``None``) is added to ``spent`` — adopted shots count
    against the global budget exactly like the start-of-run reuse scan.
    """
    for round_index in range(_MAX_REFINE_ROUNDS):
        if should_stop is not None and should_stop():
            break
        if before_round is not None:
            adopted = before_round(round_index)
            if adopted:
                spent += int(adopted)
        unmet = [index for index, point in enumerate(points)
                 if not point.exhausted and not point.met]
        remaining = global_budget - spent
        if not unmet or remaining <= 0:
            break
        allocations = allocate_shots(
            [tuple(points[i].tally) for i in unmet], remaining,
            [points[i].cap - points[i].tally[1] for i in unmet],
            relative=[points[i].target.relative for i in unmet],
        )
        progressed = False
        for index, allocation in zip(unmet, allocations):
            if should_stop is not None and should_stop():
                return spent
            point = points[index]
            point_cap = point.cap - point.tally[1]
            allocation = min(point_cap, max(allocation, _MIN_REFINE_SHOTS),
                             max(0, global_budget - spent))
            if allocation <= 0:
                continue
            failures, used = point.runner(allocation, tuple(point.tally),
                                          round_index)
            point.tally[0] += failures
            point.tally[1] += used
            spent += used
            progressed = progressed or used > 0
        if after_round is not None:
            after_round(round_index)
        if not progressed:
            break
    return spent


def _fixed_point_fields(result) -> dict:
    fields = {
        "failures": result.failures,
        "logical_error_rate": result.logical_error_rate,
        "ler_per_round": result.logical_error_rate_per_round,
    }
    fields.update(precision_fields(result))
    return fields


def tally_point_fields(failures: int, shots: int, rounds: int,
                       target: PrecisionTarget, cap: int) -> dict:
    """Row fragment for a pilot+refine tally (mirrors ``MemoryResult``).

    A pure function of the accumulated tally — the campaign result
    store re-derives rows from stored tallies through exactly this
    function, which is what makes resumed tables bit-identical."""
    ler = failures / shots if shots else 0.0
    if shots == 0 or ler >= 1.0:
        per_round = ler
    else:
        per_round = 1.0 - (1.0 - ler) ** (1.0 / rounds)
    low, high = binomial_interval(failures, shots, target.confidence)
    met = target.met(failures, shots)
    return {
        "failures": failures,
        "logical_error_rate": ler,
        "ler_per_round": per_round,
        "shots_used": shots,
        "ci_low": low,
        "ci_high": high,
        "stopped_early": bool(met and shots < cap),
    }


def _run_points(experiment: MemoryExperiment,
                points: Sequence[tuple[float, float]], shots: int,
                target_precision, max_shots: int | None,
                pilot_shots: int | None) -> list[dict]:
    """Estimate the LER of every ``(p, latency)`` point.

    Fixed budget (``target_precision is None``): one ``shots``-shot run
    per point.  Otherwise the adaptive pilot/allocate/refine loop
    described in the module docstring, under a global budget of
    ``shots`` per point with a per-point cap of ``max_shots`` (default:
    the whole global budget may concentrate on one point).
    """
    target = as_precision_target(target_precision)
    if target is None:
        return [
            _fixed_point_fields(experiment.run(p, latency, shots=shots))
            for p, latency in points
        ]

    num_points = len(points)
    global_budget = int(shots) * num_points
    cap = int(max_shots) if max_shots is not None else global_budget
    cap = max(1, min(cap, global_budget))
    if pilot_shots is None:
        pilot = default_pilot_shots(shots)
    else:
        pilot = max(1, int(pilot_shots))
    pilot = min(pilot, cap)

    def runner_for(p: float, latency: float):
        def runner(allocation: int, prior: tuple[int, int],
                   round_index: int) -> tuple[int, int]:
            del round_index  # seeds spawn sequentially off the experiment
            result = experiment.run(p, latency, shots=allocation,
                                    target_precision=target,
                                    prior_tally=prior)
            return result.failures, result.shots
        return runner

    # Pilot: a streamed taste of every point (cheap points may already
    # meet the target and never see a refine run).
    adaptive_points = []
    for p, latency in points:
        result = experiment.run(p, latency, shots=pilot,
                                target_precision=target)
        adaptive_points.append(AdaptivePoint(
            target=target, cap=cap, runner=runner_for(p, latency),
            tally=[result.failures, result.shots],
        ))
    spent = sum(point.tally[1] for point in adaptive_points)

    run_adaptive_refine(adaptive_points, global_budget, spent)

    return [
        tally_point_fields(point.tally[0], point.tally[1],
                           experiment.rounds, target, cap)
        for point in adaptive_points
    ]


def sweep_physical_error(code: CSSCode, round_latency_us: float,
                         physical_error_rates: Iterable[float],
                         shots: int = 200, rounds: int | None = None,
                         method: str = "phenomenological",
                         label: str = "", seed: int = 0,
                         backend: str = "packed",
                         workers: int = 1,
                         shard_shots: int | None = None,
                         target_precision: "float | PrecisionTarget | None"
                         = None,
                         max_shots: int | None = None,
                         pilot_shots: int | None = None) -> ResultTable:
    """Logical error rate vs physical error rate at a fixed latency.

    ``workers`` runs each point's fused sample→decode pipeline across
    that many worker processes (``0``: one per core) — every worker
    samples and decodes its own shard, and the results are bit-identical
    for any worker count at a fixed ``shard_shots``.  The structure
    caches and the worker pool are shared by all points of the sweep.
    ``shard_shots`` overrides the default shots-per-shard (the decoder's
    block size).

    With ``target_precision`` the sweep switches to the adaptive
    pilot/allocate/refine scheduler (module docstring): ``shots``
    becomes the *average* per-point budget of a global pool,
    ``max_shots`` caps any single point and ``pilot_shots`` sizes the
    pilot pass.  Every row reports ``shots_used``, the Wilson bounds
    and whether the point stopped early.
    """
    rates = list(physical_error_rates)
    table = ResultTable(
        title=f"LER sweep: {code.name} ({label or 'latency ' + str(round_latency_us) + ' us'})",
        columns=["p", "round_latency_us", "failures", "logical_error_rate",
                 "ler_per_round"] + PRECISION_COLUMNS,
    )
    with MemoryExperiment(code=code, rounds=rounds, method=method,
                          seed=seed, backend=backend, workers=workers,
                          shard_shots=shard_shots) as experiment:
        outcomes = _run_points(
            experiment, [(p, round_latency_us) for p in rates], shots,
            target_precision, max_shots, pilot_shots,
        )
    for p, fields in zip(rates, outcomes):
        table.add_row(p=p, round_latency_us=round_latency_us, **fields)
    return table


def sweep_architectures(code: CSSCode, codesigns: Sequence[Codesign],
                        physical_error_rate: float | None = None,
                        shots: int = 200, rounds: int | None = None,
                        method: str = "phenomenological",
                        seed: int = 0, workers: int = 1,
                        shard_shots: int | None = None,
                        target_precision: "float | PrecisionTarget | None"
                        = None,
                        max_shots: int | None = None,
                        pilot_shots: int | None = None) -> ResultTable:
    """Compare codesigns on one code: latency, spatial cost and (optionally) LER.

    ``workers`` runs each codesign's fused sample→decode pipeline across
    worker processes (``0``: one per core), sharing one pool across the
    sweep; ``shard_shots`` overrides the shots-per-shard default.  With
    ``target_precision`` the LER estimates run on the adaptive
    pilot/allocate/refine scheduler across all codesigns (see
    :func:`sweep_physical_error`).
    """
    columns = ["codesign", "execution_time_us", "num_traps", "num_junctions",
               "num_ancilla", "dac_count", "spacetime_cost",
               "parallelization"]
    if physical_error_rate is not None:
        columns += ["p", "logical_error_rate"] + PRECISION_COLUMNS
    table = ResultTable(
        title=f"Architecture sweep: {code.name}", columns=columns,
    )
    compiled_designs = [codesign.compile(code) for codesign in codesigns]
    rows = []
    for codesign, compiled in zip(codesigns, compiled_designs):
        cost = spacetime_cost(compiled)
        rows.append({
            "codesign": codesign.name,
            "execution_time_us": compiled.execution_time_us,
            "num_traps": compiled.metadata.get("num_traps", 0),
            "num_junctions": compiled.metadata.get("num_junctions", 0),
            "num_ancilla": compiled.metadata.get("num_ancilla", 0),
            "dac_count": compiled.metadata.get("dac_count", 0),
            "spacetime_cost": cost.cost,
            "parallelization": compiled.parallelization_fraction,
        })
    if physical_error_rate is not None:
        # One cached experiment serves every codesign: only the latency
        # (and hence the priors) changes between operating points.
        with MemoryExperiment(code=code, rounds=rounds, method=method,
                              seed=seed, workers=workers,
                              shard_shots=shard_shots) as experiment:
            outcomes = _run_points(
                experiment,
                [(physical_error_rate, compiled.execution_time_us)
                 for compiled in compiled_designs],
                shots, target_precision, max_shots, pilot_shots,
            )
        for row, fields in zip(rows, outcomes):
            fields = dict(fields)
            fields.pop("failures", None)
            fields.pop("ler_per_round", None)
            row.update(p=physical_error_rate, **fields)
    for row in rows:
        table.add_row(**row)
    return table
