"""Parameter sweeps behind the evaluation figures.

Two sweeps recur throughout the paper: the physical-error-rate sweep of
a fixed codesign (the LER curves of Figures 5, 14, 15, 17, 18) and the
architecture sweep at a fixed operating point (Figures 6, 13, 16, 19,
20).  Both return :class:`~repro.core.results.ResultTable` rows so the
benchmarks can print exactly the series the paper plots.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.codes.css import CSSCode
from repro.core.codesign import Codesign
from repro.core.memory import MemoryExperiment
from repro.core.results import ResultTable
from repro.core.spacetime import spacetime_cost

__all__ = ["sweep_physical_error", "sweep_architectures"]


def sweep_physical_error(code: CSSCode, round_latency_us: float,
                         physical_error_rates: Iterable[float],
                         shots: int = 200, rounds: int | None = None,
                         method: str = "phenomenological",
                         label: str = "", seed: int = 0,
                         backend: str = "packed",
                         workers: int = 1,
                         shard_shots: int | None = None) -> ResultTable:
    """Logical error rate vs physical error rate at a fixed latency.

    ``workers`` runs each point's fused sample→decode pipeline across
    that many worker processes (``0``: one per core) — every worker
    samples and decodes its own shard, and the results are bit-identical
    for any worker count at a fixed ``shard_shots``.  The structure
    caches and the worker pool are shared by all points of the sweep.
    ``shard_shots`` overrides the default shots-per-shard (the decoder's
    block size).
    """
    table = ResultTable(
        title=f"LER sweep: {code.name} ({label or 'latency ' + str(round_latency_us) + ' us'})",
        columns=["p", "round_latency_us", "shots", "failures",
                 "logical_error_rate", "ler_per_round"],
    )
    with MemoryExperiment(code=code, rounds=rounds, method=method,
                          seed=seed, backend=backend, workers=workers,
                          shard_shots=shard_shots) as experiment:
        for p in physical_error_rates:
            result = experiment.run(p, round_latency_us, shots=shots)
            table.add_row(
                p=p,
                round_latency_us=round_latency_us,
                shots=result.shots,
                failures=result.failures,
                logical_error_rate=result.logical_error_rate,
                ler_per_round=result.logical_error_rate_per_round,
            )
    return table


def sweep_architectures(code: CSSCode, codesigns: Sequence[Codesign],
                        physical_error_rate: float | None = None,
                        shots: int = 200, rounds: int | None = None,
                        method: str = "phenomenological",
                        seed: int = 0, workers: int = 1,
                        shard_shots: int | None = None) -> ResultTable:
    """Compare codesigns on one code: latency, spatial cost and (optionally) LER.

    ``workers`` runs each codesign's fused sample→decode pipeline across
    worker processes (``0``: one per core), sharing one pool across the
    sweep; ``shard_shots`` overrides the shots-per-shard default.
    """
    columns = ["codesign", "execution_time_us", "num_traps", "num_junctions",
               "num_ancilla", "dac_count", "spacetime_cost",
               "parallelization"]
    if physical_error_rate is not None:
        columns += ["p", "logical_error_rate"]
    table = ResultTable(
        title=f"Architecture sweep: {code.name}", columns=columns,
    )
    experiment = None
    if physical_error_rate is not None:
        # One cached experiment serves every codesign: only the latency
        # (and hence the priors) changes between operating points.
        experiment = MemoryExperiment(code=code, rounds=rounds,
                                      method=method, seed=seed,
                                      workers=workers,
                                      shard_shots=shard_shots)
    try:
        for codesign in codesigns:
            compiled = codesign.compile(code)
            cost = spacetime_cost(compiled)
            row = {
                "codesign": codesign.name,
                "execution_time_us": compiled.execution_time_us,
                "num_traps": compiled.metadata.get("num_traps", 0),
                "num_junctions": compiled.metadata.get("num_junctions", 0),
                "num_ancilla": compiled.metadata.get("num_ancilla", 0),
                "dac_count": compiled.metadata.get("dac_count", 0),
                "spacetime_cost": cost.cost,
                "parallelization": compiled.parallelization_fraction,
            }
            if physical_error_rate is not None:
                result = experiment.run(
                    physical_error_rate, compiled.execution_time_us,
                    shots=shots
                )
                row["p"] = physical_error_rate
                row["logical_error_rate"] = result.logical_error_rate
            table.add_row(**row)
    finally:
        if experiment is not None:
            experiment.close()
    return table
