"""Lightweight tabular result containers used by sweeps and benchmarks.

The benchmark harness prints tables whose rows mirror the series in the
paper's figures; :class:`ResultTable` keeps that formatting logic in one
place (no external dependencies; fixed-width text, CSV and JSON output).
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["ResultTable", "PRECISION_COLUMNS", "precision_fields"]

#: Streaming-precision columns shared by every LER-producing sweep
#: table: the shots that actually contributed (early stopping may leave
#: part of the budget unspent), the Wilson confidence bounds on the
#: failure probability, and whether the point stopped early.
PRECISION_COLUMNS = ["shots_used", "ci_low", "ci_high", "stopped_early"]


def precision_fields(result: Any) -> dict[str, Any]:
    """Row fragment for :data:`PRECISION_COLUMNS`.

    Duck-typed over any result carrying ``shots``/``ci_low``/
    ``ci_high``/``stopped_early`` (``MemoryResult``,
    ``PipelineResult``), so every sweep surfaces the same columns
    without re-deriving them.
    """
    return {
        "shots_used": getattr(result, "shots_used", result.shots),
        "ci_low": result.ci_low,
        "ci_high": result.ci_high,
        "stopped_early": result.stopped_early,
    }


@dataclass
class ResultTable:
    """A list of dict rows with stable column ordering and text rendering."""

    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}")
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        if name not in self.columns:
            raise KeyError(name)
        return [row.get(name) for row in self.rows]

    @staticmethod
    def _format_value(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1e4 or abs(value) < 1e-3:
                return f"{value:.3e}"
            return f"{value:.4g}"
        return str(value)

    def to_text(self) -> str:
        """Render the table as fixed-width text."""
        header = [self.title]
        formatted_rows = [
            [self._format_value(row.get(col, "")) for col in self.columns]
            for row in self.rows
        ]
        widths = [
            max(len(col), *(len(r[i]) for r in formatted_rows))
            if formatted_rows else len(col)
            for i, col in enumerate(self.columns)
        ]
        line = " | ".join(
            col.ljust(width) for col, width in zip(self.columns, widths)
        )
        separator = "-+-".join("-" * width for width in widths)
        header.append(line)
        header.append(separator)
        for row in formatted_rows:
            header.append(
                " | ".join(cell.ljust(width)
                           for cell, width in zip(row, widths))
            )
        return "\n".join(header)

    def to_csv(self) -> str:
        """Render the table as CSV text (header row + one line per row)."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.columns)
        writer.writeheader()
        for row in self.rows:
            writer.writerow({col: row.get(col, "") for col in self.columns})
        return buffer.getvalue()

    def to_json(self) -> str:
        """Render the table as a JSON document with title, columns and rows."""
        return json.dumps(
            {"title": self.title, "columns": self.columns, "rows": self.rows},
            indent=2, default=str,
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "ResultTable":
        """Rebuild a table from its :meth:`to_json` document structure.

        Rows are validated against the column list the same way
        :meth:`add_row` validates them, so a stored table round-trips
        exactly (the campaign result store relies on this).
        """
        table = cls(title=str(payload.get("title", "")),
                    columns=list(payload.get("columns", [])))
        for row in payload.get("rows", []):
            table.add_row(**row)
        return table

    @classmethod
    def from_json(cls, text: str) -> "ResultTable":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        """Write the table to ``path``; format chosen by suffix.

        ``.csv`` and ``.json`` select those formats; anything else gets
        the fixed-width text rendering.
        """
        path = Path(path)
        if path.suffix == ".csv":
            content = self.to_csv()
        elif path.suffix == ".json":
            content = self.to_json()
        else:
            content = self.to_text() + "\n"
        path.write_text(content)
        return path

    def __len__(self) -> int:
        return len(self.rows)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text()
