"""The paper's experimental pipeline: codesigns and memory experiments.

``repro.core`` glues the substrates together the same way the paper's
evaluation does:

1. a :class:`~repro.core.codesign.Codesign` pairs a hardware topology
   with a compiler policy and produces an execution latency and spatial
   cost for a code;
2. :class:`~repro.core.memory.MemoryExperiment` turns that latency into
   a hardware-aware noise model, samples syndrome-extraction rounds and
   decodes them, yielding a logical error rate;
3. :mod:`~repro.core.spacetime` combines the two into the spacetime
   cost metric of Figure 16, and :mod:`~repro.core.sweep` provides the
   parameter sweeps behind the evaluation figures.
"""

from repro.core.codesign import Codesign, codesign_by_name, available_codesigns
from repro.core.memory import (
    MemoryExperiment,
    MemoryResult,
    effective_rounds,
    logical_error_rate,
)
from repro.core.spacetime import spacetime_cost, spacetime_comparison
from repro.core.stats import (
    PrecisionTarget,
    as_precision_target,
    binomial_interval,
    wilson_interval,
)
from repro.core.sweep import (
    AdaptivePoint,
    allocate_shots,
    run_adaptive_refine,
    sweep_architectures,
    sweep_physical_error,
    tally_point_fields,
)
from repro.core.results import ResultTable

__all__ = [
    "AdaptivePoint",
    "PrecisionTarget",
    "allocate_shots",
    "as_precision_target",
    "binomial_interval",
    "effective_rounds",
    "run_adaptive_refine",
    "tally_point_fields",
    "wilson_interval",
    "Codesign",
    "codesign_by_name",
    "available_codesigns",
    "MemoryExperiment",
    "MemoryResult",
    "logical_error_rate",
    "spacetime_cost",
    "spacetime_comparison",
    "sweep_physical_error",
    "sweep_architectures",
    "ResultTable",
]
