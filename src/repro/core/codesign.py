"""Codesigns: a hardware topology paired with a compiler policy.

The paper's central argument is that hardware and software must be
chosen *together*; a codesign object captures one such pairing and
exposes the two quantities the evaluation cares about — the compiled
execution latency of a syndrome-extraction round and the spatial
footprint (traps, junctions, ancillas, DACs).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.codes.css import CSSCode
from repro.codes.scheduling import StabilizerSchedule
from repro.qccd.compilers import (
    Compiler,
    CycloneCompiler,
    DynamicTimesliceCompiler,
    EJFGridCompiler,
    MeshJunctionCompiler,
    MoveBatchingCompiler,
    ShuttleMinimizingCompiler,
)
from repro.qccd.schedule import CompiledSchedule
from repro.qccd.timing import OperationTimes

__all__ = ["Codesign", "codesign_by_name", "available_codesigns"]


@dataclass
class Codesign:
    """A named hardware/software pairing."""

    name: str
    compiler: Compiler
    description: str = ""
    metadata: dict = field(default_factory=dict)

    def compile(self, code: CSSCode,
                schedule: StabilizerSchedule | None = None) -> CompiledSchedule:
        """Compile one round of syndrome extraction for ``code``."""
        return self.compiler.compile(code, schedule)

    def with_times(self, times: OperationTimes) -> "Codesign":
        """The same codesign with different operation timing constants."""
        return Codesign(
            name=self.name,
            compiler=replace(self.compiler, times=times),
            description=self.description,
            metadata=dict(self.metadata),
        )

    def spatial_summary(self, compiled: CompiledSchedule) -> dict[str, float]:
        """Spatial cost figures extracted from a compiled schedule."""
        metadata = compiled.metadata
        return {
            "num_traps": float(metadata.get("num_traps", 0)),
            "num_junctions": float(metadata.get("num_junctions", 0)),
            "num_ancilla": float(metadata.get("num_ancilla", 0)),
            "dac_count": float(metadata.get("dac_count", 0)),
            "trap_capacity": float(metadata.get("trap_capacity", 0)),
        }


_FACTORIES = {
    "baseline": lambda: Codesign(
        name="baseline",
        compiler=EJFGridCompiler(),
        description="Baseline grid + greedy cluster mapping + static EJF "
                    "(Murali et al.), the paper's baseline codesign.",
    ),
    "baseline_grid_dynamic": lambda: Codesign(
        name="baseline_grid_dynamic",
        compiler=DynamicTimesliceCompiler(topology="baseline_grid"),
        description="Dynamic timeslice software on the baseline grid "
                    "(Figure 4a / Figure 6 top-left).",
    ),
    "alternate_grid": lambda: Codesign(
        name="alternate_grid",
        compiler=EJFGridCompiler(topology="alternate_grid", label="alt_grid"),
        description="Alternating horizontal/vertical meshes with L-shaped "
                    "junctions + static EJF (Figure 4c).",
    ),
    "ejf_ring": lambda: Codesign(
        name="ejf_ring",
        compiler=EJFGridCompiler(topology="ring", label="ejf_ring"),
        description="Static EJF software on a sparse circular topology "
                    "(Figure 6 bottom-right, 'disastrous').",
    ),
    "cyclone": lambda: Codesign(
        name="cyclone",
        compiler=CycloneCompiler(),
        description="Base Cyclone: ring of max(|X|,|Z|) traps with the "
                    "symmetric lockstep rotation schedule.",
    ),
    "mesh_junction": lambda: Codesign(
        name="mesh_junction",
        compiler=MeshJunctionCompiler(),
        description="Dense mesh junction network (Section III-C).",
    ),
    "baseline2": lambda: Codesign(
        name="baseline2",
        compiler=ShuttleMinimizingCompiler(),
        description="Baseline compiler 2: shuttle-minimizing dispatch "
                    "(Muzzle-the-Shuttle-style heuristics).",
    ),
    "baseline3": lambda: Codesign(
        name="baseline3",
        compiler=MoveBatchingCompiler(),
        description="Baseline compiler 3: move-batching dispatch "
                    "(MoveLess-style heuristics).",
    ),
}


def available_codesigns() -> list[str]:
    """Names accepted by :func:`codesign_by_name`."""
    return sorted(_FACTORIES)


def codesign_by_name(name: str, times: OperationTimes | None = None,
                     **compiler_overrides) -> Codesign:
    """Instantiate a named codesign, optionally overriding compiler fields.

    Examples
    --------
    >>> codesign_by_name("cyclone", num_traps=64)   # doctest: +ELLIPSIS
    Codesign(name='cyclone', ...)
    """
    if name not in _FACTORIES:
        raise KeyError(
            f"unknown codesign {name!r}; available: {available_codesigns()}"
        )
    codesign = _FACTORIES[name]()
    if compiler_overrides:
        codesign = Codesign(
            name=codesign.name,
            compiler=replace(codesign.compiler, **compiler_overrides),
            description=codesign.description,
        )
    if times is not None:
        codesign = codesign.with_times(times)
    return codesign
