"""Phenomenological space-time decoding model.

For the larger codes in the paper's evaluation, sampling and decoding
the full circuit-level detector error model is prohibitively slow in a
pure-Python Monte-Carlo loop.  The standard fast alternative — used
throughout the qLDPC memory literature — is the *phenomenological*
model: in every round each data qubit suffers an independent X (or Z)
flip with an effective probability and each stabilizer measurement is
flipped with an effective probability, with a final noiseless data
readout.  The effective probabilities are derived from the circuit-level
noise (gate, preparation, measurement errors) plus the latency-induced
idle channel, so the latency → logical-error coupling that the paper's
architecture comparison relies on is preserved.

The model produces the space-time check matrix decoded with BP+OSD:

* detector layer ``r`` (0-based) compares stabilizer outcomes of rounds
  ``r-1`` and ``r``; layer ``R`` compares the last ancilla round against
  the stabilizers recomputed from the final data readout;
* a data error in round ``r`` flips its stabilizers' detectors in layer
  ``r`` only (difference syndromes) and flips any logical observable it
  overlaps;
* a measurement error in round ``r`` flips layers ``r`` and ``r+1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.codes.css import CSSCode
from repro.linalg.bitops import pack_bits, packed_matmul
from repro.noise.hardware import HardwareNoiseModel

__all__ = [
    "PhenomenologicalModel",
    "SpacetimeStructure",
    "effective_error_rates",
    "build_spacetime_structure",
    "build_phenomenological_model",
    "sample_phenomenological_shard",
]

#: Fraction of two-qubit depolarizing outcomes that leave an X or Y on a
#: given one of the two qubits (8 of the 15 non-identity Paulis).
TWO_QUBIT_MARGINAL = 8.0 / 15.0


@dataclass
class PhenomenologicalModel:
    """Space-time check matrix, observables, priors and a sampler."""

    code: CSSCode
    basis: str
    rounds: int
    data_error_rate: float
    measurement_error_rate: float
    check_matrix: np.ndarray
    observable_matrix: np.ndarray
    priors: np.ndarray
    structure: "SpacetimeStructure | None" = None

    @property
    def num_detectors(self) -> int:
        return int(self.check_matrix.shape[0])

    @property
    def num_mechanisms(self) -> int:
        return int(self.check_matrix.shape[1])

    # ------------------------------------------------------------------
    def sample(self, shots: int, seed=None, backend: str = "packed"
               ) -> tuple[np.ndarray, np.ndarray]:
        """Sample (syndromes, observable_flips) for ``shots`` experiments.

        Both backends draw the same error realisations; ``"packed"``
        computes the syndromes as word-level AND/popcount parities
        instead of dense integer matrix products.
        """
        if self.structure is not None and backend == "packed":
            packed = (self.structure.packed_check_matrix,
                      self.structure.packed_observable_matrix)
        else:
            packed = None
        return sample_phenomenological_shard(
            self.check_matrix, self.observable_matrix, self.priors,
            shots, seed, backend=backend, packed_matrices=packed,
        )


def sample_phenomenological_shard(check_matrix: np.ndarray,
                                  observable_matrix: np.ndarray,
                                  priors: np.ndarray, shots: int, seed,
                                  backend: str = "packed",
                                  packed_matrices: tuple[np.ndarray,
                                                         np.ndarray]
                                  | None = None
                                  ) -> tuple[np.ndarray, np.ndarray]:
    """Sample one shard of phenomenological (syndromes, observable flips).

    Shard-local sampling entry point shared by
    :meth:`PhenomenologicalModel.sample` and the fused sample→decode
    pipeline (:mod:`repro.parallel.pipeline`): the error realisation is
    drawn entirely from ``seed`` (any ``numpy.random.default_rng``
    input, including a ``SeedSequence`` child), so a shard produces the
    same bits in whichever process it runs.  ``packed_matrices`` may
    carry pre-packed ``(check, observable)`` matrices (packed along the
    mechanism axis) to skip re-packing per shard.
    """
    if backend not in ("packed", "bool"):
        raise ValueError("backend must be 'packed' or 'bool'")
    rng = np.random.default_rng(seed)
    errors = rng.random((shots, check_matrix.shape[1])) < priors
    if backend == "packed":
        if packed_matrices is not None:
            check_packed, observable_packed = packed_matrices
        else:
            check_packed = pack_bits(check_matrix, axis=1)
            observable_packed = pack_bits(observable_matrix, axis=1)
        errors_packed = pack_bits(errors, axis=1)
        syndromes = packed_matmul(errors_packed, check_packed)
        observables = packed_matmul(errors_packed, observable_packed)
        return syndromes, observables
    syndromes = (errors @ check_matrix.T) % 2
    observables = (errors @ observable_matrix.T) % 2
    return syndromes.astype(np.uint8), observables.astype(np.uint8)


def effective_error_rates(code: CSSCode, noise: HardwareNoiseModel,
                          basis: str = "Z") -> tuple[float, float]:
    """Per-round effective data and measurement error probabilities.

    The data-qubit rate combines the latency-induced idle channel with
    the marginal error deposited by each two-qubit gate the qubit
    participates in during a round; the measurement rate combines the
    raw measurement flip probability, ancilla preparation errors and the
    ancilla's accumulated gate error over the stabilizer weight.
    """
    if basis not in ("Z", "X"):
        raise ValueError("basis must be 'Z' or 'X'")
    base = noise.base
    px, py, pz = noise.idle_channel
    if basis == "Z":
        # Z-basis memory is corrupted by X-type errors.
        idle = px + py
        relevant_weight = code.max_z_weight
        degree = code.hz.sum(axis=0).mean() if code.num_z_stabilizers else 0.0
        cross_degree = code.hx.sum(axis=0).mean() if code.num_x_stabilizers else 0.0
    else:
        idle = pz + py
        relevant_weight = code.max_x_weight
        degree = code.hx.sum(axis=0).mean() if code.num_x_stabilizers else 0.0
        cross_degree = code.hz.sum(axis=0).mean() if code.num_z_stabilizers else 0.0

    gates_per_data_per_round = float(degree + cross_degree)
    data_rate = (
        idle
        + base.p_prep
        + gates_per_data_per_round * base.p2 * TWO_QUBIT_MARGINAL
    )
    measurement_rate = (
        base.p_meas
        + base.p_prep
        + relevant_weight * base.p2 * TWO_QUBIT_MARGINAL
    )
    return (min(data_rate, 0.5), min(measurement_rate, 0.5))


@dataclass(frozen=True)
class SpacetimeStructure:
    """Noise-independent part of the phenomenological decoding model.

    The space-time check matrix and observable matrix depend only on the
    code, the number of rounds and the basis; the per-mechanism priors
    are the *only* thing an operating point (latency, physical error
    rate) changes.  Sweeps therefore build this once and re-prior it per
    point instead of re-assembling identical matrices.
    """

    code: CSSCode
    basis: str
    rounds: int
    check_matrix: np.ndarray
    observable_matrix: np.ndarray
    num_data_mechanisms: int

    @property
    def num_mechanisms(self) -> int:
        return int(self.check_matrix.shape[1])

    @cached_property
    def packed_check_matrix(self) -> np.ndarray:
        """Check matrix packed along mechanisms, computed once per sweep."""
        return pack_bits(self.check_matrix, axis=1)

    @cached_property
    def packed_observable_matrix(self) -> np.ndarray:
        """Observable matrix packed along mechanisms, computed once."""
        return pack_bits(self.observable_matrix, axis=1)

    def priors_for(self, data_rate: float,
                   measurement_rate: float) -> np.ndarray:
        """Per-mechanism priors at one operating point."""
        priors = np.empty(self.num_mechanisms, dtype=float)
        priors[:self.num_data_mechanisms] = data_rate
        priors[self.num_data_mechanisms:] = measurement_rate
        return priors


def build_spacetime_structure(code: CSSCode, rounds: int,
                              basis: str = "Z") -> SpacetimeStructure:
    """Assemble the space-time check/observable matrices (no noise)."""
    if rounds < 1:
        raise ValueError("need at least one round")
    if basis == "Z":
        checks = code.hz
        logicals = code.logical_z
    elif basis == "X":
        checks = code.hx
        logicals = code.logical_x
    else:
        raise ValueError("basis must be 'Z' or 'X'")
    num_checks = checks.shape[0]
    n = code.num_qubits
    num_layers = rounds + 1  # round-to-round differences + final readout layer
    num_detectors = num_layers * num_checks
    num_data_mechanisms = rounds * n
    num_meas_mechanisms = rounds * num_checks
    num_mechanisms = num_data_mechanisms + num_meas_mechanisms

    check_matrix = np.zeros((num_detectors, num_mechanisms), dtype=np.uint8)
    observable_matrix = np.zeros((logicals.shape[0], num_mechanisms),
                                 dtype=np.uint8)

    # Data error mechanisms: qubit q failing before round r.
    for r in range(rounds):
        col_base = r * n
        row_base = r * num_checks
        check_matrix[row_base:row_base + num_checks,
                     col_base:col_base + n] = checks
        observable_matrix[:, col_base:col_base + n] = logicals

    # Measurement error mechanisms: check j misread in round r.
    for r in range(rounds):
        col_base = num_data_mechanisms + r * num_checks
        for j in range(num_checks):
            check_matrix[r * num_checks + j, col_base + j] ^= 1
            check_matrix[(r + 1) * num_checks + j, col_base + j] ^= 1

    return SpacetimeStructure(
        code=code,
        basis=basis,
        rounds=rounds,
        check_matrix=check_matrix,
        observable_matrix=observable_matrix,
        num_data_mechanisms=num_data_mechanisms,
    )


def build_phenomenological_model(code: CSSCode, noise: HardwareNoiseModel,
                                 rounds: int, basis: str = "Z",
                                 structure: SpacetimeStructure | None = None
                                 ) -> PhenomenologicalModel:
    """Construct the space-time decoding model for a memory experiment.

    ``structure`` may carry a previously built
    :class:`SpacetimeStructure` for this (code, rounds, basis) triple to
    skip re-assembling the matrices.
    """
    if structure is None:
        structure = build_spacetime_structure(code, rounds, basis)
    elif (structure.rounds != rounds or structure.basis != basis
          or structure.code is not code):
        raise ValueError("structure does not match the requested model")
    data_rate, measurement_rate = effective_error_rates(code, noise, basis)

    return PhenomenologicalModel(
        code=code,
        basis=basis,
        rounds=rounds,
        data_error_rate=data_rate,
        measurement_error_rate=measurement_rate,
        check_matrix=structure.check_matrix,
        observable_matrix=structure.observable_matrix,
        priors=structure.priors_for(data_rate, measurement_rate),
        structure=structure,
    )
