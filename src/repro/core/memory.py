"""Hardware-aware memory experiments: latency in, logical error rate out.

This is the paper's Section V-B pipeline.  Given a code, a compiled
execution latency (from any codesign) and a physical error rate, the
experiment

1. builds the hardware-aware noise model (base circuit noise + the
   Pauli-twirled decoherence channel parameterised by the latency),
2. samples ``shots`` memory experiments of ``rounds`` rounds of
   syndrome extraction, and
3. decodes each shot with BP+OSD and counts logical failures.

Two simulation methods are available: the fast ``"phenomenological"``
space-time model (default — used for the larger HGP/BB codes exactly
because the paper's comparisons only need the latency-driven *relative*
behaviour) and the fully ``"circuit"``-level detector error model
(exact circuit noise, practical for small codes and used to validate
the fast path in the test suite).

Both methods run on the fused sample→decode pipeline
(:class:`~repro.parallel.pipeline.ShardedExperiment`): the shot budget
splits into shards, each shard samples its own noise from a
shard-indexed ``SeedSequence.spawn`` tree and decodes it locally —
in-process for ``workers=1``, across a worker pool otherwise — so the
results are bit-identical for every worker count at a fixed
``shard_shots``, and at >100k-shot budgets neither the sampling nor
the syndrome transfer serialises on the parent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.circuits.builder import memory_experiment_circuit
from repro.codes.css import CSSCode
from repro.codes.scheduling import StabilizerSchedule
from repro.core.phenomenological import (
    build_phenomenological_model,
    build_spacetime_structure,
)
from repro.core.stats import PrecisionTarget, as_precision_target
from repro.linalg.native import simulation_backend
from repro.noise.hardware import HardwareNoiseModel
from repro.parallel.pipeline import ExperimentHandle, SharedPool, ShardedExperiment
from repro.parallel.sharded import DecoderHandle, resolve_workers
from repro.sim.dem import DemStructureCache

__all__ = ["MemoryExperiment", "MemoryResult", "effective_rounds",
           "logical_error_rate"]


def effective_rounds(code: CSSCode, rounds: int | None = None) -> int:
    """The syndrome-extraction round count a ``rounds=`` knob resolves to.

    ``None`` defaults to the code distance, capped at 8 to keep the
    Monte-Carlo loop tractable — the exact rule
    :class:`MemoryExperiment` applies, exposed so callers that derive
    per-round quantities from stored tallies (the campaign result
    store) agree with it without building an experiment.
    """
    if rounds is not None:
        return int(rounds)
    distance = code.distance or 3
    return max(1, min(distance, 8))


@dataclass
class MemoryResult:
    """Outcome of a (possibly early-stopped) memory experiment.

    ``shots`` counts the shots this run contributed to the estimate;
    with a ``target_precision`` the run may stop before the
    ``max_shots`` budget (``stopped_early``).  ``ci_low``/``ci_high``
    bound the per-shot failure probability at ``confidence``, evaluated
    on the same tally the stop rule saw — when a ``prior_tally``
    (echoed back as ``prior_failures``/``prior_shots``) was carried in,
    that is the *combined* prior+run tally, not this run's
    ``logical_error_rate`` alone.
    """

    code_name: str
    physical_error_rate: float
    round_latency_us: float
    rounds: int
    shots: int
    failures: int
    method: str
    basis: str
    metadata: dict = field(default_factory=dict)
    max_shots: int | None = None
    ci_low: float = 0.0
    ci_high: float = 1.0
    stopped_early: bool = False
    confidence: float = 0.95
    prior_failures: int = 0
    prior_shots: int = 0

    @property
    def shots_used(self) -> int:
        """Alias for ``shots``: the shots that actually contribute."""
        return self.shots

    @property
    def tally_error_rate(self) -> float:
        """The combined prior+run estimate ``ci_low``/``ci_high`` bound."""
        total = self.prior_shots + self.shots
        if total == 0:
            return 0.0
        return (self.prior_failures + self.failures) / total

    @property
    def logical_error_rate(self) -> float:
        """Logical failure probability per shot (``rounds`` rounds)."""
        return self.failures / self.shots if self.shots else 0.0

    @property
    def logical_error_rate_per_round(self) -> float:
        """Per-round failure probability, assuming independent rounds."""
        if self.shots == 0:
            return 0.0
        per_shot = self.logical_error_rate
        if per_shot >= 1.0:
            return 1.0
        return 1.0 - (1.0 - per_shot) ** (1.0 / self.rounds)

    @property
    def standard_error(self) -> float:
        """Binomial standard error of the per-shot estimate."""
        if self.shots == 0:
            return 0.0
        p = self.logical_error_rate
        return math.sqrt(max(p * (1 - p), 1.0 / self.shots ** 2) / self.shots)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoryResult({self.code_name}, p={self.physical_error_rate:g}, "
            f"latency={self.round_latency_us:g}us, "
            f"LER={self.logical_error_rate:.3g})"
        )


@dataclass
class MemoryExperiment:
    """Configurable memory-experiment runner.

    Parameters
    ----------
    code:
        The CSS code under test.
    rounds:
        Syndrome-extraction rounds per shot (default: the code distance,
        capped at 8 to keep the Monte-Carlo loop tractable).
    basis:
        ``"Z"`` (default) or ``"X"`` memory.
    method:
        ``"phenomenological"`` (default) or ``"circuit"``.
    max_bp_iterations, osd_order:
        Decoder knobs passed to :class:`~repro.decoders.bposd.BPOSDDecoder`.
    schedule:
        Gate schedule used by the circuit-level method.
    backend:
        ``"packed"`` (default) uses the bit-packed shot-parallel kernels
        throughout (simulator, DEM, decoder); ``"native"`` additionally
        routes the decoder's hot kernels through the compiled C tier
        (bit-identical to ``"packed"``, silently falling back to it on
        hosts without a C toolchain; sampling and DEM extraction stay on
        the packed kernels either way); ``"bool"`` selects the boolean
        reference implementations.
    workers:
        Default worker-process count for the fused sample→decode
        pipeline (``1``: in-process; ``0``: one worker per core;
        overridable per :meth:`run` call).  With ``workers > 1`` each
        worker samples *and* decodes its own shards; results are
        bit-identical for every value at a fixed ``shard_shots``.
    shard_shots:
        Shots per pipeline shard (default: the decoder's
        ``block_shots``).  Part of the determinism key: each shard
        samples from its own seed-tree child, so runs are comparable at
        a fixed value.
    seed:
        Root seed.  Every call to :meth:`run` derives an independent
        child seed via ``numpy.random.SeedSequence.spawn`` (so sweep
        points are sampled with decorrelated noise realisations), and
        that child roots the run's per-shard seed tree.  A caller that
        needs order-independent sampling — the campaign orchestrator,
        whose resumable store must reproduce a point no matter which
        other points were skipped — passes an explicit ``seed=`` to
        :meth:`run` instead.
    pool:
        Optional :class:`~repro.parallel.pipeline.SharedPool` to run
        the pipeline on — one process pool shared across several
        experiments (a campaign's sweeps).  Overrides ``workers`` with
        the pool's worker count; the pool is owned by the caller and
        survives :meth:`close`.
    shard_timeout, max_shard_retries:
        Fault-tolerance knobs forwarded to the pipeline
        (:class:`~repro.parallel.pipeline.ShardedExperiment`): a
        per-shard wall-clock deadline, and how many pool
        respawn/resubmit rounds one run tolerates before degrading to
        in-process execution.  Recovery re-runs lost shards from their
        original seed-tree children, so results stay bit-identical.
    """

    code: CSSCode
    rounds: int | None = None
    basis: str = "Z"
    method: str = "phenomenological"
    max_bp_iterations: int = 40
    osd_order: int = 0
    schedule: StabilizerSchedule | None = None
    seed: int = 0
    backend: str = "packed"
    workers: int = 1
    shard_shots: int | None = None
    pool: SharedPool | None = None
    shard_timeout: float | None = None
    max_shard_retries: int | None = None

    def __post_init__(self) -> None:
        if self.method not in ("phenomenological", "circuit"):
            raise ValueError("method must be 'phenomenological' or 'circuit'")
        if self.backend not in ("packed", "bool", "native"):
            raise ValueError("backend must be 'packed', 'bool' or 'native'")
        if self.pool is not None:
            self.workers = self.pool.workers
        else:
            self.workers = resolve_workers(self.workers)
        self.rounds = effective_rounds(self.code, self.rounds)
        self._seed_sequence = np.random.SeedSequence(self.seed)
        # Sweep caches: the space-time structure (phenomenological), the
        # DEM fault signatures (circuit) and the pipeline (decoder graph
        # + worker pool) depend only on (code, rounds, basis, decoder
        # knobs) — all fixed for this experiment — so operating-point
        # sweeps reuse them and merely refresh the per-point priors.
        self._structure = None
        self._pipeline = None
        self._dem_cache = None

    def _spawn_seed(self) -> np.random.SeedSequence:
        """Child seed for the next run (decorrelated across sweep points)."""
        return self._seed_sequence.spawn(1)[0]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the worker pool, if one was created (idempotent)."""
        if self._pipeline is not None:
            self._pipeline.close()
            self._pipeline = None

    def __enter__(self) -> "MemoryExperiment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(self, physical_error_rate: float, round_latency_us: float,
            shots: int = 200, workers: int | None = None,
            target_precision: "float | PrecisionTarget | None" = None,
            max_shots: int | None = None,
            prior_tally: tuple[int, int] = (0, 0),
            seed: "int | np.random.SeedSequence | None" = None
            ) -> MemoryResult:
        """Estimate the logical error rate at one operating point.

        ``workers`` overrides the experiment-level default for this call
        (``1``: in-process; ``N``: run the fused sample→decode pipeline
        across ``N`` worker processes; ``0``: one per core).  The result
        is bit-identical for every value at a fixed ``shard_shots`` —
        only the wall-clock changes.

        ``target_precision`` streams the run through a Wilson interval
        and stops — deterministically, on the shard-prefix tally — once
        the half-width (absolute float, or a
        :class:`~repro.core.stats.PrecisionTarget` for relative
        targets) is reached; ``max_shots`` overrides ``shots`` as the
        budget cap.  ``prior_tally`` carries ``(failures, shots)`` from
        earlier runs of this operating point into the stop rule (the
        adaptive sweep's pilot pass).

        ``seed`` overrides the experiment's sequentially spawned
        per-run seed with an explicit root for this run's shard tree —
        callers that must sample a point identically regardless of how
        many runs preceded it (the campaign's resumable store) use
        this; when omitted the experiment spawns the next child of its
        own root seed exactly as before.

        On an experiment bound to a :class:`SharedPool` the worker
        count is the pool's — a conflicting per-call ``workers=`` is
        rejected rather than silently ignored.
        """
        if self.pool is not None:
            if (workers is not None
                    and resolve_workers(workers) != self.pool.workers):
                raise ValueError(
                    "this experiment streams through a SharedPool of "
                    f"{self.pool.workers} workers; the per-call workers= "
                    "override cannot change that — build a pool-free "
                    "MemoryExperiment for a different worker count")
            workers = self.pool.workers
        else:
            workers = (self.workers if workers is None
                       else resolve_workers(workers))
        budget = int(max_shots) if max_shots is not None else int(shots)
        target = as_precision_target(target_precision)
        if seed is None:
            run_seed = self._spawn_seed()
        elif isinstance(seed, np.random.SeedSequence):
            run_seed = seed
        else:
            run_seed = np.random.SeedSequence(int(seed))
        noise = HardwareNoiseModel.from_physical_error_rate(
            physical_error_rate, round_latency_us=round_latency_us
        )
        if self.method == "phenomenological":
            outcome, extra = self._run_phenomenological(
                noise, budget, workers, target, prior_tally, run_seed)
        else:
            outcome, extra = self._run_circuit(
                noise, budget, workers, target, prior_tally, run_seed)
        if target is not None:
            extra["target_met"] = outcome.target_met
        return MemoryResult(
            code_name=self.code.name,
            physical_error_rate=physical_error_rate,
            round_latency_us=round_latency_us,
            rounds=self.rounds,
            shots=outcome.shots,
            failures=outcome.failures,
            method=self.method,
            basis=self.basis,
            metadata=extra,
            max_shots=budget,
            ci_low=outcome.ci_low,
            ci_high=outcome.ci_high,
            stopped_early=outcome.stopped_early,
            confidence=outcome.confidence,
            prior_failures=outcome.prior_failures,
            prior_shots=outcome.prior_shots,
        )

    # ------------------------------------------------------------------
    def _pipeline_for(self, check_matrix: np.ndarray,
                      observable_matrix: np.ndarray, priors: np.ndarray,
                      workers: int) -> ShardedExperiment:
        """The cached fused sample→decode pipeline for this experiment.

        Pipeline structure is cached by check-matrix *identity*: both
        sweep caches hand back the same matrix object across operating
        points, so points only refresh the priors (shipped per shard)
        and the worker pool persists across the sweep.  A change of
        worker count rebuilds the pipeline (and its pool).
        """
        if (self._pipeline is None
                or self._pipeline.handle.decoder.check_matrix
                is not check_matrix
                or self._pipeline.workers != workers):
            self.close()
            handle = ExperimentHandle(
                decoder=DecoderHandle(
                    check_matrix=check_matrix, priors=priors,
                    max_iterations=self.max_bp_iterations,
                    osd_order=self.osd_order, backend=self.backend,
                ),
                observable_matrix=observable_matrix,
                method=self.method,
            )
            self._pipeline = ShardedExperiment(
                handle, workers=workers, shard_shots=self.shard_shots,
                pool=self.pool,
                shard_timeout=self.shard_timeout,
                max_shard_retries=self.max_shard_retries,
            )
        return self._pipeline

    def _run_phenomenological(self, noise: HardwareNoiseModel, shots: int,
                              workers: int,
                              target: PrecisionTarget | None,
                              prior_tally: tuple[int, int],
                              run_seed: np.random.SeedSequence) -> tuple:
        if self._structure is None:
            self._structure = build_spacetime_structure(
                self.code, rounds=self.rounds, basis=self.basis
            )
        model = build_phenomenological_model(
            self.code, noise, rounds=self.rounds, basis=self.basis,
            structure=self._structure,
        )
        pipeline = self._pipeline_for(
            model.check_matrix, model.observable_matrix, model.priors,
            workers,
        )
        outcome = pipeline.run(shots, run_seed,
                               priors=model.priors,
                               target_precision=target,
                               prior_tally=prior_tally)
        return outcome, {
            "data_error_rate": model.data_error_rate,
            "measurement_error_rate": model.measurement_error_rate,
            "idle_error": noise.total_idle_error,
            "bp_converged_fraction": outcome.bp_converged_fraction,
            "num_shards": outcome.num_shards,
        }

    def _run_circuit(self, noise: HardwareNoiseModel, shots: int,
                     workers: int, target: PrecisionTarget | None,
                     prior_tally: tuple[int, int],
                     run_seed: np.random.SeedSequence) -> tuple:
        circuit = memory_experiment_circuit(
            self.code, noise, schedule=self.schedule, rounds=self.rounds,
            basis=self.basis,
        )
        # The DEM fault signatures depend on where the circuit's faults
        # live, not on their rates; across sweep points only the priors
        # are recomputed (see DemStructureCache) and only the circuit —
        # whose noise arguments the point changed — is re-shipped to the
        # workers, never the DEM structure.
        if self._dem_cache is None:
            self._dem_cache = DemStructureCache(
                backend=simulation_backend(self.backend))
        dem = self._dem_cache.model_for(circuit)
        pipeline = self._pipeline_for(
            dem.check_matrix, dem.observable_matrix, dem.priors, workers
        )
        outcome = pipeline.run(shots, run_seed, priors=dem.priors,
                               circuit=circuit, target_precision=target,
                               prior_tally=prior_tally)
        return outcome, {
            "num_detectors": dem.num_detectors,
            "num_mechanisms": dem.num_mechanisms,
            "idle_error": noise.total_idle_error,
            "bp_converged_fraction": outcome.bp_converged_fraction,
            "num_shards": outcome.num_shards,
        }


def logical_error_rate(code: CSSCode, physical_error_rate: float,
                       round_latency_us: float, shots: int = 200,
                       rounds: int | None = None, basis: str = "Z",
                       method: str = "phenomenological",
                       seed: int = 0, backend: str = "packed",
                       workers: int = 1,
                       shard_shots: int | None = None,
                       target_precision: "float | PrecisionTarget | None"
                       = None,
                       max_shots: int | None = None) -> MemoryResult:
    """One-call convenience wrapper around :class:`MemoryExperiment`.

    ``target_precision`` streams the run to a Wilson-interval half-width
    and stops early (deterministically — see
    :mod:`repro.parallel.pipeline`); ``max_shots`` caps the budget when
    it should differ from ``shots``.
    """
    with MemoryExperiment(
        code=code, rounds=rounds, basis=basis, method=method, seed=seed,
        backend=backend, workers=workers, shard_shots=shard_shots,
    ) as experiment:
        return experiment.run(physical_error_rate, round_latency_us,
                              shots=shots, target_precision=target_precision,
                              max_shots=max_shots)
