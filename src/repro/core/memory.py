"""Hardware-aware memory experiments: latency in, logical error rate out.

This is the paper's Section V-B pipeline.  Given a code, a compiled
execution latency (from any codesign) and a physical error rate, the
experiment

1. builds the hardware-aware noise model (base circuit noise + the
   Pauli-twirled decoherence channel parameterised by the latency),
2. samples ``shots`` memory experiments of ``rounds`` rounds of
   syndrome extraction, and
3. decodes each shot with BP+OSD and counts logical failures.

Two simulation methods are available: the fast ``"phenomenological"``
space-time model (default — used for the larger HGP/BB codes exactly
because the paper's comparisons only need the latency-driven *relative*
behaviour) and the fully ``"circuit"``-level detector error model
(exact circuit noise, practical for small codes and used to validate
the fast path in the test suite).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.circuits.builder import memory_experiment_circuit
from repro.codes.css import CSSCode
from repro.codes.scheduling import StabilizerSchedule
from repro.core.phenomenological import (
    build_phenomenological_model,
    build_spacetime_structure,
)
from repro.decoders.bposd import BPOSDDecoder, DecodeResult
from repro.linalg.bitops import pack_bits, packed_matmul
from repro.noise.hardware import HardwareNoiseModel
from repro.parallel.sharded import (
    DecoderHandle,
    ShardedDecoder,
    resolve_workers,
)
from repro.sim.dem import DemStructureCache
from repro.sim.frame import FrameSimulator

__all__ = ["MemoryExperiment", "MemoryResult", "logical_error_rate"]


@dataclass
class MemoryResult:
    """Outcome of a memory experiment."""

    code_name: str
    physical_error_rate: float
    round_latency_us: float
    rounds: int
    shots: int
    failures: int
    method: str
    basis: str
    metadata: dict = field(default_factory=dict)

    @property
    def logical_error_rate(self) -> float:
        """Logical failure probability per shot (``rounds`` rounds)."""
        return self.failures / self.shots if self.shots else 0.0

    @property
    def logical_error_rate_per_round(self) -> float:
        """Per-round failure probability, assuming independent rounds."""
        if self.shots == 0:
            return 0.0
        per_shot = self.logical_error_rate
        if per_shot >= 1.0:
            return 1.0
        return 1.0 - (1.0 - per_shot) ** (1.0 / self.rounds)

    @property
    def standard_error(self) -> float:
        """Binomial standard error of the per-shot estimate."""
        if self.shots == 0:
            return 0.0
        p = self.logical_error_rate
        return math.sqrt(max(p * (1 - p), 1.0 / self.shots ** 2) / self.shots)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoryResult({self.code_name}, p={self.physical_error_rate:g}, "
            f"latency={self.round_latency_us:g}us, "
            f"LER={self.logical_error_rate:.3g})"
        )


@dataclass
class MemoryExperiment:
    """Configurable memory-experiment runner.

    Parameters
    ----------
    code:
        The CSS code under test.
    rounds:
        Syndrome-extraction rounds per shot (default: the code distance,
        capped at 8 to keep the Monte-Carlo loop tractable).
    basis:
        ``"Z"`` (default) or ``"X"`` memory.
    method:
        ``"phenomenological"`` (default) or ``"circuit"``.
    max_bp_iterations, osd_order:
        Decoder knobs passed to :class:`~repro.decoders.bposd.BPOSDDecoder`.
    schedule:
        Gate schedule used by the circuit-level method.
    backend:
        ``"packed"`` (default) uses the bit-packed shot-parallel kernels
        throughout (simulator, DEM, decoder); ``"bool"`` selects the
        boolean reference implementations.
    workers:
        Default worker-process count for the decode stage (``1``:
        in-process; ``0``: one worker per core; overridable per
        :meth:`run` call).  Results are bit-identical for every value.
    shard_shots:
        Shots per decode shard when sharding across workers (default:
        the decoder's ``block_shots``).
    seed:
        Root seed.  Every call to :meth:`run` derives an independent
        child seed via ``numpy.random.SeedSequence.spawn``, so sweep
        points are sampled with decorrelated noise realisations while
        the sweep as a whole stays reproducible.
    """

    code: CSSCode
    rounds: int | None = None
    basis: str = "Z"
    method: str = "phenomenological"
    max_bp_iterations: int = 40
    osd_order: int = 0
    schedule: StabilizerSchedule | None = None
    seed: int = 0
    backend: str = "packed"
    workers: int = 1
    shard_shots: int | None = None

    def __post_init__(self) -> None:
        if self.method not in ("phenomenological", "circuit"):
            raise ValueError("method must be 'phenomenological' or 'circuit'")
        if self.backend not in ("packed", "bool"):
            raise ValueError("backend must be 'packed' or 'bool'")
        self.workers = resolve_workers(self.workers)
        if self.rounds is None:
            distance = self.code.distance or 3
            self.rounds = max(1, min(distance, 8))
        self._seed_sequence = np.random.SeedSequence(self.seed)
        # Sweep caches: the space-time structure (phenomenological), the
        # DEM fault signatures (circuit) and the decoder graph depend
        # only on (code, rounds, basis, decoder knobs) — all fixed for
        # this experiment — so operating-point sweeps reuse them and
        # merely refresh the per-point priors.
        self._structure = None
        self._decoder = None
        self._decoder_matrix = None
        self._sharded = None
        self._dem_cache = None

    def _spawn_seed(self) -> np.random.SeedSequence:
        """Child seed for the next run (decorrelated across sweep points)."""
        return self._seed_sequence.spawn(1)[0]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the worker pool, if one was created (idempotent)."""
        if self._sharded is not None:
            self._sharded.close()
            self._sharded = None

    def __enter__(self) -> "MemoryExperiment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(self, physical_error_rate: float, round_latency_us: float,
            shots: int = 200, workers: int | None = None) -> MemoryResult:
        """Estimate the logical error rate at one operating point.

        ``workers`` overrides the experiment-level default for this call
        (``1``: in-process; ``N``: shard the decode across ``N`` worker
        processes; ``0``: one per core).  The result is bit-identical
        for every value — only the wall-clock changes.
        """
        workers = self.workers if workers is None else resolve_workers(workers)
        noise = HardwareNoiseModel.from_physical_error_rate(
            physical_error_rate, round_latency_us=round_latency_us
        )
        if self.method == "phenomenological":
            failures, extra = self._run_phenomenological(noise, shots, workers)
        else:
            failures, extra = self._run_circuit(noise, shots, workers)
        return MemoryResult(
            code_name=self.code.name,
            physical_error_rate=physical_error_rate,
            round_latency_us=round_latency_us,
            rounds=self.rounds,
            shots=shots,
            failures=failures,
            method=self.method,
            basis=self.basis,
            metadata=extra,
        )

    # ------------------------------------------------------------------
    def _predict_observables(self, errors: np.ndarray,
                             observable_matrix: np.ndarray,
                             observable_packed: np.ndarray | None = None
                             ) -> np.ndarray:
        """``errors @ observable_matrix.T mod 2`` in the active backend."""
        if self.backend == "packed":
            if observable_packed is None:
                observable_packed = pack_bits(observable_matrix, axis=1)
            return packed_matmul(pack_bits(errors, axis=1), observable_packed)
        return (errors @ observable_matrix.T) % 2

    def _decode_syndromes(self, check_matrix: np.ndarray,
                          priors: np.ndarray, syndromes: np.ndarray,
                          workers: int) -> DecodeResult:
        """Decode with the cached (possibly sharded) decoder.

        Decoder structure is cached by check-matrix *identity*: both
        sweep caches hand back the same matrix object across operating
        points, so points only refresh the priors.  Shots are decoded
        in-process for ``workers <= 1`` and sharded across a reusable
        process pool otherwise; the results are bit-identical.
        """
        if workers > 1:
            if (self._sharded is None
                    or self._sharded.handle.check_matrix is not check_matrix
                    or self._sharded.workers != workers):
                self.close()
                handle = DecoderHandle(
                    check_matrix=check_matrix, priors=priors,
                    max_iterations=self.max_bp_iterations,
                    osd_order=self.osd_order, backend=self.backend,
                )
                self._sharded = ShardedDecoder(
                    handle, workers=workers, shard_shots=self.shard_shots
                )
            else:
                self._sharded.update_priors(priors)
            return self._sharded.decode_batch(syndromes)
        if self._decoder is None or self._decoder_matrix is not check_matrix:
            self._decoder = BPOSDDecoder(
                check_matrix, priors,
                max_iterations=self.max_bp_iterations,
                osd_order=self.osd_order, backend=self.backend,
            )
            self._decoder_matrix = check_matrix
        else:
            self._decoder.update_priors(priors)
        return self._decoder.decode_batch(syndromes)

    def _run_phenomenological(self, noise: HardwareNoiseModel, shots: int,
                              workers: int) -> tuple[int, dict]:
        if self._structure is None:
            self._structure = build_spacetime_structure(
                self.code, rounds=self.rounds, basis=self.basis
            )
        model = build_phenomenological_model(
            self.code, noise, rounds=self.rounds, basis=self.basis,
            structure=self._structure,
        )
        syndromes, observables = model.sample(
            shots, seed=self._spawn_seed(), backend=self.backend
        )
        decoded = self._decode_syndromes(
            model.check_matrix, model.priors, syndromes, workers
        )
        predicted = self._predict_observables(
            decoded.errors, model.observable_matrix,
            observable_packed=self._structure.packed_observable_matrix
            if self.backend == "packed" else None,
        )
        failures = int(
            np.any(predicted.astype(bool) != observables.astype(bool), axis=1)
            .sum()
        )
        return failures, {
            "data_error_rate": model.data_error_rate,
            "measurement_error_rate": model.measurement_error_rate,
            "idle_error": noise.total_idle_error,
            "bp_converged_fraction": float(decoded.bp_converged.mean()),
        }

    def _run_circuit(self, noise: HardwareNoiseModel, shots: int,
                     workers: int) -> tuple[int, dict]:
        circuit = memory_experiment_circuit(
            self.code, noise, schedule=self.schedule, rounds=self.rounds,
            basis=self.basis,
        )
        # The DEM fault signatures depend on where the circuit's faults
        # live, not on their rates; across sweep points only the priors
        # are recomputed (see DemStructureCache).
        if self._dem_cache is None:
            self._dem_cache = DemStructureCache(backend=self.backend)
        dem = self._dem_cache.model_for(circuit)
        sample = FrameSimulator(
            circuit, seed=self._spawn_seed(), backend=self.backend
        ).sample(shots)
        decoded = self._decode_syndromes(
            dem.check_matrix, dem.priors, sample.detectors, workers
        )
        predicted = self._predict_observables(
            decoded.errors, dem.observable_matrix,
            observable_packed=self._dem_cache.structure.packed_observable_matrix
            if self.backend == "packed" else None,
        )
        failures = int(
            np.any(predicted.astype(bool) != sample.observables, axis=1).sum()
        )
        return failures, {
            "num_detectors": dem.num_detectors,
            "num_mechanisms": dem.num_mechanisms,
            "idle_error": noise.total_idle_error,
            "bp_converged_fraction": float(decoded.bp_converged.mean()),
        }


def logical_error_rate(code: CSSCode, physical_error_rate: float,
                       round_latency_us: float, shots: int = 200,
                       rounds: int | None = None, basis: str = "Z",
                       method: str = "phenomenological",
                       seed: int = 0, backend: str = "packed",
                       workers: int = 1) -> MemoryResult:
    """One-call convenience wrapper around :class:`MemoryExperiment`."""
    with MemoryExperiment(
        code=code, rounds=rounds, basis=basis, method=method, seed=seed,
        backend=backend, workers=workers,
    ) as experiment:
        return experiment.run(physical_error_rate, round_latency_us,
                              shots=shots)
