"""Spacetime cost: the combined spatial/temporal efficiency metric.

Figure 16 compares architectures by the product

    spacetime = number of traps x execution time x number of ancilla qubits

which rewards designs that are simultaneously fast and frugal.  Cyclone
wins on all three factors (half the traps, half the ancillas, a few
times faster), which compounds into the paper's ~20x headline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.qccd.schedule import CompiledSchedule

__all__ = ["SpacetimeCost", "spacetime_cost", "spacetime_comparison"]


@dataclass(frozen=True)
class SpacetimeCost:
    """The spacetime cost of one compiled schedule."""

    architecture: str
    code_name: str
    num_traps: int
    num_ancilla: int
    execution_time_us: float

    @property
    def cost(self) -> float:
        return self.num_traps * self.num_ancilla * self.execution_time_us

    def relative_to(self, other: "SpacetimeCost") -> float:
        """How many times cheaper ``other`` is than this cost."""
        if other.cost == 0:
            return float("inf")
        return self.cost / other.cost


def spacetime_cost(compiled: CompiledSchedule) -> SpacetimeCost:
    """Extract the spacetime cost from a compiled schedule."""
    metadata = compiled.metadata
    return SpacetimeCost(
        architecture=compiled.architecture,
        code_name=compiled.code_name,
        num_traps=int(metadata.get("num_traps", 0)),
        num_ancilla=int(metadata.get("num_ancilla", 0)),
        execution_time_us=compiled.execution_time_us,
    )


def spacetime_comparison(baseline: CompiledSchedule,
                         candidate: CompiledSchedule) -> dict[str, float]:
    """Figure 16 style comparison of two compiled schedules."""
    base = spacetime_cost(baseline)
    cand = spacetime_cost(candidate)
    return {
        "baseline_cost": base.cost,
        "candidate_cost": cand.cost,
        "improvement_factor": base.relative_to(cand),
        "trap_ratio": (base.num_traps / cand.num_traps
                       if cand.num_traps else float("inf")),
        "ancilla_ratio": (base.num_ancilla / cand.num_ancilla
                          if cand.num_ancilla else float("inf")),
        "time_ratio": (base.execution_time_us / cand.execution_time_us
                       if cand.execution_time_us else float("inf")),
    }
