"""Binomial confidence intervals and precision targets for early stopping.

Every logical-error-rate estimate in the reproduction is a binomial
proportion: ``failures`` successes out of ``shots`` independent trials.
The streaming pipeline (:mod:`repro.parallel.pipeline`) and the adaptive
sweep scheduler (:mod:`repro.core.sweep`) stop spending shots once the
estimate's confidence interval is tight enough, so the interval math
lives here, in one dependency-free module (the normal quantile comes
from the standard library's :class:`statistics.NormalDist`).

Two intervals are provided:

* **Wilson** (:func:`wilson_interval`) — the default, and what every
  stop decision actually evaluates.  Well behaved at the extreme
  proportions this code base lives at (logical error rates of 1e-2
  down to 1e-6, including zero observed failures), where the naive
  Wald interval collapses to zero width.
* **Agresti–Coull** (:func:`agresti_coull_interval`) — the "add
  ``z**2`` pseudo trials" approximation of Wilson, exposed as an
  independent cross-check and kept as a purely *defensive* fallback in
  :func:`binomial_interval`: for validated inputs the Wilson
  arithmetic cannot produce a non-finite bound, so the fallback is not
  expected to ever trigger.

A :class:`PrecisionTarget` packages the stopping rule: the interval's
half-width (absolute, or relative to the point estimate) at a given
confidence, plus an optional shot floor.  Its :meth:`~PrecisionTarget.met`
decision is a pure function of ``(failures, shots)`` — the streaming
engine's determinism contract depends on exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from statistics import NormalDist

__all__ = [
    "PrecisionTarget",
    "agresti_coull_interval",
    "as_precision_target",
    "binomial_interval",
    "wilson_interval",
    "z_score",
]


@lru_cache(maxsize=16)
def z_score(confidence: float = 0.95) -> float:
    """Two-sided normal quantile for a confidence level (0.95 -> 1.96)."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    return NormalDist().inv_cdf(0.5 + confidence / 2.0)


def _validate_tally(failures: int, shots: int) -> None:
    if shots < 0:
        raise ValueError("shots must be non-negative")
    if not 0 <= failures <= max(shots, 0):
        raise ValueError("failures must lie in [0, shots]")


def wilson_interval(failures: int, shots: int,
                    confidence: float = 0.95) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Returns ``(low, high)`` clipped to ``[0, 1]``; ``shots == 0`` yields
    the vacuous ``(0, 1)``.
    """
    _validate_tally(failures, shots)
    if shots == 0:
        return 0.0, 1.0
    z = z_score(confidence)
    z2 = z * z
    p_hat = failures / shots
    denominator = 1.0 + z2 / shots
    center = (p_hat + z2 / (2.0 * shots)) / denominator
    half_width = (
        z * math.sqrt(p_hat * (1.0 - p_hat) / shots
                      + z2 / (4.0 * shots * shots))
        / denominator
    )
    return max(0.0, center - half_width), min(1.0, center + half_width)


def agresti_coull_interval(failures: int, shots: int,
                           confidence: float = 0.95) -> tuple[float, float]:
    """Agresti–Coull interval: Wilson's center with a Wald-style width.

    Adds ``z**2`` pseudo-trials (half failures, half successes) and
    applies the normal approximation to the shrunk estimate.  Used as
    the fallback when a Wilson evaluation degenerates.
    """
    _validate_tally(failures, shots)
    if shots == 0:
        return 0.0, 1.0
    z = z_score(confidence)
    z2 = z * z
    n_tilde = shots + z2
    p_tilde = (failures + z2 / 2.0) / n_tilde
    half_width = z * math.sqrt(p_tilde * (1.0 - p_tilde) / n_tilde)
    return max(0.0, p_tilde - half_width), min(1.0, p_tilde + half_width)


def binomial_interval(failures: int, shots: int,
                      confidence: float = 0.95) -> tuple[float, float]:
    """Confidence interval for ``failures / shots``: Wilson.

    The Agresti–Coull branch is a defensive fallback only — Wilson's
    arithmetic is finite for every validated input, so in practice
    this function *is* the Wilson interval."""
    low, high = wilson_interval(failures, shots, confidence)
    if math.isfinite(low) and math.isfinite(high):
        return low, high
    return agresti_coull_interval(failures, shots, confidence)


@dataclass(frozen=True)
class PrecisionTarget:
    """A stopping rule on the width of a binomial confidence interval.

    Parameters
    ----------
    half_width:
        Target half-width of the interval.  Interpreted as an absolute
        probability by default, or — with ``relative=True`` — as a
        fraction of the point estimate ``failures / shots``.
    relative:
        Relative targets never trigger at zero observed failures (the
        relative error of an estimated zero is unbounded); pair them
        with a shot cap.
    confidence:
        Confidence level of the interval (default 95%).
    min_shots:
        Never stop before this many shots, whatever the interval says.

    :meth:`met` is a pure function of ``(failures, shots)``; the
    streaming engine evaluates it on shard-prefix tallies only, which
    is what keeps early stopping bit-identical across worker counts.
    """

    half_width: float
    relative: bool = False
    confidence: float = 0.95
    min_shots: int = 0

    def __post_init__(self) -> None:
        if not self.half_width > 0.0:
            raise ValueError("half_width must be positive")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if self.min_shots < 0:
            raise ValueError("min_shots must be non-negative")

    # ------------------------------------------------------------------
    def interval(self, failures: int, shots: int) -> tuple[float, float]:
        """The confidence interval this target is evaluated on."""
        return binomial_interval(failures, shots, self.confidence)

    def achieved_half_width(self, failures: int, shots: int) -> float:
        low, high = self.interval(failures, shots)
        return (high - low) / 2.0

    def met(self, failures: int, shots: int) -> bool:
        """Is the interval for this tally already tight enough?"""
        if shots <= 0 or shots < self.min_shots:
            return False
        half_width = self.achieved_half_width(failures, shots)
        if self.relative:
            if failures == 0:
                return False
            return half_width <= self.half_width * (failures / shots)
        return half_width <= self.half_width

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe representation (campaign specs and result stores)."""
        return {
            "half_width": self.half_width,
            "relative": self.relative,
            "confidence": self.confidence,
            "min_shots": self.min_shots,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PrecisionTarget":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        unknown = set(payload) - {"half_width", "relative", "confidence",
                                  "min_shots"}
        if unknown:
            raise ValueError(f"unknown PrecisionTarget keys {sorted(unknown)}")
        if "half_width" not in payload:
            raise ValueError("PrecisionTarget needs a half_width")
        return cls(
            half_width=float(payload["half_width"]),
            relative=bool(payload.get("relative", False)),
            confidence=float(payload.get("confidence", 0.95)),
            min_shots=int(payload.get("min_shots", 0)),
        )


def as_precision_target(spec: "float | PrecisionTarget | None",
                        confidence: float = 0.95
                        ) -> PrecisionTarget | None:
    """Coerce a ``target_precision=`` argument into a target.

    ``None`` passes through (no early stopping); a bare float is an
    absolute half-width at the given confidence; a
    :class:`PrecisionTarget` is returned unchanged.
    """
    if spec is None:
        return None
    if isinstance(spec, PrecisionTarget):
        return spec
    return PrecisionTarget(half_width=float(spec), confidence=confidence)
