"""Syndrome-extraction and memory-experiment circuit construction.

Builds the noisy stabilizer circuits sampled in the paper's memory
experiments: ``rounds`` rounds of syndrome extraction (laid out
according to a :class:`~repro.codes.scheduling.StabilizerSchedule`)
followed by a transversal data-qubit readout, with detectors comparing
consecutive stabilizer measurements and logical observables read off
the final data measurements.

Noise placement follows Section II-C: depolarizing noise after two-qubit
gates, state-preparation and measurement flip errors, and a per-round
Pauli-twirled idle channel on every data qubit whose strength comes from
the compiled round latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import Circuit
from repro.codes.css import CSSCode
from repro.codes.scheduling import StabilizerSchedule, x_then_z_schedule
from repro.noise.hardware import HardwareNoiseModel

__all__ = ["SyndromeCircuitBuilder", "memory_experiment_circuit"]


@dataclass
class SyndromeCircuitBuilder:
    """Configurable builder for memory-experiment circuits.

    Parameters
    ----------
    code:
        The CSS code to protect.
    noise:
        Hardware-aware noise model (base circuit noise + round latency).
    schedule:
        Gate schedule; defaults to the non-edge-colorable X-then-Z
        schedule used by Cyclone.
    rounds:
        Number of syndrome extraction rounds; defaults to the code
        distance (or 3 when the distance is unknown).
    basis:
        ``"Z"`` (default) protects logical Z observables against X
        errors; ``"X"`` the converse.
    """

    code: CSSCode
    noise: HardwareNoiseModel
    schedule: StabilizerSchedule | None = None
    rounds: int | None = None
    basis: str = "Z"

    def __post_init__(self) -> None:
        if self.basis not in ("Z", "X"):
            raise ValueError("basis must be 'Z' or 'X'")
        if self.schedule is None:
            self.schedule = x_then_z_schedule(self.code)
        if self.schedule.code is not self.code:
            # Allow equal-but-distinct code objects; just sanity check size.
            if self.schedule.code.num_qubits != self.code.num_qubits:
                raise ValueError("schedule belongs to a different code")
        if self.rounds is None:
            self.rounds = self.code.distance or 3
        if self.rounds < 1:
            raise ValueError("need at least one round")

    # ------------------------------------------------------------------
    # Qubit layout
    # ------------------------------------------------------------------
    @property
    def num_data(self) -> int:
        return self.code.num_qubits

    def ancilla_index(self, stabilizer: int) -> int:
        """Physical qubit index of the ancilla for a global stabilizer index."""
        return self.num_data + stabilizer

    # ------------------------------------------------------------------
    def build(self) -> Circuit:
        """Construct the full noisy memory-experiment circuit."""
        code = self.code
        noise = self.noise
        base = noise.base
        circuit = Circuit()

        num_x = code.num_x_stabilizers
        num_z = code.num_z_stabilizers
        data_qubits = list(range(self.num_data))
        x_ancillas = [self.ancilla_index(i) for i in range(num_x)]
        z_ancillas = [self.ancilla_index(num_x + j) for j in range(num_z)]

        idle = noise.idle_channel

        # --- Data preparation -------------------------------------------------
        if self.basis == "Z":
            circuit.append("R", data_qubits)
            if base.p_prep > 0:
                circuit.append("X_ERROR", data_qubits, base.p_prep)
        else:
            circuit.append("RX", data_qubits)
            if base.p_prep > 0:
                circuit.append("Z_ERROR", data_qubits, base.p_prep)
        circuit.tick()

        # Measurement record indices of the previous round, per stabilizer.
        previous_round: dict[int, int] = {}

        for round_index in range(self.rounds):
            previous_round = self._append_round(
                circuit, round_index, data_qubits, x_ancillas, z_ancillas,
                previous_round, idle,
            )

        # --- Final transversal data readout -----------------------------------
        final_records = circuit.measure(
            data_qubits, basis=self.basis, flip_probability=base.p_meas
        )
        self._append_final_detectors(circuit, final_records, previous_round)
        self._append_observables(circuit, final_records)
        return circuit

    # ------------------------------------------------------------------
    def _append_round(self, circuit: Circuit, round_index: int,
                      data_qubits, x_ancillas, z_ancillas,
                      previous_round: dict[int, int],
                      idle: tuple[float, float, float]) -> dict[int, int]:
        code = self.code
        base = self.noise.base
        num_x = code.num_x_stabilizers

        # Idle decoherence on data qubits, once per round, from latency.
        if any(p > 0 for p in idle):
            circuit.append("PAULI_CHANNEL_1", data_qubits, arguments=idle)

        # Ancilla preparation.
        if x_ancillas:
            circuit.append("RX", x_ancillas)
            if base.p_prep > 0:
                circuit.append("Z_ERROR", x_ancillas, base.p_prep)
        if z_ancillas:
            circuit.append("R", z_ancillas)
            if base.p_prep > 0:
                circuit.append("X_ERROR", z_ancillas, base.p_prep)
        circuit.tick()

        # Entangling layers from the schedule.
        for timeslice in self.schedule.timeslices:
            cx_targets: list[int] = []
            for gate in timeslice:
                ancilla = self.ancilla_index(gate.stabilizer)
                if gate.basis == "X":
                    cx_targets.extend((ancilla, gate.data))
                else:
                    cx_targets.extend((gate.data, ancilla))
            if not cx_targets:
                continue
            circuit.append("CX", cx_targets)
            if base.p2 > 0:
                circuit.append("DEPOLARIZE2", cx_targets, base.p2)
            circuit.tick()

        # Ancilla measurement.
        new_records: dict[int, int] = {}
        if x_ancillas:
            records = circuit.measure(
                x_ancillas, basis="X", flip_probability=base.p_meas
            )
            for i, record in enumerate(records):
                new_records[i] = record
        if z_ancillas:
            records = circuit.measure(
                z_ancillas, basis="Z", flip_probability=base.p_meas
            )
            for j, record in enumerate(records):
                new_records[num_x + j] = record

        # Detectors: compare with the previous round; in the first round
        # only the stabilizers matching the preparation basis are
        # deterministic on their own.
        deterministic_first = "Z" if self.basis == "Z" else "X"
        for stabilizer, record in new_records.items():
            basis = "X" if stabilizer < num_x else "Z"
            if round_index == 0:
                if basis == deterministic_first:
                    circuit.detector([record])
            else:
                circuit.detector([previous_round[stabilizer], record])
        circuit.tick()
        return new_records

    # ------------------------------------------------------------------
    def _append_final_detectors(self, circuit: Circuit, final_records,
                                previous_round: dict[int, int]) -> None:
        """Compare the last ancilla round against stabilizers recomputed
        from the transversal data readout."""
        code = self.code
        num_x = code.num_x_stabilizers
        if self.basis == "Z":
            # Data measured in Z basis: Z stabilizers are recomputable.
            for j in range(code.num_z_stabilizers):
                support = code.z_stabilizer_support(j)
                targets = [final_records[q] for q in support]
                stabilizer = num_x + j
                if stabilizer in previous_round:
                    targets.append(previous_round[stabilizer])
                circuit.detector(targets)
        else:
            for i in range(num_x):
                support = code.x_stabilizer_support(i)
                targets = [final_records[q] for q in support]
                if i in previous_round:
                    targets.append(previous_round[i])
                circuit.detector(targets)

    def _append_observables(self, circuit: Circuit, final_records) -> None:
        code = self.code
        logicals = code.logical_z if self.basis == "Z" else code.logical_x
        for observable_index, row in enumerate(logicals):
            support = [q for q in range(code.num_qubits) if row[q]]
            circuit.observable_include(
                [final_records[q] for q in support], observable_index
            )


def memory_experiment_circuit(code: CSSCode, noise: HardwareNoiseModel,
                              schedule: StabilizerSchedule | None = None,
                              rounds: int | None = None,
                              basis: str = "Z") -> Circuit:
    """Convenience wrapper around :class:`SyndromeCircuitBuilder`."""
    builder = SyndromeCircuitBuilder(
        code=code, noise=noise, schedule=schedule, rounds=rounds, basis=basis
    )
    return builder.build()
