"""Quantum circuit intermediate representation and circuit builders.

The circuits produced here are *annotated stabilizer circuits*: Clifford
gates, resets and measurements interleaved with Pauli noise channels,
detector definitions (parities of measurement outcomes that are
deterministic in the absence of noise) and logical-observable
definitions.  They are consumed by the Pauli-frame sampler and the
detector-error-model builder in :mod:`repro.sim`.
"""

from repro.circuits.circuit import Circuit, Instruction
from repro.circuits.builder import (
    SyndromeCircuitBuilder,
    memory_experiment_circuit,
)

__all__ = [
    "Circuit",
    "Instruction",
    "SyndromeCircuitBuilder",
    "memory_experiment_circuit",
]
