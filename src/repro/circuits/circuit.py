r"""A minimal stabilizer-circuit intermediate representation.

The instruction set is intentionally close to Stim's:

Gates and state preparation
    ``R`` (reset to \|0>), ``RX`` (reset to \|+>), ``H``, ``CX``
Measurements
    ``M`` (Z basis), ``MX`` (X basis) — every measurement appends one bit
    to the global measurement record
Noise channels
    ``X_ERROR``, ``Z_ERROR``, ``DEPOLARIZE1``, ``DEPOLARIZE2``,
    ``PAULI_CHANNEL_1`` (independent px/py/pz), and measurement flip
    noise expressed through the ``flip_probability`` field of ``M``/``MX``
Annotations
    ``TICK`` (layer separator), ``DETECTOR`` (parity of measurement
    record indices, deterministic without noise), ``OBSERVABLE_INCLUDE``
    (adds measurement record indices to a logical observable)

Measurement record indices in ``DETECTOR`` / ``OBSERVABLE_INCLUDE``
targets are *absolute* indices into the order measurements appear in the
circuit (0-based).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Instruction", "Circuit"]

GATE_NAMES = {"R", "RX", "H", "CX", "M", "MX"}
NOISE_NAMES = {
    "X_ERROR",
    "Z_ERROR",
    "DEPOLARIZE1",
    "DEPOLARIZE2",
    "PAULI_CHANNEL_1",
}
ANNOTATION_NAMES = {"TICK", "DETECTOR", "OBSERVABLE_INCLUDE"}
TWO_QUBIT_GATES = {"CX"}
MEASUREMENT_NAMES = {"M", "MX"}

VALID_NAMES = GATE_NAMES | NOISE_NAMES | ANNOTATION_NAMES


@dataclass(frozen=True)
class Instruction:
    """One circuit instruction.

    ``targets`` are qubit indices for gates/noise, or absolute
    measurement-record indices for ``DETECTOR``/``OBSERVABLE_INCLUDE``.
    ``argument`` carries the error probability for noise channels, the
    measurement flip probability for measurements, or the observable
    index for ``OBSERVABLE_INCLUDE``.  ``arguments`` carries the
    (px, py, pz) triple for ``PAULI_CHANNEL_1``.
    """

    name: str
    targets: tuple[int, ...] = ()
    argument: float = 0.0
    arguments: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.name not in VALID_NAMES:
            raise ValueError(f"unknown instruction {self.name!r}")
        if self.name == "CX" and len(self.targets) % 2 != 0:
            raise ValueError("CX requires an even number of targets")
        if self.name == "PAULI_CHANNEL_1" and len(self.arguments) != 3:
            raise ValueError("PAULI_CHANNEL_1 needs (px, py, pz)")

    @property
    def is_noise(self) -> bool:
        return self.name in NOISE_NAMES

    @property
    def is_measurement(self) -> bool:
        return self.name in MEASUREMENT_NAMES


class Circuit:
    """An ordered list of instructions plus bookkeeping.

    The class tracks the number of qubits touched, the number of
    measurements, detectors and observables, and offers convenience
    ``append_*`` helpers used by the circuit builders.
    """

    def __init__(self) -> None:
        self.instructions: list[Instruction] = []
        self._num_qubits = 0
        self._num_measurements = 0
        self._num_detectors = 0
        self._observables: set[int] = set()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def append(self, name: str, targets=(), argument: float = 0.0,
               arguments: tuple[float, ...] = ()) -> Instruction:
        """Append an instruction and update bookkeeping; returns it."""
        if isinstance(targets, int):
            targets = (targets,)
        instruction = Instruction(
            name=name,
            targets=tuple(int(t) for t in targets),
            argument=float(argument),
            arguments=tuple(float(a) for a in arguments),
        )
        self.instructions.append(instruction)
        if name in GATE_NAMES or name in NOISE_NAMES:
            if instruction.targets:
                self._num_qubits = max(
                    self._num_qubits, max(instruction.targets) + 1
                )
        if name in MEASUREMENT_NAMES:
            self._num_measurements += len(instruction.targets)
        if name == "DETECTOR":
            self._num_detectors += 1
        if name == "OBSERVABLE_INCLUDE":
            self._observables.add(int(argument))
        return instruction

    def tick(self) -> None:
        self.append("TICK")

    def measure(self, targets, basis: str = "Z",
                flip_probability: float = 0.0) -> list[int]:
        """Measure qubits and return the absolute record indices produced."""
        if isinstance(targets, int):
            targets = (targets,)
        targets = tuple(int(t) for t in targets)
        start = self._num_measurements
        name = "M" if basis == "Z" else "MX"
        self.append(name, targets, argument=flip_probability)
        return list(range(start, start + len(targets)))

    def detector(self, measurement_indices) -> None:
        """Declare a detector over absolute measurement-record indices."""
        self.append("DETECTOR", tuple(measurement_indices))

    def observable_include(self, measurement_indices, observable: int) -> None:
        """Add measurement records to logical observable ``observable``."""
        self.append(
            "OBSERVABLE_INCLUDE", tuple(measurement_indices),
            argument=observable,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def num_measurements(self) -> int:
        return self._num_measurements

    @property
    def num_detectors(self) -> int:
        return self._num_detectors

    @property
    def num_observables(self) -> int:
        return (max(self._observables) + 1) if self._observables else 0

    @property
    def num_ticks(self) -> int:
        return sum(1 for ins in self.instructions if ins.name == "TICK")

    def count(self, name: str) -> int:
        """Number of instructions with the given name."""
        return sum(1 for ins in self.instructions if ins.name == name)

    def gate_count(self, name: str) -> int:
        """Total number of gate applications of ``name`` (counting targets).

        For two-qubit gates each pair counts once.
        """
        total = 0
        for ins in self.instructions:
            if ins.name != name:
                continue
            if name in TWO_QUBIT_GATES:
                total += len(ins.targets) // 2
            else:
                total += len(ins.targets)
        return total

    def noise_instructions(self) -> list[tuple[int, Instruction]]:
        """All noise instructions with their positions (including noisy measurements)."""
        found = []
        for idx, ins in enumerate(self.instructions):
            if ins.is_noise or (ins.is_measurement and ins.argument > 0):
                found.append((idx, ins))
        return found

    def without_noise(self) -> "Circuit":
        """A copy of this circuit with every noise channel removed.

        Measurement flip probabilities are zeroed; detectors and
        observables are preserved.
        """
        clean = Circuit()
        for ins in self.instructions:
            if ins.is_noise:
                continue
            if ins.is_measurement:
                clean.append(ins.name, ins.targets, argument=0.0)
            else:
                clean.append(ins.name, ins.targets, ins.argument, ins.arguments)
        return clean

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit({len(self.instructions)} instructions, "
            f"{self.num_qubits} qubits, {self.num_measurements} measurements, "
            f"{self.num_detectors} detectors)"
        )

    def to_text(self) -> str:
        """A human-readable listing (useful in tests and debugging)."""
        lines = []
        for ins in self.instructions:
            name = ins.name
            if ins.arguments:
                name += "(" + ",".join(f"{a:g}" for a in ins.arguments) + ")"
            elif ins.argument:
                name += f"({ins.argument:g})"
            parts = [name] + [str(t) for t in ins.targets]
            lines.append(" ".join(parts))
        return "\n".join(lines)
