"""Stabilizer measurement schedules (timeslice generation).

The paper's "dynamic" software policy abandons the gate DAG and instead
treats the syndrome extraction circuit as a sequence of *timeslices*:
sets of data-ancilla CNOTs that can all run concurrently because no
qubit appears twice in one slice.  Two policies are described
(Section III-A):

* **Non-edge-colorable CSS schedule** — measure all X stabilizers in
  parallel, then all Z stabilizers.  Within each basis the CNOTs are
  arranged by a proper edge colouring of the bipartite Tanner graph
  (ancillas vs. data qubits), so the depth is the maximum degree of that
  graph — for the regular codes in the paper this equals the maximum
  stabilizer weight, giving the ``w_max(X) + w_max(Z)`` bound.
* **Edge-colorable schedule** — for hypergraph product codes, X and Z
  measurements can be interleaved; we realise this by edge colouring the
  *union* Tanner graph, which yields more timeslices per rotation
  (8 - 12 for the paper's HGP codes) but measures both bases in one pass.

A fully serial schedule (one CNOT per slice) is provided as the
denominator for Figure 3's speedup analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.codes.css import CSSCode

__all__ = [
    "ScheduledGate",
    "StabilizerSchedule",
    "bipartite_edge_coloring",
    "serial_schedule",
    "x_then_z_schedule",
    "interleaved_schedule",
    "schedule_for",
    "parallelism_bound",
]


@dataclass(frozen=True)
class ScheduledGate:
    """One data-ancilla CNOT in a syndrome extraction schedule.

    ``stabilizer`` is the global stabilizer index (X stabilizers first,
    then Z), ``basis`` is ``"X"`` or ``"Z"``, ``ancilla`` is the ancilla
    qubit index used for that stabilizer (by convention equal to the
    global stabilizer index at the schedule level — hardware compilers
    may remap it), and ``data`` is the data qubit index.
    """

    stabilizer: int
    basis: str
    ancilla: int
    data: int


@dataclass
class StabilizerSchedule:
    """A syndrome-extraction schedule as an ordered list of timeslices."""

    code: CSSCode
    timeslices: list[list[ScheduledGate]]
    policy: str
    metadata: dict = field(default_factory=dict)

    @property
    def depth(self) -> int:
        """Number of timeslices (gate layers)."""
        return len(self.timeslices)

    @property
    def total_gates(self) -> int:
        return sum(len(slice_) for slice_ in self.timeslices)

    @property
    def max_parallelism(self) -> int:
        """Largest number of concurrent CNOTs in any timeslice."""
        if not self.timeslices:
            return 0
        return max(len(slice_) for slice_ in self.timeslices)

    def validate(self) -> bool:
        """Check schedule well-formedness.

        Every CNOT of the code appears exactly once, and within a single
        timeslice no data qubit or ancilla is used twice.
        """
        seen: set[tuple[int, int]] = set()
        for slice_ in self.timeslices:
            data_used: set[int] = set()
            ancilla_used: set[int] = set()
            for gate in slice_:
                if gate.data in data_used or gate.ancilla in ancilla_used:
                    return False
                data_used.add(gate.data)
                ancilla_used.add(gate.ancilla)
                key = (gate.stabilizer, gate.data)
                if key in seen:
                    return False
                seen.add(key)
        expected = set()
        for x_idx in range(self.code.num_x_stabilizers):
            for data in self.code.x_stabilizer_support(x_idx):
                expected.add((x_idx, data))
        offset = self.code.num_x_stabilizers
        for z_idx in range(self.code.num_z_stabilizers):
            for data in self.code.z_stabilizer_support(z_idx):
                expected.add((offset + z_idx, data))
        return seen == expected

    def gates_for_stabilizer(self, stabilizer: int) -> list[tuple[int, ScheduledGate]]:
        """All gates for a stabilizer as ``(timeslice_index, gate)`` pairs."""
        found = []
        for t, slice_ in enumerate(self.timeslices):
            for gate in slice_:
                if gate.stabilizer == stabilizer:
                    found.append((t, gate))
        return found


def _all_gates(code: CSSCode) -> list[ScheduledGate]:
    """Every CNOT of a syndrome extraction round, X stabilizers first."""
    gates: list[ScheduledGate] = []
    for x_idx in range(code.num_x_stabilizers):
        for data in code.x_stabilizer_support(x_idx):
            gates.append(ScheduledGate(x_idx, "X", x_idx, data))
    offset = code.num_x_stabilizers
    for z_idx in range(code.num_z_stabilizers):
        for data in code.z_stabilizer_support(z_idx):
            gates.append(
                ScheduledGate(offset + z_idx, "Z", offset + z_idx, data)
            )
    return gates


def bipartite_edge_coloring(edges: list[tuple[int, int]]) -> list[int]:
    """Proper edge colouring of a bipartite multigraph with Delta colours.

    ``edges`` is a list of ``(left, right)`` node pairs.  Returns a
    colour index (0-based) per edge such that no two edges sharing a
    node get the same colour, using at most Delta colours (König's
    theorem), via the classic alternating-path (fan-free Vizing)
    algorithm for bipartite graphs.
    """
    if not edges:
        return []
    left_nodes = {e[0] for e in edges}
    right_nodes = {e[1] for e in edges}
    degree: dict[tuple[str, int], int] = {}
    for left, right in edges:
        degree[("L", left)] = degree.get(("L", left), 0) + 1
        degree[("R", right)] = degree.get(("R", right), 0) + 1
    max_degree = max(degree.values())

    # colour_at[side][node][colour] = edge index using that colour at node
    left_colour: dict[int, dict[int, int]] = {node: {} for node in left_nodes}
    right_colour: dict[int, dict[int, int]] = {node: {} for node in right_nodes}
    edge_colour: list[int] = [-1] * len(edges)

    def free_colour(table: dict[int, int]) -> int:
        for colour in range(max_degree):
            if colour not in table:
                return colour
        raise RuntimeError("no free colour found; edge colouring bug")

    for edge_idx, (left, right) in enumerate(edges):
        alpha = free_colour(left_colour[left])
        beta = free_colour(right_colour[right])
        if alpha == beta:
            edge_colour[edge_idx] = alpha
            left_colour[left][alpha] = edge_idx
            right_colour[right][alpha] = edge_idx
            continue
        # Walk the alternating alpha/beta path starting from `right`.
        # Since alpha is free at `left`, the path cannot return to `left`,
        # so flipping colours along it frees alpha at `right`.
        path_edges: list[int] = []
        side = "R"
        node = right
        want = alpha
        while True:
            table = right_colour[node] if side == "R" else left_colour[node]
            if want not in table:
                break
            next_edge = table[want]
            path_edges.append(next_edge)
            nxt_left, nxt_right = edges[next_edge]
            if side == "R":
                node, side = nxt_left, "L"
            else:
                node, side = nxt_right, "R"
            want = beta if want == alpha else alpha
        # Flip alpha <-> beta along the path.  Remove all old entries
        # first, then insert the new ones, so that edges sharing a node
        # along the path do not clobber each other's table entries.
        new_colours: list[int] = []
        for path_edge in path_edges:
            old = edge_colour[path_edge]
            new_colours.append(beta if old == alpha else alpha)
            e_left, e_right = edges[path_edge]
            left_colour[e_left].pop(old, None)
            right_colour[e_right].pop(old, None)
        for path_edge, new in zip(path_edges, new_colours):
            edge_colour[path_edge] = new
            e_left, e_right = edges[path_edge]
            left_colour[e_left][new] = path_edge
            right_colour[e_right][new] = path_edge
        edge_colour[edge_idx] = alpha
        left_colour[left][alpha] = edge_idx
        right_colour[right][alpha] = edge_idx

    return edge_colour


def _gates_to_timeslices(gates: list[ScheduledGate],
                         colours: list[int]) -> list[list[ScheduledGate]]:
    num_slices = max(colours) + 1 if colours else 0
    slices: list[list[ScheduledGate]] = [[] for _ in range(num_slices)]
    for gate, colour in zip(gates, colours):
        slices[colour].append(gate)
    return [slice_ for slice_ in slices if slice_]


def serial_schedule(code: CSSCode) -> StabilizerSchedule:
    """Fully serial schedule: one CNOT per timeslice."""
    gates = _all_gates(code)
    return StabilizerSchedule(
        code=code,
        timeslices=[[gate] for gate in gates],
        policy="serial",
    )


def x_then_z_schedule(code: CSSCode) -> StabilizerSchedule:
    """Non-edge-colorable CSS schedule: all X stabilizers, then all Z.

    Within each basis the CNOT layers come from a proper edge colouring
    of that basis' Tanner graph, so each data qubit and each ancilla is
    used at most once per timeslice.
    """
    gates = _all_gates(code)
    x_gates = [g for g in gates if g.basis == "X"]
    z_gates = [g for g in gates if g.basis == "Z"]
    x_colours = bipartite_edge_coloring([(g.ancilla, g.data) for g in x_gates])
    z_colours = bipartite_edge_coloring([(g.ancilla, g.data) for g in z_gates])
    slices = _gates_to_timeslices(x_gates, x_colours)
    slices += _gates_to_timeslices(z_gates, z_colours)
    return StabilizerSchedule(
        code=code,
        timeslices=slices,
        policy="x_then_z",
        metadata={
            "x_depth": max(x_colours) + 1 if x_colours else 0,
            "z_depth": max(z_colours) + 1 if z_colours else 0,
        },
    )


def interleaved_schedule(code: CSSCode) -> StabilizerSchedule:
    """Interleaved X/Z schedule for edge-colorable codes.

    Realised as an edge colouring of the union Tanner graph, which lets
    X and Z stabilizer measurements overlap in time.  Raises
    ``ValueError`` for codes not flagged edge colorable.
    """
    if not code.edge_colorable:
        raise ValueError(
            f"{code.name} is not edge colorable; use x_then_z_schedule"
        )
    gates = _all_gates(code)
    colours = bipartite_edge_coloring([(g.ancilla, g.data) for g in gates])
    return StabilizerSchedule(
        code=code,
        timeslices=_gates_to_timeslices(gates, colours),
        policy="interleaved",
    )


def schedule_for(code: CSSCode, policy: str = "auto") -> StabilizerSchedule:
    """Build a schedule by policy name.

    ``"auto"`` picks the non-edge-colorable X-then-Z schedule, which is
    the one Cyclone uses regardless of code family (Section IV); other
    accepted values are ``"serial"``, ``"x_then_z"`` and
    ``"interleaved"``.
    """
    if policy == "auto" or policy == "x_then_z":
        return x_then_z_schedule(code)
    if policy == "serial":
        return serial_schedule(code)
    if policy == "interleaved":
        return interleaved_schedule(code)
    raise ValueError(f"unknown schedule policy {policy!r}")


def parallelism_bound(code: CSSCode) -> dict[str, float]:
    """Maximal-parallelism statistics used in the Figure 3 analysis.

    Returns the serial depth (total CNOT count), the maximally parallel
    depth (X-then-Z timeslices, plus the interleaved depth when the code
    is edge colorable), and the resulting speedups.
    """
    serial_depth = len(_all_gates(code))
    parallel = x_then_z_schedule(code)
    result: dict[str, float] = {
        "serial_depth": float(serial_depth),
        "parallel_depth": float(parallel.depth),
        "speedup": serial_depth / parallel.depth if parallel.depth else 1.0,
    }
    if code.edge_colorable:
        interleaved = interleaved_schedule(code)
        result["interleaved_depth"] = float(interleaved.depth)
        result["interleaved_speedup"] = (
            serial_depth / interleaved.depth if interleaved.depth else 1.0
        )
    return result
