"""Bivariate bicycle (BB) codes (Bravyi et al., Nature 2024).

A BB code is defined on a 2l x m torus of "left" and "right" qubit
sublattices by two polynomials

    A = x^{a1} + y^{a2} + y^{a3}
    B = y^{b1} + x^{b2} + x^{b3}

where x and y are the cyclic-shift matrices S_l (x) I_m and
I_l (x) S_m.  The check matrices are

    Hx = [ A | B ]        Hz = [ B^T | A^T ]

BB codes are *not* edge colorable in the Tremblay et al. sense, so their
syndrome extraction cannot interleave X and Z stabilizer measurements —
exactly the property Cyclone's two-rotation schedule exploits.

The code instances from the paper's evaluation ([[72,12,6]], [[90,8,10]],
[[108,8,10]], [[144,12,12]]) use the published polynomial exponents.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codes.css import CSSCode

__all__ = ["BBCodeSpec", "bivariate_bicycle_code", "BB_CODE_SPECS"]


@dataclass(frozen=True)
class BBCodeSpec:
    """Exponents defining a bivariate bicycle code.

    ``a_powers`` are exponents for the A polynomial as
    ``(x_power, y_power, y_power)`` and ``b_powers`` for B as
    ``(y_power, x_power, x_power)``, matching the convention
    A = x^a1 + y^a2 + y^a3, B = y^b1 + x^b2 + x^b3 used by Bravyi et al.
    """

    l: int
    m: int
    a_powers: tuple[int, int, int]
    b_powers: tuple[int, int, int]
    name: str
    distance: int | None = None


def _cyclic_shift(size: int, power: int = 1) -> np.ndarray:
    """The size x size cyclic shift matrix raised to ``power``."""
    shift = np.roll(np.identity(size, dtype=np.uint8), power % size, axis=1)
    return shift


def _monomial(l: int, m: int, x_power: int, y_power: int) -> np.ndarray:
    """The lm x lm matrix x^{x_power} * y^{y_power}."""
    x_part = _cyclic_shift(l, x_power)
    y_part = _cyclic_shift(m, y_power)
    return (np.kron(x_part, y_part) % 2).astype(np.uint8)


def _polynomial_matrices(spec: BBCodeSpec) -> tuple[np.ndarray, np.ndarray]:
    a1, a2, a3 = spec.a_powers
    b1, b2, b3 = spec.b_powers
    a_matrix = (
        _monomial(spec.l, spec.m, a1, 0)
        ^ _monomial(spec.l, spec.m, 0, a2)
        ^ _monomial(spec.l, spec.m, 0, a3)
    )
    b_matrix = (
        _monomial(spec.l, spec.m, 0, b1)
        ^ _monomial(spec.l, spec.m, b2, 0)
        ^ _monomial(spec.l, spec.m, b3, 0)
    )
    return a_matrix, b_matrix


#: Published BB code instances used in the paper's evaluation
#: (exponents from Bravyi et al., "High-threshold and low-overhead
#: fault-tolerant quantum memory", Table 3).
BB_CODE_SPECS: dict[str, BBCodeSpec] = {
    "[[72,12,6]]": BBCodeSpec(
        l=6, m=6, a_powers=(3, 1, 2), b_powers=(3, 1, 2),
        name="BB [[72,12,6]]", distance=6,
    ),
    "[[90,8,10]]": BBCodeSpec(
        l=15, m=3, a_powers=(9, 1, 2), b_powers=(0, 2, 7),
        name="BB [[90,8,10]]", distance=10,
    ),
    "[[108,8,10]]": BBCodeSpec(
        l=9, m=6, a_powers=(3, 1, 2), b_powers=(3, 1, 2),
        name="BB [[108,8,10]]", distance=10,
    ),
    "[[144,12,12]]": BBCodeSpec(
        l=12, m=6, a_powers=(3, 1, 2), b_powers=(3, 1, 2),
        name="BB [[144,12,12]]", distance=12,
    ),
    "[[288,12,18]]": BBCodeSpec(
        l=12, m=12, a_powers=(3, 2, 7), b_powers=(3, 1, 2),
        name="BB [[288,12,18]]", distance=18,
    ),
}


def bivariate_bicycle_code(spec: BBCodeSpec | str) -> CSSCode:
    """Construct a bivariate bicycle code from a spec or a named instance.

    Parameters
    ----------
    spec:
        Either a :class:`BBCodeSpec` or one of the keys of
        :data:`BB_CODE_SPECS` (e.g. ``"[[144,12,12]]"``).
    """
    if isinstance(spec, str):
        if spec not in BB_CODE_SPECS:
            raise KeyError(
                f"unknown BB code {spec!r}; available: "
                f"{sorted(BB_CODE_SPECS)}"
            )
        spec = BB_CODE_SPECS[spec]
    a_matrix, b_matrix = _polynomial_matrices(spec)
    hx = np.hstack([a_matrix, b_matrix])
    hz = np.hstack([b_matrix.T, a_matrix.T])
    return CSSCode(
        hx=hx,
        hz=hz,
        name=spec.name,
        distance=spec.distance,
        edge_colorable=False,
        metadata={
            "family": "bivariate_bicycle",
            "l": spec.l,
            "m": spec.m,
            "a_powers": spec.a_powers,
            "b_powers": spec.b_powers,
        },
    )
