"""Quantum error-correcting codes studied in the Cyclone paper.

The paper evaluates two families of non-topological CSS codes —
hypergraph product (HGP) codes and bivariate bicycle (BB) codes — and
contrasts them against topological codes (surface code) for which grid
QCCD architectures are already sufficient.  This package implements:

* :class:`~repro.codes.css.CSSCode` — the common representation used by
  schedulers, circuit builders, compilers and decoders,
* classical LDPC code constructions used as HGP factors,
* the hypergraph product construction,
* the bivariate bicycle construction (exact codes from Bravyi et al.),
* reference topological codes (repetition, surface),
* stabilizer measurement *schedules* (serial, X-then-Z parallel,
  interleaved edge-colorable), and
* a :mod:`~repro.codes.library` of the named codes used throughout the
  paper's evaluation.
"""

from repro.codes.css import CSSCode
from repro.codes.classical import (
    ClassicalCode,
    repetition_code,
    hamming_code,
    regular_ldpc_code,
)
from repro.codes.hgp import hypergraph_product
from repro.codes.bb import bivariate_bicycle_code, BBCodeSpec
from repro.codes.surface import surface_code, repetition_quantum_code
from repro.codes.scheduling import (
    StabilizerSchedule,
    serial_schedule,
    x_then_z_schedule,
    interleaved_schedule,
    schedule_for,
    parallelism_bound,
)
from repro.codes.library import (
    code_by_name,
    available_codes,
    hgp_code_names,
    bb_code_names,
)

__all__ = [
    "CSSCode",
    "ClassicalCode",
    "repetition_code",
    "hamming_code",
    "regular_ldpc_code",
    "hypergraph_product",
    "bivariate_bicycle_code",
    "BBCodeSpec",
    "surface_code",
    "repetition_quantum_code",
    "StabilizerSchedule",
    "serial_schedule",
    "x_then_z_schedule",
    "interleaved_schedule",
    "schedule_for",
    "parallelism_bound",
    "code_by_name",
    "available_codes",
    "hgp_code_names",
    "bb_code_names",
]
