"""Topological reference codes: repetition and (rotated) surface codes.

The paper argues that grid QCCD architectures are already adequate for
topological codes; these constructions exist as reference points (and as
small, well-understood codes for unit testing the simulator, decoders
and compilers).
"""

from __future__ import annotations

import numpy as np

from repro.codes.css import CSSCode

__all__ = ["repetition_quantum_code", "surface_code"]


def repetition_quantum_code(distance: int) -> CSSCode:
    """The distance-d quantum repetition (bit-flip) code.

    Only Z stabilizers are present, so it protects against X errors
    only.  Useful as the smallest nontrivial test code.
    """
    if distance < 2:
        raise ValueError("repetition code needs distance >= 2")
    hz = np.zeros((distance - 1, distance), dtype=np.uint8)
    for i in range(distance - 1):
        hz[i, i] = 1
        hz[i, i + 1] = 1
    hx = np.zeros((0, distance), dtype=np.uint8)
    return CSSCode(
        hx=hx, hz=hz, name=f"repetition-d{distance}", distance=distance,
        edge_colorable=True,
        metadata={"family": "repetition"},
    )


def surface_code(distance: int) -> CSSCode:
    """The rotated surface code of odd distance ``d`` ([[d^2, 1, d]]).

    Uses the standard rotated layout: data qubits on a d x d grid,
    bulk plaquettes in a checkerboard pattern plus weight-2 boundary
    checks.
    """
    if distance < 2 or distance % 2 == 0:
        raise ValueError("rotated surface code needs odd distance >= 3")
    d = distance
    n = d * d

    def qubit(row: int, col: int) -> int:
        return row * d + col

    x_stabilizers: list[list[int]] = []
    z_stabilizers: list[list[int]] = []

    # Bulk plaquettes sit on a (d+1) x (d+1) grid of vertices between
    # data qubits; each vertex (r, c) with 0 <= r, c <= d touches the up
    # to four data qubits at (r-1, c-1), (r-1, c), (r, c-1), (r, c).
    for r in range(d + 1):
        for c in range(d + 1):
            support = [
                qubit(rr, cc)
                for rr, cc in ((r - 1, c - 1), (r - 1, c), (r, c - 1), (r, c))
                if 0 <= rr < d and 0 <= cc < d
            ]
            if len(support) < 2:
                continue
            is_x = (r + c) % 2 == 0
            if len(support) == 4:
                (x_stabilizers if is_x else z_stabilizers).append(support)
            else:
                # Boundary (weight-2) checks: X checks live on the top and
                # bottom boundaries, Z checks on the left and right.
                on_top_or_bottom = r == 0 or r == d
                if is_x and on_top_or_bottom:
                    x_stabilizers.append(support)
                elif not is_x and not on_top_or_bottom:
                    z_stabilizers.append(support)

    hx = np.zeros((len(x_stabilizers), n), dtype=np.uint8)
    for idx, support in enumerate(x_stabilizers):
        hx[idx, support] = 1
    hz = np.zeros((len(z_stabilizers), n), dtype=np.uint8)
    for idx, support in enumerate(z_stabilizers):
        hz[idx, support] = 1

    return CSSCode(
        hx=hx, hz=hz, name=f"surface-d{d}", distance=d, edge_colorable=True,
        metadata={"family": "surface", "distance": d},
    )
