"""Hypergraph product (HGP) codes (Tillich & Zemor).

Given two classical codes with parity-check matrices ``H1`` (m1 x n1)
and ``H2`` (m2 x n2), the hypergraph product is the CSS code on
``n1*n2 + m1*m2`` qubits with

    Hx = [ H1 (x) I_n2   |  I_m1 (x) H2^T ]
    Hz = [ I_n1 (x) H2   |  H1^T (x) I_m2 ]

where ``(x)`` is the Kronecker product over GF(2).  HGP codes are
*edge colorable* in the sense of Tremblay et al., so X and Z stabilizer
measurements can be interleaved (see :mod:`repro.codes.scheduling`).
"""

from __future__ import annotations

import numpy as np

from repro.codes.classical import ClassicalCode
from repro.codes.css import CSSCode

__all__ = ["hypergraph_product"]


def _kron2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Kronecker product reduced mod 2."""
    return (np.kron(a.astype(np.int64), b.astype(np.int64)) % 2).astype(np.uint8)


def hypergraph_product(code_a: ClassicalCode, code_b: ClassicalCode | None = None,
                       name: str | None = None) -> CSSCode:
    """Build the hypergraph product of two classical codes.

    Parameters
    ----------
    code_a, code_b:
        The classical factor codes.  If ``code_b`` is omitted the product
        of ``code_a`` with itself is built (the symmetric case used for
        all HGP codes in the paper).
    name:
        Optional display name; a default including the derived
        ``[[n, k]]`` is generated otherwise.

    Returns
    -------
    CSSCode
        The HGP code, flagged as edge colorable, with metadata recording
        the factor codes and the qubit sector split (``n1*n2`` "primal"
        qubits followed by ``m1*m2`` "dual" qubits).
    """
    if code_b is None:
        code_b = code_a
    h1 = code_a.parity_check
    h2 = code_b.parity_check
    m1, n1 = h1.shape
    m2, n2 = h2.shape

    identity_n1 = np.identity(n1, dtype=np.uint8)
    identity_n2 = np.identity(n2, dtype=np.uint8)
    identity_m1 = np.identity(m1, dtype=np.uint8)
    identity_m2 = np.identity(m2, dtype=np.uint8)

    hx = np.hstack([_kron2(h1, identity_n2), _kron2(identity_m1, h2.T)])
    hz = np.hstack([_kron2(identity_n1, h2), _kron2(h1.T, identity_m2)])

    code = CSSCode(
        hx=hx,
        hz=hz,
        name=name or "hgp",
        edge_colorable=True,
        metadata={
            "family": "hypergraph_product",
            "factor_a": code_a.name,
            "factor_b": code_b.name,
            "primal_qubits": n1 * n2,
            "dual_qubits": m1 * m2,
        },
    )
    if name is None:
        n, k, _ = code.parameters
        code = code.with_name(f"HGP [[{n},{k}]]")
    return code
