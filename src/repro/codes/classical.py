"""Classical binary linear codes used as factors of hypergraph products.

The hypergraph product construction turns two classical codes into a
quantum CSS code.  The paper uses (3,4)-regular LDPC factor codes (from
the QuITS code set) to obtain the [[225,9,6]], [[400,16,6]] and
[[625,25,8]] HGP codes.  Since the exact parity-check matrices are not
published in the paper, we construct *deterministic, seeded* regular
LDPC codes with matching block lengths and dimensions; DESIGN.md records
this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.linalg import gf2_matrix, rank, nullspace

__all__ = [
    "ClassicalCode",
    "repetition_code",
    "hamming_code",
    "regular_ldpc_code",
    "full_rank_regular_ldpc",
    "distance_targeted_regular_ldpc",
]


@dataclass(frozen=True)
class ClassicalCode:
    """A classical binary linear code defined by a parity-check matrix."""

    parity_check: np.ndarray
    name: str = "classical"
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "parity_check", gf2_matrix(self.parity_check))

    @property
    def num_bits(self) -> int:
        """Block length ``n``."""
        return int(self.parity_check.shape[1])

    @property
    def num_checks(self) -> int:
        """Number of parity checks (rows of H, not necessarily independent)."""
        return int(self.parity_check.shape[0])

    @cached_property
    def rank(self) -> int:
        return rank(self.parity_check)

    @property
    def dimension(self) -> int:
        """Number of encoded bits ``k = n - rank(H)``."""
        return self.num_bits - self.rank

    @cached_property
    def transpose_dimension(self) -> int:
        """Dimension of the 'transpose code' ker(H^T), used by HGP formulas."""
        return self.num_checks - self.rank

    @cached_property
    def codewords_basis(self) -> np.ndarray:
        """A basis (rows) of the codeword space ker(H)."""
        return nullspace(self.parity_check)

    def minimum_distance(self, max_exhaustive_dimension: int = 16,
                         trials: int = 500, seed: int = 0) -> int:
        """Minimum distance, exhaustive for small k and sampled otherwise.

        For ``k <= max_exhaustive_dimension`` the exact distance is
        computed by enumerating all nonzero codewords; otherwise a
        random-combination upper bound is returned.
        """
        basis = self.codewords_basis
        k = basis.shape[0]
        if k == 0:
            return self.num_bits
        if k <= max_exhaustive_dimension:
            best = self.num_bits
            for mask in range(1, 2 ** k):
                coeffs = np.array(
                    [(mask >> i) & 1 for i in range(k)], dtype=np.uint8
                )
                word = (coeffs @ basis) % 2
                weight = int(word.sum())
                if 0 < weight < best:
                    best = weight
            return best
        rng = np.random.default_rng(seed)
        best = int(basis.sum(axis=1).min())
        for _ in range(trials):
            coeffs = rng.integers(0, 2, k)
            if not coeffs.any():
                continue
            word = (coeffs @ basis) % 2
            weight = int(word.sum())
            if 0 < weight < best:
                best = weight
        return best

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClassicalCode({self.name}, [{self.num_bits},{self.dimension}])"
        )


def repetition_code(length: int) -> ClassicalCode:
    """The [n, 1, n] repetition code with the standard chain parity checks."""
    if length < 2:
        raise ValueError("repetition code needs length >= 2")
    check = np.zeros((length - 1, length), dtype=np.uint8)
    for i in range(length - 1):
        check[i, i] = 1
        check[i, i + 1] = 1
    return ClassicalCode(check, name=f"repetition-{length}")


def hamming_code(r: int = 3) -> ClassicalCode:
    """The [2^r - 1, 2^r - 1 - r, 3] Hamming code."""
    if r < 2:
        raise ValueError("Hamming code needs r >= 2")
    n = 2 ** r - 1
    check = np.zeros((r, n), dtype=np.uint8)
    for col in range(1, n + 1):
        for bit in range(r):
            check[bit, col - 1] = (col >> bit) & 1
    return ClassicalCode(check, name=f"hamming-{n}")


def _regular_ldpc_attempt(num_checks: int, num_bits: int, row_weight: int,
                          rng: np.random.Generator) -> np.ndarray:
    """One attempt at a (column_weight, row_weight)-regular parity check.

    Uses the permutation-based "configuration model": edge stubs from
    check nodes are matched to edge stubs from bit nodes.  Double edges
    are cancelled mod 2 (which slightly perturbs regularity but keeps the
    matrix sparse and LDPC-like).
    """
    total_edges = num_checks * row_weight
    if total_edges % num_bits != 0:
        raise ValueError(
            "num_checks * row_weight must be divisible by num_bits for a "
            "regular construction"
        )
    column_weight = total_edges // num_bits
    check_stubs = np.repeat(np.arange(num_checks), row_weight)
    bit_stubs = np.repeat(np.arange(num_bits), column_weight)
    rng.shuffle(bit_stubs)
    matrix = np.zeros((num_checks, num_bits), dtype=np.uint8)
    for check, bit in zip(check_stubs, bit_stubs):
        matrix[check, bit] ^= 1
    return matrix


def regular_ldpc_code(num_checks: int, num_bits: int, row_weight: int = 4,
                      seed: int = 0, name: str | None = None) -> ClassicalCode:
    """A seeded, deterministic (j, row_weight)-regular LDPC code.

    The construction retries seeds (deterministically derived from
    ``seed``) until every row and every column is non-empty, so the
    Tanner graph has no isolated nodes.
    """
    rng = np.random.default_rng(seed)
    for _ in range(64):
        matrix = _regular_ldpc_attempt(num_checks, num_bits, row_weight, rng)
        if matrix.sum(axis=1).min() > 0 and matrix.sum(axis=0).min() > 0:
            return ClassicalCode(
                matrix,
                name=name or f"ldpc-{num_bits}x{num_checks}-s{seed}",
                metadata={"seed": seed, "row_weight": row_weight},
            )
    raise RuntimeError("could not build a connected regular LDPC code")


def distance_targeted_regular_ldpc(num_checks: int, num_bits: int,
                                   target_distance: int, row_weight: int = 4,
                                   start_seed: int = 0, max_seeds: int = 4000,
                                   name: str | None = None) -> ClassicalCode:
    """A full-rank regular LDPC code meeting a minimum-distance target.

    Deterministically scans seeds from ``start_seed`` and returns the
    first full-row-rank construction whose exact minimum distance
    reaches ``target_distance``; if none is found within ``max_seeds``
    the best one seen is returned (its achieved distance is recorded in
    ``metadata["distance"]``).  Used to build the HGP factor codes so
    the quantum distance matches the paper's nominal values.
    """
    best_code: ClassicalCode | None = None
    best_distance = -1
    for offset in range(max_seeds):
        seed = start_seed + offset
        code = regular_ldpc_code(num_checks, num_bits, row_weight, seed=seed,
                                 name=name)
        if code.rank != num_checks:
            continue
        distance = code.minimum_distance()
        if distance > best_distance:
            best_distance = distance
            best_code = code
        if distance >= target_distance:
            break
    if best_code is None:
        raise RuntimeError(
            f"no full-rank ({num_checks}x{num_bits}) regular LDPC code found"
        )
    metadata = dict(best_code.metadata)
    metadata["distance"] = best_distance
    metadata["target_distance"] = target_distance
    return ClassicalCode(best_code.parity_check, name=best_code.name,
                         metadata=metadata)


def full_rank_regular_ldpc(num_checks: int, num_bits: int, row_weight: int = 4,
                           seed: int = 0, max_seeds: int = 200,
                           name: str | None = None) -> ClassicalCode:
    """A regular LDPC code whose parity-check matrix has full row rank.

    Full row rank pins the dimension to ``num_bits - num_checks`` and the
    transpose code to dimension 0, which is what the HGP parameter
    formulas in the paper assume (k = k1*k2 for the codes used there).
    Seeds are tried in order starting from ``seed`` until a full-rank
    construction is found.
    """
    for offset in range(max_seeds):
        code = regular_ldpc_code(
            num_checks, num_bits, row_weight, seed=seed + offset, name=name
        )
        if code.rank == num_checks:
            return code
    raise RuntimeError(
        f"no full-rank ({num_checks}x{num_bits}) regular LDPC code found in "
        f"{max_seeds} seeds"
    )
