"""Named code instances used throughout the paper's evaluation.

HGP codes are built from deterministic, seeded (3,4)-regular classical
LDPC factor codes whose parameters reproduce the paper's ``[[n, k]]``
(the distances quoted in the names are the paper's nominal values; see
DESIGN.md for the substitution note).  BB codes are the exact published
constructions.  Codes are cached after first construction since the
larger HGP instances take a little while to build.
"""

from __future__ import annotations

from functools import lru_cache

from repro.codes.bb import bivariate_bicycle_code, BB_CODE_SPECS
from repro.codes.classical import full_rank_regular_ldpc
from repro.codes.css import CSSCode
from repro.codes.hgp import hypergraph_product
from repro.codes.surface import surface_code, repetition_quantum_code

__all__ = [
    "code_by_name",
    "available_codes",
    "hgp_code_names",
    "bb_code_names",
]

#: HGP factor-code shapes: name -> (num_checks, num_bits, nominal_distance,
#: factor_seed).  The seeds are the first ones (scanning from 0) for which
#: the deterministic regular-LDPC construction is full rank and achieves
#: the nominal classical distance, found with
#: :func:`repro.codes.classical.distance_targeted_regular_ldpc`.
_HGP_FACTORS: dict[str, tuple[int, int, int, int]] = {
    "HGP [[225,9,6]]": (9, 12, 6, 12),
    "HGP [[400,16,6]]": (12, 16, 6, 6),
    "HGP [[625,25,8]]": (15, 20, 8, 228),
    "HGP [[900,36,8]]": (18, 24, 8, 4),
}

_BB_NAMES: dict[str, str] = {
    f"BB {key}": key for key in BB_CODE_SPECS
}


def hgp_code_names() -> list[str]:
    """Names of the HGP codes in the paper's evaluation (plus one larger)."""
    return list(_HGP_FACTORS)


def bb_code_names() -> list[str]:
    """Names of the BB codes in the paper's evaluation."""
    return [name for name in _BB_NAMES if name != "BB [[288,12,18]]"]


def available_codes() -> list[str]:
    """All names accepted by :func:`code_by_name`."""
    names = list(_HGP_FACTORS) + list(_BB_NAMES)
    names += ["surface-d3", "surface-d5", "surface-d7",
              "repetition-d3", "repetition-d5"]
    return names


@lru_cache(maxsize=None)
def code_by_name(name: str) -> CSSCode:
    """Construct (and cache) a named code instance.

    Accepted names include ``"HGP [[225,9,6]]"``, ``"BB [[144,12,12]]"``,
    ``"surface-d5"`` and ``"repetition-d3"`` — see
    :func:`available_codes` for the full list.
    """
    if name in _HGP_FACTORS:
        num_checks, num_bits, nominal_distance, factor_seed = _HGP_FACTORS[name]
        factor = full_rank_regular_ldpc(
            num_checks, num_bits, row_weight=4, seed=factor_seed,
            name=f"ldpc-[{num_bits},{num_bits - num_checks},{nominal_distance}]",
        )
        code = hypergraph_product(factor, name=name)
        return CSSCode(
            hx=code.hx,
            hz=code.hz,
            name=name,
            distance=nominal_distance,
            edge_colorable=True,
            metadata=dict(code.metadata),
        )
    if name in _BB_NAMES:
        return bivariate_bicycle_code(_BB_NAMES[name])
    if name.startswith("surface-d"):
        return surface_code(int(name.removeprefix("surface-d")))
    if name.startswith("repetition-d"):
        return repetition_quantum_code(int(name.removeprefix("repetition-d")))
    raise KeyError(
        f"unknown code {name!r}; available: {available_codes()}"
    )
