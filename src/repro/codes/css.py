"""The CSS stabilizer code representation shared by the whole library.

A CSS code is defined by two binary parity-check matrices ``Hx`` and
``Hz`` with ``Hx @ Hz.T == 0`` (mod 2).  Rows of ``Hx`` are X-type
stabilizers (detect Z errors); rows of ``Hz`` are Z-type stabilizers
(detect X errors).  Everything downstream — schedules, syndrome
extraction circuits, QCCD compilation and decoding — consumes this
class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.linalg import (
    gf2_matrix,
    rank,
    kernel_intersection_complement,
    is_in_row_space,
)

__all__ = ["CSSCode"]


@dataclass(frozen=True)
class CSSCode:
    """A Calderbank-Shor-Steane stabilizer code.

    Parameters
    ----------
    hx, hz:
        Binary parity check matrices.  ``hx`` has one row per X
        stabilizer and one column per data qubit; ``hz`` likewise for Z
        stabilizers.
    name:
        Human readable name, e.g. ``"HGP [[225,9,6]]"``.
    distance:
        The code distance if known (from the literature or an external
        computation).  ``None`` means unknown; :meth:`estimate_distance`
        can produce an upper bound.
    edge_colorable:
        Whether the code supports the interleaved X/Z measurement
        schedule of Tremblay et al. (true for hypergraph product codes,
        false for bivariate bicycle codes).
    """

    hx: np.ndarray
    hz: np.ndarray
    name: str = "css"
    distance: int | None = None
    edge_colorable: bool = False
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        hx = gf2_matrix(self.hx)
        hz = gf2_matrix(self.hz)
        if hx.shape[1] != hz.shape[1]:
            raise ValueError(
                f"Hx has {hx.shape[1]} columns but Hz has {hz.shape[1]}"
            )
        commutation = (hx @ hz.T) % 2
        if commutation.any():
            raise ValueError("Hx and Hz do not commute: Hx @ Hz.T != 0 (mod 2)")
        object.__setattr__(self, "hx", hx)
        object.__setattr__(self, "hz", hz)

    # ------------------------------------------------------------------
    # Basic parameters
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of physical data qubits ``n``."""
        return int(self.hx.shape[1])

    @property
    def num_x_stabilizers(self) -> int:
        return int(self.hx.shape[0])

    @property
    def num_z_stabilizers(self) -> int:
        return int(self.hz.shape[0])

    @property
    def num_stabilizers(self) -> int:
        """Total number of stabilizer generators ``m`` (rows of Hx and Hz)."""
        return self.num_x_stabilizers + self.num_z_stabilizers

    @cached_property
    def rank_hx(self) -> int:
        return rank(self.hx)

    @cached_property
    def rank_hz(self) -> int:
        return rank(self.hz)

    @property
    def num_logical_qubits(self) -> int:
        """Number of encoded logical qubits ``k = n - rank(Hx) - rank(Hz)``."""
        return self.num_qubits - self.rank_hx - self.rank_hz

    @property
    def parameters(self) -> tuple[int, int, int | None]:
        """``(n, k, d)`` with ``d`` possibly ``None``."""
        return (self.num_qubits, self.num_logical_qubits, self.distance)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n, k, d = self.parameters
        d_str = str(d) if d is not None else "?"
        return f"CSSCode({self.name}, [[{n},{k},{d_str}]])"

    # ------------------------------------------------------------------
    # Stabilizer structure
    # ------------------------------------------------------------------
    def x_stabilizer_support(self, index: int) -> tuple[int, ...]:
        """Data-qubit indices acted on by the ``index``-th X stabilizer."""
        return tuple(int(q) for q in np.nonzero(self.hx[index])[0])

    def z_stabilizer_support(self, index: int) -> tuple[int, ...]:
        """Data-qubit indices acted on by the ``index``-th Z stabilizer."""
        return tuple(int(q) for q in np.nonzero(self.hz[index])[0])

    def stabilizer_supports(self) -> list[tuple[str, tuple[int, ...]]]:
        """All stabilizers as ``(basis, data-qubit tuple)`` pairs, X first."""
        supports: list[tuple[str, tuple[int, ...]]] = []
        for i in range(self.num_x_stabilizers):
            supports.append(("X", self.x_stabilizer_support(i)))
        for i in range(self.num_z_stabilizers):
            supports.append(("Z", self.z_stabilizer_support(i)))
        return supports

    @cached_property
    def max_x_weight(self) -> int:
        """Maximum weight of any X stabilizer (0 for an empty Hx)."""
        if self.num_x_stabilizers == 0:
            return 0
        return int(self.hx.sum(axis=1).max())

    @cached_property
    def max_z_weight(self) -> int:
        if self.num_z_stabilizers == 0:
            return 0
        return int(self.hz.sum(axis=1).max())

    @cached_property
    def max_qubit_degree(self) -> int:
        """Maximum number of stabilizers any single data qubit touches."""
        degree = self.hx.sum(axis=0) + self.hz.sum(axis=0)
        return int(degree.max()) if degree.size else 0

    @cached_property
    def total_cnot_count(self) -> int:
        """Total number of data-ancilla CNOTs in one syndrome extraction round."""
        return int(self.hx.sum() + self.hz.sum())

    # ------------------------------------------------------------------
    # Logical operators
    # ------------------------------------------------------------------
    @cached_property
    def logical_x(self) -> np.ndarray:
        """A basis of logical X operators (rows; columns = data qubits).

        Logical X operators commute with every Z stabilizer (lie in
        ker(Hz)) and are independent of the X stabilizer group.
        """
        return kernel_intersection_complement(self.hx, self.hz)

    @cached_property
    def logical_z(self) -> np.ndarray:
        """A basis of logical Z operators (rows; columns = data qubits)."""
        return kernel_intersection_complement(self.hz, self.hx)

    def is_x_logical_error(self, x_error: np.ndarray) -> bool:
        """Whether an X-type residual error flips some logical Z observable.

        ``x_error`` is a length-n binary vector of X flips.  It is a
        logical error iff it anticommutes with some logical Z operator,
        i.e. it has odd overlap with some row of :attr:`logical_z`.
        """
        x_error = gf2_matrix(x_error).reshape(-1)
        return bool(((self.logical_z @ x_error) % 2).any())

    def is_z_logical_error(self, z_error: np.ndarray) -> bool:
        """Whether a Z-type residual error flips some logical X observable."""
        z_error = gf2_matrix(z_error).reshape(-1)
        return bool(((self.logical_x @ z_error) % 2).any())

    def x_syndrome(self, z_error: np.ndarray) -> np.ndarray:
        """Syndrome of a Z error pattern measured by the X stabilizers."""
        z_error = gf2_matrix(z_error).reshape(-1)
        return (self.hx @ z_error) % 2

    def z_syndrome(self, x_error: np.ndarray) -> np.ndarray:
        """Syndrome of an X error pattern measured by the Z stabilizers."""
        x_error = gf2_matrix(x_error).reshape(-1)
        return (self.hz @ x_error) % 2

    # ------------------------------------------------------------------
    # Distance estimation
    # ------------------------------------------------------------------
    def estimate_distance(self, trials: int = 200, seed: int = 0) -> int:
        """Probabilistic upper bound on the code distance.

        Uses random information-set style sampling: combines random
        subsets of logical operators with random stabilizers and keeps
        the minimum weight observed.  The true distance is never larger
        than the returned value.
        """
        rng = np.random.default_rng(seed)
        best = self.num_qubits
        for logicals, stabilizers in (
            (self.logical_x, self.hx),
            (self.logical_z, self.hz),
        ):
            if logicals.shape[0] == 0:
                continue
            best = min(best, int(logicals.sum(axis=1).min()))
            for _ in range(trials):
                logical_mask = rng.integers(0, 2, logicals.shape[0])
                if not logical_mask.any():
                    continue
                candidate = (logical_mask @ logicals) % 2
                stab_mask = rng.integers(0, 2, stabilizers.shape[0])
                candidate = (candidate + stab_mask @ stabilizers) % 2
                weight = int(candidate.sum())
                if 0 < weight < best:
                    best = weight
        return best

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def verify_logical_operators(self) -> bool:
        """Check the computed logical operators satisfy CSS requirements."""
        lx, lz = self.logical_x, self.logical_z
        if lx.shape[0] != self.num_logical_qubits:
            return False
        if lz.shape[0] != self.num_logical_qubits:
            return False
        if ((self.hz @ lx.T) % 2).any():
            return False
        if ((self.hx @ lz.T) % 2).any():
            return False
        for row in lx:
            if is_in_row_space(row, self.hx):
                return False
        for row in lz:
            if is_in_row_space(row, self.hz):
                return False
        return True

    def with_name(self, name: str) -> "CSSCode":
        """A copy of this code carrying a different display name."""
        return CSSCode(
            hx=self.hx,
            hz=self.hz,
            name=name,
            distance=self.distance,
            edge_colorable=self.edge_colorable,
            metadata=dict(self.metadata),
        )
