"""Dense GF(2) linear algebra on top of numpy uint8 arrays.

All functions accept anything convertible to a 2-D array of 0/1 entries
and return ``numpy.uint8`` arrays.  The implementations favour clarity
over asymptotic cleverness: the matrices handled by this project are at
most a few thousand columns wide, for which straightforward vectorized
Gaussian elimination is fast enough.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gf2_matrix",
    "row_echelon",
    "row_reduce_mod2",
    "rank",
    "nullspace",
    "row_space",
    "solve",
    "inverse",
    "is_in_row_space",
    "kernel_intersection_complement",
]


def gf2_matrix(data) -> np.ndarray:
    """Coerce ``data`` to a 2-D uint8 matrix with entries reduced mod 2.

    Raises ``ValueError`` if the input is not two-dimensional.
    """
    mat = np.asarray(data)
    if mat.ndim == 1:
        mat = mat.reshape(1, -1)
    if mat.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {mat.shape}")
    return (mat.astype(np.int64) % 2).astype(np.uint8)


def row_echelon(matrix, full: bool = False):
    """Gaussian elimination over GF(2).

    Parameters
    ----------
    matrix:
        Any 2-D binary array.
    full:
        If True, compute the *reduced* row echelon form (eliminate above
        pivots as well as below).

    Returns
    -------
    (echelon, rank, transform, pivot_columns)
        ``echelon`` is the (reduced) row echelon form, ``rank`` its GF(2)
        rank, ``transform`` the invertible matrix with
        ``transform @ matrix == echelon`` (mod 2), and ``pivot_columns``
        the list of pivot column indices.
    """
    mat = gf2_matrix(matrix).copy()
    num_rows, num_cols = mat.shape
    transform = np.identity(num_rows, dtype=np.uint8)

    pivot_row = 0
    pivot_cols: list[int] = []
    for col in range(num_cols):
        if pivot_row >= num_rows:
            break
        # Find a row at or below pivot_row with a 1 in this column.
        candidates = np.nonzero(mat[pivot_row:, col])[0]
        if candidates.size == 0:
            continue
        swap = pivot_row + candidates[0]
        if swap != pivot_row:
            mat[[pivot_row, swap]] = mat[[swap, pivot_row]]
            transform[[pivot_row, swap]] = transform[[swap, pivot_row]]
        if full:
            eliminate = np.nonzero(mat[:, col])[0]
            eliminate = eliminate[eliminate != pivot_row]
        else:
            below = np.nonzero(mat[pivot_row + 1:, col])[0]
            eliminate = below + pivot_row + 1
        if eliminate.size:
            mat[eliminate] ^= mat[pivot_row]
            transform[eliminate] ^= transform[pivot_row]
        pivot_cols.append(col)
        pivot_row += 1

    return mat, pivot_row, transform, pivot_cols


def row_reduce_mod2(matrix) -> np.ndarray:
    """Return the reduced row echelon form of ``matrix`` over GF(2)."""
    echelon, _, _, _ = row_echelon(matrix, full=True)
    return echelon


def rank(matrix) -> int:
    """GF(2) rank of ``matrix``."""
    _, rnk, _, _ = row_echelon(matrix)
    return rnk


def row_space(matrix) -> np.ndarray:
    """A basis (as rows) for the GF(2) row space of ``matrix``."""
    echelon, rnk, _, _ = row_echelon(matrix, full=True)
    return echelon[:rnk]


def nullspace(matrix) -> np.ndarray:
    """A basis (as rows) for the GF(2) null space {x : matrix @ x = 0}.

    Returns an array of shape ``(dim_nullspace, num_cols)``; the array
    has zero rows when the matrix has full column rank.
    """
    mat = gf2_matrix(matrix)
    num_cols = mat.shape[1]
    echelon, rnk, _, pivot_cols = row_echelon(mat, full=True)
    free_cols = [c for c in range(num_cols) if c not in set(pivot_cols)]
    basis = np.zeros((len(free_cols), num_cols), dtype=np.uint8)
    for row_idx, free in enumerate(free_cols):
        basis[row_idx, free] = 1
        # Back-substitute: pivot variable = sum of free columns in its row.
        for pivot_idx, pivot_col in enumerate(pivot_cols):
            if echelon[pivot_idx, free]:
                basis[row_idx, pivot_col] = 1
    return basis


def is_in_row_space(vector, matrix) -> bool:
    """Whether ``vector`` lies in the GF(2) row space of ``matrix``."""
    mat = gf2_matrix(matrix)
    vec = gf2_matrix(vector)
    stacked = np.vstack([mat, vec])
    return rank(stacked) == rank(mat)


def solve(matrix, rhs) -> np.ndarray | None:
    """Solve ``matrix @ x = rhs`` over GF(2).

    Returns one solution vector, or ``None`` when the system is
    inconsistent.  ``rhs`` may be a 1-D vector.
    """
    mat = gf2_matrix(matrix)
    target = gf2_matrix(rhs).reshape(-1)
    if target.shape[0] != mat.shape[0]:
        raise ValueError(
            f"rhs length {target.shape[0]} does not match {mat.shape[0]} rows"
        )
    augmented = np.hstack([mat, target.reshape(-1, 1)])
    echelon, _, _, pivot_cols = row_echelon(augmented, full=True)
    num_cols = mat.shape[1]
    if num_cols in pivot_cols:
        return None  # Pivot in the augmented column: inconsistent system.
    solution = np.zeros(num_cols, dtype=np.uint8)
    for pivot_idx, pivot_col in enumerate(pivot_cols):
        solution[pivot_col] = echelon[pivot_idx, num_cols]
    return solution


def inverse(matrix) -> np.ndarray:
    """Inverse of a square, invertible GF(2) matrix.

    Raises ``ValueError`` when the matrix is singular or non-square.
    """
    mat = gf2_matrix(matrix)
    if mat.shape[0] != mat.shape[1]:
        raise ValueError("only square matrices can be inverted")
    echelon, rnk, transform, _ = row_echelon(mat, full=True)
    if rnk < mat.shape[0]:
        raise ValueError("matrix is singular over GF(2)")
    del echelon
    return transform


def kernel_intersection_complement(stabilizers, checks) -> np.ndarray:
    """Vectors in ker(``checks``) that are independent of ``stabilizers``.

    This is the standard construction of logical operators for a CSS
    code: X-type logicals are elements of ker(Hz) that are not in the
    row space of Hx (and symmetrically for Z-type logicals).  The rows
    of the returned matrix, together with the rows of ``stabilizers``,
    span ker(``checks``); the returned rows are linearly independent of
    the stabilizer rows and of one another.
    """
    kernel = nullspace(checks)
    stab = gf2_matrix(stabilizers)
    base_rank = rank(stab)
    chosen: list[np.ndarray] = []
    current = stab
    for candidate in kernel:
        trial = np.vstack([current, candidate.reshape(1, -1)])
        if rank(trial) > rank(current):
            chosen.append(candidate)
            current = trial
    del base_rank
    if not chosen:
        return np.zeros((0, gf2_matrix(checks).shape[1]), dtype=np.uint8)
    return np.array(chosen, dtype=np.uint8)
