"""Linear algebra over GF(2).

Every quantum error correcting code in this repository is defined by
binary parity-check matrices, and every decoder and logical-operator
computation reduces to linear algebra over the two-element field.  This
package provides the small, well-tested kernel of GF(2) routines that
the rest of the library builds on.
"""

from repro.linalg.gf2 import (
    gf2_matrix,
    row_echelon,
    rank,
    nullspace,
    row_space,
    solve,
    inverse,
    kernel_intersection_complement,
    is_in_row_space,
    row_reduce_mod2,
)
from repro.linalg.bitops import (
    WORD_BITS,
    num_words,
    pack_bits,
    unpack_bits,
    popcount,
    popcount_words,
    parity,
    xor_reduce,
    xor_accumulate,
    packed_matmul,
    packed_matmul_words,
)
from repro.linalg.native import (
    native_available,
    native_unavailable_reason,
    simulation_backend,
)

__all__ = [
    "gf2_matrix",
    "row_echelon",
    "rank",
    "nullspace",
    "row_space",
    "solve",
    "inverse",
    "kernel_intersection_complement",
    "is_in_row_space",
    "row_reduce_mod2",
    "WORD_BITS",
    "num_words",
    "pack_bits",
    "unpack_bits",
    "popcount",
    "popcount_words",
    "parity",
    "xor_reduce",
    "xor_accumulate",
    "packed_matmul",
    "packed_matmul_words",
    "native_available",
    "native_unavailable_reason",
    "simulation_backend",
]
