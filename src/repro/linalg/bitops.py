"""Word-level bit-packed GF(2) kernels over ``uint64`` words.

The Monte-Carlo hot paths of this repository — Pauli-frame sampling,
detector-error-model extraction and batched decoding — are all XOR- and
parity-heavy computations over large binary arrays.  Storing one bit per
byte (``bool`` / ``uint8`` numpy arrays) wastes 7/8ths of the memory
bandwidth those kernels are limited by.  This module packs 64 bits into
each ``uint64`` word so that a single machine XOR/AND/popcount operates
on 64 shots (or 64 matrix entries) at once — the same trick used by
Stim's frame simulator and by SIMD sequence scanners.

Conventions
-----------
* Packing is *LSB-first within a little-endian word*: element ``64*w + j``
  of the packed axis lives in bit ``j`` (value ``1 << j``) of word ``w``.
  The explicit ``<u8`` dtype makes the layout platform-independent.
* ``pack_bits`` / ``unpack_bits`` keep the packed axis in place, so a
  ``(shots, n)`` boolean array packed along axis 0 becomes a
  ``(ceil(shots/64), n)`` word array and all column-indexed kernels keep
  working unchanged.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "WORD_BITS",
    "WORD_DTYPE",
    "num_words",
    "pack_bits",
    "unpack_bits",
    "popcount",
    "popcount_words",
    "parity",
    "xor_reduce",
    "xor_accumulate",
    "packed_matmul",
    "packed_matmul_words",
    "bit_mask",
]


def _native_kernels(backend: str):
    """The bound native library when ``backend="native"`` asks for it.

    Returns ``None`` for other backends *and* when the toolchain is
    absent (the probe in :mod:`repro.linalg.native` logs one note and
    every caller silently keeps the numpy kernels — bit-identical by
    construction).  Imported lazily to keep the packed tier free of any
    native-probe cost.
    """
    if backend != "native":
        return None
    from repro.linalg import native

    return native.get_kernels()

WORD_BITS = 64
#: Explicit little-endian words so bit ``j`` of word ``w`` is always
#: element ``64*w + j`` regardless of the host byte order.
WORD_DTYPE = np.dtype("<u8")


def num_words(count: int) -> int:
    """Number of 64-bit words needed to hold ``count`` bits."""
    return (int(count) + WORD_BITS - 1) // WORD_BITS


def bit_mask(position: int) -> np.uint64:
    """The single-bit word mask selecting packed element ``position % 64``."""
    return WORD_DTYPE.type(1 << (int(position) & (WORD_BITS - 1)))


def pack_bits(bits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Pack a boolean/0-1 array into ``uint64`` words along ``axis``.

    The packed axis stays in the same position with length
    ``num_words(original_length)``; trailing padding bits are zero.
    """
    bits = np.asarray(bits).astype(bool, copy=False)
    moved = np.moveaxis(bits, axis, -1)
    count = moved.shape[-1]
    words = num_words(count)
    packed_bytes = np.packbits(moved, axis=-1, bitorder="little")
    pad = words * 8 - packed_bytes.shape[-1]
    if pad:
        packed_bytes = np.concatenate(
            [packed_bytes,
             np.zeros(moved.shape[:-1] + (pad,), dtype=np.uint8)],
            axis=-1,
        )
    packed = np.ascontiguousarray(packed_bytes).view(WORD_DTYPE)
    return np.moveaxis(packed, -1, axis)


def unpack_bits(words: np.ndarray, count: int, axis: int = -1) -> np.ndarray:
    """Inverse of :func:`pack_bits`: recover ``count`` boolean elements."""
    words = np.asarray(words, dtype=WORD_DTYPE)
    moved = np.moveaxis(words, axis, -1)
    packed_bytes = np.ascontiguousarray(moved).view(np.uint8)
    bits = np.unpackbits(packed_bytes, axis=-1, bitorder="little",
                         count=int(count))
    return np.moveaxis(bits, -1, axis).astype(bool)


if hasattr(np, "bitwise_count"):
    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-word population count."""
        return np.bitwise_count(np.asarray(words, dtype=WORD_DTYPE))
else:  # pragma: no cover - exercised only on numpy < 2.0
    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-word population count (SWAR fallback for old numpy)."""
        v = np.asarray(words, dtype=np.uint64).copy()
        m1 = np.uint64(0x5555555555555555)
        m2 = np.uint64(0x3333333333333333)
        m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
        h01 = np.uint64(0x0101010101010101)
        v -= (v >> np.uint64(1)) & m1
        v = (v & m2) + ((v >> np.uint64(2)) & m2)
        v = (v + (v >> np.uint64(4))) & m4
        return (v * h01) >> np.uint64(56)


def popcount_words(words: np.ndarray, backend: str = "packed") -> np.ndarray:
    """Per-word population count with backend dispatch.

    ``backend="packed"`` (default) is :func:`popcount`;
    ``backend="native"`` routes to the compiled kernel tier when the
    host toolchain provides it and falls back to :func:`popcount`
    otherwise.  Counts are exact integers, so the backends are
    interchangeable bit for bit (the native path returns uint8 counts,
    as numpy >= 2 does).
    """
    kernels = _native_kernels(backend)
    if kernels is not None:
        return kernels.popcount_words(np.asarray(words, dtype=WORD_DTYPE))
    return popcount(words)


def parity(words: np.ndarray, axis: int = -1) -> np.ndarray:
    """GF(2) parity of the bits packed along ``axis`` (plus that axis)."""
    return (popcount(words).sum(axis=axis) & 1).astype(np.uint8)


def xor_reduce(words: np.ndarray, axis: int = 0) -> np.ndarray:
    """Bitwise-XOR reduction of packed words along ``axis``."""
    return np.bitwise_xor.reduce(np.asarray(words, dtype=WORD_DTYPE),
                                 axis=axis)


def xor_accumulate(dst: np.ndarray, src: np.ndarray) -> np.ndarray:
    """In-place ``dst ^= src`` for packed word arrays; returns ``dst``."""
    np.bitwise_xor(dst, src, out=dst)
    return dst


def packed_matmul(a_packed: np.ndarray, b_packed: np.ndarray,
                  chunk: int = 512) -> np.ndarray:
    """GF(2) matrix product from two row-packed operands.

    ``a_packed`` is ``(m, W)`` and ``b_packed`` ``(n, W)``, both packed
    along their shared inner dimension; the result is the ``(m, n)``
    uint8 matrix ``A @ B.T mod 2``.  Blocked over rows of ``a_packed`` to
    bound the broadcast temporary.
    """
    a_packed = np.asarray(a_packed, dtype=WORD_DTYPE)
    b_packed = np.asarray(b_packed, dtype=WORD_DTYPE)
    if a_packed.ndim != 2 or b_packed.ndim != 2:
        raise ValueError("packed_matmul expects 2-D packed operands")
    if a_packed.shape[1] != b_packed.shape[1]:
        raise ValueError("packed operands disagree on inner word count")
    m, n = a_packed.shape[0], b_packed.shape[0]
    out = np.empty((m, n), dtype=np.uint8)
    for start in range(0, m, chunk):
        block = a_packed[start:start + chunk, None, :] & b_packed[None, :, :]
        out[start:start + chunk] = (
            popcount(block).sum(axis=-1, dtype=np.uint64) & 1
        ).astype(np.uint8)
    return out


def packed_matmul_words(a_packed: np.ndarray, b_packed: np.ndarray,
                        chunk: int = 512,
                        backend: str = "packed") -> np.ndarray:
    """:func:`packed_matmul` with the result bit-packed along the B rows.

    Returns the ``(m, num_words(n))`` word array whose bit ``j`` of row
    ``i`` is ``(A @ B.T mod 2)[i, j]``.  The parities are computed by
    the word-level AND/popcount kernel and then packed once, so the
    consumer (e.g. BP's packed syndrome verification) can compare
    against other packed operands with word XORs instead of per-bit
    boolean comparisons.

    ``backend="native"`` computes and packs the parities in one pass of
    the compiled kernel tier (bit-identical — GF(2) is exact) and falls
    back to the numpy path when the toolchain is absent.
    """
    kernels = _native_kernels(backend)
    if kernels is not None:
        return kernels.packed_matmul_words(
            np.asarray(a_packed, dtype=WORD_DTYPE),
            np.asarray(b_packed, dtype=WORD_DTYPE),
        )
    return pack_bits(packed_matmul(a_packed, b_packed, chunk=chunk), axis=1)
