/* Native word-level GF(2) kernels behind repro.linalg.native.
 *
 * Compiled on first use with the host C compiler (see native.py for the
 * build fingerprint) and bound via ctypes — no build system, no Python
 * headers.  Every function mirrors a numpy kernel in this repository
 * bit for bit:
 *
 *   repro_popcount_words       <-> linalg.bitops.popcount
 *   repro_packed_matmul        <-> linalg.bitops.packed_matmul
 *   repro_packed_matmul_words  <-> linalg.bitops.packed_matmul_words
 *   repro_gf2_gauss_jordan     <-> decoders.gf2dense._gauss_jordan
 *   repro_min_sum_check_update <-> decoders.bp.BeliefPropagationDecoder
 *                                  ._check_update
 *
 * GF(2) arithmetic is exact, so the first four are bit-identical by
 * construction.  The min-sum update is floating point: it performs the
 * same IEEE-754 double operations in the same order as the numpy
 * expression (sign products over exact +-1.0 values, comparison-based
 * minima, one rounding in the final (scaling * sign) * magnitude
 * product), so its output is bit-identical too — the property suite in
 * tests/test_native_backend.py asserts exact equality, not closeness.
 *
 * Layout conventions match linalg.bitops and decoders.gf2dense:
 *   - uint64 words pack bits LSB-first (bit j of word w is packed
 *     element 64*w + j); words are little-endian on every supported
 *     host (the loader refuses big-endian platforms).
 *   - uint8 "byte-packed" matrices (the OSD elimination) pack bits
 *     MSB-first within each byte, exactly like np.packbits.
 */

#include <math.h>
#include <stdint.h>
#include <string.h>

#define API __attribute__((visibility("default")))

/* ------------------------------------------------------------------ */
/* Per-word population count: out[i] = popcount(words[i]).            */
API void repro_popcount_words(const uint64_t *restrict words, int64_t n,
                              uint8_t *restrict out)
{
    for (int64_t i = 0; i < n; i++) {
        out[i] = (uint8_t)__builtin_popcountll(words[i]);
    }
}

/* ------------------------------------------------------------------ */
/* GF(2) product of row-packed operands: out[i, j] = parity of
 * A_row_i AND B_row_j, i.e. (A @ B.T mod 2)[i, j] as uint8.
 * Parity of a sum of popcounts equals the popcount of the XOR fold,
 * so the inner loop is one AND + one XOR per word.                   */
API void repro_packed_matmul(const uint64_t *restrict a,
                             const uint64_t *restrict b,
                             int64_t m, int64_t n, int64_t words,
                             uint8_t *restrict out)
{
    for (int64_t i = 0; i < m; i++) {
        const uint64_t *ai = a + i * words;
        uint8_t *oi = out + i * n;
        for (int64_t j = 0; j < n; j++) {
            const uint64_t *bj = b + j * words;
            uint64_t fold = 0;
            for (int64_t w = 0; w < words; w++) {
                fold ^= ai[w] & bj[w];
            }
            oi[j] = (uint8_t)(__builtin_popcountll(fold) & 1);
        }
    }
}

/* Same product with the output bit-packed along the B rows: bit j of
 * out word row i (LSB-first uint64 layout) is (A @ B.T mod 2)[i, j].
 * Padding bits beyond n stay zero, matching bitops.pack_bits.        */
API void repro_packed_matmul_words(const uint64_t *restrict a,
                                   const uint64_t *restrict b,
                                   int64_t m, int64_t n, int64_t words,
                                   uint64_t *restrict out,
                                   int64_t out_words)
{
    memset(out, 0, (size_t)(m * out_words) * sizeof(uint64_t));
    for (int64_t i = 0; i < m; i++) {
        const uint64_t *ai = a + i * words;
        uint64_t *oi = out + i * out_words;
        for (int64_t j = 0; j < n; j++) {
            const uint64_t *bj = b + j * words;
            uint64_t fold = 0;
            for (int64_t w = 0; w < words; w++) {
                fold ^= ai[w] & bj[w];
            }
            oi[j >> 6] |= (uint64_t)(__builtin_popcountll(fold) & 1)
                          << (j & 63);
        }
    }
}

/* ------------------------------------------------------------------ */
/* In-place Gauss-Jordan elimination on a byte-packed (np.packbits,
 * MSB-first) matrix, mirroring every row swap and row XOR onto the
 * carry block — a (rows, 1) syndrome column or a (rows, carry_bytes)
 * packed identity accumulating the row transform.  Visits columns in
 * `order`; the pivot for a column is the first row >= the next pivot
 * row with that bit set, exactly like the numpy reference, so rank,
 * pivot columns and the reduced matrix are identical.  Returns the
 * rank and writes the pivot columns (elimination order) to
 * pivot_cols.                                                        */
API int64_t repro_gf2_gauss_jordan(uint8_t *restrict m,
                                   uint8_t *restrict carry,
                                   int64_t rows, int64_t row_bytes,
                                   int64_t carry_bytes,
                                   const int64_t *restrict order,
                                   int64_t order_len,
                                   int64_t *restrict pivot_cols)
{
    int64_t next = 0;
    for (int64_t k = 0; k < order_len && next < rows; k++) {
        const int64_t col = order[k];
        const int64_t byte = col >> 3;
        const int shift = 7 - (int)(col & 7);

        int64_t pivot = -1;
        for (int64_t r = next; r < rows; r++) {
            if ((m[r * row_bytes + byte] >> shift) & 1) {
                pivot = r;
                break;
            }
        }
        if (pivot < 0) {
            continue;
        }
        if (pivot != next) {
            uint8_t *ra = m + next * row_bytes;
            uint8_t *rb = m + pivot * row_bytes;
            for (int64_t b = 0; b < row_bytes; b++) {
                uint8_t t = ra[b];
                ra[b] = rb[b];
                rb[b] = t;
            }
            uint8_t *ca = carry + next * carry_bytes;
            uint8_t *cb = carry + pivot * carry_bytes;
            for (int64_t b = 0; b < carry_bytes; b++) {
                uint8_t t = ca[b];
                ca[b] = cb[b];
                cb[b] = t;
            }
        }
        const uint8_t *prow = m + next * row_bytes;
        const uint8_t *pcarry = carry + next * carry_bytes;
        for (int64_t r = 0; r < rows; r++) {
            if (r == next) {
                continue;
            }
            uint8_t *row = m + r * row_bytes;
            if ((row[byte] >> shift) & 1) {
                for (int64_t b = 0; b < row_bytes; b++) {
                    row[b] ^= prow[b];
                }
                uint8_t *crow = carry + r * carry_bytes;
                for (int64_t b = 0; b < carry_bytes; b++) {
                    crow[b] ^= pcarry[b];
                }
            }
        }
        pivot_cols[next] = col;
        next++;
    }
    return next;
}

/* ------------------------------------------------------------------ */
/* Fused scaled min-sum check-node update over edge segments.
 *
 * Edges are grouped by check: segment c spans
 * [check_starts[c], check_starts[c+1]) (the last segment ends at
 * `edges`); empty segments are skipped, exactly as the numpy
 * reduceat-based reference never reads them back.  Per (shot, check
 * segment): the product of message signs, the minimum |message| and
 * the first edge attaining it, and the second minimum (INFINITY for
 * degree-1 checks, clipped below).  Each edge then receives
 *
 *   (scaling * (syndrome_sign * sign_product * own_sign))
 *       * min(min_excluding_self, clip)
 *
 * with the parenthesisation chosen to round exactly like the numpy
 * expression: every sign factor is exactly +-1.0, so the only rounded
 * operation is the final product.                                    */
API void repro_min_sum_check_update(const double *restrict var_to_check,
                                    const double *restrict syndrome_signs,
                                    const int64_t *restrict check_starts,
                                    int64_t shots, int64_t edges,
                                    int64_t checks,
                                    double scaling, double clip,
                                    double *restrict out)
{
    for (int64_t s = 0; s < shots; s++) {
        const double *v = var_to_check + s * edges;
        const double *syn = syndrome_signs + s * checks;
        double *o = out + s * edges;
        for (int64_t c = 0; c < checks; c++) {
            const int64_t lo = check_starts[c];
            const int64_t hi = (c + 1 < checks) ? check_starts[c + 1]
                                                : edges;
            if (lo >= hi) {
                continue;
            }
            double min1 = INFINITY;
            int64_t min_pos = lo;
            double sign_product = 1.0;
            for (int64_t e = lo; e < hi; e++) {
                const double a = fabs(v[e]);
                sign_product *= (v[e] < 0.0) ? -1.0 : 1.0;
                if (a < min1) {
                    min1 = a;
                    min_pos = e;
                }
            }
            double min2 = INFINITY;
            for (int64_t e = lo; e < hi; e++) {
                if (e == min_pos) {
                    continue;
                }
                const double a = fabs(v[e]);
                if (a < min2) {
                    min2 = a;
                }
            }
            const double min1c = (min1 > clip) ? clip : min1;
            const double min2c = (min2 > clip) ? clip : min2;
            const double syn_sign = syn[c];
            for (int64_t e = lo; e < hi; e++) {
                const double own_sign = (v[e] < 0.0) ? -1.0 : 1.0;
                const double total_sign =
                    syn_sign * (sign_product * own_sign);
                const double magnitude = (e == min_pos) ? min2c : min1c;
                o[e] = (scaling * total_sign) * magnitude;
            }
        }
    }
}
