"""Native C kernel tier for the packed GF(2) core.

The packed uint64 kernels in :mod:`repro.linalg.bitops` are numpy-bound:
every BP iteration pays array-temporary and dispatch overhead across a
dozen vectorized passes.  This module compiles a small C library
(``kernels.c`` — word-level popcount via ``__builtin_popcountll``,
packed GF(2) matmul, packed Gauss-Jordan row reduction, and a fused
min-sum check-node update over edge segments) **on first use** with the
host C compiler and binds it via :mod:`ctypes` — no pip installs, no
Cython, no build system.

Build model
-----------
The source ships as ``kernels.c`` next to this file.  On the first
request the library is compiled with ``cc -O3 -fPIC -shared`` into a
per-version cache directory (``~/.cache/repro-native/<abi>-<hash>/`` by
default, override with ``REPRO_NATIVE_CACHE``) whose name hashes the
*build fingerprint*: source bytes, compiler path and version banner,
flags, platform and ABI revision.  Any change to any of those lands in
a fresh directory, so stale binaries are never loaded; the fingerprint
is also written alongside the library as ``fingerprint.json`` (and the
benchmarks record it), because — as the A64FX compiler studies keep
demonstrating — flag/compiler choices must be *traceable*, not assumed.
Compilation is atomic (build to a temp name, ``os.replace``), so
concurrent worker processes race benignly.

Availability and fallback
-------------------------
:func:`native_available` probes the toolchain once per process.  When
``cc`` is absent, the compile fails, or the platform is unsupported
(big-endian hosts), the probe logs **one** note and every consumer
falls back to the ``"packed"`` numpy kernels — silently, because the
two tiers are bit-identical by construction (cross-checked by the
hypothesis suite in ``tests/test_native_backend.py`` exactly as
``"packed"`` is cross-checked against ``"bool"``).

``REPRO_NATIVE`` overrides the probe:

* ``REPRO_NATIVE=0`` — never compile or load; everything stays numpy.
* ``REPRO_NATIVE=1`` — require the native tier; a probe failure raises
  instead of falling back (for hosts where silence would hide a
  misconfigured toolchain).
* unset/other — auto: use the native tier when it builds, fall back
  when it does not.
"""

from __future__ import annotations

import ctypes
import hashlib
import json
import logging
import os
import platform
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

__all__ = [
    "NativeKernels",
    "get_kernels",
    "native_available",
    "native_unavailable_reason",
    "build_fingerprint",
    "simulation_backend",
    "reset_native_state",
]

logger = logging.getLogger(__name__)

#: Bumped whenever the C ABI (function signatures/semantics) changes;
#: part of the cache-directory fingerprint so old binaries never load.
ABI_VERSION = 1

#: Compile flags, recorded verbatim in the build fingerprint.
CFLAGS = ("-O3", "-fPIC", "-shared", "-std=c11")

_SOURCE_PATH = Path(__file__).with_name("kernels.c")
_LIBRARY_NAME = "libreprokernels.so"

# Probe memoisation: (kernels, reason).  ``_PROBED`` guards both so a
# failed probe is not retried (and re-logged) on every decoder build.
_PROBED = False
_KERNELS: "NativeKernels | None" = None
_REASON: str | None = None


def simulation_backend(backend: str) -> str:
    """The sampling/DEM backend a decoder backend implies.

    The native tier accelerates *decoding* kernels only; simulation and
    DEM extraction for ``backend="native"`` run on the ``"packed"``
    numpy kernels, so samples are bit-identical across the two fast
    backends by construction.
    """
    return "bool" if backend == "bool" else "packed"


def reset_native_state() -> None:
    """Forget the memoised probe (tests re-probe under new env/toolchain)."""
    global _PROBED, _KERNELS, _REASON
    _PROBED = False
    _KERNELS = None
    _REASON = None


# ----------------------------------------------------------------------
def _compiler() -> str | None:
    """The C compiler to use: ``$CC`` if set, else the first of cc/gcc/clang
    on PATH."""
    cc = os.environ.get("CC")
    if cc:
        return cc if os.path.sep in cc else shutil.which(cc)
    for candidate in ("cc", "gcc", "clang"):
        found = shutil.which(candidate)
        if found:
            return found
    return None


def _compiler_banner(cc: str) -> str:
    """First line of ``cc --version`` (part of the build fingerprint)."""
    try:
        result = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, timeout=30
        )
        return (result.stdout or result.stderr).splitlines()[0].strip()
    except (OSError, subprocess.SubprocessError, IndexError):
        return "unknown"


def build_fingerprint(cc: str | None = None) -> dict:
    """The dict whose hash names the cache directory.

    Everything that could change the binary's behaviour participates:
    source bytes, compiler identity, flags, platform and ABI revision.
    """
    cc = cc or _compiler() or "cc-not-found"
    return {
        "abi_version": ABI_VERSION,
        "source_sha256": hashlib.sha256(
            _SOURCE_PATH.read_bytes()
        ).hexdigest(),
        "cc": cc,
        "cc_version": _compiler_banner(cc) if os.path.exists(cc) else "absent",
        "cflags": list(CFLAGS),
        "machine": platform.machine(),
        "system": sys.platform,
    }


def _cache_root() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    return Path(os.path.expanduser("~")) / ".cache" / "repro-native"


def _library_dir(fingerprint: dict) -> Path:
    digest = hashlib.sha256(
        json.dumps(fingerprint, sort_keys=True).encode()
    ).hexdigest()[:16]
    return _cache_root() / f"v{ABI_VERSION}-{digest}"


# ----------------------------------------------------------------------
def _build_library() -> "NativeKernels":
    """Compile (if needed) and bind the kernel library.

    Raises ``RuntimeError`` with a human-readable reason on any failure;
    :func:`get_kernels` turns that into the silent fallback.
    """
    if sys.byteorder != "little":
        raise RuntimeError(
            "native tier requires a little-endian host (packed-word "
            "layout); falling back to numpy kernels"
        )
    if not _SOURCE_PATH.exists():
        raise RuntimeError(f"kernel source missing at {_SOURCE_PATH}")
    cc = _compiler()
    if cc is None or not os.path.exists(cc):
        raise RuntimeError("no C compiler on PATH (tried $CC, cc, gcc, "
                           "clang)")

    fingerprint = build_fingerprint(cc)
    lib_dir = _library_dir(fingerprint)
    lib_path = lib_dir / _LIBRARY_NAME
    if not lib_path.exists():
        lib_dir.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            suffix=".so", prefix="build-", dir=lib_dir
        )
        os.close(fd)
        command = [cc, *CFLAGS, "-o", temp_name, str(_SOURCE_PATH)]
        try:
            result = subprocess.run(
                command, capture_output=True, text=True, timeout=120
            )
            if result.returncode != 0:
                raise RuntimeError(
                    f"compile failed ({' '.join(command)}): "
                    f"{result.stderr.strip()[:500]}"
                )
            # Atomic publish: concurrent builders race benignly — the
            # last os.replace wins and every replaced file was built
            # from the identical fingerprinted inputs.
            os.replace(temp_name, lib_path)
            (lib_dir / "fingerprint.json").write_text(
                json.dumps(fingerprint, indent=2, sort_keys=True) + "\n"
            )
        except (OSError, subprocess.SubprocessError) as error:
            raise RuntimeError(f"compile failed: {error}") from error
        finally:
            if os.path.exists(temp_name):
                os.unlink(temp_name)
    try:
        library = ctypes.CDLL(str(lib_path))
    except OSError as error:
        raise RuntimeError(
            f"compiled library at {lib_path} failed to load: {error}"
        ) from error
    return NativeKernels(library, fingerprint, lib_path)


def get_kernels() -> "NativeKernels | None":
    """The process-wide kernel binding, or ``None`` when unavailable.

    The first call probes (honouring ``REPRO_NATIVE``) and memoises;
    failures log a single note and are not retried.  With
    ``REPRO_NATIVE=1`` a failure raises instead of returning ``None``.
    """
    global _PROBED, _KERNELS, _REASON
    if _PROBED:
        if _KERNELS is None and os.environ.get("REPRO_NATIVE") == "1":
            raise RuntimeError(
                f"REPRO_NATIVE=1 but the native tier is unavailable: "
                f"{_REASON}"
            )
        return _KERNELS
    _PROBED = True
    mode = os.environ.get("REPRO_NATIVE", "")
    if mode == "0":
        _REASON = "disabled by REPRO_NATIVE=0"
        return None
    try:
        _KERNELS = _build_library()
    except RuntimeError as error:
        _REASON = str(error)
        if mode == "1":
            raise RuntimeError(
                f"REPRO_NATIVE=1 but the native tier is unavailable: "
                f"{_REASON}"
            ) from error
        logger.info(
            "native kernel tier unavailable (%s); using the packed "
            "numpy kernels — results are bit-identical",
            _REASON,
        )
    return _KERNELS


def native_available() -> bool:
    """Whether the native tier can be (or has been) loaded."""
    try:
        return get_kernels() is not None
    except RuntimeError:
        # REPRO_NATIVE=1 with a broken toolchain: callers probing
        # availability get a clean False; building a decoder raises.
        return False


def native_unavailable_reason() -> str | None:
    """Why the probe failed (``None`` while unprobed or available)."""
    return _REASON


# ----------------------------------------------------------------------
def _as_words(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.dtype("<u8"))


def _pointer(array: np.ndarray, ctype) -> "ctypes.pointer":
    return array.ctypes.data_as(ctypes.POINTER(ctype))


class NativeKernels:
    """ctypes binding of one compiled kernel library.

    Thin shims only: argument marshalling (contiguity, dtype) plus the
    output allocation; all semantics live in ``kernels.c``.  Instances
    are process-wide singletons handed out by :func:`get_kernels`.
    """

    def __init__(self, library: ctypes.CDLL, fingerprint: dict,
                 path: Path) -> None:
        self._lib = library
        self.fingerprint = fingerprint
        self.path = path
        i64 = ctypes.c_int64
        f64 = ctypes.c_double
        u8p = ctypes.POINTER(ctypes.c_uint8)
        u64p = ctypes.POINTER(ctypes.c_uint64)
        i64p = ctypes.POINTER(ctypes.c_int64)
        f64p = ctypes.POINTER(ctypes.c_double)
        library.repro_popcount_words.argtypes = [u64p, i64, u8p]
        library.repro_popcount_words.restype = None
        library.repro_packed_matmul.argtypes = [u64p, u64p, i64, i64, i64,
                                                u8p]
        library.repro_packed_matmul.restype = None
        library.repro_packed_matmul_words.argtypes = [u64p, u64p, i64, i64,
                                                      i64, u64p, i64]
        library.repro_packed_matmul_words.restype = None
        library.repro_gf2_gauss_jordan.argtypes = [u8p, u8p, i64, i64, i64,
                                                   i64p, i64, i64p]
        library.repro_gf2_gauss_jordan.restype = i64
        library.repro_min_sum_check_update.argtypes = [f64p, f64p, i64p,
                                                       i64, i64, i64, f64,
                                                       f64, f64p]
        library.repro_min_sum_check_update.restype = None

    # ------------------------------------------------------------------
    def popcount_words(self, words: np.ndarray) -> np.ndarray:
        """Per-word popcount; same shape, uint8 counts (<= 64)."""
        words = _as_words(words)
        out = np.empty(words.shape, dtype=np.uint8)
        if words.size:
            self._lib.repro_popcount_words(
                _pointer(words, ctypes.c_uint64),
                ctypes.c_int64(words.size),
                _pointer(out, ctypes.c_uint8),
            )
        return out

    def packed_matmul(self, a_packed: np.ndarray,
                      b_packed: np.ndarray) -> np.ndarray:
        """``A @ B.T mod 2`` (uint8) from row-packed operands."""
        a_packed = _as_words(a_packed)
        b_packed = _as_words(b_packed)
        if a_packed.ndim != 2 or b_packed.ndim != 2:
            raise ValueError("packed_matmul expects 2-D packed operands")
        if a_packed.shape[1] != b_packed.shape[1]:
            raise ValueError("packed operands disagree on inner word count")
        m, n = a_packed.shape[0], b_packed.shape[0]
        out = np.zeros((m, n), dtype=np.uint8)
        if m and n and a_packed.shape[1]:
            self._lib.repro_packed_matmul(
                _pointer(a_packed, ctypes.c_uint64),
                _pointer(b_packed, ctypes.c_uint64),
                ctypes.c_int64(m), ctypes.c_int64(n),
                ctypes.c_int64(a_packed.shape[1]),
                _pointer(out, ctypes.c_uint8),
            )
        return out

    def packed_matmul_words(self, a_packed: np.ndarray,
                            b_packed: np.ndarray) -> np.ndarray:
        """``A @ B.T mod 2`` with the result packed along the B rows."""
        a_packed = _as_words(a_packed)
        b_packed = _as_words(b_packed)
        if a_packed.ndim != 2 or b_packed.ndim != 2:
            raise ValueError("packed_matmul expects 2-D packed operands")
        if a_packed.shape[1] != b_packed.shape[1]:
            raise ValueError("packed operands disagree on inner word count")
        m, n = a_packed.shape[0], b_packed.shape[0]
        out_words = (n + 63) // 64
        out = np.zeros((m, out_words), dtype=np.dtype("<u8"))
        if m and n and a_packed.shape[1]:
            self._lib.repro_packed_matmul_words(
                _pointer(a_packed, ctypes.c_uint64),
                _pointer(b_packed, ctypes.c_uint64),
                ctypes.c_int64(m), ctypes.c_int64(n),
                ctypes.c_int64(a_packed.shape[1]),
                _pointer(out, ctypes.c_uint64),
                ctypes.c_int64(out_words),
            )
        return out

    # ------------------------------------------------------------------
    def gauss_jordan(self, packed: np.ndarray, carry: np.ndarray,
                     column_order: np.ndarray) -> tuple[int, list[int]]:
        """In-place Gauss-Jordan on byte-packed rows, mirrored on carry.

        Same contract as ``decoders.gf2dense._gauss_jordan``: ``packed``
        (rows x row_bytes uint8) and ``carry`` (1-D syndrome or 2-D
        packed transform) are mutated in place; returns
        ``(rank, pivot_cols)``.  Both arrays must be C-contiguous uint8
        (callers pass fresh ``.copy()`` buffers, which are).
        """
        if packed.dtype != np.uint8 or not packed.flags.c_contiguous:
            raise ValueError("packed matrix must be C-contiguous uint8")
        if carry.dtype != np.uint8 or not carry.flags.c_contiguous:
            raise ValueError("carry must be C-contiguous uint8")
        rows, row_bytes = packed.shape
        order = np.ascontiguousarray(column_order, dtype=np.int64)
        if rows == 0 or order.size == 0:
            return 0, []
        carry_2d = carry if carry.ndim == 2 else carry.reshape(rows, -1)
        if carry_2d.shape[0] != rows:
            raise ValueError("carry row count does not match the matrix")
        pivots = np.empty(rows, dtype=np.int64)
        rank = self._lib.repro_gf2_gauss_jordan(
            _pointer(packed, ctypes.c_uint8),
            _pointer(carry_2d, ctypes.c_uint8),
            ctypes.c_int64(rows), ctypes.c_int64(row_bytes),
            ctypes.c_int64(carry_2d.shape[1]),
            _pointer(order, ctypes.c_int64),
            ctypes.c_int64(order.size),
            _pointer(pivots, ctypes.c_int64),
        )
        return int(rank), [int(c) for c in pivots[:rank]]

    # ------------------------------------------------------------------
    def min_sum_check_update(self, var_to_check: np.ndarray,
                             syndrome_signs: np.ndarray,
                             check_starts: np.ndarray,
                             scaling_factor: float,
                             clip_llr: float) -> np.ndarray:
        """Fused scaled min-sum check update; see ``kernels.c``.

        ``var_to_check`` is ``(shots, edges)`` float64, edges grouped by
        check with segment starts ``check_starts`` (one per check);
        ``syndrome_signs`` is ``(shots, checks)`` of exact +-1.0 values.
        Returns the ``(shots, edges)`` check-to-variable messages,
        bit-identical to the numpy reduceat expression.
        """
        var_to_check = np.ascontiguousarray(var_to_check, dtype=np.float64)
        syndrome_signs = np.ascontiguousarray(syndrome_signs,
                                              dtype=np.float64)
        starts = np.ascontiguousarray(check_starts, dtype=np.int64)
        shots, edges = var_to_check.shape
        checks = starts.shape[0]
        if syndrome_signs.shape != (shots, checks):
            raise ValueError("syndrome_signs shape does not match "
                             "(shots, checks)")
        out = np.empty((shots, edges), dtype=np.float64)
        if shots and edges:
            self._lib.repro_min_sum_check_update(
                _pointer(var_to_check, ctypes.c_double),
                _pointer(syndrome_signs, ctypes.c_double),
                _pointer(starts, ctypes.c_int64),
                ctypes.c_int64(shots), ctypes.c_int64(edges),
                ctypes.c_int64(checks),
                ctypes.c_double(scaling_factor),
                ctypes.c_double(clip_llr),
                _pointer(out, ctypes.c_double),
            )
        return out
