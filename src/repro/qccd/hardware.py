"""QCCD device model: traps, junctions and shuttle segments.

A device is an undirected graph whose nodes are either *traps* (hold up
to ``capacity`` ions, degree at most 2, can run one gate at a time) or
*junctions* (hold no ions, degree up to 4, allow path changes at a
degree-dependent crossing cost).  Edges are shuttle segments traversed
at the ``move`` cost.  Ions live in traps; the device tracks occupancy
so compilers can detect capacity violations and trigger rebalances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

__all__ = ["Trap", "Junction", "QCCDDevice"]


@dataclass(frozen=True)
class Trap:
    """A linear trapping zone holding an ion chain."""

    node_id: str
    capacity: int
    position: tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("trap capacity must be at least 1")


@dataclass(frozen=True)
class Junction:
    """A switching element; ions transit but do not idle here.

    ``l_shaped`` marks the simple two-way corner junctions used by the
    alternate grid and by Cyclone's ring: regardless of how many
    segments meet the node in the abstract graph, an ion passes through
    on a fixed L-shaped path and pays only the degree-2 crossing cost.
    """

    node_id: str
    position: tuple[float, float] = (0.0, 0.0)
    l_shaped: bool = False


@dataclass
class QCCDDevice:
    """A QCCD machine: the trap/junction graph plus ion occupancy.

    Attributes
    ----------
    name:
        Topology name (``"baseline_grid"``, ``"ring"``, ...).
    graph:
        ``networkx.Graph`` whose nodes carry the ``element`` attribute
        (a :class:`Trap` or :class:`Junction`).
    dac_count:
        Number of independent DAC control channels the topology needs
        (the paper's control-overhead metric: one per trap for a grid,
        a constant for Cyclone thanks to broadcast wiring).
    """

    name: str
    graph: nx.Graph
    dac_count: int
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._occupancy: dict[str, list[int]] = {
            node: [] for node in self.trap_ids()
        }
        self._ion_location: dict[int, str] = {}

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def element(self, node_id: str):
        return self.graph.nodes[node_id]["element"]

    def is_trap(self, node_id: str) -> bool:
        return isinstance(self.element(node_id), Trap)

    def is_junction(self, node_id: str) -> bool:
        return isinstance(self.element(node_id), Junction)

    def trap_ids(self) -> list[str]:
        return [n for n in self.graph.nodes if self.is_trap(n)]

    def junction_ids(self) -> list[str]:
        return [n for n in self.graph.nodes if self.is_junction(n)]

    @property
    def num_traps(self) -> int:
        return len(self.trap_ids())

    @property
    def num_junctions(self) -> int:
        return len(self.junction_ids())

    @property
    def num_segments(self) -> int:
        return self.graph.number_of_edges()

    def junction_degree(self, node_id: str) -> int:
        if not self.is_junction(node_id):
            raise ValueError(f"{node_id} is not a junction")
        return self.graph.degree[node_id]

    def junction_crossing_degree(self, node_id: str) -> int:
        """Degree used for pricing a crossing (2 for L-shaped junctions)."""
        element = self.element(node_id)
        if not isinstance(element, Junction):
            raise ValueError(f"{node_id} is not a junction")
        if element.l_shaped:
            return 2
        return self.graph.degree[node_id]

    def trap_capacity(self, node_id: str) -> int:
        element = self.element(node_id)
        if not isinstance(element, Trap):
            raise ValueError(f"{node_id} is not a trap")
        return element.capacity

    def total_capacity(self) -> int:
        return sum(self.trap_capacity(t) for t in self.trap_ids())

    def validate_degrees(self) -> bool:
        """Traps may connect to at most two shuttling paths; junctions to four."""
        for node in self.graph.nodes:
            degree = self.graph.degree[node]
            if self.is_trap(node) and degree > 2:
                return False
            if self.is_junction(node) and degree > 4:
                return False
        return True

    # ------------------------------------------------------------------
    # Ion occupancy
    # ------------------------------------------------------------------
    def place_ion(self, ion: int, trap_id: str, enforce_capacity: bool = True) -> None:
        """Place (or move) an ion into a trap."""
        if not self.is_trap(trap_id):
            raise ValueError(f"{trap_id} is not a trap")
        if enforce_capacity and len(self._occupancy[trap_id]) >= \
                self.trap_capacity(trap_id):
            raise ValueError(f"trap {trap_id} is at capacity")
        previous = self._ion_location.get(ion)
        if previous is not None:
            self._occupancy[previous].remove(ion)
        self._occupancy[trap_id].append(ion)
        self._ion_location[ion] = trap_id

    def remove_ion(self, ion: int) -> None:
        location = self._ion_location.pop(ion, None)
        if location is not None:
            self._occupancy[location].remove(ion)

    def ion_location(self, ion: int) -> str:
        return self._ion_location[ion]

    def ions_in(self, trap_id: str) -> list[int]:
        return list(self._occupancy[trap_id])

    def occupancy(self, trap_id: str) -> int:
        return len(self._occupancy[trap_id])

    def chain_length(self, trap_id: str) -> int:
        """Current ion-chain length in a trap (minimum 2 for gate timing)."""
        return max(len(self._occupancy[trap_id]), 2)

    def free_space(self, trap_id: str) -> int:
        return self.trap_capacity(trap_id) - self.occupancy(trap_id)

    def clear_ions(self) -> None:
        self._occupancy = {node: [] for node in self.trap_ids()}
        self._ion_location = {}

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shortest_path(self, source: str, target: str) -> list[str]:
        """Shortest node path between two traps (inclusive of endpoints)."""
        return nx.shortest_path(self.graph, source, target)

    def path_junction_degrees(self, path: list[str]) -> list[int]:
        """Degrees of the junctions traversed by a node path."""
        return [
            self.graph.degree[node] for node in path if self.is_junction(node)
        ]

    def path_intermediate_traps(self, path: list[str]) -> list[str]:
        """Traps strictly inside a node path (potential roadblocks)."""
        return [node for node in path[1:-1] if self.is_trap(node)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QCCDDevice({self.name}, traps={self.num_traps}, "
            f"junctions={self.num_junctions}, segments={self.num_segments})"
        )
