"""QCCD topology builders.

Each builder returns a :class:`~repro.qccd.hardware.QCCDDevice`.  The
topologies match the designs evaluated in the paper:

``baseline_grid_device``
    The paper's baseline (Figure 4b): an l x l array of traps
    (l = ceil(sqrt(num_data))), each trap a horizontal segment between
    two junctions, with full columns of junctions providing vertical
    transport.  One DAC per trap.
``alternate_grid_device``
    The alternate grid of Figure 4c: alternating horizontal/vertical
    meshes with L-shaped (degree-2) junctions, forming a serpentine
    path that naturally supports circular flows.
``ring_device``
    Cyclone's hardware: x traps on a cycle with four L-shaped corner
    junctions, and a broadcast control signal (constant DAC count).
``mesh_junction_device``
    The dense junction mesh of Section III-C: an all-to-all routing
    fabric of degree-4 junctions with one trap per data qubit on the
    perimeter.
``opt_device`` / ``pseudo_opt_device``
    The idealized fully connected (and pruned) trap graphs of
    Section III-B; not physically realizable, used only to compute
    ideal execution times.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.codes.css import CSSCode
from repro.qccd.hardware import Junction, QCCDDevice, Trap

__all__ = [
    "baseline_grid_device",
    "alternate_grid_device",
    "ring_device",
    "mesh_junction_device",
    "opt_device",
    "pseudo_opt_device",
]

#: Number of broadcast control channels assumed for Cyclone.  The paper
#: argues a single DAC with forwarding suffices in theory; wiring
#: practicalities may push it slightly higher, but it stays constant in
#: the machine size.
CYCLONE_DAC_COUNT = 1


def _add_trap(graph: nx.Graph, node_id: str, capacity: int,
              position: tuple[float, float]) -> None:
    graph.add_node(node_id, element=Trap(node_id, capacity, position))


def _add_junction(graph: nx.Graph, node_id: str,
                  position: tuple[float, float]) -> None:
    graph.add_node(node_id, element=Junction(node_id, position))


def baseline_grid_device(num_data_qubits: int, trap_capacity: int = 5,
                         side_length: int | None = None) -> QCCDDevice:
    """The baseline l x l grid with columns of vertical junctions.

    Traps are horizontal segments: trap ``T(r, c)`` connects junction
    ``J(r, c)`` on its left and ``J(r, c+1)`` on its right.  Junctions in
    the same column are joined vertically, so ions can move vertically
    only through junction columns — the structure the paper describes as
    the industrially inspired baseline.
    """
    if side_length is None:
        side_length = max(int(math.ceil(math.sqrt(num_data_qubits))), 1)
    graph = nx.Graph()
    for row in range(side_length):
        for col in range(side_length + 1):
            _add_junction(graph, f"J{row},{col}", (float(row), col - 0.5))
    for row in range(side_length):
        for col in range(side_length):
            trap_id = f"T{row},{col}"
            _add_trap(graph, trap_id, trap_capacity, (float(row), float(col)))
            graph.add_edge(trap_id, f"J{row},{col}")
            graph.add_edge(trap_id, f"J{row},{col + 1}")
    for col in range(side_length + 1):
        for row in range(side_length - 1):
            graph.add_edge(f"J{row},{col}", f"J{row + 1},{col}")
    device = QCCDDevice(
        name="baseline_grid",
        graph=graph,
        dac_count=side_length * side_length,
        metadata={
            "side_length": side_length,
            "trap_capacity": trap_capacity,
        },
    )
    return device


def alternate_grid_device(num_data_qubits: int, trap_capacity: int = 5,
                          side_length: int | None = None) -> QCCDDevice:
    """The alternate grid: alternating meshes with L-shaped junctions.

    Structurally this is the same l x l arrangement of traps between
    junction columns as the baseline grid, but following the
    surface-electrode designs of Figure 4c every junction is an L-shaped
    element: ions turn corners along a fixed two-way path and pay only
    the cheap degree-2 crossing cost, and vertical transport is
    available on alternating junction columns (the "alternating
    horizontal/vertical meshes").
    """
    if side_length is None:
        side_length = max(int(math.ceil(math.sqrt(num_data_qubits))), 1)
    graph = nx.Graph()
    for row in range(side_length):
        for col in range(side_length + 1):
            junction_id = f"J{row},{col}"
            graph.add_node(
                junction_id,
                element=Junction(junction_id, (float(row), col - 0.5),
                                 l_shaped=True),
            )
    for row in range(side_length):
        for col in range(side_length):
            trap_id = f"T{row},{col}"
            _add_trap(graph, trap_id, trap_capacity, (float(row), float(col)))
            graph.add_edge(trap_id, f"J{row},{col}")
            graph.add_edge(trap_id, f"J{row},{col + 1}")
    # Vertical transport only on alternating junction columns.
    for col in range(0, side_length + 1, 2):
        for row in range(side_length - 1):
            graph.add_edge(f"J{row},{col}", f"J{row + 1},{col}")
    device = QCCDDevice(
        name="alternate_grid",
        graph=graph,
        dac_count=side_length * side_length,
        metadata={
            "side_length": side_length,
            "trap_capacity": trap_capacity,
        },
    )
    return device


def ring_device(num_traps: int, trap_capacity: int,
                num_corner_junctions: int = 4) -> QCCDDevice:
    """Cyclone's ring: ``num_traps`` traps on a cycle with L-junctions.

    Corner junctions (degree 2) are spread evenly around the loop; every
    other neighbouring pair of traps is joined directly by a shuttle
    segment.  The control signal is broadcast, so the DAC count is the
    constant :data:`CYCLONE_DAC_COUNT`.
    """
    if num_traps < 1:
        raise ValueError("need at least one trap")
    graph = nx.Graph()
    radius = max(num_traps, 1)
    for index in range(num_traps):
        angle = 2 * math.pi * index / num_traps
        _add_trap(graph, f"T{index}", trap_capacity,
                  (radius * math.cos(angle), radius * math.sin(angle)))
    if num_traps == 1:
        return QCCDDevice(
            name="ring", graph=graph, dac_count=CYCLONE_DAC_COUNT,
            metadata={"num_traps": 1, "trap_capacity": trap_capacity,
                      "corner_junctions": 0},
        )
    num_corners = min(num_corner_junctions, num_traps)
    corner_positions = {
        (i * num_traps) // num_corners for i in range(num_corners)
    } if num_corners else set()
    for index in range(num_traps):
        nxt = (index + 1) % num_traps
        if num_traps == 2 and index == 1:
            break  # Avoid a duplicate edge on the two-trap cycle.
        if index in corner_positions:
            junction_id = f"JC{index}"
            angle = 2 * math.pi * (index + 0.5) / num_traps
            graph.add_node(
                junction_id,
                element=Junction(
                    junction_id,
                    (radius * math.cos(angle), radius * math.sin(angle)),
                    l_shaped=True,
                ),
            )
            graph.add_edge(f"T{index}", junction_id)
            graph.add_edge(junction_id, f"T{nxt}")
        else:
            graph.add_edge(f"T{index}", f"T{nxt}")
    return QCCDDevice(
        name="ring",
        graph=graph,
        dac_count=CYCLONE_DAC_COUNT,
        metadata={
            "num_traps": num_traps,
            "trap_capacity": trap_capacity,
            "corner_junctions": len(corner_positions),
        },
    )


def mesh_junction_device(num_data_qubits: int, trap_capacity: int = 5) -> QCCDDevice:
    """The dense mesh junction network of Section III-C.

    A (n/4) x (n/4) grid of degree-4 junctions forms the routing fabric;
    one trap per data qubit hangs off the perimeter of the mesh.  The
    junction count therefore scales as (n/4)^2 — the spatial cost the
    paper criticises.
    """
    mesh_side = max(int(math.ceil(num_data_qubits / 4)), 2)
    graph = nx.Graph()
    for row in range(mesh_side):
        for col in range(mesh_side):
            _add_junction(graph, f"J{row},{col}", (float(row), float(col)))
    for row in range(mesh_side):
        for col in range(mesh_side):
            if col + 1 < mesh_side:
                graph.add_edge(f"J{row},{col}", f"J{row},{col + 1}")
            if row + 1 < mesh_side:
                graph.add_edge(f"J{row},{col}", f"J{row + 1},{col}")
    # Perimeter junction ids in clockwise order.
    perimeter: list[str] = []
    perimeter += [f"J0,{col}" for col in range(mesh_side)]
    perimeter += [f"J{row},{mesh_side - 1}" for row in range(1, mesh_side)]
    perimeter += [f"J{mesh_side - 1},{col}" for col in range(mesh_side - 2, -1, -1)]
    perimeter += [f"J{row},0" for row in range(mesh_side - 2, 0, -1)]
    for index in range(num_data_qubits):
        anchor = perimeter[index % len(perimeter)]
        trap_id = f"T{index}"
        anchor_pos = graph.nodes[anchor]["element"].position
        _add_trap(graph, trap_id, trap_capacity,
                  (anchor_pos[0] - 1.0, anchor_pos[1] - 1.0))
        graph.add_edge(trap_id, anchor)
    return QCCDDevice(
        name="mesh_junction",
        graph=graph,
        dac_count=num_data_qubits,
        metadata={"mesh_side": mesh_side, "trap_capacity": trap_capacity},
    )


def opt_device(code: CSSCode, trap_capacity: int = 4) -> QCCDDevice:
    """OPT: one trap per data qubit, fully connected by shuttling paths.

    Non-planar and not realizable; used to compute the ideal execution
    time bound of Section III-B.
    """
    graph = nx.Graph()
    n = code.num_qubits
    for index in range(n):
        _add_trap(graph, f"T{index}", trap_capacity, (float(index), 0.0))
    for a in range(n):
        for b in range(a + 1, n):
            graph.add_edge(f"T{a}", f"T{b}")
    return QCCDDevice(
        name="opt", graph=graph, dac_count=n,
        metadata={"realizable": False},
    )


def pseudo_opt_device(code: CSSCode, trap_capacity: int = 4) -> QCCDDevice:
    """Pseudo-OPT: OPT with every shuttling path unused by the code pruned.

    Keeps only edges between data qubits that co-occur in some
    stabilizer (the paths a maximally parallel schedule would actually
    use).  Still generally non-planar.
    """
    graph = nx.Graph()
    n = code.num_qubits
    for index in range(n):
        _add_trap(graph, f"T{index}", trap_capacity, (float(index), 0.0))
    for _, support in code.stabilizer_supports():
        for position, a in enumerate(support):
            for b in support[position + 1:]:
                graph.add_edge(f"T{a}", f"T{b}")
    return QCCDDevice(
        name="pseudo_opt", graph=graph, dac_count=n,
        metadata={"realizable": False},
    )
