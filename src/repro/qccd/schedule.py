"""Compiled schedules: the output of every QCCD compiler.

A compiled schedule is a list of timed operations (gates, splits, moves,
junction crossings, merges, swaps, rebalances, measurements) from which
the execution latency (makespan), the serialized "unrolled" component
times, and the achieved parallelization fraction are derived — the
quantities plotted in Figures 19 and 20 and fed into the hardware-aware
noise model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["OpKind", "ScheduleOp", "CompiledSchedule"]


class OpKind(enum.Enum):
    """Atomic operation categories tracked by the schedule."""

    GATE = "gate"
    ONE_QUBIT_GATE = "one_qubit_gate"
    SWAP = "swap"
    SPLIT = "split"
    MOVE = "move"
    JUNCTION_CROSS = "junction_cross"
    MERGE = "merge"
    REBALANCE = "rebalance"
    MEASUREMENT = "measurement"
    STALL = "stall"


#: Kinds that correspond to shuttling (movement) work.
SHUTTLE_KINDS = {
    OpKind.SPLIT,
    OpKind.MOVE,
    OpKind.JUNCTION_CROSS,
    OpKind.MERGE,
    OpKind.REBALANCE,
}


@dataclass(frozen=True)
class ScheduleOp:
    """One timed operation in a compiled schedule.

    ``multiplicity`` records how many identical physical operations the
    entry stands for (Cyclone's lockstep stages are emitted once but
    happen simultaneously in every trap); it weights the serialized
    "unrolled" metrics without affecting the makespan.
    """

    kind: OpKind
    start_us: float
    duration_us: float
    qubits: tuple[int, ...] = ()
    location: str = ""
    note: str = ""
    multiplicity: int = 1

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us

    @property
    def unrolled_duration_us(self) -> float:
        return self.duration_us * self.multiplicity


@dataclass
class CompiledSchedule:
    """The timed operation list produced by a compiler, plus metadata."""

    architecture: str
    code_name: str
    operations: list[ScheduleOp] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, kind: OpKind, start_us: float, duration_us: float,
            qubits: tuple[int, ...] = (), location: str = "",
            note: str = "", multiplicity: int = 1) -> ScheduleOp:
        op = ScheduleOp(kind, start_us, duration_us, qubits, location, note,
                        multiplicity)
        self.operations.append(op)
        return op

    # ------------------------------------------------------------------
    # Aggregate metrics
    # ------------------------------------------------------------------
    @property
    def execution_time_us(self) -> float:
        """Makespan: completion time of the last operation."""
        if "execution_time_us" in self.metadata:
            return float(self.metadata["execution_time_us"])
        if not self.operations:
            return 0.0
        return max(op.end_us for op in self.operations)

    @property
    def num_operations(self) -> int:
        return len(self.operations)

    def count(self, kind: OpKind) -> int:
        """Number of physical operations of a kind (multiplicity-weighted)."""
        return sum(op.multiplicity for op in self.operations if op.kind is kind)

    def total_duration(self, kind: OpKind | None = None) -> float:
        """Sum of operation durations (the fully serialized 'unrolled' time)."""
        if kind is None:
            return sum(op.unrolled_duration_us for op in self.operations)
        return sum(
            op.unrolled_duration_us for op in self.operations if op.kind is kind
        )

    def component_breakdown(self) -> dict[str, float]:
        """Unrolled (serialized) time per operation category.

        This is the component-wise breakdown plotted in Figure 20: the
        total time each category of operation would take if executed one
        after another with no parallelism.
        """
        breakdown: dict[str, float] = {}
        for op in self.operations:
            breakdown[op.kind.value] = (
                breakdown.get(op.kind.value, 0.0) + op.unrolled_duration_us
            )
        return breakdown

    @property
    def serialized_time_us(self) -> float:
        """Total unrolled time (sum of all operation durations)."""
        return self.total_duration()

    @property
    def parallelization_fraction(self) -> float:
        """Achieved parallelism: 1 - makespan / serialized time.

        0 means fully serial execution; values close to 1 mean most
        operations overlap (Figure 20's '% parallelization' uses the
        equivalent ratio of actual to serialized execution time).
        """
        serialized = self.serialized_time_us
        if serialized <= 0:
            return 0.0
        return max(0.0, 1.0 - self.execution_time_us / serialized)

    @property
    def shuttle_time_us(self) -> float:
        """Serialized time spent in shuttling operations."""
        return sum(
            op.unrolled_duration_us for op in self.operations
            if op.kind in SHUTTLE_KINDS
        )

    @property
    def gate_time_us(self) -> float:
        """Serialized time spent in two-qubit gates and swaps."""
        return self.total_duration(OpKind.GATE) + self.total_duration(OpKind.SWAP)

    def gate_count(self) -> int:
        return self.count(OpKind.GATE)

    def shuttle_count(self) -> int:
        return sum(
            op.multiplicity for op in self.operations
            if op.kind in SHUTTLE_KINDS
        )

    def max_concurrency(self) -> int:
        """Largest number of simultaneously active operations.

        An operation ending exactly when another starts is not counted
        as overlapping with it.
        """
        if not self.operations:
            return 0
        events: list[tuple[float, int]] = []
        for op in self.operations:
            events.append((op.start_us, 1))
            events.append((op.end_us, -1))
        # Sorting (time, delta) processes ends (-1) before starts (+1) at
        # identical timestamps.
        events.sort()
        active = 0
        best = 0
        for _, delta in events:
            active += delta
            best = max(best, active)
        return best

    def summary(self) -> dict[str, float]:
        """A compact dictionary of headline metrics."""
        return {
            "architecture": self.architecture,
            "code": self.code_name,
            "execution_time_us": self.execution_time_us,
            "serialized_time_us": self.serialized_time_us,
            "parallelization_fraction": self.parallelization_fraction,
            "num_operations": float(self.num_operations),
            "gate_count": float(self.gate_count()),
            "shuttle_count": float(self.shuttle_count()),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledSchedule({self.architecture}, {self.code_name}, "
            f"{self.num_operations} ops, "
            f"{self.execution_time_us:.1f} us)"
        )
