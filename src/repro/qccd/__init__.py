"""QCCD (Quantum Charge Coupled Device) hardware simulation.

This package is the reproduction's substitute for QCCDSim: a
discrete-event model of a modular trapped-ion machine — traps with
bounded ion capacity, junctions, shuttle segments, and the atomic
shuttling operations (split, move, junction crossing, merge, swap) with
the timing constants of Section II-B — together with the topology
builders and compilers evaluated in the paper:

* the baseline grid with a static earliest-job-first (EJF) schedule,
* the dynamic timeslice scheduler on a grid (roadblock-prone),
* the alternate grid with L-shaped junctions,
* the mesh junction network,
* and the Cyclone ring codesign.

Compilers consume a :class:`~repro.codes.css.CSSCode` plus a
:class:`~repro.codes.scheduling.StabilizerSchedule` and produce a
:class:`~repro.qccd.schedule.CompiledSchedule` whose makespan feeds the
hardware-aware noise model.
"""

from repro.qccd.timing import OperationTimes, SwapKind
from repro.qccd.hardware import Trap, Junction, QCCDDevice
from repro.qccd.topologies import (
    baseline_grid_device,
    alternate_grid_device,
    ring_device,
    mesh_junction_device,
    opt_device,
    pseudo_opt_device,
)
from repro.qccd.schedule import CompiledSchedule, ScheduleOp, OpKind
from repro.qccd.mapping import (
    QubitPlacement,
    greedy_cluster_mapping,
    round_robin_mapping,
)

__all__ = [
    "OperationTimes",
    "SwapKind",
    "Trap",
    "Junction",
    "QCCDDevice",
    "baseline_grid_device",
    "alternate_grid_device",
    "ring_device",
    "mesh_junction_device",
    "opt_device",
    "pseudo_opt_device",
    "CompiledSchedule",
    "ScheduleOp",
    "OpKind",
    "QubitPlacement",
    "greedy_cluster_mapping",
    "round_robin_mapping",
]
