"""Initial placement of data and ancilla qubits onto traps.

The baseline compiler of Murali et al. maps program qubits by greedily
clustering the interaction graph: qubits that interact often are packed
into the same trap (up to its capacity) so that as many gates as
possible run without shuttling.  The dynamic and Cyclone compilers use
simpler balanced placements because their schedules move ancillas
anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.codes.css import CSSCode
from repro.qccd.hardware import QCCDDevice

__all__ = [
    "QubitPlacement",
    "interaction_graph",
    "greedy_cluster_mapping",
    "round_robin_mapping",
    "balanced_data_partition",
]


@dataclass
class QubitPlacement:
    """Mapping between program qubits and traps.

    Program qubit indexing convention: data qubits are ``0..n-1`` and
    ancilla qubits ``n..n+m-1`` (ancilla ``n + s`` serves global
    stabilizer ``s``), matching the circuit builder.
    """

    qubit_to_trap: dict[int, str] = field(default_factory=dict)

    def trap_of(self, qubit: int) -> str:
        return self.qubit_to_trap[qubit]

    def qubits_in(self, trap_id: str) -> list[int]:
        return [q for q, t in self.qubit_to_trap.items() if t == trap_id]

    def occupancy(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for trap in self.qubit_to_trap.values():
            counts[trap] = counts.get(trap, 0) + 1
        return counts

    def apply_to_device(self, device: QCCDDevice,
                        enforce_capacity: bool = True) -> None:
        """Place every mapped ion into its trap on the device."""
        device.clear_ions()
        for qubit, trap in self.qubit_to_trap.items():
            device.place_ion(qubit, trap, enforce_capacity=enforce_capacity)

    def copy(self) -> "QubitPlacement":
        return QubitPlacement(dict(self.qubit_to_trap))


def interaction_graph(code: CSSCode) -> nx.Graph:
    """Weighted interaction graph over data + ancilla program qubits.

    Each stabilizer's ancilla interacts once with every data qubit in
    its support; data qubits sharing a stabilizer are linked with a
    smaller weight (they benefit from co-location but never interact
    directly).
    """
    graph = nx.Graph()
    n = code.num_qubits
    graph.add_nodes_from(range(n + code.num_stabilizers))
    for stabilizer, (_, support) in enumerate(code.stabilizer_supports()):
        ancilla = n + stabilizer
        for data in support:
            _bump_edge(graph, ancilla, data, 1.0)
        for position, a in enumerate(support):
            for b in support[position + 1:]:
                _bump_edge(graph, a, b, 0.25)
    return graph


def _bump_edge(graph: nx.Graph, a: int, b: int, weight: float) -> None:
    if graph.has_edge(a, b):
        graph[a][b]["weight"] += weight
    else:
        graph.add_edge(a, b, weight=weight)


def greedy_cluster_mapping(code: CSSCode, device: QCCDDevice) -> QubitPlacement:
    """Greedy cluster mapping (the baseline's placement policy).

    Repeatedly grows a cluster around the highest-degree unplaced qubit,
    preferring neighbours with the strongest interaction weight, until
    the current trap is full; traps are filled in device order.  Raises
    ``ValueError`` if the device lacks capacity for all qubits.
    """
    graph = interaction_graph(code)
    total_qubits = code.num_qubits + code.num_stabilizers
    traps = device.trap_ids()
    if device.total_capacity() < total_qubits:
        raise ValueError(
            f"device capacity {device.total_capacity()} cannot host "
            f"{total_qubits} qubits"
        )

    unplaced = set(range(total_qubits))
    placement: dict[int, str] = {}
    trap_iter = iter(traps)
    current_trap = next(trap_iter)
    current_free = device.trap_capacity(current_trap)

    def next_trap() -> tuple[str, int]:
        trap = next(trap_iter)
        return trap, device.trap_capacity(trap)

    while unplaced:
        # Seed: highest weighted degree among unplaced qubits.
        seed = max(
            unplaced,
            key=lambda q: sum(
                data["weight"] for _, _, data in graph.edges(q, data=True)
            ),
        )
        cluster = [seed]
        frontier = {seed}
        unplaced.discard(seed)
        while len(cluster) < current_free:
            candidates: dict[int, float] = {}
            for member in frontier:
                for neighbor in graph.neighbors(member):
                    if neighbor in unplaced:
                        candidates[neighbor] = candidates.get(neighbor, 0.0) + \
                            graph[member][neighbor]["weight"]
            if not candidates:
                break
            best = max(candidates, key=candidates.get)
            cluster.append(best)
            frontier.add(best)
            unplaced.discard(best)
        for qubit in cluster:
            placement[qubit] = current_trap
        current_free -= len(cluster)
        if current_free <= 0 and unplaced:
            current_trap, current_free = next_trap()

    return QubitPlacement(placement)


def round_robin_mapping(code: CSSCode, device: QCCDDevice,
                        include_ancilla: bool = True) -> QubitPlacement:
    """Simple balanced placement: qubits dealt round-robin across traps."""
    traps = device.trap_ids()
    total = code.num_qubits + (code.num_stabilizers if include_ancilla else 0)
    if device.total_capacity() < total:
        raise ValueError("device capacity too small for round robin mapping")
    placement: dict[int, str] = {}
    free = {trap: device.trap_capacity(trap) for trap in traps}
    trap_index = 0
    for qubit in range(total):
        placed = False
        for _ in range(len(traps)):
            trap = traps[trap_index % len(traps)]
            trap_index += 1
            if free[trap] > 0:
                placement[qubit] = trap
                free[trap] -= 1
                placed = True
                break
        if not placed:
            raise ValueError("ran out of trap capacity during mapping")
    return QubitPlacement(placement)


def balanced_data_partition(num_data_qubits: int,
                            num_traps: int) -> list[list[int]]:
    """Split data qubits into ``num_traps`` contiguous, balanced groups.

    Used by the Cyclone compiler: if ``num_traps`` divides the data
    count every trap holds the same number of data qubits; otherwise the
    first few traps hold one extra.
    """
    if num_traps < 1:
        raise ValueError("need at least one trap")
    base = num_data_qubits // num_traps
    remainder = num_data_qubits % num_traps
    partition: list[list[int]] = []
    cursor = 0
    for trap_index in range(num_traps):
        size = base + (1 if trap_index < remainder else 0)
        partition.append(list(range(cursor, cursor + size)))
        cursor += size
    return partition
