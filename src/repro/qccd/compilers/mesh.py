"""The mesh junction network compiler (Section III-C).

The mesh design removes *trap* roadblocks by routing every ancilla
through a dense (n/4) x (n/4) fabric of degree-4 junctions, converting
them into cheaper *junction* roadblocks.  Its costs are dominated by two
terms the paper calls out:

* temporally, every scheduled path crosses O(n/4) degree-4 junctions, so
  a batch of concurrent gates still pays ~(n/2 - 1) * jc of junction
  crossing time per timeslice unless junction crossings become much
  faster (Figure 9 sweeps exactly that), and
* spatially, the junction count scales as (n/4)^2.

The compiler follows the paper's own analytic cost model: gates of each
maximally parallel timeslice are dispatched in batches of at most n/4
concurrent paths; each batch pays split + per-junction crossing + moves
+ merge + the gate itself, with conservative (serial) batch scheduling
inside a timeslice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.codes.css import CSSCode
from repro.codes.scheduling import StabilizerSchedule, x_then_z_schedule
from repro.qccd.compilers.base import Compiler
from repro.qccd.schedule import CompiledSchedule, OpKind
from repro.qccd.topologies import mesh_junction_device

__all__ = ["MeshJunctionCompiler"]


@dataclass
class MeshJunctionCompiler(Compiler):
    """Semi-analytic compiler for the dense junction-mesh design."""

    trap_capacity: int = 5
    #: Junctions crossed per scheduled batch of concurrent paths.  ``None``
    #: uses the paper's own estimate of n/2 - 1 high-degree junctions hit
    #: per time slice (Section III-C).
    path_junctions: int | None = None
    include_measurement: bool = True
    label: str = "mesh_junction"

    def compile(self, code: CSSCode,
                schedule: StabilizerSchedule | None = None) -> CompiledSchedule:
        if schedule is None:
            schedule = x_then_z_schedule(code)
        times = self.times
        n = code.num_qubits
        device = mesh_junction_device(n, self.trap_capacity)
        mesh_side = device.metadata["mesh_side"]
        path_junctions = self.path_junctions
        if path_junctions is None:
            path_junctions = max(n // 2 - 1, 1)
        batch_size = max(n // 4, 1)

        compiled = CompiledSchedule(
            architecture=f"{self.label}:mesh", code_name=code.name,
            metadata={
                "topology": "mesh_junction",
                "num_traps": device.num_traps,
                "num_junctions": device.num_junctions,
                "trap_capacity": self.trap_capacity,
                "dac_count": device.dac_count,
                "num_ancilla": code.num_stabilizers,
                "mesh_side": mesh_side,
                "path_junctions": path_junctions,
                "batch_size": batch_size,
            },
        )

        junction_cross = times.junction_crossing(4)
        gate_time = times.two_qubit_gate(max(self.trap_capacity, 2))
        clock = 0.0
        for slice_index, timeslice in enumerate(schedule.timeslices):
            gates = list(timeslice)
            num_batches = int(math.ceil(len(gates) / batch_size)) if gates else 0
            for batch_index in range(num_batches):
                batch = gates[batch_index * batch_size:(batch_index + 1) * batch_size]
                batch_qubits = tuple(g.data for g in batch)
                start = clock
                compiled.add(OpKind.SPLIT, start, times.split, batch_qubits,
                             "mesh", note=f"slice {slice_index}",
                             multiplicity=len(batch))
                cursor = start + times.split
                for _ in range(path_junctions):
                    compiled.add(OpKind.MOVE, cursor, times.move, batch_qubits,
                                 "mesh", multiplicity=len(batch))
                    cursor += times.move
                    compiled.add(OpKind.JUNCTION_CROSS, cursor, junction_cross,
                                 batch_qubits, "mesh", multiplicity=len(batch))
                    cursor += junction_cross
                compiled.add(OpKind.MERGE, cursor, times.merge, batch_qubits,
                             "mesh", multiplicity=len(batch))
                cursor += times.merge
                compiled.add(OpKind.GATE, cursor, gate_time, batch_qubits,
                             "mesh", note=f"{len(batch)} concurrent gates",
                             multiplicity=len(batch))
                cursor += gate_time
                clock = cursor

        if self.include_measurement:
            duration = times.measurement()
            compiled.add(OpKind.MEASUREMENT, clock, duration, (), "mesh",
                         note="ancilla readout")
            clock += duration

        compiled.metadata["execution_time_us"] = clock
        compiled.metadata["roadblock_wait_us"] = 0.0
        compiled.metadata["roadblock_events"] = 0
        return compiled
