"""The Cyclone compiler: lockstep rotation of ancillas around a ring.

Cyclone (Section IV) is a software-hardware codesign:

* **Hardware** — a ring of ``x`` traps (base form: ``x = m/2`` where
  ``m`` is the total number of stabilizers) with L-shaped corner
  junctions; data qubits are distributed across the traps in balanced
  partitions and ``m/2`` ancilla ions sit one (or
  ``ceil((m/2)/x)``) per trap.
* **Software** — a symmetric, roadblock-free schedule: in every step
  each trap executes the gates between its resident ancillas and the
  resident data qubits that belong to the ancillas' assigned stabilizers
  (serially within the trap, in parallel across traps), then *all*
  ancillas gate-swap to the trap edge, split, move one position around
  the ring (crossing a corner junction where present) and merge, in
  lockstep.  After one full rotation every X stabilizer has met every
  data qubit; the second rotation measures the Z stabilizers with the
  same (reused) ancillas.

Because every ancilla moves in the same direction at the same moment
there are no roadblocks, total movement is bounded (two rotations), the
per-step cost is uniform across the machine, and a single broadcast
control signal suffices (constant DAC count).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.codes.css import CSSCode
from repro.codes.scheduling import StabilizerSchedule
from repro.qccd.compilers.base import Compiler
from repro.qccd.mapping import balanced_data_partition
from repro.qccd.schedule import CompiledSchedule, OpKind
from repro.qccd.timing import OperationTimes
from repro.qccd.topologies import ring_device

__all__ = ["CycloneCompiler", "cyclone_worst_case_bound_us"]


def cyclone_worst_case_bound_us(code: CSSCode, num_traps: int,
                                times: OperationTimes,
                                chain_length: int | None = None) -> float:
    """The closed-form worst-case execution bound of Section IV-A.

    ``2x * (s + ceil(m_basis / x) * (t + g * ceil(n / x)))`` where ``x``
    is the trap count, ``m_basis = max(|X|, |Z|)`` the per-basis
    stabilizer count (ancillas are reused between the X and Z
    rotations), ``s`` the combined split/move/junction-cross/merge cost,
    ``t`` the swap cost and ``g`` the two-qubit gate time at the trap's
    chain length.
    """
    x = max(int(num_traps), 1)
    m_basis = max(code.num_x_stabilizers, code.num_z_stabilizers)
    ancilla_per_trap = math.ceil(m_basis / x) if m_basis else 0
    data_per_trap = math.ceil(code.num_qubits / x)
    if chain_length is None:
        chain_length = data_per_trap + ancilla_per_trap
    gate = times.two_qubit_gate(chain_length)
    swap = times.swap(chain_length=chain_length)
    shuttle = times.combined_shuttle if x > 1 else 0.0
    return 2 * x * (shuttle + ancilla_per_trap * (swap + gate * data_per_trap))


@dataclass
class CycloneCompiler(Compiler):
    """Compile a code onto the Cyclone ring codesign.

    Parameters
    ----------
    num_traps:
        Number of traps ``x`` on the ring.  ``None`` selects the base
        form ``x = max(|X|, |Z|)`` (one ancilla per trap).
    trap_capacity:
        Ion capacity per trap.  ``None`` selects the "tight" capacity:
        exactly the resident data + ancilla count.
    include_measurement:
        Append the ancilla measurement at the end of each rotation.
    """

    num_traps: int | None = None
    trap_capacity: int | None = None
    include_measurement: bool = True
    label: str = "cyclone"

    # ------------------------------------------------------------------
    def compile(self, code: CSSCode,
                schedule: StabilizerSchedule | None = None) -> CompiledSchedule:
        del schedule  # Cyclone derives its own symmetric schedule.
        m_basis = max(code.num_x_stabilizers, code.num_z_stabilizers)
        x = self.num_traps if self.num_traps is not None else max(m_basis, 1)
        x = max(int(x), 1)

        data_partition = balanced_data_partition(code.num_qubits, x)
        ancilla_partition = balanced_data_partition(m_basis, x)
        data_per_trap = max(len(part) for part in data_partition)
        ancilla_per_trap = max((len(part) for part in ancilla_partition),
                               default=0)
        tight_capacity = data_per_trap + ancilla_per_trap
        capacity = self.trap_capacity or tight_capacity
        capacity = max(capacity, tight_capacity)

        device = ring_device(x, capacity)
        chain_length = data_per_trap + ancilla_per_trap

        compiled = CompiledSchedule(
            architecture=f"{self.label}:ring", code_name=code.name,
            metadata={
                "topology": "ring",
                "num_traps": x,
                "num_junctions": device.num_junctions,
                "trap_capacity": capacity,
                "dac_count": device.dac_count,
                "num_ancilla": m_basis,
                "data_per_trap": data_per_trap,
                "ancilla_per_trap": ancilla_per_trap,
                "chain_length": chain_length,
                "worst_case_bound_us": cyclone_worst_case_bound_us(
                    code, x, self.times, chain_length
                ),
            },
        )

        clock = 0.0
        rotations = []
        x_supports = [set(code.x_stabilizer_support(i))
                      for i in range(code.num_x_stabilizers)]
        z_supports = [set(code.z_stabilizer_support(j))
                      for j in range(code.num_z_stabilizers)]
        rotations.append(("X", x_supports, 0))
        rotations.append(("Z", z_supports, code.num_x_stabilizers))

        corner_count = device.metadata.get("corner_junctions", 0)
        for basis, supports, stabilizer_offset in rotations:
            clock = self._rotation(
                compiled, code, basis, supports, stabilizer_offset,
                data_partition, ancilla_partition, x, chain_length, clock,
                corner_count,
            )
            if self.include_measurement:
                duration = self.times.measurement()
                compiled.add(
                    OpKind.MEASUREMENT, clock, duration,
                    tuple(code.num_qubits + stabilizer_offset + a
                          for a in range(len(supports))),
                    location="ring", note=f"{basis} ancilla readout",
                    multiplicity=max(len(supports), 1),
                )
                clock += duration

        compiled.metadata["execution_time_us"] = clock
        compiled.metadata["roadblock_wait_us"] = 0.0
        compiled.metadata["roadblock_events"] = 0
        return compiled

    # ------------------------------------------------------------------
    def _rotation(self, compiled: CompiledSchedule, code: CSSCode, basis: str,
                  supports: list[set[int]], stabilizer_offset: int,
                  data_partition: list[list[int]],
                  ancilla_partition: list[list[int]], x: int,
                  chain_length: int, clock: float,
                  corner_count: int) -> float:
        """One full rotation measuring all stabilizers of one basis."""
        times = self.times
        gate_time = times.two_qubit_gate(chain_length)
        swap_time = times.swap(chain_length=chain_length)
        num_data = code.num_qubits

        for step in range(x):
            # --- Stage 1: gates in every trap, in parallel across traps.
            step_gate_time = 0.0
            for trap_index in range(x):
                trap_gate_time = 0.0
                # Ancilla group currently resident in this trap.
                source_group = (trap_index - step) % x
                for local_index, ancilla in enumerate(
                        ancilla_partition[source_group]):
                    if ancilla >= len(supports):
                        continue
                    overlap = supports[ancilla].intersection(
                        data_partition[trap_index]
                    )
                    for data_qubit in sorted(overlap):
                        compiled.add(
                            OpKind.GATE, clock + trap_gate_time, gate_time,
                            (num_data + stabilizer_offset + ancilla, data_qubit),
                            location=f"T{trap_index}",
                            note=f"{basis} step {step}",
                        )
                        trap_gate_time += gate_time
                    del local_index
                step_gate_time = max(step_gate_time, trap_gate_time)
            clock += step_gate_time

            # --- Stage 2: lockstep rotation of every ancilla.  One entry
            # per stage is emitted with multiplicity x: every trap performs
            # the identical operation simultaneously under the broadcast
            # control signal.
            if x > 1:
                rotate_time = (
                    swap_time + times.split + times.move + times.merge
                )
                if corner_count:
                    rotate_time += times.junction_crossing(2)
                compiled.add(
                    OpKind.SWAP, clock, swap_time, (), "ring",
                    note="lockstep swap to trap edge", multiplicity=x,
                )
                compiled.add(
                    OpKind.SPLIT, clock + swap_time, times.split, (), "ring",
                    note="lockstep split", multiplicity=x,
                )
                compiled.add(
                    OpKind.MOVE, clock + swap_time + times.split, times.move,
                    (), "ring", note="lockstep move", multiplicity=x,
                )
                if corner_count:
                    compiled.add(
                        OpKind.JUNCTION_CROSS,
                        clock + swap_time + times.split + times.move,
                        times.junction_crossing(2), (), "ring corners",
                        note="corner crossing", multiplicity=corner_count,
                    )
                compiled.add(
                    OpKind.MERGE, clock + rotate_time - times.merge,
                    times.merge, (), "ring", note="lockstep merge",
                    multiplicity=x,
                )
                clock += rotate_time
        return clock
