"""Alternative baseline compilers used in the Figure 20 sensitivity study.

The paper compares its baseline against two further published compilers
run on the same architecture: "Baseline 2" (Saki et al., *Muzzle the
Shuttle*) which minimises shuttling through mapping and move-direction
choices, and "Baseline 3" (Khan et al., *MoveLess*) which batches a
shuttled ion's pending work to avoid excess movement.  We reproduce
their distinguishing heuristics on top of the shared EJF machinery:

* :class:`ShuttleMinimizingCompiler` — prefers already co-located gates
  and moves whichever ion (ancilla or data) has the shorter path.
* :class:`MoveBatchingCompiler` — when an ancilla arrives at a trap, it
  immediately executes every remaining gate it has with data in that
  trap before anything else is dispatched for it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import networkx as nx

from repro.codes.css import CSSCode
from repro.codes.scheduling import StabilizerSchedule, x_then_z_schedule
from repro.qccd.compilers.base import ResourceTracker
from repro.qccd.compilers.ejf import EJFGridCompiler
from repro.qccd.hardware import QCCDDevice
from repro.qccd.mapping import QubitPlacement, greedy_cluster_mapping
from repro.qccd.schedule import CompiledSchedule

__all__ = ["ShuttleMinimizingCompiler", "MoveBatchingCompiler"]


@dataclass
class ShuttleMinimizingCompiler(EJFGridCompiler):
    """Baseline-2: co-location-first dispatch and cheapest-direction moves."""

    label: str = "baseline2_shuttle_min"

    def _execute_gate(self, compiled: CompiledSchedule, device: QCCDDevice,
                      tracker: ResourceTracker, placement: QubitPlacement,
                      ancilla_qubit: int, data_qubit: int,
                      ready_time: float) -> float:
        ancilla_trap = placement.trap_of(ancilla_qubit)
        data_trap = placement.trap_of(data_qubit)
        clock = ready_time
        if ancilla_trap != data_trap:
            # Move whichever ion has the shorter path (and, on ties, the
            # one whose destination trap has free space).
            to_data = len(device.shortest_path(ancilla_trap, data_trap))
            to_ancilla = len(device.shortest_path(data_trap, ancilla_trap))
            move_data = to_ancilla < to_data or (
                to_ancilla == to_data
                and device.free_space(ancilla_trap) > device.free_space(data_trap)
            )
            if move_data:
                clock = self.shuttle_ion(
                    compiled, device, tracker, data_qubit, data_trap,
                    ancilla_trap, clock, placement,
                )
                gate_trap = ancilla_trap
            else:
                clock = self.shuttle_ion(
                    compiled, device, tracker, ancilla_qubit, ancilla_trap,
                    data_trap, clock, placement,
                )
                gate_trap = data_trap
        else:
            gate_trap = data_trap
        return self.gate_on_trap(
            compiled, device, tracker, gate_trap,
            (ancilla_qubit, data_qubit), clock,
        )

    def _schedule_gates(self, code, schedule, device, placement):
        # Re-order the flattened gate list so that gates whose qubits are
        # already co-located come first within each timeslice (the
        # shuttle-muzzling dispatch preference), then defer to EJF.
        reordered_slices = []
        for timeslice in schedule.timeslices:
            co_located = []
            needs_shuttle = []
            for gate in timeslice:
                ancilla_trap = placement.trap_of(code.num_qubits + gate.stabilizer)
                if placement.trap_of(gate.data) == ancilla_trap:
                    co_located.append(gate)
                else:
                    needs_shuttle.append(gate)
            reordered_slices.append(co_located + needs_shuttle)
        reordered = StabilizerSchedule(
            code=schedule.code, timeslices=reordered_slices,
            policy=schedule.policy + "+colocated_first",
            metadata=dict(schedule.metadata),
        )
        return super()._schedule_gates(code, reordered, device, placement)


@dataclass
class MoveBatchingCompiler(EJFGridCompiler):
    """Baseline-3: batch all of an ancilla's work at each trap it visits."""

    label: str = "baseline3_move_batching"

    def compile(self, code: CSSCode,
                schedule: StabilizerSchedule | None = None) -> CompiledSchedule:
        if schedule is None:
            schedule = x_then_z_schedule(code)
        device = self._build_device(code)
        placement = greedy_cluster_mapping(code, device)
        placement.apply_to_device(device)
        return self._schedule_batched(code, device, placement)

    def _build_device(self, code: CSSCode) -> QCCDDevice:
        from repro.qccd.compilers.ejf import build_device_for

        return build_device_for(code, self.topology, self.trap_capacity,
                                self.side_length, self.num_traps)

    def _schedule_batched(self, code: CSSCode, device: QCCDDevice,
                          placement: QubitPlacement) -> CompiledSchedule:
        compiled = CompiledSchedule(
            architecture=f"{self.label}:{device.name}", code_name=code.name,
            metadata={
                "topology": device.name,
                "num_traps": device.num_traps,
                "num_junctions": device.num_junctions,
                "trap_capacity": self.trap_capacity,
                "dac_count": device.dac_count,
                "num_ancilla": code.num_stabilizers,
            },
        )
        tracker = ResourceTracker()
        num_data = code.num_qubits

        # Pending work: per stabilizer, data qubits grouped by current trap.
        ancilla_available: dict[int, float] = {}
        qubit_available: dict[int, float] = {}
        heap: list[tuple[float, int]] = []
        pending: dict[int, list[int]] = {}
        for stabilizer, (_, support) in enumerate(code.stabilizer_supports()):
            pending[stabilizer] = list(support)
            heapq.heappush(heap, (0.0, stabilizer))

        makespan = 0.0
        while heap:
            ready_time, stabilizer = heapq.heappop(heap)
            remaining = pending[stabilizer]
            if not remaining:
                continue
            ancilla_qubit = num_data + stabilizer
            ancilla_trap = placement.trap_of(ancilla_qubit)
            ready_time = max(ready_time, ancilla_available.get(ancilla_qubit, 0.0))

            # Visit the nearest trap holding pending data for this ancilla.
            lengths = nx.single_source_shortest_path_length(
                device.graph, ancilla_trap
            )
            # Tie-break equidistant traps by name: iterating the raw set
            # would make the schedule depend on the interpreter's hash
            # seed (set order of strings varies across processes).
            target_trap = min(
                {placement.trap_of(q) for q in remaining},
                key=lambda trap: (lengths.get(trap, float("inf")), trap),
            )
            clock = ready_time
            if target_trap != ancilla_trap:
                clock = self.shuttle_ion(
                    compiled, device, tracker, ancilla_qubit, ancilla_trap,
                    target_trap, clock, placement,
                )
            # Execute every pending gate whose data sits in this trap.
            here = [q for q in remaining if placement.trap_of(q) == target_trap]
            for data_qubit in here:
                start = max(clock, qubit_available.get(data_qubit, 0.0))
                clock = self.gate_on_trap(
                    compiled, device, tracker, target_trap,
                    (ancilla_qubit, data_qubit), start,
                )
                qubit_available[data_qubit] = clock
                remaining.remove(data_qubit)
            ancilla_available[ancilla_qubit] = clock
            makespan = max(makespan, clock)
            if remaining:
                heapq.heappush(heap, (clock, stabilizer))

        if self.include_measurement:
            ancillas = [num_data + s for s in range(code.num_stabilizers)]
            makespan = self.measure_ancillas(
                compiled, device, tracker, ancillas, placement, makespan
            )
        compiled.metadata["execution_time_us"] = makespan
        compiled.metadata["roadblock_wait_us"] = tracker.total_wait_us
        compiled.metadata["roadblock_events"] = tracker.wait_events
        return compiled
