"""QCCD compilers: mapping, routing and scheduling policies.

Every compiler consumes a CSS code (plus a stabilizer schedule where
relevant) and produces a :class:`~repro.qccd.schedule.CompiledSchedule`
for one round of syndrome extraction.  The compilers correspond to the
codesigns evaluated in the paper:

* :class:`~repro.qccd.compilers.ejf.EJFGridCompiler` — the baseline:
  greedy cluster mapping + static earliest-job-first scheduling of the
  gate DAG (Murali et al.), runnable on any topology.
* :class:`~repro.qccd.compilers.dynamic.DynamicTimesliceCompiler` — the
  "dynamic software" policy: schedules whole timeslices of the
  maximally parallel schedule at once; on a grid this roadblocks badly.
* :class:`~repro.qccd.compilers.variants.ShuttleMinimizingCompiler` and
  :class:`~repro.qccd.compilers.variants.MoveBatchingCompiler` — the
  Baseline-2 / Baseline-3 comparison compilers of Figure 20.
* :class:`~repro.qccd.compilers.cyclone.CycloneCompiler` — the paper's
  contribution: lockstep ring rotation, roadblock free.
* :class:`~repro.qccd.compilers.mesh.MeshJunctionCompiler` — the dense
  junction-network design of Section III-C.
"""

from repro.qccd.compilers.base import Compiler, ResourceTracker
from repro.qccd.compilers.ejf import EJFGridCompiler
from repro.qccd.compilers.dynamic import DynamicTimesliceCompiler
from repro.qccd.compilers.cyclone import CycloneCompiler, cyclone_worst_case_bound_us
from repro.qccd.compilers.mesh import MeshJunctionCompiler
from repro.qccd.compilers.variants import (
    ShuttleMinimizingCompiler,
    MoveBatchingCompiler,
)

__all__ = [
    "Compiler",
    "ResourceTracker",
    "EJFGridCompiler",
    "DynamicTimesliceCompiler",
    "CycloneCompiler",
    "cyclone_worst_case_bound_us",
    "MeshJunctionCompiler",
    "ShuttleMinimizingCompiler",
    "MoveBatchingCompiler",
]
