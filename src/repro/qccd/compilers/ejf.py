"""The baseline compiler: greedy cluster mapping + static EJF scheduling.

This reproduces the software policy of the paper's baseline (Murali et
al.'s QCCDSim policy): the syndrome-extraction circuit is treated as a
gate DAG (successive gates on the same qubit are ordered), and gates are
dispatched earliest-job-first.  Whenever the two qubits of a CNOT sit in
different traps the ancilla ion is shuttled to the data ion's trap,
reserving every trap, junction and segment along the way — which is
where grid roadblocks serialize the nominally parallel circuit.

The compiler is topology-agnostic: hand it a baseline grid, the
alternate grid, or a ring device (the paper's Figure 6 "static EJF on a
circle" configuration) and it will schedule on whatever connectivity it
finds.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.codes.css import CSSCode
from repro.codes.scheduling import ScheduledGate, StabilizerSchedule, x_then_z_schedule
from repro.qccd.compilers.base import Compiler, ResourceTracker
from repro.qccd.hardware import QCCDDevice
from repro.qccd.mapping import QubitPlacement, greedy_cluster_mapping
from repro.qccd.schedule import CompiledSchedule
from repro.qccd.topologies import (
    alternate_grid_device,
    baseline_grid_device,
    ring_device,
)

__all__ = ["EJFGridCompiler", "build_device_for"]


def build_device_for(code: CSSCode, topology: str, trap_capacity: int,
                     side_length: int | None = None,
                     num_traps: int | None = None) -> QCCDDevice:
    """Build a device of the requested topology sized for ``code``.

    The grid baselines use an l x l layout with l = ceil(sqrt(n)) as in
    Section V-A; the ring sizes itself to hold all data and ancilla
    qubits at the given capacity unless ``num_traps`` is forced.
    """
    total_qubits = code.num_qubits + code.num_stabilizers
    if topology in ("baseline_grid", "grid"):
        device = baseline_grid_device(code.num_qubits, trap_capacity,
                                      side_length=side_length)
    elif topology == "alternate_grid":
        device = alternate_grid_device(code.num_qubits, trap_capacity,
                                       side_length=side_length)
    elif topology in ("ring", "circle"):
        traps = num_traps or max(
            int(math.ceil(total_qubits / trap_capacity)), 2
        )
        device = ring_device(traps, trap_capacity)
    else:
        raise ValueError(f"unknown topology {topology!r}")
    if device.total_capacity() < total_qubits:
        raise ValueError(
            f"{topology} with capacity {trap_capacity} cannot hold "
            f"{total_qubits} qubits"
        )
    return device


@dataclass
class EJFGridCompiler(Compiler):
    """Baseline-1: static earliest-job-first scheduling of the gate DAG."""

    topology: str = "baseline_grid"
    trap_capacity: int = 5
    side_length: int | None = None
    num_traps: int | None = None
    include_measurement: bool = True
    #: Name recorded in the compiled schedule.
    label: str = field(default="baseline_ejf")

    # ------------------------------------------------------------------
    def compile(self, code: CSSCode,
                schedule: StabilizerSchedule | None = None) -> CompiledSchedule:
        if schedule is None:
            schedule = x_then_z_schedule(code)
        device = build_device_for(code, self.topology, self.trap_capacity,
                                  self.side_length, self.num_traps)
        placement = greedy_cluster_mapping(code, device)
        placement.apply_to_device(device)
        return self._schedule_gates(code, schedule, device, placement)

    # ------------------------------------------------------------------
    def _gate_list(self, code: CSSCode,
                   schedule: StabilizerSchedule) -> list[ScheduledGate]:
        return [gate for timeslice in schedule.timeslices for gate in timeslice]

    def _schedule_gates(self, code: CSSCode, schedule: StabilizerSchedule,
                        device: QCCDDevice,
                        placement: QubitPlacement) -> CompiledSchedule:
        compiled = CompiledSchedule(
            architecture=f"{self.label}:{device.name}", code_name=code.name,
            metadata={
                "topology": device.name,
                "num_traps": device.num_traps,
                "num_junctions": device.num_junctions,
                "trap_capacity": self.trap_capacity,
                "dac_count": device.dac_count,
                "num_ancilla": code.num_stabilizers,
            },
        )
        tracker = ResourceTracker()
        gates = self._gate_list(code, schedule)
        num_data = code.num_qubits

        # Build the per-qubit dependency chains (the gate DAG).
        predecessors: list[list[int]] = [[] for _ in gates]
        successors: list[list[int]] = [[] for _ in gates]
        last_gate_on_qubit: dict[int, int] = {}
        for index, gate in enumerate(gates):
            ancilla_qubit = num_data + gate.stabilizer
            for qubit in (ancilla_qubit, gate.data):
                if qubit in last_gate_on_qubit:
                    previous = last_gate_on_qubit[qubit]
                    predecessors[index].append(previous)
                    successors[previous].append(index)
                last_gate_on_qubit[qubit] = index

        unscheduled_preds = [len(p) for p in predecessors]
        finish_time = [0.0 for _ in gates]
        ready_heap: list[tuple[float, int]] = []
        for index, count in enumerate(unscheduled_preds):
            if count == 0:
                heapq.heappush(ready_heap, (0.0, index))

        qubit_available: dict[int, float] = {}
        scheduled = 0
        while ready_heap:
            ready_time, index = heapq.heappop(ready_heap)
            gate = gates[index]
            ancilla_qubit = num_data + gate.stabilizer
            ready_time = max(
                ready_time,
                qubit_available.get(ancilla_qubit, 0.0),
                qubit_available.get(gate.data, 0.0),
            )
            finish = self._execute_gate(
                compiled, device, tracker, placement, ancilla_qubit, gate.data,
                ready_time,
            )
            finish_time[index] = finish
            qubit_available[ancilla_qubit] = finish
            qubit_available[gate.data] = finish
            scheduled += 1
            for successor in successors[index]:
                unscheduled_preds[successor] -= 1
                if unscheduled_preds[successor] == 0:
                    earliest = max(
                        finish_time[p] for p in predecessors[successor]
                    )
                    heapq.heappush(ready_heap, (earliest, successor))

        if scheduled != len(gates):  # pragma: no cover - sanity guard
            raise RuntimeError("EJF scheduling left gates unscheduled")

        makespan = max(finish_time) if finish_time else 0.0
        if self.include_measurement:
            ancillas = [num_data + s for s in range(code.num_stabilizers)]
            makespan = self.measure_ancillas(
                compiled, device, tracker, ancillas, placement, makespan
            )
        compiled.metadata["execution_time_us"] = makespan
        compiled.metadata["roadblock_wait_us"] = tracker.total_wait_us
        compiled.metadata["roadblock_events"] = tracker.wait_events
        return compiled

    # ------------------------------------------------------------------
    def _execute_gate(self, compiled: CompiledSchedule, device: QCCDDevice,
                      tracker: ResourceTracker, placement: QubitPlacement,
                      ancilla_qubit: int, data_qubit: int,
                      ready_time: float) -> float:
        ancilla_trap = placement.trap_of(ancilla_qubit)
        data_trap = placement.trap_of(data_qubit)
        clock = ready_time
        if ancilla_trap != data_trap:
            clock = self.shuttle_ion(
                compiled, device, tracker, ancilla_qubit, ancilla_trap,
                data_trap, clock, placement,
            )
        return self.gate_on_trap(
            compiled, device, tracker, data_trap,
            (ancilla_qubit, data_qubit), clock,
        )
