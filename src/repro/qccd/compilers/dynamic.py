"""The "dynamic software" policy: schedule whole timeslices at once.

Section III-A's maximally parallel schedules are sequences of
timeslices; the dynamic policy dispatches *every* gate of a timeslice
concurrently and only moves to the next timeslice when all of them (and
their shuttles) have completed.  On a roadblock-free topology this
realises the ideal parallelism; on a grid the concurrent shuttles
contend for traps and junctions, and the paper finds it performs even
worse than the greedy static baseline (Figure 4a / Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes.css import CSSCode
from repro.codes.scheduling import StabilizerSchedule, x_then_z_schedule
from repro.qccd.compilers.base import Compiler, ResourceTracker
from repro.qccd.compilers.ejf import build_device_for
from repro.qccd.mapping import greedy_cluster_mapping, round_robin_mapping
from repro.qccd.schedule import CompiledSchedule

__all__ = ["DynamicTimesliceCompiler"]


@dataclass
class DynamicTimesliceCompiler(Compiler):
    """Dynamic timeslice dispatch on an arbitrary topology."""

    topology: str = "baseline_grid"
    trap_capacity: int = 5
    side_length: int | None = None
    num_traps: int | None = None
    include_measurement: bool = True
    #: Use the balanced round-robin placement instead of greedy clusters.
    #: The paper's dynamic policy assigns stabilizers to ancillas on the
    #: fly rather than exploiting a locality-aware cluster mapping, which
    #: is part of why it roadblocks so badly on a grid (Figure 4a).
    balanced_placement: bool = True
    label: str = "dynamic_timeslice"

    def compile(self, code: CSSCode,
                schedule: StabilizerSchedule | None = None) -> CompiledSchedule:
        if schedule is None:
            schedule = x_then_z_schedule(code)
        device = build_device_for(code, self.topology, self.trap_capacity,
                                  self.side_length, self.num_traps)
        if self.balanced_placement:
            placement = round_robin_mapping(code, device)
        else:
            placement = greedy_cluster_mapping(code, device)
        placement.apply_to_device(device)

        compiled = CompiledSchedule(
            architecture=f"{self.label}:{device.name}", code_name=code.name,
            metadata={
                "topology": device.name,
                "num_traps": device.num_traps,
                "num_junctions": device.num_junctions,
                "trap_capacity": self.trap_capacity,
                "dac_count": device.dac_count,
                "num_ancilla": code.num_stabilizers,
            },
        )
        tracker = ResourceTracker()
        num_data = code.num_qubits

        barrier = 0.0
        for timeslice in schedule.timeslices:
            slice_finish = barrier
            for gate in timeslice:
                ancilla_qubit = num_data + gate.stabilizer
                ancilla_trap = placement.trap_of(ancilla_qubit)
                data_trap = placement.trap_of(gate.data)
                clock = barrier
                if ancilla_trap != data_trap:
                    clock = self.shuttle_ion(
                        compiled, device, tracker, ancilla_qubit, ancilla_trap,
                        data_trap, clock, placement,
                    )
                finish = self.gate_on_trap(
                    compiled, device, tracker, data_trap,
                    (ancilla_qubit, gate.data), clock,
                )
                slice_finish = max(slice_finish, finish)
            barrier = slice_finish

        if self.include_measurement:
            ancillas = [num_data + s for s in range(code.num_stabilizers)]
            barrier = self.measure_ancillas(
                compiled, device, tracker, ancillas, placement, barrier
            )
        compiled.metadata["execution_time_us"] = barrier
        compiled.metadata["roadblock_wait_us"] = tracker.total_wait_us
        compiled.metadata["roadblock_events"] = tracker.wait_events
        return compiled
